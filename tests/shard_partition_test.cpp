// Property tests for the shard object partition (hbn/shard/partition.h):
// the ownership function the coordinator and every worker compute
// independently from the Hello parameters. Soundness of the whole
// sharded engine rests on these properties, so they are pinned
// directly.
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/shard/partition.h"

namespace hbn::shard {
namespace {

// Every object has exactly one owner and that owner is in range — for
// both kinds, across shard counts that divide the object count, don't,
// and exceed it.
TEST(ShardPartition, EveryObjectOwnedByExactlyOneShard) {
  for (const Partition::Kind kind :
       {Partition::Kind::Hash, Partition::Kind::Range}) {
    for (const int numObjects : {0, 1, 7, 64, 1000}) {
      for (const int shards : {1, 2, 3, 4, 16, 1001}) {
        const Partition partition(kind, shards, /*seed=*/9, numObjects);
        std::vector<int> owned(static_cast<std::size_t>(numObjects), -1);
        for (int x = 0; x < numObjects; ++x) {
          const int owner = partition.ownerOf(x);
          ASSERT_GE(owner, 0);
          ASSERT_LT(owner, shards);
          // ownerOf is a function: asking again yields the same shard.
          ASSERT_EQ(partition.ownerOf(x), owner);
          owned[static_cast<std::size_t>(x)] = owner;
        }
        for (const int owner : owned) ASSERT_NE(owner, -1);
      }
    }
  }
}

// Re-instantiating with equal parameters is a fixed point: ownership
// never depends on construction order, address, or which process asks
// (the worker recomputes the partition the coordinator described).
TEST(ShardPartition, SameParametersSameOwnership) {
  for (const Partition::Kind kind :
       {Partition::Kind::Hash, Partition::Kind::Range}) {
    const Partition a(kind, 5, /*seed=*/1234, 512);
    const Partition b(kind, 5, /*seed=*/1234, 512);
    for (int x = 0; x < 512; ++x) {
      ASSERT_EQ(a.ownerOf(x), b.ownerOf(x));
    }
  }
}

// The hash partition must actually use its seed: distinct seeds give
// distinct assignments (rebalancing lever), while the range partition
// ignores the seed by design.
TEST(ShardPartition, HashSeedChangesAssignmentRangeIgnoresIt) {
  const Partition hashA(Partition::Kind::Hash, 4, 1, 512);
  const Partition hashB(Partition::Kind::Hash, 4, 2, 512);
  bool differs = false;
  for (int x = 0; x < 512 && !differs; ++x) {
    differs = hashA.ownerOf(x) != hashB.ownerOf(x);
  }
  EXPECT_TRUE(differs);

  const Partition rangeA(Partition::Kind::Range, 4, 1, 512);
  const Partition rangeB(Partition::Kind::Range, 4, 2, 512);
  for (int x = 0; x < 512; ++x) {
    ASSERT_EQ(rangeA.ownerOf(x), rangeB.ownerOf(x));
  }
}

// Range blocks are contiguous (owner is non-decreasing in the id) and
// balanced to within one ceil-sized block.
TEST(ShardPartition, RangeIsContiguousAndBalanced) {
  for (const int numObjects : {64, 100, 1000}) {
    for (const int shards : {1, 3, 4, 7}) {
      const Partition partition(Partition::Kind::Range, shards, 0,
                                numObjects);
      std::vector<int> sizes(static_cast<std::size_t>(shards), 0);
      int previous = 0;
      for (int x = 0; x < numObjects; ++x) {
        const int owner = partition.ownerOf(x);
        ASSERT_GE(owner, previous) << "range owners must be monotone";
        previous = owner;
        ++sizes[static_cast<std::size_t>(owner)];
      }
      const int block = (numObjects + shards - 1) / shards;
      for (const int size : sizes) ASSERT_LE(size, block);
    }
  }
}

// The hash partition spreads a contiguous id range over all shards —
// the reason it is the default for skewed streams whose hot set is a
// low-id prefix. A wildly unbalanced spread would defeat sharding.
TEST(ShardPartition, HashSpreadsContiguousIds) {
  constexpr int kObjects = 4096;
  constexpr int kShards = 4;
  const Partition partition(Partition::Kind::Hash, kShards, 7, kObjects);
  std::vector<int> sizes(kShards, 0);
  for (int x = 0; x < kObjects; ++x) {
    ++sizes[static_cast<std::size_t>(partition.ownerOf(x))];
  }
  for (const int size : sizes) {
    EXPECT_GT(size, kObjects / kShards / 2);
    EXPECT_LT(size, kObjects / kShards * 2);
  }
}

TEST(ShardPartition, ValidatesParameters) {
  EXPECT_THROW(Partition(Partition::Kind::Hash, 0, 0, 16),
               std::invalid_argument);
  EXPECT_THROW(Partition(Partition::Kind::Range, -1, 0, 16),
               std::invalid_argument);
  EXPECT_THROW(Partition(Partition::Kind::Hash, 2, 0, -5),
               std::invalid_argument);
}

TEST(ShardPartition, ParseAndName) {
  EXPECT_EQ(parsePartitionKind("hash"), Partition::Kind::Hash);
  EXPECT_EQ(parsePartitionKind("range"), Partition::Kind::Range);
  EXPECT_THROW((void)parsePartitionKind("modulo"), std::invalid_argument);
  EXPECT_THROW((void)parsePartitionKind(""), std::invalid_argument);
  EXPECT_STREQ(partitionKindName(Partition::Kind::Hash), "hash");
  EXPECT_STREQ(partitionKindName(Partition::Kind::Range), "range");
}

}  // namespace
}  // namespace hbn::shard
