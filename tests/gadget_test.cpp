// Tests for the Theorem 2.1 reduction: congestion <= 4k is achievable iff
// the PARTITION instance is solvable — verified with the exact solver.
#include <gtest/gtest.h>

#include "hbn/baseline/exact.h"
#include "hbn/core/load.h"
#include "hbn/nphard/gadget.h"

namespace hbn::nphard {
namespace {

TEST(Gadget, EncodingShape) {
  const PartitionInstance instance{{2, 3, 3, 2}};  // total 10, k = 5
  const Gadget g = encodePartition(instance);
  EXPECT_EQ(g.k, 5);
  EXPECT_EQ(g.threshold(), 20);
  EXPECT_EQ(g.tree.processorCount(), 4);
  EXPECT_EQ(g.load.numObjects(), 5);  // 4 items + y
  EXPECT_EQ(g.load.objectWrites(g.yObject()), 4 * 5 + 1 + 2 * 5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(g.load.objectWrites(i), 4 * instance.items[
        static_cast<std::size_t>(i)]);
  }
  EXPECT_NO_THROW(g.load.validateProcessorOnly(g.tree));
}

TEST(Gadget, OddTotalRejected) {
  const PartitionInstance instance{{1, 2}};
  EXPECT_THROW((void)encodePartition(instance), std::invalid_argument);
}

TEST(Gadget, WitnessAchievesThresholdOnYesInstances) {
  util::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const PartitionInstance instance = makeYesInstance(6, 20, rng);
    const Gadget g = encodePartition(instance);
    const auto subset = solvePartition(instance);
    ASSERT_TRUE(subset.has_value());
    const core::Placement witness = witnessPlacement(g, *subset);
    const net::RootedTree rooted(g.tree, g.tree.defaultRoot());
    const double congestion = core::evaluateCongestion(rooted, witness);
    EXPECT_DOUBLE_EQ(congestion, static_cast<double>(g.threshold()))
        << "trial " << trial;
  }
}

TEST(Gadget, ExactOptimumMatchesThresholdIffSolvable) {
  util::Rng rng(37);
  // YES instances: optimum == 4k.
  for (int trial = 0; trial < 6; ++trial) {
    const PartitionInstance yes = makeYesInstance(5, 12, rng);
    const Gadget g = encodePartition(yes);
    const baseline::ExactResult opt = baseline::solveExact(g.tree, g.load);
    ASSERT_TRUE(opt.provedOptimal);
    EXPECT_DOUBLE_EQ(opt.congestion, static_cast<double>(g.threshold()))
        << "yes trial " << trial;
  }
  // NO instances: optimum > 4k.
  for (int trial = 0; trial < 6; ++trial) {
    const PartitionInstance no = makeNoInstance(5, 9, rng);
    const Gadget g = encodePartition(no);
    const baseline::ExactResult opt = baseline::solveExact(g.tree, g.load);
    ASSERT_TRUE(opt.provedOptimal);
    EXPECT_GT(opt.congestion, static_cast<double>(g.threshold()))
        << "no trial " << trial;
  }
}

TEST(Gadget, RedundantCopiesDoNotBeatThreshold) {
  // The proof argues non-redundant placement is WLOG for all-write
  // instances; allowing 2 copies must not improve the optimum.
  util::Rng rng(41);
  const PartitionInstance no = makeNoInstance(4, 7, rng);
  const Gadget g = encodePartition(no);
  const baseline::ExactResult single = baseline::solveExact(g.tree, g.load);
  baseline::ExactOptions redundant;
  redundant.maxCopiesPerObject = 2;
  const baseline::ExactResult twoCopy =
      baseline::solveExact(g.tree, g.load, redundant);
  ASSERT_TRUE(single.provedOptimal);
  ASSERT_TRUE(twoCopy.provedOptimal);
  EXPECT_DOUBLE_EQ(twoCopy.congestion, single.congestion);
}

TEST(Gadget, OptimalPlacementDecodesToPerfectPartitionOnYes) {
  util::Rng rng(43);
  const PartitionInstance yes = makeYesInstance(6, 15, rng);
  const Gadget g = encodePartition(yes);
  const baseline::ExactResult opt = baseline::solveExact(g.tree, g.load);
  ASSERT_TRUE(opt.provedOptimal);
  ASSERT_DOUBLE_EQ(opt.congestion, static_cast<double>(g.threshold()));
  // An optimal placement encodes a perfect partition: x_i on s for i in S,
  // the rest on s̄ (possibly with roles of s and s̄ swapped).
  const std::vector<int> subset = decodeSubset(g, opt.placement);
  Weight onS = 0;
  for (const int i : subset) {
    onS += yes.items[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(onS, g.k);
}

TEST(Gadget, BusLoadDoesNotDominate) {
  // The reduction chooses the bus bandwidth so edge congestion decides;
  // confirm on a YES witness.
  util::Rng rng(47);
  const PartitionInstance yes = makeYesInstance(5, 10, rng);
  const Gadget g = encodePartition(yes);
  const auto subset = solvePartition(yes);
  ASSERT_TRUE(subset.has_value());
  const core::Placement witness = witnessPlacement(g, *subset);
  const net::RootedTree rooted(g.tree, g.tree.defaultRoot());
  const core::LoadMap lm = core::computeLoad(rooted, witness);
  EXPECT_LT(lm.busCongestion(g.tree), lm.edgeCongestion(g.tree));
}

TEST(Gadget, DecodeRejectsRedundantPlacement) {
  const PartitionInstance instance{{2, 2}};
  const Gadget g = encodePartition(instance);
  core::Placement redundant;
  redundant.objects.resize(static_cast<std::size_t>(g.load.numObjects()));
  const net::NodeId both[] = {g.s(), g.sBar()};
  for (int x = 0; x < g.load.numObjects(); ++x) {
    redundant.objects[static_cast<std::size_t>(x)] =
        core::makeNearestPlacement(g.tree, g.load, x, both);
  }
  EXPECT_THROW((void)decodeSubset(g, redundant), std::invalid_argument);
}

}  // namespace
}  // namespace hbn::nphard
