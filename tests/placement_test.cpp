// Tests for the placement model and nearest-copy reference construction.
#include <gtest/gtest.h>

#include "hbn/core/placement.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::core {
namespace {

TEST(Copy, ServedTotalSumsSharesAndLocations) {
  Copy c;
  c.location = 3;
  c.served.push_back(RequestShare{1, 2, 3});
  c.served.push_back(RequestShare{2, 0, 4});
  EXPECT_EQ(c.servedTotal(), 9);

  ObjectPlacement obj;
  obj.copies.push_back(c);
  Copy d;
  d.location = 3;  // duplicate location collapses in locations()
  obj.copies.push_back(d);
  Copy e;
  e.location = 1;
  obj.copies.push_back(e);
  const auto locs = obj.locations();
  ASSERT_EQ(locs.size(), 2u);
  EXPECT_EQ(locs[0], 1);
  EXPECT_EQ(locs[1], 3);
  EXPECT_EQ(obj.servedTotal(), 9);
}

TEST(Placement, LeafOnlyDetection) {
  const net::Tree t = net::makeStar(3);  // bus 0, processors 1..3
  Placement p;
  p.objects.resize(1);
  Copy onLeaf;
  onLeaf.location = 1;
  p.objects[0].copies.push_back(onLeaf);
  EXPECT_TRUE(p.isLeafOnly(t));
  Copy onBus;
  onBus.location = 0;
  p.objects[0].copies.push_back(onBus);
  EXPECT_FALSE(p.isLeafOnly(t));
}

TEST(NearestPlacement, AssignsToClosestCopy) {
  // Caterpillar: bus0-bus1-bus2-bus3, one processor each.
  const net::Tree t = net::makeCaterpillar(4, 1);
  workload::Workload load(1, t.nodeCount());
  for (const net::NodeId p : t.processors()) {
    load.addReads(0, p, 1);
  }
  // Copies on the first and last processors.
  const net::NodeId first = t.processors().front();
  const net::NodeId last = t.processors().back();
  const net::NodeId locations[] = {first, last};
  const ObjectPlacement obj = makeNearestPlacement(t, load, 0, locations);
  ASSERT_EQ(obj.copies.size(), 2u);
  // Processors at buses 0,1 go to `first`; those at buses 2,3 go to `last`.
  const Copy& cFirst = obj.copies[0].location == first ? obj.copies[0]
                                                       : obj.copies[1];
  const Copy& cLast = obj.copies[0].location == last ? obj.copies[0]
                                                     : obj.copies[1];
  EXPECT_EQ(cFirst.served.size(), 2u);
  EXPECT_EQ(cLast.served.size(), 2u);
}

TEST(NearestPlacement, TieBreaksTowardSmallerId) {
  const net::Tree t = net::makeStar(3);  // processors 1,2,3 all equidistant
  workload::Workload load(1, t.nodeCount());
  load.addReads(0, 2, 5);
  const net::NodeId locations[] = {3, 1};  // unsorted on purpose
  const ObjectPlacement obj = makeNearestPlacement(t, load, 0, locations);
  // Processor 2 is at distance 2 from both copies; the copy on node 1 wins.
  for (const Copy& c : obj.copies) {
    if (c.location == 1) {
      ASSERT_EQ(c.served.size(), 1u);
      EXPECT_EQ(c.served[0].origin, 2);
    } else {
      EXPECT_TRUE(c.served.empty());
    }
  }
}

TEST(NearestPlacement, SelfCopyServesItself) {
  const net::Tree t = net::makeStar(3);
  workload::Workload load(1, t.nodeCount());
  load.addWrites(0, 1, 7);
  const net::NodeId locations[] = {1};
  const ObjectPlacement obj = makeNearestPlacement(t, load, 0, locations);
  ASSERT_EQ(obj.copies.size(), 1u);
  ASSERT_EQ(obj.copies[0].served.size(), 1u);
  EXPECT_EQ(obj.copies[0].served[0].origin, 1);
  EXPECT_EQ(obj.copies[0].served[0].writes, 7);
}

TEST(NearestPlacement, RejectsBadInput) {
  const net::Tree t = net::makeStar(3);
  workload::Workload load(1, t.nodeCount());
  EXPECT_THROW(makeNearestPlacement(t, load, 0, {}), std::invalid_argument);
  const net::NodeId bad[] = {99};
  EXPECT_THROW(makeNearestPlacement(t, load, 0, bad), std::out_of_range);
}

TEST(ValidateCoversWorkload, AcceptsExactCover) {
  util::Rng rng(3);
  const net::Tree t = net::makeKaryTree(3, 2);
  workload::GenParams params;
  params.numObjects = 5;
  const workload::Workload load =
      workload::generateUniform(t, params, rng);
  Placement p;
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    const net::NodeId locations[] = {t.processors()[0]};
    p.objects.push_back(makeNearestPlacement(t, load, x, locations));
  }
  EXPECT_NO_THROW(validateCoversWorkload(p, load));
}

TEST(ValidateCoversWorkload, DetectsMissingAndExtraRequests) {
  const net::Tree t = net::makeStar(3);
  workload::Workload load(1, t.nodeCount());
  load.addReads(0, 1, 2);
  Placement p;
  p.objects.resize(1);
  Copy c;
  c.location = 1;
  c.served.push_back(RequestShare{1, 1, 0});  // one read short
  p.objects[0].copies.push_back(c);
  EXPECT_THROW(validateCoversWorkload(p, load), std::logic_error);
  p.objects[0].copies[0].served[0].reads = 3;  // one read too many
  EXPECT_THROW(validateCoversWorkload(p, load), std::logic_error);
  p.objects[0].copies[0].served[0].reads = 2;  // exact
  EXPECT_NO_THROW(validateCoversWorkload(p, load));
}

TEST(ValidateCoversWorkload, SplitSharesAcrossCopiesAllowed) {
  const net::Tree t = net::makeStar(3);
  workload::Workload load(1, t.nodeCount());
  load.addWrites(0, 1, 10);
  Placement p;
  p.objects.resize(1);
  Copy a;
  a.location = 2;
  a.served.push_back(RequestShare{1, 0, 6});
  Copy b;
  b.location = 3;
  b.served.push_back(RequestShare{1, 0, 4});
  p.objects[0].copies.push_back(a);
  p.objects[0].copies.push_back(b);
  EXPECT_NO_THROW(validateCoversWorkload(p, load));
}

}  // namespace
}  // namespace hbn::core
