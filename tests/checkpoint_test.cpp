// Checkpoint/restore conformance: every registered policy spec must
// survive the kill-and-restore property — serve with epoch-boundary
// checkpointing, die mid-epoch (injected shard throw), restore the
// latest snapshot into a fresh server, re-serve the remaining stream,
// and end bit-identical to an uninterrupted run — across thread counts
// and both engines. Plus: checkpointing itself is digest-neutral, a
// restored server equals the server it snapshotted, and corrupted or
// truncated snapshots are rejected loudly instead of half-applied.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/dynamic/online_policy.h"
#include "hbn/net/generators.h"
#include "hbn/serve/checkpoint.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/error.h"
#include "hbn/serve/request_stream.h"
#include "hbn/util/fault.h"
#include "hbn/workload/generators.h"

namespace hbn::serve {
namespace {

using core::Count;
using workload::ObjectId;

constexpr int kObjects = 64;
constexpr std::size_t kEpochSize = 1 << 10;
constexpr std::uint64_t kRequests = 20'000;
constexpr std::uint64_t kKillEpoch = 10;

/// Every registered policy in its default form plus option-ful variants
/// — registry-driven, so a policy registered tomorrow joins the
/// kill-and-restore suite without edits.
std::vector<std::string> conformanceSpecs() {
  std::vector<std::string> specs =
      dynamic::OnlinePolicyRegistry::global().names();
  std::sort(specs.begin(), specs.end());
  specs.push_back("tree-counters:threshold=3,contract=0");
  specs.push_back("static:placement=extended-nibble");
  specs.push_back("adaptive:members=tree-counters+owner-only,window=3");
  return specs;
}

std::vector<workload::RequestEvent> makeEvents(const net::Tree& tree,
                                               std::uint64_t seed) {
  workload::StreamParams params;
  params.numObjects = kObjects;
  params.readFraction = 0.9;
  const auto stream =
      makeGeneratedStream("skewed", tree, params, seed, kRequests);
  std::vector<workload::RequestEvent> events(kRequests);
  EXPECT_EQ(stream->fill(events), kRequests);
  return events;
}

ServeOptions makeOptions(const std::string& spec, int threads,
                         bool pipeline) {
  ServeOptions options;
  options.epochSize = kEpochSize;
  options.threads = threads;
  options.pipeline = pipeline;
  options.replaceDrift = 1.2;  // drift passes in play
  options.policy = spec;
  return options;
}

/// Everything determinism promises: final loads, copy sets, counters.
std::string digest(const EpochServer& server, const ServeReport& report) {
  std::ostringstream oss;
  oss.precision(17);
  oss << report.congestion << '|' << report.replacements << '|'
      << report.replications << '|' << report.invalidations;
  for (const Count load : server.loads().edgeLoads()) oss << ',' << load;
  for (ObjectId x = 0; x < kObjects; ++x) {
    oss << ';';
    for (const net::NodeId v : server.copySet(x)) oss << v << ' ';
  }
  return oss.str();
}

/// Fresh unique checkpoint directory under the test temp root.
std::filesystem::path freshDir(const std::string& tag) {
  static int counter = 0;
  const std::filesystem::path dir = std::filesystem::path(
      ::testing::TempDir()) / ("hbn-checkpoint-" + tag + "-" +
                               std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir;
}

std::string serveUninterrupted(
    const net::RootedTree& rooted,
    const std::vector<workload::RequestEvent>& events,
    const ServeOptions& options) {
  EpochServer server(rooted, kObjects, options);
  VectorStream stream({events.begin(), events.end()});
  const ServeReport report = server.serve(stream);
  return digest(server, report);
}

// ---------------------------------------------------------------------------
// The headline property: kill mid-epoch, restore the latest snapshot,
// re-serve the rest — final state bit-identical to the uninterrupted
// run, for every policy × engine × thread count.
// ---------------------------------------------------------------------------
TEST(Checkpoint, KillRestoreIsBitIdentical) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto events = makeEvents(tree, 43);
  for (const std::string& spec : conformanceSpecs()) {
    for (const bool pipeline : {false, true}) {
      for (const int threads : {1, 3}) {
        SCOPED_TRACE(spec + (pipeline ? " pipelined" : " barrier") +
                     " threads=" + std::to_string(threads));
        const std::string reference = serveUninterrupted(
            rooted, events, makeOptions(spec, threads, pipeline));

        // The doomed run: checkpoint every epoch, die at kKillEpoch.
        const std::filesystem::path dir = freshDir("kill");
        {
          ServeOptions options = makeOptions(spec, threads, pipeline);
          options.checkpointDir = dir.string();
          options.faults = util::makeFaultInjector(
              "shard-throw@epoch" + std::to_string(kKillEpoch));
          EpochServer server(rooted, kObjects, options);
          VectorStream stream({events.begin(), events.end()});
          try {
            (void)server.serve(stream);
            FAIL() << "injected shard throw did not surface";
          } catch (const Error& e) {
            EXPECT_EQ(e.stage(), Stage::Serve);
            EXPECT_EQ(e.epoch(), kKillEpoch);
          }
        }

        // Restore the latest snapshot into a fresh server and finish
        // the stream from the checkpoint's cursor.
        const CheckpointData data =
            readCheckpointFile(latestCheckpointPath(dir.string()));
        EXPECT_EQ(data.epochs, kKillEpoch);
        EXPECT_EQ(data.servedTotal, kKillEpoch * kEpochSize);
        EpochServer server(rooted, kObjects,
                           makeOptions(spec, threads, pipeline));
        server.restoreFrom(data);
        VectorStream stream({events.begin(), events.end()});
        skipRequests(stream, data.servedTotal);
        const ServeReport report = server.serve(stream);
        EXPECT_EQ(report.totalRequests, kRequests - data.servedTotal);
        EXPECT_EQ(digest(server, report), reference);
        std::filesystem::remove_all(dir);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpointing must not change what is served: a checkpointed run ends
// with the same digest as a plain one, and a server restored from the
// final snapshot equals the server that wrote it.
// ---------------------------------------------------------------------------
TEST(Checkpoint, CheckpointingIsDigestNeutral) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto events = makeEvents(tree, 47);
  for (const std::string& spec : conformanceSpecs()) {
    SCOPED_TRACE(spec);
    const std::string reference =
        serveUninterrupted(rooted, events, makeOptions(spec, 3, true));

    const std::filesystem::path dir = freshDir("neutral");
    ServeOptions options = makeOptions(spec, 3, true);
    options.checkpointDir = dir.string();
    options.checkpointEvery = 3;
    EpochServer server(rooted, kObjects, options);
    VectorStream stream({events.begin(), events.end()});
    const ServeReport report = server.serve(stream);
    EXPECT_GT(report.checkpoints, 0u);
    EXPECT_EQ(digest(server, report), reference);

    // The final snapshot captures end-of-run state exactly.
    const CheckpointData data =
        readCheckpointFile(latestCheckpointPath(dir.string()));
    EXPECT_EQ(data.servedTotal, kRequests);
    EpochServer twin(rooted, kObjects, makeOptions(spec, 3, true));
    twin.restoreFrom(data);
    for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
      ASSERT_EQ(twin.loads().edgeLoad(e), server.loads().edgeLoad(e))
          << "edge " << e;
    }
    for (ObjectId x = 0; x < kObjects; ++x) {
      ASSERT_EQ(twin.copySet(x), server.copySet(x)) << "object " << x;
    }
    std::filesystem::remove_all(dir);
  }
}

// ---------------------------------------------------------------------------
// Negatives: corruption, truncation, wrong target, reuse.
// ---------------------------------------------------------------------------

CheckpointData sampleCheckpoint(const net::RootedTree& rooted,
                                const std::vector<workload::RequestEvent>&
                                    events,
                                const std::string& spec,
                                std::filesystem::path& dirOut) {
  dirOut = freshDir("negative");
  ServeOptions options = makeOptions(spec, 1, false);
  options.checkpointDir = dirOut.string();
  EpochServer server(rooted, kObjects, options);
  VectorStream stream({events.begin(), events.end()});
  (void)server.serve(stream);
  return readCheckpointFile(latestCheckpointPath(dirOut.string()));
}

TEST(Checkpoint, CorruptedAndTruncatedSnapshotsAreRejected) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto events = makeEvents(tree, 51);
  std::filesystem::path dir;
  (void)sampleCheckpoint(rooted, events, "tree-counters", dir);
  const std::string path = latestCheckpointPath(dir.string());

  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream slurp;
    slurp << in.rdbuf();
    text = slurp.str();
  }
  ASSERT_GT(text.size(), 200u);

  // One flipped byte in the middle: checksum mismatch, named as such.
  {
    std::string corrupt = text;
    corrupt[text.size() / 2] ^= 0x20;
    std::istringstream in(corrupt);
    EXPECT_THROW((void)readCheckpoint(in), std::invalid_argument);
  }
  // Truncation drops the checksum line entirely.
  {
    std::istringstream in(text.substr(0, text.size() / 2));
    EXPECT_THROW((void)readCheckpoint(in), std::invalid_argument);
  }
  // Garbage is not a checkpoint.
  {
    std::istringstream in("hello world\n");
    EXPECT_THROW((void)readCheckpoint(in), std::invalid_argument);
  }
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, RestoreValidatesTargetServer) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto events = makeEvents(tree, 53);
  std::filesystem::path dir;
  const CheckpointData data =
      sampleCheckpoint(rooted, events, "tree-counters", dir);

  // Wrong policy.
  {
    EpochServer server(rooted, kObjects,
                       makeOptions("full-replication", 1, false));
    EXPECT_THROW(server.restoreFrom(data), std::invalid_argument);
  }
  // Wrong topology.
  {
    const net::Tree other = net::makeClusterNetwork(2, 3);
    const net::RootedTree otherRooted(other, other.defaultRoot());
    EpochServer server(otherRooted, kObjects,
                       makeOptions("tree-counters", 1, false));
    EXPECT_THROW(server.restoreFrom(data), std::invalid_argument);
  }
  // A server that has already served refuses restoration.
  {
    EpochServer server(rooted, kObjects,
                       makeOptions("tree-counters", 1, false));
    VectorStream stream({events.begin(), events.end()});
    (void)server.serve(stream);
    EXPECT_THROW(server.restoreFrom(data), std::logic_error);
  }
  std::filesystem::remove_all(dir);
}

// skipRequests must refuse to resume past the end of a shorter stream —
// the checkpoint and the stream plainly disagree.
TEST(Checkpoint, SkipPastEndOfStreamThrows) {
  std::vector<workload::RequestEvent> few(10,
                                          workload::RequestEvent{0, 0, false});
  VectorStream stream(std::move(few));
  EXPECT_THROW(skipRequests(stream, 11), std::runtime_error);
}

}  // namespace
}  // namespace hbn::serve
