// End-to-end tests of the extended-nibble strategy — Theorem 4.3's
// 7-approximation against the certified lower bound, across topology and
// workload families (parameterised sweep).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "hbn/core/extended_nibble.h"
#include "hbn/core/lower_bound.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::core {
namespace {

using net::Tree;

TEST(ExtendedNibble, FinalPlacementLeafOnlyAndCoversWorkload) {
  util::Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const Tree t = net::makeRandomTree(24, 8, rng);
    workload::GenParams params;
    params.numObjects = 6;
    params.requestsPerProcessor = 25;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);
    const ExtendedNibbleResult result = extendedNibble(t, load);
    EXPECT_TRUE(result.final.isLeafOnly(t));
    EXPECT_NO_THROW(validateCoversWorkload(result.final, load));
    EXPECT_NO_THROW(validateCoversWorkload(result.nibble, load));
    EXPECT_NO_THROW(validateCoversWorkload(result.modified, load));
  }
}

TEST(ExtendedNibble, RejectsWorkloadOnBuses) {
  const Tree t = net::makeStar(3);
  workload::Workload load(1, t.nodeCount());
  load.addReads(0, 0, 1);  // node 0 is the bus
  EXPECT_THROW(extendedNibble(t, load), std::invalid_argument);
}

TEST(ExtendedNibble, DeterministicAcrossRuns) {
  util::Rng rng(103);
  const Tree t = net::makeClusterNetwork(4, 4);
  workload::GenParams params;
  params.numObjects = 5;
  const workload::Workload load = workload::generateZipf(t, params, rng);
  const ExtendedNibbleResult a = extendedNibble(t, load);
  const ExtendedNibbleResult b = extendedNibble(t, load);
  EXPECT_EQ(a.report.congestionFinal, b.report.congestionFinal);
  for (std::size_t x = 0; x < a.final.objects.size(); ++x) {
    EXPECT_EQ(a.final.objects[x].locations(), b.final.objects[x].locations());
  }
}

TEST(ExtendedNibble, ReportIsInternallyConsistent) {
  util::Rng rng(107);
  const Tree t = net::makeKaryTree(4, 2);
  workload::GenParams params;
  params.numObjects = 8;
  const workload::Workload load = workload::generateHotspot(t, params, rng);
  const ExtendedNibbleResult result = extendedNibble(t, load);
  EXPECT_EQ(result.report.participatingObjects + result.report.frozenObjects,
            load.numObjects());
  EXPECT_GE(result.report.congestionFinal, result.report.congestionNibble);
  EXPECT_EQ(result.report.maxWriteContention, load.maxWriteContention());
  EXPECT_EQ(result.gravityCenters.size(),
            static_cast<std::size_t>(load.numObjects()));
  EXPECT_EQ(result.report.mapping.forcedMoves, 0);
}

TEST(ExtendedNibble, NeverAccessedObjectHandled) {
  const Tree t = net::makeStar(4);
  workload::Workload load(2, t.nodeCount());
  load.addWrites(0, 1, 5);  // object 1 untouched
  const ExtendedNibbleResult result = extendedNibble(t, load);
  EXPECT_TRUE(result.final.isLeafOnly(t));
  EXPECT_EQ(result.final.objects[1].copies.size(), 1u);
}

TEST(ExtendedNibble, SingleProcessorTree) {
  net::TreeBuilder b;
  b.addProcessor();
  const Tree t = b.build();
  workload::Workload load(2, 1);
  load.addReads(0, 0, 10);
  load.addWrites(1, 0, 3);
  const ExtendedNibbleResult result = extendedNibble(t, load);
  EXPECT_DOUBLE_EQ(result.report.congestionFinal, 0.0);
}

// ---------------------------------------------------------------------
// Theorem 4.3 property sweep: congestion <= 7 × lower bound over the full
// topology × workload grid.
// ---------------------------------------------------------------------

using SweepParam = std::tuple<net::TopologyFamily, workload::Profile, int>;

class ApproximationSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ApproximationSweep, CongestionWithin7xLowerBound) {
  const auto [family, profile, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const Tree t = net::makeFamilyMember(family, 30, rng);
  workload::GenParams params;
  params.numObjects = 6;
  params.requestsPerProcessor = 30;
  params.readFraction = 0.2 + 0.6 * rng.nextDouble();
  const workload::Workload load = workload::generate(profile, t, params, rng);

  const ExtendedNibbleResult result = extendedNibble(t, load);
  const net::RootedTree rooted(t, t.defaultRoot());
  const LowerBound lb = analyticLowerBound(rooted, load);
  if (lb.congestion == 0.0) {
    EXPECT_DOUBLE_EQ(result.report.congestionFinal, 0.0);
    return;
  }
  EXPECT_LE(result.report.congestionFinal, 7.0 * lb.congestion)
      << topologyFamilyName(family) << "/" << profileName(profile);
  // The nibble congestion must itself lower-bound the final one.
  EXPECT_LE(result.report.congestionNibble, result.report.congestionFinal);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ApproximationSweep,
    ::testing::Combine(
        ::testing::Values(net::TopologyFamily::kary, net::TopologyFamily::star,
                          net::TopologyFamily::caterpillar,
                          net::TopologyFamily::random,
                          net::TopologyFamily::cluster),
        ::testing::Values(workload::Profile::uniform, workload::Profile::zipf,
                          workload::Profile::hotspot,
                          workload::Profile::clustered,
                          workload::Profile::producerConsumer,
                          workload::Profile::adversarial),
        ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name =
          std::string(net::topologyFamilyName(std::get<0>(info.param))) + "_" +
          workload::profileName(std::get<1>(info.param)) + "_s" +
          std::to_string(std::get<2>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Ablation: skipping the deletion step may produce forced moves (the
// guarantee is void) but must still yield a valid leaf-only placement.
TEST(ExtendedNibble, MultiThreadedRunsAreBitIdentical) {
  util::Rng rng(131);
  for (int trial = 0; trial < 6; ++trial) {
    const Tree t = net::makeRandomTree(30, 10, rng);
    workload::GenParams params;
    params.numObjects = 17;  // not a multiple of the thread counts
    params.requestsPerProcessor = 20;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);
    const ExtendedNibbleResult sequential = extendedNibble(t, load);
    for (const int threads : {0, 2, 4, 7}) {
      ExtendedNibbleOptions options;
      options.threads = threads;
      const ExtendedNibbleResult parallel = extendedNibble(t, load, options);
      ASSERT_EQ(parallel.report.congestionFinal,
                sequential.report.congestionFinal)
          << "threads=" << threads;
      ASSERT_EQ(parallel.report.deletion.copiesDeleted,
                sequential.report.deletion.copiesDeleted);
      ASSERT_EQ(parallel.gravityCenters, sequential.gravityCenters);
      for (std::size_t x = 0; x < sequential.final.objects.size(); ++x) {
        ASSERT_EQ(parallel.final.objects[x].locations(),
                  sequential.final.objects[x].locations());
      }
    }
  }
}

TEST(ExtendedNibbleAblation, SkipDeletionStillValid) {
  util::Rng rng(113);
  const Tree t = net::makeRandomTree(20, 6, rng);
  workload::GenParams params;
  params.numObjects = 5;
  const workload::Workload load =
      workload::generateAdversarial(t, params, rng);
  ExtendedNibbleOptions options;
  options.runDeletion = false;
  const ExtendedNibbleResult result = extendedNibble(t, load, options);
  EXPECT_TRUE(result.final.isLeafOnly(t));
  EXPECT_NO_THROW(validateCoversWorkload(result.final, load));
}

TEST(ExtendedNibbleAblation, AccFactorVariantsStayValid) {
  util::Rng rng(127);
  const Tree t = net::makeKaryTree(3, 3);
  workload::GenParams params;
  params.numObjects = 6;
  const workload::Workload load = workload::generateUniform(t, params, rng);
  for (const Count factor : {1, 2, 3}) {
    ExtendedNibbleOptions options;
    options.accFactor = factor;
    const ExtendedNibbleResult result = extendedNibble(t, load, options);
    EXPECT_TRUE(result.final.isLeafOnly(t)) << "factor " << factor;
    EXPECT_NO_THROW(validateCoversWorkload(result.final, load));
  }
}

}  // namespace
}  // namespace hbn::core
