// Tests for topology generators: every family must produce valid
// hierarchical bus networks with the promised shapes.
#include <gtest/gtest.h>

#include "hbn/net/generators.h"
#include "hbn/net/rooted.h"
#include "hbn/util/rng.h"

namespace hbn::net {
namespace {

TEST(Generators, KaryTreeShape) {
  const Tree t = makeKaryTree(3, 2);
  // 1 root bus + 3 child buses + 9 processors.
  EXPECT_EQ(t.busCount(), 4);
  EXPECT_EQ(t.processorCount(), 9);
  // Root bus -> child bus -> processor: two hops.
  EXPECT_EQ(t.heightFrom(t.defaultRoot()), 2);
}

TEST(Generators, KaryHeightOneIsStar) {
  const Tree t = makeKaryTree(5, 1);
  EXPECT_EQ(t.busCount(), 1);
  EXPECT_EQ(t.processorCount(), 5);
}

TEST(Generators, KaryRejectsBadParameters) {
  EXPECT_THROW(makeKaryTree(1, 2), std::invalid_argument);
  EXPECT_THROW(makeKaryTree(2, 0), std::invalid_argument);
}

TEST(Generators, FatTreeBandwidthsGrowTowardsRoot) {
  BandwidthModel bw;
  bw.fatTree = true;
  const Tree t = makeKaryTree(2, 3, bw);
  const RootedTree r(t, 0);
  // Root bus covers 8 processors, its children 4 each.
  EXPECT_DOUBLE_EQ(t.busBandwidth(0), 8.0);
  for (const NodeId c : r.children(0)) {
    if (t.isBus(c)) {
      EXPECT_DOUBLE_EQ(t.busBandwidth(c), 4.0);
    }
  }
  // Leaf switches stay at bandwidth 1 (the paper's model).
  EXPECT_TRUE(t.usesUnitLeafEdges());
}

TEST(Generators, StarShape) {
  const Tree t = makeStar(7, 42.0);
  EXPECT_EQ(t.busCount(), 1);
  EXPECT_EQ(t.processorCount(), 7);
  EXPECT_DOUBLE_EQ(t.busBandwidth(t.buses()[0]), 42.0);
}

TEST(Generators, CaterpillarShape) {
  const Tree t = makeCaterpillar(5, 2);
  EXPECT_EQ(t.busCount(), 5);
  EXPECT_EQ(t.processorCount(), 10);
  // Height from an end bus: 4 bus hops + 1 leaf edge.
  EXPECT_EQ(t.heightFrom(t.buses()[0]), 5);
}

TEST(Generators, RandomTreeIsValidAndDeterministic) {
  util::Rng rng1(99);
  util::Rng rng2(99);
  const Tree a = makeRandomTree(40, 10, rng1);
  const Tree b = makeRandomTree(40, 10, rng2);
  EXPECT_EQ(a.nodeCount(), b.nodeCount());
  EXPECT_EQ(a.processorCount(), 40);
  EXPECT_EQ(a.busCount(), 10);
  for (EdgeId e = 0; e < a.edgeCount(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(Generators, RandomTreePadsProcessorsForValidity) {
  util::Rng rng(7);
  // Fewer processors than buses would leave leaf buses; generator pads.
  const Tree t = makeRandomTree(2, 6, rng);
  EXPECT_GE(t.processorCount(), 6);
}

TEST(Generators, ClusterNetworkShape) {
  const Tree t = makeClusterNetwork(4, 3);
  EXPECT_EQ(t.busCount(), 5);  // root + 4 clusters
  EXPECT_EQ(t.processorCount(), 12);
  EXPECT_EQ(t.heightFrom(t.defaultRoot()), 2);
}

TEST(Generators, FamilyMemberHitsTargetSize) {
  util::Rng rng(5);
  for (const TopologyFamily family :
       {TopologyFamily::kary, TopologyFamily::star, TopologyFamily::caterpillar,
        TopologyFamily::random, TopologyFamily::cluster}) {
    const Tree t = makeFamilyMember(family, 50, rng);
    EXPECT_GE(t.processorCount(), 10)
        << topologyFamilyName(family);
    EXPECT_LE(t.processorCount(), 100) << topologyFamilyName(family);
  }
}

TEST(Generators, FamilyNames) {
  EXPECT_STREQ(topologyFamilyName(TopologyFamily::kary), "kary");
  EXPECT_STREQ(topologyFamilyName(TopologyFamily::cluster), "cluster");
}

}  // namespace
}  // namespace hbn::net
