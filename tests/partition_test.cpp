// Tests for the PARTITION solver and instance generators.
#include <gtest/gtest.h>

#include <numeric>

#include "hbn/nphard/partition.h"

namespace hbn::nphard {
namespace {

Weight subsetSum(const PartitionInstance& instance,
                 const std::vector<int>& subset) {
  Weight sum = 0;
  for (const int i : subset) {
    sum += instance.items[static_cast<std::size_t>(i)];
  }
  return sum;
}

TEST(Partition, SolvableInstance) {
  const PartitionInstance instance{{3, 1, 1, 2, 2, 1}};  // total 10, k=5
  const auto subset = solvePartition(instance);
  ASSERT_TRUE(subset.has_value());
  EXPECT_EQ(subsetSum(instance, *subset), 5);
}

TEST(Partition, UnsolvableEvenTotal) {
  const PartitionInstance instance{{1, 1, 4}};  // total 6, k=3: impossible
  EXPECT_FALSE(solvePartition(instance).has_value());
}

TEST(Partition, OddTotalUnsolvable) {
  const PartitionInstance instance{{1, 2}};
  EXPECT_FALSE(solvePartition(instance).has_value());
}

TEST(Partition, SingleItemUnsolvable) {
  const PartitionInstance instance{{4}};
  EXPECT_FALSE(solvePartition(instance).has_value());
}

TEST(Partition, TwoEqualItems) {
  const PartitionInstance instance{{7, 7}};
  const auto subset = solvePartition(instance);
  ASSERT_TRUE(subset.has_value());
  EXPECT_EQ(subset->size(), 1u);
}

TEST(Partition, NonPositiveItemRejected) {
  const PartitionInstance instance{{1, 0, 1}};
  EXPECT_THROW((void)solvePartition(instance), std::invalid_argument);
}

TEST(Partition, HalfThrowsOnOddTotal) {
  const PartitionInstance instance{{1, 2}};
  EXPECT_THROW((void)instance.half(), std::invalid_argument);
}

TEST(Partition, YesInstancesAreSolvable) {
  util::Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 4 + static_cast<int>(rng.nextBelow(10));
    const Weight target = n + 5 + static_cast<Weight>(rng.nextBelow(40));
    const PartitionInstance instance = makeYesInstance(n, target, rng);
    EXPECT_EQ(static_cast<int>(instance.items.size()), n);
    EXPECT_EQ(instance.total(), 2 * target);
    const auto subset = solvePartition(instance);
    ASSERT_TRUE(subset.has_value()) << "trial " << trial;
    EXPECT_EQ(subsetSum(instance, *subset), target);
  }
}

TEST(Partition, NoInstancesAreUnsolvable) {
  util::Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 3 + static_cast<int>(rng.nextBelow(6));
    const PartitionInstance instance = makeNoInstance(n, 25, rng);
    EXPECT_EQ(instance.total() % 2, 0);
    EXPECT_FALSE(solvePartition(instance).has_value()) << "trial " << trial;
  }
}

TEST(Partition, WitnessIndicesAreValidAndUnique) {
  util::Rng rng(7);
  const PartitionInstance instance = makeYesInstance(8, 30, rng);
  const auto subset = solvePartition(instance);
  ASSERT_TRUE(subset.has_value());
  for (std::size_t i = 1; i < subset->size(); ++i) {
    EXPECT_LT((*subset)[i - 1], (*subset)[i]);  // sorted, unique
  }
  for (const int i : *subset) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, static_cast<int>(instance.items.size()));
  }
}

TEST(Partition, GeneratorsRejectBadParameters) {
  util::Rng rng(8);
  EXPECT_THROW((void)makeYesInstance(1, 10, rng), std::invalid_argument);
  EXPECT_THROW((void)makeYesInstance(10, 2, rng), std::invalid_argument);
  EXPECT_THROW((void)makeNoInstance(0, 10, rng), std::invalid_argument);
}

}  // namespace
}  // namespace hbn::nphard
