// The engine's central promise: the object-sharded parallel executor
// produces bit-identical placements for 1 vs N worker threads, for every
// strategy that shards (nibble, extended-nibble, random-single-copy).
#include <gtest/gtest.h>

#include "hbn/core/extended_nibble.h"
#include "hbn/core/load.h"
#include "hbn/core/nibble.h"
#include "hbn/engine/parallel_executor.h"
#include "hbn/engine/registry.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::engine {
namespace {

void expectIdentical(const core::Placement& a, const core::Placement& b) {
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (std::size_t x = 0; x < a.objects.size(); ++x) {
    const core::ObjectPlacement& oa = a.objects[x];
    const core::ObjectPlacement& ob = b.objects[x];
    ASSERT_EQ(oa.copies.size(), ob.copies.size()) << "object " << x;
    for (std::size_t c = 0; c < oa.copies.size(); ++c) {
      EXPECT_EQ(oa.copies[c].location, ob.copies[c].location)
          << "object " << x << " copy " << c;
      ASSERT_EQ(oa.copies[c].served.size(), ob.copies[c].served.size())
          << "object " << x << " copy " << c;
      for (std::size_t s = 0; s < oa.copies[c].served.size(); ++s) {
        EXPECT_EQ(oa.copies[c].served[s].origin, ob.copies[c].served[s].origin);
        EXPECT_EQ(oa.copies[c].served[s].reads, ob.copies[c].served[s].reads);
        EXPECT_EQ(oa.copies[c].served[s].writes,
                  ob.copies[c].served[s].writes);
      }
    }
  }
}

TEST(ParallelExecutor, ThreadCountDoesNotChangePlacement) {
  // The issue's acceptance instance: a 3-level tree with 200 objects.
  const net::Tree tree = net::makeKaryTree(4, 3);
  util::Rng rng(71);
  workload::GenParams params;
  params.numObjects = 200;
  params.requestsPerProcessor = 12;
  params.readFraction = 0.6;
  const workload::Workload load =
      workload::generateZipf(tree, params, rng);

  for (const char* spec :
       {"nibble", "extended-nibble", "random-single-copy"}) {
    SCOPED_TRACE(spec);
    const auto strategy = StrategyRegistry::global().create(spec);
    Context one;
    one.threads = 1;
    one.seed = 99;
    Context eight;
    eight.threads = 8;
    eight.seed = 99;
    expectIdentical(strategy->place(tree, load, one),
                    strategy->place(tree, load, eight));
  }
}

TEST(ParallelExecutor, MatchesSequentialReference) {
  // Sharded nibble through the executor equals the library's sequential
  // entry point, not merely itself.
  const net::Tree tree = net::makeClusterNetwork(4, 4);
  util::Rng rng(73);
  workload::GenParams params;
  params.numObjects = 60;
  params.requestsPerProcessor = 15;
  const workload::Workload load =
      workload::generateHotspot(tree, params, rng);
  const auto strategy = StrategyRegistry::global().create("nibble");
  Context ctx;
  ctx.threads = 5;
  expectIdentical(strategy->place(tree, load, ctx),
                  core::nibblePlacement(tree, load));
}

TEST(ParallelExecutor, ScratchReuseDoesNotLeakStateAcrossObjects) {
  // Objects with wildly different access patterns placed by one worker
  // (threads=1 maximises scratch reuse) must match fresh per-object runs.
  const net::Tree tree = net::makeCaterpillar(6, 3);
  workload::Workload load(3, tree.nodeCount());
  load.addWrites(0, tree.processors()[0], 50);   // single heavy writer
  for (const net::NodeId p : tree.processors()) {
    load.addReads(1, p, 7);                      // read-everywhere
  }
  // object 2 untouched
  core::NibbleScratch scratch;
  core::NibbleObjectResult viaScratch;
  for (workload::ObjectId x = 0; x < 3; ++x) {
    core::nibbleObjectInto(tree, load, x, scratch, viaScratch);
    const core::NibbleObjectResult fresh = core::nibbleObject(tree, load, x);
    EXPECT_EQ(viaScratch.gravityCenter, fresh.gravityCenter) << "object " << x;
    EXPECT_EQ(viaScratch.placement.locations(), fresh.placement.locations())
        << "object " << x;
  }
}

TEST(ParallelExecutor, ExtendedNibbleThreadOptionStillIdentical) {
  // Direct core-level check (the executor semantics extendedNibble
  // inherits): hardware-concurrency threads vs 1.
  const net::Tree tree = net::makeKaryTree(3, 3);
  util::Rng rng(79);
  workload::GenParams params;
  params.numObjects = 48;
  params.requestsPerProcessor = 10;
  const workload::Workload load =
      workload::generateUniform(tree, params, rng);
  core::ExtendedNibbleOptions sequential;
  sequential.threads = 1;
  core::ExtendedNibbleOptions pooled;
  pooled.threads = 0;  // hardware concurrency
  expectIdentical(
      core::extendedNibble(tree, load, sequential).final,
      core::extendedNibble(tree, load, pooled).final);
}

}  // namespace
}  // namespace hbn::engine
