// Negative-path and fuzz tests for the shard framed transport
// (hbn/shard/transport.h): every malformed byte sequence a peer can
// ship must surface as a serve::Error with the right stage attribution
// (Frame for malformed bytes, Peer for death/unresponsiveness) — never
// a crash, a hang, or a silently corrupt payload.
#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "hbn/serve/error.h"
#include "hbn/shard/transport.h"
#include "hbn/shard/wire.h"

namespace hbn::shard {
namespace {

/// Channel pair with the receiving end framed and the sending end raw,
/// so tests can write arbitrary (malformed) bytes.
struct RawToFramed {
  std::unique_ptr<ByteChannel> raw;
  FramedTransport framed;

  RawToFramed()
      : RawToFramed(makeLoopbackPair()) {}

 private:
  explicit RawToFramed(
      std::pair<std::unique_ptr<ByteChannel>, std::unique_ptr<ByteChannel>>
          pair)
      : raw(std::move(pair.first)), framed(std::move(pair.second)) {}
};

TEST(ShardTransport, RoundtripsFrames) {
  auto [a, b] = makeLoopbackPair();
  FramedTransport sender(std::move(a));
  FramedTransport receiver(std::move(b));

  sender.send(FrameType::kHello, "payload bytes");
  sender.send(FrameType::kEpoch, {});  // empty payload is a valid frame
  const std::string big(1 << 20, 'x');
  sender.send(FrameType::kStats, big);

  Frame frame = receiver.recv();
  EXPECT_EQ(frame.type, FrameType::kHello);
  EXPECT_EQ(frame.payload, "payload bytes");
  frame = receiver.recv();
  EXPECT_EQ(frame.type, FrameType::kEpoch);
  EXPECT_TRUE(frame.payload.empty());
  frame = receiver.recv();
  EXPECT_EQ(frame.type, FrameType::kStats);
  EXPECT_EQ(frame.payload, big);

  EXPECT_EQ(sender.bytesSent(), receiver.bytesReceived());
  EXPECT_GT(sender.bytesSent(), big.size());
}

TEST(ShardTransport, SocketChannelRoundtripsAcrossThreads) {
  auto [fdA, fdB] = makeSocketPair();
  FramedTransport a(makeSocketChannel(fdA));
  FramedTransport b(makeSocketChannel(fdB));
  // Larger than any socket buffer, so writeAll must loop and the
  // reader must drain concurrently.
  const std::string big(8 << 20, 'y');
  std::thread writer([&] { a.send(FrameType::kMigrate, big); });
  const Frame frame = b.recv();
  writer.join();
  EXPECT_EQ(frame.type, FrameType::kMigrate);
  EXPECT_EQ(frame.payload, big);
}

TEST(ShardTransport, CleanCloseAtFrameStartIsPeerError) {
  RawToFramed link;
  link.raw->close();
  try {
    (void)link.framed.recv();
    FAIL() << "expected serve::Error";
  } catch (const serve::Error& e) {
    EXPECT_EQ(e.stage(), serve::Stage::Peer);
    EXPECT_EQ(e.exitCode(), 17);
  }
}

TEST(ShardTransport, TruncatedFrameIsFrameError) {
  RawToFramed link;
  const std::string frame =
      FramedTransport::encodeFrame(FrameType::kStats, "abcdefgh");
  // Ship the header plus half the payload, then die.
  link.raw->writeAll(frame.data(), kFrameHeaderBytes + 4);
  link.raw->close();
  try {
    (void)link.framed.recv();
    FAIL() << "expected serve::Error";
  } catch (const serve::Error& e) {
    EXPECT_EQ(e.stage(), serve::Stage::Frame);
    EXPECT_EQ(e.exitCode(), 16);
    EXPECT_NE(e.cause().find("truncated"), std::string::npos);
  }
}

TEST(ShardTransport, BadMagicIsFrameError) {
  RawToFramed link;
  std::string frame =
      FramedTransport::encodeFrame(FrameType::kHello, "hi");
  frame[0] = 'Z';
  link.raw->writeAll(frame.data(), frame.size());
  try {
    (void)link.framed.recv();
    FAIL() << "expected serve::Error";
  } catch (const serve::Error& e) {
    EXPECT_EQ(e.stage(), serve::Stage::Frame);
    EXPECT_NE(e.cause().find("magic"), std::string::npos);
  }
}

TEST(ShardTransport, OversizedLengthPrefixIsFrameError) {
  RawToFramed link;
  std::string frame =
      FramedTransport::encodeFrame(FrameType::kHello, "hi");
  // Stamp a payload length just past the hard bound into the header
  // (little-endian u64 at offset 8).
  const std::uint64_t oversized = kMaxFramePayload + 1;
  std::memcpy(frame.data() + 8, &oversized, sizeof(oversized));
  link.raw->writeAll(frame.data(), frame.size());
  try {
    (void)link.framed.recv();
    FAIL() << "expected serve::Error";
  } catch (const serve::Error& e) {
    EXPECT_EQ(e.stage(), serve::Stage::Frame);
    EXPECT_NE(e.cause().find("oversized"), std::string::npos);
  }
}

TEST(ShardTransport, ChecksumMismatchIsFrameError) {
  RawToFramed link;
  std::string frame =
      FramedTransport::encodeFrame(FrameType::kDecide, "payload");
  frame[kFrameHeaderBytes + 2] ^= 0x40;  // flip one payload bit
  link.raw->writeAll(frame.data(), frame.size());
  try {
    (void)link.framed.recv();
    FAIL() << "expected serve::Error";
  } catch (const serve::Error& e) {
    EXPECT_EQ(e.stage(), serve::Stage::Frame);
    EXPECT_NE(e.cause().find("checksum"), std::string::npos);
  }
}

TEST(ShardTransport, RecvTimeoutIsPeerError) {
  RawToFramed link;  // nothing ever written
  try {
    (void)link.framed.recv(/*timeoutMs=*/50.0);
    FAIL() << "expected serve::Error";
  } catch (const serve::Error& e) {
    EXPECT_EQ(e.stage(), serve::Stage::Peer);
    EXPECT_NE(e.cause().find("unresponsive"), std::string::npos);
  }
}

TEST(ShardTransport, WriteAfterPeerClosedThrows) {
  auto [a, b] = makeLoopbackPair();
  FramedTransport sender(std::move(a));
  b->close();
  EXPECT_THROW(sender.send(FrameType::kHello, "x"), serve::Error);
}

// Fuzz: single-byte corruptions of a valid two-frame byte stream must
// either decode (corruption hit a spot the receiver cannot distinguish,
// e.g. producing another internally-consistent frame — the checksum
// makes that impossible for payload bytes) or fail with a serve::Error.
// Never any other exception, never a hang (the recv timeout bounds the
// wait), never a wrong-payload success.
TEST(ShardTransport, FuzzedCorruptionNeverCrashes) {
  const std::string one =
      FramedTransport::encodeFrame(FrameType::kStats, "first payload");
  const std::string two =
      FramedTransport::encodeFrame(FrameType::kEpoch, "second-payload!");
  const std::string clean = one + two;
  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 400; ++trial) {
    std::string bytes = clean;
    const std::size_t at = rng() % bytes.size();
    const char flip = static_cast<char>(1 + rng() % 255);
    bytes[at] = static_cast<char>(bytes[at] ^ flip);

    RawToFramed link;
    link.raw->writeAll(bytes.data(), bytes.size());
    link.raw->close();
    int delivered = 0;
    try {
      for (;;) {
        const Frame frame = link.framed.recv(/*timeoutMs=*/2000.0);
        // Whatever got through intact must be one of the two originals.
        EXPECT_TRUE(frame.payload == "first payload" ||
                    frame.payload == "second-payload!")
            << "corrupt payload delivered at offset " << at;
        ++delivered;
      }
    } catch (const serve::Error&) {
      // Expected for most corruptions (including the end-of-stream
      // Peer error once both frames drained).
    }
    EXPECT_LE(delivered, 2);
  }
}

}  // namespace
}  // namespace hbn::shard
