// Tests for the synchronous message-passing engine.
#include <gtest/gtest.h>

#include "hbn/dist/sync_network.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"

namespace hbn::dist {
namespace {

using net::Tree;

TEST(SyncEngine, ConvergecastSumsLeaves) {
  const Tree t = net::makeKaryTree(3, 2);
  const net::RootedTree rooted(t, t.defaultRoot());
  SyncEngine engine(rooted);
  Payload result{};
  ConvergecastWave wave;
  wave.localValue = [&](net::NodeId v) {
    return Payload{t.isProcessor(v) ? 1 : 0, v, 0, 0};
  };
  wave.combine = [](const Payload& a, const Payload& b) {
    return Payload{a[0] + b[0], 0, 0, 0};
  };
  wave.onResult = [&](const Payload& p) { result = p; };
  engine.add(std::move(wave));
  const SyncStats stats = engine.run();
  EXPECT_EQ(result[0], t.processorCount());
  // Rounds equal the height of the rooted tree.
  EXPECT_EQ(stats.rounds, rooted.height());
  // One message per node except the root.
  EXPECT_EQ(stats.messages, t.nodeCount() - 1);
}

TEST(SyncEngine, BroadcastReachesEveryone) {
  const Tree t = net::makeKaryTree(2, 3);
  const net::RootedTree rooted(t, t.defaultRoot());
  SyncEngine engine(rooted);
  std::vector<int> arrived(static_cast<std::size_t>(t.nodeCount()), 0);
  BroadcastWave wave;
  wave.rootValue = Payload{42, 0, 0, 0};
  wave.childValue = [](net::NodeId, net::NodeId, const Payload& p) {
    return p;
  };
  wave.onArrive = [&](net::NodeId v, const Payload& p) {
    arrived[static_cast<std::size_t>(v)] = static_cast<int>(p[0]);
  };
  engine.add(std::move(wave));
  const SyncStats stats = engine.run();
  for (const int a : arrived) EXPECT_EQ(a, 42);
  EXPECT_EQ(stats.rounds, rooted.height());
  EXPECT_EQ(stats.messages, t.nodeCount() - 1);
}

TEST(SyncEngine, PipelinedWavesShareRounds) {
  // k convergecasts offset by one round each should finish in
  // height + k - 1 rounds, not k * height.
  const Tree t = net::makeKaryTree(2, 4);
  const net::RootedTree rooted(t, t.defaultRoot());
  SyncEngine engine(rooted);
  constexpr int kWaves = 10;
  int completed = 0;
  for (int w = 0; w < kWaves; ++w) {
    ConvergecastWave wave;
    wave.startRound = w;
    wave.localValue = [](net::NodeId) { return Payload{1, 0, 0, 0}; };
    wave.combine = [](const Payload& a, const Payload& b) {
      return Payload{a[0] + b[0], 0, 0, 0};
    };
    wave.onResult = [&](const Payload&) { ++completed; };
    engine.add(std::move(wave));
  }
  const SyncStats stats = engine.run();
  EXPECT_EQ(completed, kWaves);
  EXPECT_EQ(stats.rounds, rooted.height() + kWaves - 1);
  // Perfect pipelining: no channel ever queues more than one message.
  EXPECT_EQ(stats.maxQueueDepth, 1);
}

TEST(SyncEngine, CollidingWavesQueueButStayCorrect) {
  // Two convergecasts with the SAME start round contend for channels:
  // results stay correct; rounds stretch; queue depth reaches 2.
  const Tree t = net::makeKaryTree(2, 3);
  const net::RootedTree rooted(t, t.defaultRoot());
  SyncEngine engine(rooted);
  std::int64_t sums[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    ConvergecastWave wave;
    wave.startRound = 0;
    wave.localValue = [w](net::NodeId) { return Payload{w + 1, 0, 0, 0}; };
    wave.combine = [](const Payload& a, const Payload& b) {
      return Payload{a[0] + b[0], 0, 0, 0};
    };
    wave.onResult = [&sums, w](const Payload& p) { sums[w] = p[0]; };
    engine.add(std::move(wave));
  }
  const SyncStats stats = engine.run();
  EXPECT_EQ(sums[0], t.nodeCount());
  EXPECT_EQ(sums[1], 2 * t.nodeCount());
  EXPECT_GE(stats.maxQueueDepth, 2);
}

TEST(SyncEngine, LanesEliminateContention) {
  const Tree t = net::makeKaryTree(2, 3);
  const net::RootedTree rooted(t, t.defaultRoot());
  SyncEngine engine(rooted);
  for (int w = 0; w < 2; ++w) {
    ConvergecastWave wave;
    wave.startRound = 0;
    wave.lane = w;
    wave.localValue = [](net::NodeId) { return Payload{1, 0, 0, 0}; };
    wave.combine = [](const Payload& a, const Payload& b) {
      return Payload{a[0] + b[0], 0, 0, 0};
    };
    engine.add(std::move(wave));
  }
  const SyncStats stats = engine.run();
  EXPECT_EQ(stats.maxQueueDepth, 1);
  EXPECT_EQ(stats.rounds, rooted.height());
}

TEST(SyncEngine, SingleNodeTreeIsInstant) {
  net::TreeBuilder b;
  b.addProcessor();
  const Tree t = b.build();
  const net::RootedTree rooted(t, 0);
  SyncEngine engine(rooted);
  Payload result{};
  ConvergecastWave wave;
  wave.localValue = [](net::NodeId) { return Payload{7, 0, 0, 0}; };
  wave.combine = [](const Payload& a, const Payload&) { return a; };
  wave.onResult = [&](const Payload& p) { result = p; };
  engine.add(std::move(wave));
  const SyncStats stats = engine.run();
  EXPECT_EQ(result[0], 7);
  EXPECT_EQ(stats.messages, 0);
}

TEST(SyncEngine, MissingCallbacksRejected) {
  const Tree t = net::makeStar(3);
  const net::RootedTree rooted(t, t.defaultRoot());
  SyncEngine engine(rooted);
  EXPECT_THROW(engine.add(ConvergecastWave{}), std::invalid_argument);
  EXPECT_THROW(engine.add(BroadcastWave{}), std::invalid_argument);
}

}  // namespace
}  // namespace hbn::dist
