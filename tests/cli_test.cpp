// Tests for the shared CLI parser: strict numeric flag parsing (no
// partial parses, uniform out-of-range errors), strategy spec splitting,
// and unknown-flag rejection.
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/engine/cli.h"

namespace hbn::engine {
namespace {

CliOptions parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  static std::string program = "test";
  argv.push_back(program.data());
  for (std::string& arg : args) argv.push_back(arg.data());
  return parseCli(static_cast<int>(argv.size()), argv.data());
}

std::string parseError(std::vector<std::string> args) {
  try {
    (void)parse(std::move(args));
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(Cli, ParsesValidFlags) {
  const CliOptions options =
      parse({"--seed", "42", "--threads", "8", "input.tree"});
  EXPECT_EQ(options.seed, 42u);
  EXPECT_TRUE(options.seedSet);
  EXPECT_EQ(options.threads, 8);
  ASSERT_EQ(options.positional.size(), 1u);
  EXPECT_EQ(options.positional.front(), "input.tree");
}

TEST(Cli, RejectsTrailingGarbageOnBothNumericFlags) {
  // '12x' must not partial-parse as 12.
  EXPECT_NE(parseError({"--seed", "12x"}).find("--seed"),
            std::string::npos);
  EXPECT_NE(parseError({"--seed", "12x"}).find("12x"), std::string::npos);
  EXPECT_NE(parseError({"--threads", "8x"}).find("--threads"),
            std::string::npos);
  EXPECT_THROW((void)parse({"--seed", "0x10"}), std::invalid_argument);
  EXPECT_THROW((void)parse({"--threads", "1e3"}), std::invalid_argument);
}

TEST(Cli, RejectsSignsAndWhitespace) {
  for (const char* flag : {"--seed", "--threads"}) {
    EXPECT_THROW((void)parse({flag, "+5"}), std::invalid_argument) << flag;
    EXPECT_THROW((void)parse({flag, "-5"}), std::invalid_argument) << flag;
    EXPECT_THROW((void)parse({flag, " 12"}), std::invalid_argument) << flag;
    EXPECT_THROW((void)parse({flag, "12 "}), std::invalid_argument) << flag;
    EXPECT_THROW((void)parse({flag, ""}), std::invalid_argument) << flag;
  }
}

TEST(Cli, RejectsOutOfRangeValuesUniformly) {
  // Above the thread cap: names the limit and the offending text.
  const std::string threadsError = parseError({"--threads", "999999999999"});
  EXPECT_NE(threadsError.find("at most 4096"), std::string::npos);
  EXPECT_NE(threadsError.find("999999999999"), std::string::npos);
  // Above uint64: overflow detected during accumulation, not wrapped.
  const std::string seedError =
      parseError({"--seed", "18446744073709551616"});
  EXPECT_NE(seedError.find("out of range"), std::string::npos);
  // The extremes that do fit are accepted exactly.
  EXPECT_EQ(parse({"--seed", "18446744073709551615"}).seed,
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(parse({"--threads", "4096"}).threads, 4096);
  EXPECT_EQ(parse({"--threads", "0"}).threads, 0);
}

TEST(Cli, ParseUintFlagEnforcesCallerBound) {
  EXPECT_EQ(parseUintFlag("--epoch", "65536"), 65536u);
  EXPECT_EQ(parseUintFlag("--n", "7", 7), 7u);
  EXPECT_THROW((void)parseUintFlag("--n", "8", 7), std::invalid_argument);
  EXPECT_THROW((void)parseUintFlag("--n", "abc"), std::invalid_argument);
}

TEST(Cli, RejectsUnknownFlagsAndMissingValues) {
  EXPECT_THROW((void)parse({"--sede", "1"}), std::invalid_argument);
  EXPECT_THROW((void)parse({"-x"}), std::invalid_argument);
  EXPECT_THROW((void)parse({"--seed"}), std::invalid_argument);
}

TEST(Cli, SplitsStrategySpecsWithOptionCommas) {
  const CliOptions options =
      parse({"--strategy", "a:x=1,y=2,b", "--strategy", "c"});
  ASSERT_EQ(options.strategies.size(), 3u);
  EXPECT_EQ(options.strategies[0], "a:x=1,y=2");
  EXPECT_EQ(options.strategies[1], "b");
  EXPECT_EQ(options.strategies[2], "c");
}

}  // namespace
}  // namespace hbn::engine
