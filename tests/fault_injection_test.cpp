// Deterministic fault injection and graceful degradation.
//
// Covers the spec grammar (positives and loud negatives), the injector's
// trigger-budget semantics, and the three pipeline seams end to end:
// an injected ingest stall degrades exactly the armed epoch to inline
// assembly without changing a single bit of the result; a failing §4
// handoff publication is retried within budget (digest-neutral) and
// surfaces as serve::Error{Handoff} when the budget is exhausted; a
// shard throw propagates as serve::Error{Serve} and — the teardown
// regression — leaves the server and its ingest thread destructible
// and the process healthy.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/net/generators.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/error.h"
#include "hbn/serve/request_stream.h"
#include "hbn/util/fault.h"
#include "hbn/workload/generators.h"

namespace hbn::serve {
namespace {

using util::FaultInjector;
using util::FaultKind;
using util::FaultSpec;
using util::parseFaultSpec;
using workload::ObjectId;

constexpr int kObjects = 64;
constexpr std::size_t kEpochSize = 1 << 10;
constexpr std::uint64_t kRequests = 20'000;

// -------------------------------------------------------------------------
// Spec grammar.
// -------------------------------------------------------------------------

TEST(FaultSpecTest, ParsesEveryKindAndOption) {
  {
    const FaultSpec s = parseFaultSpec("ingest-stall@epoch3");
    EXPECT_EQ(s.kind, FaultKind::IngestStall);
    EXPECT_EQ(s.epoch, 3u);
    EXPECT_DOUBLE_EQ(s.stallMs, 50.0);
    EXPECT_EQ(s.times, 1);
  }
  {
    const FaultSpec s = parseFaultSpec("ingest-stall@epoch7:ms=12.5:times=4");
    EXPECT_EQ(s.epoch, 7u);
    EXPECT_DOUBLE_EQ(s.stallMs, 12.5);
    EXPECT_EQ(s.times, 4);
  }
  {
    const FaultSpec s = parseFaultSpec("shard-throw@epoch5:shard2");
    EXPECT_EQ(s.kind, FaultKind::ShardThrow);
    EXPECT_EQ(s.epoch, 5u);
    EXPECT_EQ(s.shard, 2);
  }
  {
    const FaultSpec s = parseFaultSpec("handoff-fail@epoch4:times=2");
    EXPECT_EQ(s.kind, FaultKind::HandoffFail);
    EXPECT_EQ(s.epoch, 4u);
    EXPECT_EQ(s.times, 2);
  }
}

TEST(FaultSpecTest, RejectsGrammarViolations) {
  for (const char* bad : {
           "",                             // empty
           "explode@epoch1",               // unknown kind
           "shard-throw",                  // missing @epoch
           "shard-throw@epoch",            // missing epoch number
           "shard-throw@3",                // missing 'epoch' keyword
           "shard-throw@epoch2:bogus",     // unknown option
           "shard-throw@epoch2:ms=5",      // ms only for ingest-stall
           "ingest-stall@epoch2:shard1",   // shard only for shard-throw
           "handoff-fail@epoch2:times=0",  // times must be >= 1
       }) {
    EXPECT_THROW((void)parseFaultSpec(bad), std::invalid_argument) << bad;
  }
}

TEST(FaultInjectorTest, TriggerBudgetCountsDown) {
  FaultInjector injector;
  injector.addSpecs("shard-throw@epoch5:shard1:times=2,handoff-fail@epoch3");
  EXPECT_FALSE(injector.empty());
  // Wrong epoch / wrong shard: no fire.
  EXPECT_FALSE(injector.fire(FaultKind::ShardThrow, 4, 1));
  EXPECT_FALSE(injector.fire(FaultKind::ShardThrow, 5, 0));
  // Two triggers, then disarmed.
  EXPECT_TRUE(injector.fire(FaultKind::ShardThrow, 5, 1));
  EXPECT_TRUE(injector.fire(FaultKind::ShardThrow, 5, 1));
  EXPECT_FALSE(injector.fire(FaultKind::ShardThrow, 5, 1));
  EXPECT_TRUE(injector.fire(FaultKind::HandoffFail, 3, -1));
  EXPECT_EQ(injector.triggered(), 3u);

  FaultInjector stalls;
  stalls.addSpecs("ingest-stall@epoch2:ms=7.5");
  EXPECT_DOUBLE_EQ(stalls.stallMs(1), 0.0);
  EXPECT_DOUBLE_EQ(stalls.stallMs(2), 7.5);
  EXPECT_DOUBLE_EQ(stalls.stallMs(2), 0.0);  // budget spent

  EXPECT_EQ(util::makeFaultInjector(""), nullptr);
  EXPECT_NE(util::makeFaultInjector("handoff-fail@epoch1"), nullptr);
}

// -------------------------------------------------------------------------
// End-to-end seams.
// -------------------------------------------------------------------------

std::vector<workload::RequestEvent> makeEvents(const net::Tree& tree,
                                               std::uint64_t seed) {
  workload::StreamParams params;
  params.numObjects = kObjects;
  params.readFraction = 0.9;
  const auto stream =
      makeGeneratedStream("skewed", tree, params, seed, kRequests);
  std::vector<workload::RequestEvent> events(kRequests);
  EXPECT_EQ(stream->fill(events), kRequests);
  return events;
}

ServeOptions makeOptions(int threads, bool pipeline) {
  ServeOptions options;
  options.epochSize = kEpochSize;
  options.threads = threads;
  options.pipeline = pipeline;
  options.replaceDrift = 1.2;
  options.policy = "tree-counters";
  return options;
}

std::string digest(const EpochServer& server, const ServeReport& report) {
  std::ostringstream oss;
  oss.precision(17);
  oss << report.congestion << '|' << report.replacements << '|'
      << report.replications << '|' << report.invalidations;
  for (const core::Count load : server.loads().edgeLoads()) {
    oss << ',' << load;
  }
  for (ObjectId x = 0; x < kObjects; ++x) {
    oss << ';';
    for (const net::NodeId v : server.copySet(x)) oss << v << ' ';
  }
  return oss.str();
}

struct RunResult {
  std::string digest;
  ServeReport report;
  std::vector<EpochRecord> log;
};

RunResult run(const net::RootedTree& rooted,
              const std::vector<workload::RequestEvent>& events,
              const ServeOptions& options) {
  EpochServer server(rooted, kObjects, options);
  VectorStream stream({events.begin(), events.end()});
  RunResult result;
  result.report = server.serve(stream);
  result.digest = digest(server, result.report);
  result.log = server.epochLog();
  return result;
}

TEST(FaultInjectionTest, IngestStallDegradesEpochBitIdentically) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto events = makeEvents(tree, 61);
  const RunResult reference = run(rooted, events, makeOptions(3, true));

  ServeOptions options = makeOptions(3, true);
  // Stall far beyond the watchdog: epoch 2 must be assembled inline.
  options.faults = util::makeFaultInjector("ingest-stall@epoch2:ms=5000");
  options.stallTimeoutMs = 25.0;
  const RunResult degraded = run(rooted, events, options);
  EXPECT_EQ(options.faults->triggered(), 1u);
  EXPECT_GE(degraded.report.degradedEpochs, 1u);
  ASSERT_GT(degraded.log.size(), 2u);
  EXPECT_TRUE(degraded.log[2].degraded);
  EXPECT_EQ(degraded.digest, reference.digest);
}

TEST(FaultInjectionTest, HandoffFailureRetriesWithinBudget) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto events = makeEvents(tree, 67);
  const RunResult reference = run(rooted, events, makeOptions(3, true));
  // The injection must land on a real §4 pass: find the first epoch the
  // reference run re-placed at.
  std::uint64_t driftEpoch = 0;
  bool found = false;
  for (const EpochRecord& record : reference.log) {
    if (record.replaced) {
      driftEpoch = record.index;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "reference run never triggered a handoff pass";

  ServeOptions options = makeOptions(3, true);
  options.faults = util::makeFaultInjector(
      "handoff-fail@epoch" + std::to_string(driftEpoch) + ":times=2");
  options.handoffRetries = 3;
  options.handoffBackoffMs = 0.0;
  const RunResult retried = run(rooted, events, options);
  EXPECT_EQ(retried.report.handoffRetries, 2u);
  EXPECT_EQ(options.faults->triggered(), 2u);
  EXPECT_EQ(retried.digest, reference.digest);

  // Exhausting the budget surfaces as serve::Error{Handoff} with the
  // dedicated exit code.
  ServeOptions doomed = makeOptions(3, true);
  doomed.faults = util::makeFaultInjector(
      "handoff-fail@epoch" + std::to_string(driftEpoch) + ":times=10");
  doomed.handoffRetries = 2;
  doomed.handoffBackoffMs = 0.0;
  EpochServer server(rooted, kObjects, doomed);
  VectorStream stream({events.begin(), events.end()});
  try {
    (void)server.serve(stream);
    FAIL() << "exhausted handoff retries did not surface";
  } catch (const Error& e) {
    EXPECT_EQ(e.stage(), Stage::Handoff);
    EXPECT_EQ(e.epoch(), driftEpoch);
    EXPECT_EQ(e.exitCode(), 12);
  }
}

// The teardown regression (satellite of the robustness issue): a worker
// throw mid-epoch must propagate as serve::Error{Serve} and leave the
// server — including its double-buffered ingest thread — cleanly
// destructible, in both engines and with multiple workers.
TEST(FaultInjectionTest, ShardThrowPropagatesAndTearsDownCleanly) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto events = makeEvents(tree, 71);
  for (const bool pipeline : {false, true}) {
    for (const int threads : {1, 3}) {
      SCOPED_TRACE(std::string(pipeline ? "pipelined" : "barrier") +
                   " threads=" + std::to_string(threads));
      ServeOptions options = makeOptions(threads, pipeline);
      options.faults = util::makeFaultInjector("shard-throw@epoch1");
      {
        EpochServer server(rooted, kObjects, options);
        VectorStream stream({events.begin(), events.end()});
        try {
          (void)server.serve(stream);
          FAIL() << "injected shard throw did not surface";
        } catch (const Error& e) {
          EXPECT_EQ(e.stage(), Stage::Serve);
          EXPECT_EQ(e.epoch(), 1u);
          EXPECT_EQ(e.exitCode(), 11);
        }
      }  // server + ingest thread destruct here; a hang fails the test
    }
  }
  // The process is healthy afterwards: a clean run still works.
  const RunResult after = run(rooted, events, makeOptions(3, true));
  EXPECT_EQ(after.report.totalRequests, kRequests);
}

// A stream failure (out-of-range object) is attributed to the ingest
// stage in both engines, not swallowed or left as a bare exception.
TEST(FaultInjectionTest, StreamFailureSurfacesAsIngestError) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  std::vector<workload::RequestEvent> events(kEpochSize * 2,
                                             workload::RequestEvent{0, 0, false});
  events[kEpochSize + 5].object = kObjects + 40;  // poison epoch 1
  for (const bool pipeline : {false, true}) {
    SCOPED_TRACE(pipeline ? "pipelined" : "barrier");
    EpochServer server(rooted, kObjects, makeOptions(2, pipeline));
    VectorStream stream({events.begin(), events.end()});
    try {
      (void)server.serve(stream);
      FAIL() << "poisoned stream did not surface";
    } catch (const Error& e) {
      EXPECT_EQ(e.stage(), Stage::Ingest);
      EXPECT_EQ(e.epoch(), 1u);
      EXPECT_EQ(e.exitCode(), 10);
      EXPECT_NE(e.cause().find("out of range"), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace hbn::serve
