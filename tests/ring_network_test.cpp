// Tests for the SCI ring-network model and the ring→bus transform.
#include <gtest/gtest.h>

#include "hbn/sci/ring_network.h"
#include "hbn/sci/transactions.h"
#include "hbn/util/rng.h"

namespace hbn::sci {
namespace {

TEST(RingBuilder, SimpleHierarchy) {
  RingNetworkBuilder b;
  const RingId root = b.addRing(kInvalidRing, 8.0, 1.0);
  const RingId child = b.addRing(root, 4.0, 2.0);
  b.addProcessor(root);
  b.addProcessor(child);
  b.addProcessor(child);
  const RingNetwork net = b.build();
  EXPECT_EQ(net.ringCount(), 2);
  EXPECT_EQ(net.processorCount(), 3);
  EXPECT_EQ(net.ringOf(0), root);
  EXPECT_EQ(net.ringOf(1), child);
  EXPECT_EQ(net.ringDepth(child), 1);
  EXPECT_DOUBLE_EQ(net.ring(child).uplinkBandwidth, 2.0);
}

TEST(RingBuilder, RejectsInvalidInput) {
  RingNetworkBuilder b;
  EXPECT_THROW((void)b.addRing(0), std::invalid_argument);  // no root yet
  (void)b.addRing(kInvalidRing);
  EXPECT_THROW((void)b.addRing(5), std::invalid_argument);
  EXPECT_THROW((void)b.addProcessor(7), std::invalid_argument);
  EXPECT_THROW((void)b.addRing(0, 0.5), std::invalid_argument);
  // Ring 0 has no station yet:
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(RingBuilder, EmptyNetworkRejected) {
  RingNetworkBuilder b;
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(BalancedHierarchy, Shape) {
  const RingNetwork net = makeBalancedRingHierarchy(2, 3, 4);
  // depth 3: 1 + 2 + 4 rings = 7 rings.
  EXPECT_EQ(net.ringCount(), 7);
  // inner rings carry 1 processor each (3 of them), leaf rings 4 each.
  EXPECT_EQ(net.processorCount(), 3 * 1 + 4 * 4);
}

TEST(RandomHierarchy, ValidAndDeterministic) {
  util::Rng rng1(4);
  util::Rng rng2(4);
  const RingNetwork a = makeRandomRingHierarchy(6, 20, rng1);
  const RingNetwork b = makeRandomRingHierarchy(6, 20, rng2);
  EXPECT_EQ(a.ringCount(), 6);
  EXPECT_GE(a.processorCount(), 20);
  for (ProcId p = 0; p < a.processorCount(); ++p) {
    EXPECT_EQ(a.ringOf(p), b.ringOf(p));
  }
}

TEST(ToBusNetwork, StructureMatches) {
  const RingNetwork net = makeBalancedRingHierarchy(3, 2, 2);
  const BusView view = toBusNetwork(net);
  EXPECT_EQ(view.tree.busCount(), net.ringCount());
  EXPECT_EQ(view.tree.processorCount(), net.processorCount());
  // Bandwidths carried over.
  for (RingId r = 0; r < net.ringCount(); ++r) {
    EXPECT_DOUBLE_EQ(
        view.tree.busBandwidth(view.ringBus[static_cast<std::size_t>(r)]),
        net.ring(r).bandwidth);
    if (r != net.rootRing()) {
      EXPECT_DOUBLE_EQ(view.tree.edgeBandwidth(
                           view.uplinkEdge[static_cast<std::size_t>(r)]),
                       net.ring(r).uplinkBandwidth);
    }
  }
  // Every processor adapter is a unit-bandwidth leaf edge.
  EXPECT_TRUE(view.tree.usesUnitLeafEdges());
}

TEST(Transactions, SameRingTransaction) {
  const RingNetwork net = makeBalancedRingHierarchy(2, 1, 3);
  TransactionAccounting acc(net);
  // Processors 0.. on the root ring (depth 1 => root ring only).
  acc.addTransactions(0, 1, 5);
  EXPECT_EQ(acc.ringOccupancy(net.rootRing()), 5);
  EXPECT_EQ(acc.adapterLoad(0), 5);
  EXPECT_EQ(acc.adapterLoad(1), 5);
}

TEST(Transactions, CrossRingOccupiesPathOnce) {
  RingNetworkBuilder b;
  const RingId root = b.addRing(kInvalidRing);
  const RingId left = b.addRing(root);
  const RingId right = b.addRing(root);
  b.addProcessor(root);
  const ProcId u = b.addProcessor(left);
  const ProcId v = b.addProcessor(right);
  const RingNetwork net = b.build();
  TransactionAccounting acc(net);
  acc.addTransactions(u, v, 3);
  EXPECT_EQ(acc.ringOccupancy(left), 3);
  EXPECT_EQ(acc.ringOccupancy(root), 3);
  EXPECT_EQ(acc.ringOccupancy(right), 3);
  EXPECT_EQ(acc.switchCrossings(left), 3);
  EXPECT_EQ(acc.switchCrossings(right), 3);
  EXPECT_EQ(acc.adapterLoad(u), 3);
}

TEST(Transactions, LocalTransactionIsFree) {
  const RingNetwork net = makeBalancedRingHierarchy(2, 2, 2);
  TransactionAccounting acc(net);
  acc.addTransactions(1, 1, 99);
  EXPECT_DOUBLE_EQ(acc.congestion(), 0.0);
}

TEST(Transactions, RejectsBadInput) {
  const RingNetwork net = makeBalancedRingHierarchy(2, 2, 2);
  TransactionAccounting acc(net);
  EXPECT_THROW(acc.addTransactions(-1, 0, 1), std::out_of_range);
  EXPECT_THROW(acc.addTransactions(0, 999, 1), std::out_of_range);
  EXPECT_THROW(acc.addTransactions(0, 1, -2), std::invalid_argument);
}

}  // namespace
}  // namespace hbn::sci
