// Randomized equivalence suite for the difference-counting load engine:
// the accumulator's per-edge loads must be bit-identical to the legacy
// forEachPathEdge / steinerEdges charging over random trees, placements,
// and request batches — including the adaptive cutover boundary and
// empty/single-copy objects.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/core/flat_load.h"
#include "hbn/core/load.h"
#include "hbn/core/placement.h"
#include "hbn/dynamic/online_strategy.h"
#include "hbn/net/generators.h"
#include "hbn/net/steiner.h"
#include "hbn/util/rng.h"

namespace hbn::core {
namespace {

net::NodeId randomNode(const net::Tree& tree, util::Rng& rng) {
  return static_cast<net::NodeId>(
      rng.nextBelow(static_cast<std::uint64_t>(tree.nodeCount())));
}

void expectSameLoads(const LoadMap& expected, const LoadMap& actual,
                     const net::Tree& tree, const char* what) {
  for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
    ASSERT_EQ(expected.edgeLoad(e), actual.edgeLoad(e))
        << what << ": edge " << e;
  }
}

TEST(FlatTreeView, LcaMatchesBinaryLifting) {
  util::Rng rng(41);
  for (int trial = 0; trial < 6; ++trial) {
    const net::Tree tree = net::makeRandomTree(20 + trial * 7, 9, rng);
    const net::RootedTree rooted(tree, tree.defaultRoot());
    const FlatTreeView flat(rooted);
    for (int i = 0; i < 300; ++i) {
      const net::NodeId u = randomNode(tree, rng);
      const net::NodeId v = randomNode(tree, rng);
      ASSERT_EQ(flat.lca(u, v), rooted.lca(u, v))
          << "trial " << trial << " u=" << u << " v=" << v;
    }
    // The flattening is consistent with the rooted view.
    for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
      const std::int32_t pos = flat.posOf(v);
      ASSERT_EQ(flat.nodeAt(pos), v);
      ASSERT_EQ(flat.depthAt(pos), rooted.depth(v));
      ASSERT_EQ(flat.parentEdgeAt(pos), rooted.parentEdge(v));
      if (v != rooted.root()) {
        // Preorder: every parent position precedes its children.
        ASSERT_LT(flat.parentPos(pos), pos);
        ASSERT_EQ(flat.nodeAt(flat.parentPos(pos)), rooted.parent(v));
      } else {
        ASSERT_EQ(flat.parentPos(pos), -1);
      }
    }
  }
}

TEST(FlatLoadAccumulator, PathChargesMatchLegacyWalk) {
  util::Rng rng(43);
  for (int trial = 0; trial < 8; ++trial) {
    const net::Tree tree = net::makeRandomTree(24, 11, rng);
    const net::RootedTree rooted(tree, tree.defaultRoot());
    const FlatTreeView flat(rooted);
    FlatLoadAccumulator acc(flat);
    LoadMap legacy(tree.edgeCount());
    LoadMap batched(tree.edgeCount());
    for (int i = 0; i < 500; ++i) {
      const net::NodeId u = randomNode(tree, rng);
      const net::NodeId v = i % 17 == 0 ? u : randomNode(tree, rng);
      const auto amount =
          static_cast<Count>(1 + rng.nextBelow(5));
      rooted.forEachPathEdge(u, v, [&](net::EdgeId e) {
        legacy.addEdgeLoad(e, amount);
      });
      acc.chargePath(u, v, amount);
    }
    acc.flush(batched);
    expectSameLoads(legacy, batched, tree, "path batch");
    EXPECT_FALSE(acc.dirty());

    // The accumulator is reusable: a second, different batch through the
    // same instance still matches.
    LoadMap legacy2(tree.edgeCount());
    LoadMap batched2(tree.edgeCount());
    for (int i = 0; i < 100; ++i) {
      const net::NodeId u = randomNode(tree, rng);
      const net::NodeId v = randomNode(tree, rng);
      rooted.forEachPathEdge(u, v, [&](net::EdgeId e) {
        legacy2.addEdgeLoad(e, 1);
      });
      acc.chargePath(u, v, 1);
    }
    acc.flush(batched2);
    expectSameLoads(legacy2, batched2, tree, "path batch reuse");
  }
}

TEST(FlatLoadAccumulator, SteinerChargesMatchSteinerEdges) {
  util::Rng rng(47);
  for (int trial = 0; trial < 8; ++trial) {
    const net::Tree tree = net::makeRandomTree(22, 8, rng);
    const net::RootedTree rooted(tree, tree.defaultRoot());
    const FlatTreeView flat(rooted);
    FlatLoadAccumulator acc(flat);
    for (std::size_t terminalCount : {0u, 1u, 2u, 3u, 6u, 12u}) {
      std::vector<net::NodeId> terminals;
      for (std::size_t i = 0; i < terminalCount; ++i) {
        terminals.push_back(randomNode(tree, rng));
      }
      if (terminalCount >= 4) {
        terminals.push_back(terminals.front());  // duplicates collapse
      }
      LoadMap legacy(tree.edgeCount());
      LoadMap batched(tree.edgeCount());
      for (const net::EdgeId e : net::steinerEdges(rooted, terminals)) {
        legacy.addEdgeLoad(e, 3);
      }
      acc.chargeSteiner(terminals, 3, batched);
      expectSameLoads(legacy, batched, tree, "steiner");
    }
    // All-duplicate terminal lists (one distinct location) charge nothing.
    const net::NodeId only = randomNode(tree, rng);
    const std::vector<net::NodeId> sameNode(5, only);
    LoadMap batched(tree.edgeCount());
    acc.chargeSteiner(sameNode, 2, batched);
    EXPECT_EQ(batched.totalLoad(), 0);
  }
}

TEST(FlatLoadAccumulator, SteinerInterleavesWithPendingPathCharges) {
  // chargeSteiner is immediate while chargePath defers; interleaving the
  // two must not cross-contaminate their scratch.
  util::Rng rng(53);
  const net::Tree tree = net::makeClusterNetwork(3, 5);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const FlatTreeView flat(rooted);
  FlatLoadAccumulator acc(flat);
  LoadMap legacy(tree.edgeCount());
  LoadMap batched(tree.edgeCount());
  for (int i = 0; i < 200; ++i) {
    const net::NodeId u = randomNode(tree, rng);
    const net::NodeId v = randomNode(tree, rng);
    rooted.forEachPathEdge(
        u, v, [&](net::EdgeId e) { legacy.addEdgeLoad(e, 2); });
    acc.chargePath(u, v, 2);
    if (i % 3 == 0) {
      std::vector<net::NodeId> terminals;
      for (int t = 0; t < 4; ++t) terminals.push_back(randomNode(tree, rng));
      for (const net::EdgeId e : net::steinerEdges(rooted, terminals)) {
        legacy.addEdgeLoad(e, 1);
      }
      acc.chargeSteiner(terminals, 1, batched);
    }
  }
  acc.flush(batched);
  expectSameLoads(legacy, batched, tree, "interleaved");
}

Placement randomPlacement(const net::Tree& tree,
                          const workload::Workload& load, util::Rng& rng) {
  Placement placement;
  const auto procs = tree.processors();
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    const std::size_t copies = 1 + rng.nextBelow(3);
    std::vector<net::NodeId> locations;
    for (std::size_t i = 0; i < copies; ++i) {
      locations.push_back(procs[static_cast<std::size_t>(
          rng.nextBelow(static_cast<std::uint64_t>(procs.size())))]);
    }
    std::sort(locations.begin(), locations.end());
    locations.erase(std::unique(locations.begin(), locations.end()),
                    locations.end());
    placement.objects.push_back(
        makeNearestPlacement(tree, load, x, locations));
  }
  return placement;
}

TEST(FlatLoad, ComputeLoadMatchesLegacyOverRandomPlacements) {
  util::Rng rng(59);
  for (int trial = 0; trial < 6; ++trial) {
    const net::Tree tree = net::makeRandomTree(18 + trial * 5, 7, rng);
    const net::RootedTree rooted(tree, tree.defaultRoot());
    workload::Workload load(6, tree.nodeCount());
    for (const net::NodeId p : tree.processors()) {
      for (ObjectId x = 0; x < 6; ++x) {
        // A mix of dense and sparse objects straddles the cutover.
        const Count budget =
            x < 3 ? static_cast<Count>(rng.nextBelow(3))
                  : static_cast<Count>(rng.nextBelow(20));
        if (budget == 0) continue;
        const Count writes = static_cast<Count>(
            rng.nextBelow(static_cast<std::uint64_t>(budget) + 1));
        load.addReads(x, p, budget - writes);
        load.addWrites(x, p, writes);
      }
    }
    const Placement placement = randomPlacement(tree, load, rng);

    // Legacy object-by-object walk, with no adaptive dispatch.
    LoadMap legacy(tree.edgeCount());
    for (const ObjectPlacement& object : placement.objects) {
      accumulateObjectLoad(rooted, object, legacy);
    }
    // Flat engine, explicit.
    const FlatTreeView flat(rooted);
    const LoadMap batched = computeLoad(flat, placement);
    expectSameLoads(legacy, batched, tree, "computeLoad(flat)");
    // Public adaptive entry point (whichever route it picks).
    const LoadMap adaptive = computeLoad(rooted, placement);
    expectSameLoads(legacy, adaptive, tree, "computeLoad(adaptive)");
  }
}

TEST(FlatLoad, CutoverBoundaryObjectsAreIdentical) {
  // Objects with exactly cutover-1, cutover, and cutover+1 ledger shares
  // take different routes through accumulateObjectLoad(acc, ...); all
  // must charge identically.
  util::Rng rng(61);
  const net::Tree tree = net::makeClusterNetwork(3, 6);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const FlatTreeView flat(rooted);
  const auto procs = tree.processors();
  ASSERT_GE(procs.size(), kFlatLoadCutover + 2);
  for (const std::size_t shares :
       {kFlatLoadCutover - 1, kFlatLoadCutover, kFlatLoadCutover + 1}) {
    workload::Workload load(1, tree.nodeCount());
    for (std::size_t i = 0; i < shares; ++i) {
      load.addReads(0, procs[i], 2);
      if (i % 3 == 0) load.addWrites(0, procs[i], 1);
    }
    const net::NodeId locations[] = {procs[0], procs[procs.size() - 1]};
    Placement placement;
    placement.objects.push_back(
        makeNearestPlacement(tree, load, 0, locations));

    LoadMap legacy(tree.edgeCount());
    accumulateObjectLoad(rooted, placement.objects[0], legacy);
    LoadMap batched(tree.edgeCount());
    FlatLoadAccumulator acc(flat);
    accumulateObjectLoad(acc, placement.objects[0], batched);
    acc.flush(batched);
    expectSameLoads(legacy, batched, tree, "cutover boundary");
  }
}

TEST(FlatLoad, EmptyAndSingleCopyObjects) {
  const net::Tree tree = net::makeStar(5);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const FlatTreeView flat(rooted);
  FlatLoadAccumulator acc(flat);
  LoadMap loads(tree.edgeCount());

  // Object with no copies at all charges nothing.
  ObjectPlacement empty;
  accumulateObjectLoad(acc, empty, loads);
  acc.flush(loads);
  EXPECT_EQ(loads.totalLoad(), 0);

  // Single-copy object: writes behave like reads (empty Steiner tree).
  workload::Workload load(1, tree.nodeCount());
  for (const net::NodeId p : tree.processors()) load.addWrites(0, p, 4);
  const net::NodeId locations[] = {tree.processors()[1]};
  ObjectPlacement single =
      makeNearestPlacement(tree, load, 0, locations);
  LoadMap legacy(tree.edgeCount());
  accumulateObjectLoad(rooted, single, legacy);
  LoadMap batched(tree.edgeCount());
  accumulateObjectLoad(acc, single, batched);
  acc.flush(batched);
  expectSameLoads(legacy, batched, tree, "single copy");
}

TEST(FlatLoad, ServeShardRoutesAreBitIdentical) {
  // The serving strategy's two charging routes (legacy walk vs the
  // difference-counting accumulator) must produce identical loads,
  // replication counts, and copy sets — the property the 1-vs-N epoch
  // digests rest on. Shard sizes straddle the serve cutover.
  util::Rng rng(67);
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto procs = tree.processors();
  for (const std::size_t shardSize :
       {std::size_t{1}, kFlatLoadCutover - 1, kFlatLoadCutover,
        std::size_t{200}}) {
    std::vector<dynamic::Request> requests;
    for (std::size_t i = 0; i < shardSize; ++i) {
      requests.push_back(dynamic::Request{
          0,
          procs[static_cast<std::size_t>(
              rng.nextBelow(static_cast<std::uint64_t>(procs.size())))],
          rng.nextBool(0.3)});
    }
    dynamic::OnlineTreeStrategy legacy(rooted, 1, procs.front());
    dynamic::OnlineTreeStrategy batched(rooted, 1, procs.front());
    dynamic::ServeScratch scratch;
    core::LoadMap legacyLoads(tree.edgeCount());
    core::LoadMap batchedLoads(tree.edgeCount());
    core::FlatLoadAccumulator acc(batched.flatView());
    const auto legacyStats =
        legacy.serveShard(0, requests, legacyLoads, scratch, nullptr);
    const auto batchedStats =
        batched.serveShard(0, requests, batchedLoads, scratch, &acc);
    EXPECT_EQ(legacyStats.replications, batchedStats.replications)
        << "shard " << shardSize;
    EXPECT_EQ(legacyStats.invalidations, batchedStats.invalidations)
        << "shard " << shardSize;
    expectSameLoads(legacyLoads, batchedLoads, tree, "serve shard");
    EXPECT_EQ(legacy.copySet(0), batched.copySet(0))
        << "shard " << shardSize;
  }
}

}  // namespace
}  // namespace hbn::core
