// Tests for the deletion algorithm — Observation 3.2 and ledger
// conservation.
#include <gtest/gtest.h>

#include "hbn/core/deletion.h"
#include "hbn/core/load.h"
#include "hbn/core/nibble.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::core {
namespace {

using net::NodeId;
using net::Tree;

// Runs nibble + deletion for object 0 of `load` and returns both stages.
struct Pipeline {
  NibbleObjectResult nibble;
  ObjectPlacement modified;
  Count kappa = 0;
  DeletionStats stats;
};

Pipeline runPipeline(const Tree& t, const workload::Workload& load) {
  Pipeline p;
  p.nibble = nibbleObject(t, load, 0);
  p.kappa = load.objectWrites(0);
  p.modified = deleteRarelyUsedCopies(t, p.nibble.placement, p.kappa,
                                      p.nibble.gravityCenter, &p.stats);
  return p;
}

TEST(Deletion, EveryCopyServesBetweenKappaAnd2Kappa) {
  util::Rng rng(51);
  int checkedCopies = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Tree t = net::makeRandomTree(20, 6, rng);
    workload::GenParams params;
    params.numObjects = 1;
    params.requestsPerProcessor = 30;
    params.readFraction = 0.5 + 0.4 * rng.nextDouble();
    const workload::Workload load =
        workload::generateUniform(t, params, rng);
    if (load.objectWrites(0) == 0) continue;
    const Pipeline p = runPipeline(t, load);
    for (const Copy& c : p.modified.copies) {
      if (p.modified.copies.size() == 1) {
        // A single surviving copy serves everything; only >= κ applies.
        EXPECT_GE(c.servedTotal(), p.kappa);
      } else {
        EXPECT_GE(c.servedTotal(), p.kappa) << "trial " << trial;
        EXPECT_LE(c.servedTotal(), 2 * p.kappa) << "trial " << trial;
      }
      ++checkedCopies;
    }
  }
  EXPECT_GT(checkedCopies, 0);
}

TEST(Deletion, LoneOverloadedCopySplitsInPlace) {
  // All requests on one leaf: the lone surviving copy serves h > 2κ and is
  // split into co-located copies per Observation 3.2 (load-neutral).
  const Tree t = net::makeStar(4);
  workload::Workload load(1, t.nodeCount());
  load.addReads(0, 1, 100);
  load.addWrites(0, 1, 1);
  const Pipeline p = runPipeline(t, load);
  EXPECT_GT(p.modified.copies.size(), 1u);
  Count total = 0;
  for (const Copy& c : p.modified.copies) {
    EXPECT_EQ(c.location, 1);
    EXPECT_GE(c.servedTotal(), p.kappa);
    EXPECT_LE(c.servedTotal(), 2 * p.kappa);
    total += c.servedTotal();
  }
  EXPECT_EQ(total, 101);
}

TEST(Deletion, LedgerConservation) {
  util::Rng rng(53);
  for (int trial = 0; trial < 40; ++trial) {
    const Tree t = net::makeRandomTree(18, 6, rng);
    workload::GenParams params;
    params.numObjects = 1;
    params.requestsPerProcessor = 25;
    const workload::Workload load = workload::generateZipf(t, params, rng);
    const Pipeline p = runPipeline(t, load);
    Placement asPlacement;
    asPlacement.objects.push_back(p.modified);
    EXPECT_NO_THROW(validateCoversWorkload(asPlacement, load))
        << "trial " << trial;
  }
}

TEST(Deletion, PerEdgeLoadGrowsByAtMostKappa) {
  // Observation 3.2: on each edge the object's load increases by <= κ_x.
  util::Rng rng(59);
  for (int trial = 0; trial < 40; ++trial) {
    const Tree t = net::makeRandomTree(16, 5, rng);
    workload::GenParams params;
    params.numObjects = 1;
    params.requestsPerProcessor = 20;
    params.readFraction = 0.7;
    const workload::Workload load =
        workload::generateUniform(t, params, rng);
    const Pipeline p = runPipeline(t, load);
    const net::RootedTree rooted(t, t.defaultRoot());
    LoadMap before(t.edgeCount());
    accumulateObjectLoad(rooted, p.nibble.placement, before);
    LoadMap after(t.edgeCount());
    accumulateObjectLoad(rooted, p.modified, after);
    for (net::EdgeId e = 0; e < t.edgeCount(); ++e) {
      EXPECT_LE(after.edgeLoad(e), before.edgeLoad(e) + p.kappa)
          << "edge " << e << " trial " << trial;
    }
  }
}

TEST(Deletion, ReadOnlyObjectBecomesLeafOnly) {
  // κ = 0: inner copies serve nobody and are dropped, leaving the
  // placement on leaves (this is what freezes read-only objects before
  // the mapping step).
  const Tree t = net::makeKaryTree(3, 2);
  workload::Workload load(1, t.nodeCount());
  for (const NodeId p : t.processors()) {
    load.addReads(0, p, 2);
  }
  const Pipeline p = runPipeline(t, load);
  EXPECT_TRUE(p.modified.isLeafOnly(t));
  EXPECT_GT(p.stats.copiesDeleted, 0);
}

TEST(Deletion, SplitCopiesAreCoLocated) {
  // Put an enormous request count on one processor plus a tiny κ so the
  // surviving copy must split.
  const Tree t = net::makeStar(4);
  workload::Workload load(1, t.nodeCount());
  load.addWrites(0, 1, 2);   // κ = 2 concentrated at node 1
  load.addReads(0, 2, 50);   // heavy remote reads
  const Pipeline p = runPipeline(t, load);
  // All copies must sit on valid nodes and each serve in [κ, 2κ] (unless
  // only one survives).
  if (p.modified.copies.size() > 1) {
    for (const Copy& c : p.modified.copies) {
      EXPECT_GE(c.servedTotal(), p.kappa);
      EXPECT_LE(c.servedTotal(), 2 * p.kappa);
    }
  }
  Placement asPlacement;
  asPlacement.objects.push_back(p.modified);
  EXPECT_NO_THROW(validateCoversWorkload(asPlacement, load));
}

TEST(Deletion, DeletedRootMergesIntoNearestSurvivor) {
  // Chain of buses with weight at both ends; the centre bus holds the
  // nibble root copy serving nothing, which must merge outward.
  const Tree t = net::makeCaterpillar(3, 1);
  workload::Workload load(1, t.nodeCount());
  const auto procs = t.processors();
  load.addWrites(0, procs.front(), 5);
  load.addWrites(0, procs.back(), 5);
  load.addReads(0, procs.front(), 20);
  load.addReads(0, procs.back(), 20);
  const Pipeline p = runPipeline(t, load);
  Placement asPlacement;
  asPlacement.objects.push_back(p.modified);
  EXPECT_NO_THROW(validateCoversWorkload(asPlacement, load));
  for (const Copy& c : p.modified.copies) {
    EXPECT_GE(c.servedTotal(), p.kappa);
  }
}

TEST(Deletion, StatsCountDeletions) {
  const Tree t = net::makeKaryTree(3, 2);
  workload::Workload load(1, t.nodeCount());
  for (const NodeId p : t.processors()) {
    load.addReads(0, p, 3);
  }
  DeletionStats stats;
  const NibbleObjectResult nib = nibbleObject(t, load, 0);
  const auto before = nib.placement.copies.size();
  const ObjectPlacement mod = deleteRarelyUsedCopies(
      t, nib.placement, load.objectWrites(0), nib.gravityCenter, &stats);
  EXPECT_EQ(before - mod.copies.size() + stats.copiesCreatedBySplit,
            static_cast<std::size_t>(stats.copiesDeleted));
}

TEST(Deletion, RejectsBadInput) {
  const Tree t = net::makeStar(3);
  ObjectPlacement empty;
  EXPECT_THROW(deleteRarelyUsedCopies(t, empty, 1, 0), std::invalid_argument);

  ObjectPlacement doubled;
  Copy c;
  c.location = 1;
  doubled.copies.push_back(c);
  doubled.copies.push_back(c);
  EXPECT_THROW(deleteRarelyUsedCopies(t, doubled, 1, 1),
               std::invalid_argument);

  ObjectPlacement noRootCopy;
  Copy d;
  d.location = 1;
  noRootCopy.copies.push_back(d);
  EXPECT_THROW(deleteRarelyUsedCopies(t, noRootCopy, 1, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace hbn::core
