// Tests for the exact branch-and-bound solver.
#include <gtest/gtest.h>

#include "hbn/baseline/exact.h"
#include "hbn/baseline/heuristics.h"
#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::baseline {
namespace {

using net::Tree;

TEST(Exact, TrivialSingleObject) {
  const Tree t = net::makeStar(3);
  workload::Workload load(1, t.nodeCount());
  load.addWrites(0, 1, 10);
  const ExactResult result = solveExact(t, load);
  EXPECT_TRUE(result.provedOptimal);
  // Placing the copy on the writer costs nothing.
  EXPECT_DOUBLE_EQ(result.congestion, 0.0);
  EXPECT_EQ(result.placement.objects[0].locations(),
            (std::vector<net::NodeId>{1}));
}

TEST(Exact, BalancesTwoHeavyObjects) {
  // Two all-write objects from every leaf: any co-location doubles one
  // leaf edge; the optimum separates them.
  const Tree t = net::makeStar(4, 1000.0);
  workload::Workload load(2, t.nodeCount());
  for (const net::NodeId p : t.processors()) {
    load.addWrites(0, p, 10);
    load.addWrites(1, p, 10);
  }
  const ExactResult result = solveExact(t, load);
  EXPECT_TRUE(result.provedOptimal);
  const auto loc0 = result.placement.objects[0].locations();
  const auto loc1 = result.placement.objects[1].locations();
  EXPECT_NE(loc0, loc1);
  // Each edge carries 10 from its own object's three remote writers and 10
  // from the other object: 3*10 + 10 = 40.
  EXPECT_DOUBLE_EQ(result.congestion, 40.0);
}

TEST(Exact, MatchesExhaustiveOnRandomInstances) {
  // Cross-check branch-and-bound against plain exhaustive enumeration
  // (no pruning) on tiny instances.
  util::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const Tree t = net::makeStar(4);
    workload::GenParams params;
    params.numObjects = 3;
    params.requestsPerProcessor = 8;
    params.readFraction = 0.3;
    const workload::Workload load =
        workload::generateUniform(t, params, rng);

    const ExactResult bb = solveExact(t, load);
    ASSERT_TRUE(bb.provedOptimal);

    // Exhaustive: all single-leaf choices per object.
    const net::RootedTree rooted(t, t.defaultRoot());
    double best = 1e18;
    const auto procs = t.processors();
    for (const net::NodeId l0 : procs) {
      for (const net::NodeId l1 : procs) {
        for (const net::NodeId l2 : procs) {
          core::Placement p;
          const net::NodeId a[] = {l0};
          const net::NodeId b[] = {l1};
          const net::NodeId c[] = {l2};
          p.objects.push_back(core::makeNearestPlacement(t, load, 0, a));
          p.objects.push_back(core::makeNearestPlacement(t, load, 1, b));
          p.objects.push_back(core::makeNearestPlacement(t, load, 2, c));
          best = std::min(best, core::evaluateCongestion(rooted, p));
        }
      }
    }
    EXPECT_DOUBLE_EQ(bb.congestion, best) << "trial " << trial;
  }
}

TEST(Exact, RedundantCopiesHelpReadHeavyWorkloads) {
  // A read-heavy object: two copies beat one under maxCopies=2.
  const Tree t = net::makeClusterNetwork(2, 3);
  workload::Workload load(1, t.nodeCount());
  for (const net::NodeId p : t.processors()) {
    load.addReads(0, p, 20);
  }
  load.addWrites(0, t.processors().front(), 1);

  ExactOptions single;
  single.maxCopiesPerObject = 1;
  const ExactResult one = solveExact(t, load, single);
  ExactOptions redundant;
  redundant.maxCopiesPerObject = 2;
  const ExactResult two = solveExact(t, load, redundant);
  EXPECT_LT(two.congestion, one.congestion);
}

TEST(Exact, NeverBelowAnalyticLowerBound) {
  util::Rng rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    const Tree t = net::makeClusterNetwork(2, 2);
    workload::GenParams params;
    params.numObjects = 3;
    params.requestsPerProcessor = 10;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);
    ExactOptions options;
    options.maxCopiesPerObject = 2;
    const ExactResult result = solveExact(t, load, options);
    const net::RootedTree rooted(t, t.defaultRoot());
    const core::LowerBound lb = core::analyticLowerBound(rooted, load);
    EXPECT_GE(result.congestion, lb.congestion - 1e-9) << "trial " << trial;
  }
}

TEST(Exact, NodeBudgetReturnsIncumbent) {
  util::Rng rng(17);
  const Tree t = net::makeStar(5);
  workload::GenParams params;
  params.numObjects = 6;
  params.requestsPerProcessor = 10;
  const workload::Workload load = workload::generateUniform(t, params, rng);
  ExactOptions options;
  options.nodeBudget = 3;  // absurdly small
  const ExactResult result = solveExact(t, load, options);
  EXPECT_FALSE(result.provedOptimal);
  EXPECT_EQ(result.placement.objects.size(), 6u);
  EXPECT_NO_THROW(core::validateCoversWorkload(result.placement, load));
}

TEST(Exact, RejectsBadOptions) {
  const Tree t = net::makeStar(3);
  workload::Workload load(1, t.nodeCount());
  ExactOptions options;
  options.maxCopiesPerObject = 0;
  EXPECT_THROW((void)solveExact(t, load, options), std::invalid_argument);
}

TEST(Exact, HugeCandidateSpaceRejected) {
  const Tree t = net::makeStar(40);
  workload::Workload load(1, t.nodeCount());
  ExactOptions options;
  options.maxCopiesPerObject = 5;  // C(40,<=5) >> 4096
  EXPECT_THROW((void)solveExact(t, load, options), std::invalid_argument);
}

}  // namespace
}  // namespace hbn::baseline
