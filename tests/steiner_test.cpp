// Tests for Steiner subtree extraction, including a brute-force
// cross-check on random trees.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hbn/net/generators.h"
#include "hbn/net/steiner.h"
#include "hbn/util/rng.h"

namespace hbn::net {
namespace {

// Brute force: union of pairwise path edge sets.
std::set<EdgeId> bruteSteiner(const RootedTree& r,
                              std::span<const NodeId> terminals) {
  std::set<EdgeId> edges;
  for (std::size_t i = 0; i < terminals.size(); ++i) {
    for (std::size_t j = i + 1; j < terminals.size(); ++j) {
      r.forEachPathEdge(terminals[i], terminals[j],
                        [&](EdgeId e) { edges.insert(e); });
    }
  }
  return edges;
}

TEST(Steiner, EmptyAndSingleton) {
  const Tree t = makeStar(4);
  const RootedTree r(t, t.defaultRoot());
  EXPECT_TRUE(steinerEdges(r, {}).empty());
  const NodeId p = t.processors().front();
  const NodeId terminals[] = {p};
  EXPECT_TRUE(steinerEdges(r, terminals).empty());
}

TEST(Steiner, DuplicateTerminalsCollapse) {
  const Tree t = makeStar(4);
  const RootedTree r(t, t.defaultRoot());
  const NodeId p = t.processors().front();
  const NodeId terminals[] = {p, p, p};
  EXPECT_TRUE(steinerEdges(r, terminals).empty());
}

TEST(Steiner, TwoLeavesOfStar) {
  const Tree t = makeStar(4);
  const RootedTree r(t, t.defaultRoot());
  const NodeId a = t.processors()[0];
  const NodeId b = t.processors()[2];
  const NodeId terminals[] = {a, b};
  const auto edges = steinerEdges(r, terminals);
  EXPECT_EQ(edges.size(), 2u);  // two leaf switches through the bus
}

TEST(Steiner, AllLeavesSpanWholeStar) {
  const Tree t = makeStar(6);
  const RootedTree r(t, t.defaultRoot());
  std::vector<NodeId> terminals(t.processors().begin(), t.processors().end());
  const auto edges = steinerEdges(r, terminals);
  EXPECT_EQ(static_cast<int>(edges.size()), t.edgeCount());
}

TEST(Steiner, MatchesBruteForceOnRandomTrees) {
  util::Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const Tree t = makeRandomTree(20, 6, rng);
    const RootedTree r(t, t.defaultRoot());
    // Random terminal set of size 2..6 drawn from all nodes.
    std::vector<NodeId> terminals;
    const int k = 2 + static_cast<int>(rng.nextBelow(5));
    for (int i = 0; i < k; ++i) {
      terminals.push_back(static_cast<NodeId>(
          rng.nextBelow(static_cast<std::uint64_t>(t.nodeCount()))));
    }
    auto fast = steinerEdges(r, terminals);
    std::sort(fast.begin(), fast.end());
    const auto slow = bruteSteiner(r, terminals);
    EXPECT_TRUE(std::equal(fast.begin(), fast.end(), slow.begin(), slow.end()))
        << "trial " << trial;
  }
}

TEST(Steiner, SteinerTreeIsConnected) {
  util::Rng rng(321);
  const Tree t = makeRandomTree(30, 10, rng);
  const RootedTree r(t, t.defaultRoot());
  std::vector<NodeId> terminals;
  for (int i = 0; i < 5; ++i) {
    terminals.push_back(t.processors()[static_cast<std::size_t>(
        rng.nextBelow(t.processors().size()))]);
  }
  const auto edges = steinerEdges(r, terminals);
  // Count connected components over the induced edge set: nodes touched by
  // edges must form a single component.
  std::set<NodeId> touched;
  for (const EdgeId e : edges) {
    touched.insert(t.edge(e).u);
    touched.insert(t.edge(e).v);
  }
  if (touched.empty()) {
    GTEST_SKIP() << "terminals collapsed to one node";
  }
  std::set<EdgeId> edgeSet(edges.begin(), edges.end());
  std::set<NodeId> visited;
  std::vector<NodeId> stack{*touched.begin()};
  visited.insert(*touched.begin());
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const HalfEdge& he : t.neighbors(v)) {
      if (edgeSet.count(he.edge) && !visited.count(he.to)) {
        visited.insert(he.to);
        stack.push_back(he.to);
      }
    }
  }
  EXPECT_EQ(visited.size(), touched.size());
}

TEST(Steiner, AddSteinerLoadAccumulates) {
  const Tree t = makeStar(4);
  const RootedTree r(t, t.defaultRoot());
  std::vector<double> load(static_cast<std::size_t>(t.edgeCount()), 0.0);
  const NodeId terminals[] = {t.processors()[0], t.processors()[1]};
  addSteinerLoad(r, terminals, 2.5, load);
  addSteinerLoad(r, terminals, 1.5, load);
  double total = 0.0;
  for (const double l : load) total += l;
  EXPECT_DOUBLE_EQ(total, 2 * 4.0);  // two edges, 4.0 each
}

TEST(Steiner, AddSteinerLoadSizeMismatchThrows) {
  const Tree t = makeStar(4);
  const RootedTree r(t, t.defaultRoot());
  std::vector<double> wrong(1, 0.0);
  const NodeId terminals[] = {t.processors()[0], t.processors()[1]};
  EXPECT_THROW(addSteinerLoad(r, terminals, 1.0, wrong),
               std::invalid_argument);
}

TEST(Steiner, TerminalOutOfRangeThrows) {
  const Tree t = makeStar(4);
  const RootedTree r(t, t.defaultRoot());
  const NodeId terminals[] = {0, 99};
  EXPECT_THROW(steinerEdges(r, terminals), std::out_of_range);
}

}  // namespace
}  // namespace hbn::net
