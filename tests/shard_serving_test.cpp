// End-to-end tests for the sharded serving engine (hbn/shard/):
// digest identity with the single-process EpochServer for every
// registered policy and worker count, socket-transport equivalence via
// fork()ed worker processes, cross-wire error propagation with stage
// attribution, the peer watchdog, and coordinator option validation.
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/dynamic/online_policy.h"
#include "hbn/net/generators.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/error.h"
#include "hbn/serve/request_stream.h"
#include "hbn/shard/coordinator.h"
#include "hbn/shard/process.h"
#include "hbn/shard/transport.h"
#include "hbn/shard/wire.h"
#include "hbn/util/fault.h"

namespace hbn::shard {
namespace {

constexpr std::uint64_t kRequests = 12'000;
constexpr std::size_t kEpoch = 2048;
constexpr int kObjects = 64;
constexpr std::uint64_t kSeed = 5;

net::Tree testTree() { return net::makeClusterNetwork(3, 4); }

std::vector<workload::RequestEvent> makeEvents(const net::Tree& tree) {
  workload::StreamParams params;
  params.numObjects = kObjects;
  const auto stream = serve::makeGeneratedStream("skewed", tree, params,
                                                 kSeed, kRequests);
  std::vector<workload::RequestEvent> events(kRequests);
  std::size_t have = 0;
  while (have < events.size()) {
    const std::size_t got = stream->fill(std::span<workload::RequestEvent>(
        events.data() + have, events.size() - have));
    if (got == 0) break;
    have += got;
  }
  events.resize(have);
  return events;
}

template <typename Report>
std::string digestOf(const Report& report, const core::LoadMap& loads) {
  std::ostringstream oss;
  oss.precision(17);
  oss << report.congestion << '|' << report.lowerBound << '|'
      << report.ratio << '|' << report.replacements << '|'
      << report.replications << '|' << report.invalidations;
  for (const core::Count load : loads.edgeLoads()) oss << ',' << load;
  return oss.str();
}

std::string singleProcessDigest(
    const net::Tree& tree,
    const std::vector<workload::RequestEvent>& events,
    const std::string& policy) {
  const net::RootedTree rooted(tree, tree.defaultRoot());
  serve::VectorStream stream(events);
  serve::ServeOptions options;
  options.epochSize = kEpoch;
  options.threads = 1;
  options.policy = policy;
  serve::EpochServer server(rooted, kObjects, options);
  const serve::ServeReport report = server.serve(stream);
  return digestOf(report, server.loads());
}

ShardOptions baseOptions(const std::string& policy) {
  ShardOptions options;
  options.serve.epochSize = kEpoch;
  options.serve.threads = 1;
  options.serve.policy = policy;
  options.partitionSeed = kSeed;
  return options;
}

std::string shardedDigest(const net::Tree& tree,
                          const std::vector<workload::RequestEvent>& events,
                          const std::string& policy, ShardCluster& cluster,
                          const Partition::Kind partition =
                              Partition::Kind::Hash) {
  ShardOptions options = baseOptions(policy);
  options.partition = partition;
  serve::VectorStream stream(events);
  ShardCoordinator coordinator(tree, kObjects, options, cluster.links(),
                               "test");
  const ShardedReport report = coordinator.serve(stream);
  cluster.join();
  return digestOf(report, coordinator.loads());
}

// The core identity: for every registered policy, sharded serving over
// 1, 2 and 4 loopback workers reproduces the single-process engine's
// loads and counters bit-for-bit — under both partition kinds.
TEST(ShardServing, BitIdenticalToSingleProcessForEveryPolicy) {
  const net::Tree tree = testTree();
  const std::vector<workload::RequestEvent> events = makeEvents(tree);
  for (const std::string& policy :
       dynamic::OnlinePolicyRegistry::global().names()) {
    const std::string reference =
        singleProcessDigest(tree, events, policy);
    for (const int workers : {1, 2, 4}) {
      for (const Partition::Kind kind :
           {Partition::Kind::Hash, Partition::Kind::Range}) {
        auto cluster = makeLoopbackCluster(workers);
        EXPECT_EQ(shardedDigest(tree, events, policy, *cluster, kind),
                  reference)
            << policy << " diverged at " << workers << " workers ("
            << partitionKindName(kind) << " partition)";
      }
    }
  }
}

// The socket transport (fork()ed worker processes over Unix sockets)
// must produce the same bits as in-process loopback.
TEST(ShardServing, ForkedSocketWorkersMatchLoopback) {
  const net::Tree tree = testTree();
  const std::vector<workload::RequestEvent> events = makeEvents(tree);
  auto loopback = makeLoopbackCluster(2);
  const std::string reference =
      shardedDigest(tree, events, "tree-counters", *loopback);
  auto forked = makeForkCluster(2);
  EXPECT_EQ(shardedDigest(tree, events, "tree-counters", *forked),
            reference);
}

// An unknown policy spec fails inside the worker during stack
// construction; the failure must cross the wire as Stage::Connect
// (exit code 15) with the shard attribution, for threads and for real
// child processes alike.
TEST(ShardServing, WorkerConstructionFailureArrivesAsConnect) {
  const net::Tree tree = testTree();
  const std::vector<workload::RequestEvent> events = makeEvents(tree);
  for (const bool socket : {false, true}) {
    auto cluster = socket ? makeForkCluster(2) : makeLoopbackCluster(2);
    serve::VectorStream stream(events);
    ShardCoordinator coordinator(tree, kObjects,
                                 baseOptions("no-such-policy"),
                                 cluster->links(), "test");
    try {
      (void)coordinator.serve(stream);
      FAIL() << "expected serve::Error";
    } catch (const serve::Error& e) {
      EXPECT_EQ(e.stage(), serve::Stage::Connect);
      EXPECT_EQ(e.exitCode(), 15);
      EXPECT_NE(e.cause().find("no-such-policy"), std::string::npos);
    }
    cluster->kill();
  }
}

/// A scripted fake worker: completes the handshake, receives the first
/// epoch, then misbehaves (dies or goes silent). Runs the protocol far
/// enough that the coordinator's failure lands mid-epoch, not at
/// connect.
void misbehavingWorker(std::shared_ptr<FramedTransport> link, bool die) {
  try {
    (void)link->recv();  // Hello
    link->send(FrameType::kHelloAck, {});
    (void)link->recv();  // first epoch
    if (die) {
      link->close();  // peer death mid-epoch
      return;
    }
    // Go silent: block on a frame the coordinator will never send. The
    // coordinator's watchdog fires; its closeAll() then unblocks this
    // recv with an error and the thread winds down.
    (void)link->recv();
  } catch (...) {
  }
}

TEST(ShardServing, MidEpochPeerDeathIsPeerError) {
  const net::Tree tree = testTree();
  const std::vector<workload::RequestEvent> events = makeEvents(tree);
  auto [coordEnd, workerEnd] = makeLoopbackPair();
  FramedTransport link(std::move(coordEnd));
  std::thread worker(
      misbehavingWorker,
      std::make_shared<FramedTransport>(std::move(workerEnd)),
      /*die=*/true);
  serve::VectorStream stream(events);
  ShardCoordinator coordinator(tree, kObjects, baseOptions("tree-counters"),
                               {&link}, "test");
  try {
    (void)coordinator.serve(stream);
    FAIL() << "expected serve::Error";
  } catch (const serve::Error& e) {
    EXPECT_EQ(e.stage(), serve::Stage::Peer);
    EXPECT_EQ(e.exitCode(), 17);
  }
  worker.join();
}

TEST(ShardServing, SilentPeerTripsWatchdog) {
  const net::Tree tree = testTree();
  const std::vector<workload::RequestEvent> events = makeEvents(tree);
  auto [coordEnd, workerEnd] = makeLoopbackPair();
  FramedTransport link(std::move(coordEnd));
  std::thread worker(
      misbehavingWorker,
      std::make_shared<FramedTransport>(std::move(workerEnd)),
      /*die=*/false);
  serve::VectorStream stream(events);
  ShardOptions options = baseOptions("tree-counters");
  options.peerTimeoutMs = 100.0;
  ShardCoordinator coordinator(tree, kObjects, options, {&link}, "test");
  try {
    (void)coordinator.serve(stream);
    FAIL() << "expected serve::Error";
  } catch (const serve::Error& e) {
    EXPECT_EQ(e.stage(), serve::Stage::Peer);
    EXPECT_NE(e.cause().find("unresponsive"), std::string::npos);
  }
  worker.join();
}

// A worker process that exits nonzero must surface from join() as a
// Peer error naming the shard and the exit status — the
// supervisor-facing contract of the process clusters.
TEST(ShardServing, JoinReportsFailedWorkerProcess) {
  auto cluster = makeForkCluster(1);
  // Closing the coordinator link makes the worker see end-of-stream
  // while waiting for Hello — a Peer-stage failure, so the child
  // process exits with the Peer exit code (17), which join() reports.
  cluster->links()[0]->close();
  try {
    cluster->join();
    FAIL() << "expected serve::Error";
  } catch (const serve::Error& e) {
    EXPECT_EQ(e.stage(), serve::Stage::Peer);
    EXPECT_NE(e.cause().find("worker 0"), std::string::npos);
    EXPECT_NE(e.cause().find("17"), std::string::npos);
  }
}

TEST(ShardServing, CoordinatorValidatesOptions) {
  const net::Tree tree = testTree();
  auto cluster = makeLoopbackCluster(1);

  EXPECT_THROW(ShardCoordinator(tree, kObjects, baseOptions("tree-counters"),
                                {}, "test"),
               std::invalid_argument);

  ShardOptions checkpointing = baseOptions("tree-counters");
  checkpointing.serve.checkpointDir = "/tmp/nope";
  EXPECT_THROW(ShardCoordinator(tree, kObjects, checkpointing,
                                cluster->links(), "test"),
               std::invalid_argument);

  ShardOptions faulty = baseOptions("tree-counters");
  faulty.serve.faults = util::makeFaultInjector("shard-throw@epoch0");
  EXPECT_THROW(ShardCoordinator(tree, kObjects, faulty, cluster->links(),
                                "test"),
               std::invalid_argument);

  cluster->kill();
}

TEST(ShardServing, ServeIsOneShot) {
  const net::Tree tree = testTree();
  const std::vector<workload::RequestEvent> events = makeEvents(tree);
  auto cluster = makeLoopbackCluster(1);
  serve::VectorStream stream(events);
  ShardCoordinator coordinator(tree, kObjects, baseOptions("tree-counters"),
                               cluster->links(), "test");
  (void)coordinator.serve(stream);
  cluster->join();
  serve::VectorStream again(events);
  EXPECT_THROW((void)coordinator.serve(again), std::logic_error);
}

// The aggregate report must be internally consistent: per-shard
// requests sum to the total, cross-shard bytes match the per-shard
// byte counters, and every shard reports busy time.
TEST(ShardServing, ReportBreakdownIsConsistent) {
  const net::Tree tree = testTree();
  const std::vector<workload::RequestEvent> events = makeEvents(tree);
  auto cluster = makeLoopbackCluster(3);
  serve::VectorStream stream(events);
  ShardCoordinator coordinator(tree, kObjects, baseOptions("adaptive"),
                               cluster->links(), "test");
  const ShardedReport report = coordinator.serve(stream);
  cluster->join();

  EXPECT_EQ(report.workers, 3);
  EXPECT_EQ(report.totalRequests, events.size());
  ASSERT_EQ(report.shards.size(), 3u);
  std::uint64_t requestSum = 0;
  std::uint64_t byteSum = 0;
  for (const ShardBreakdown& shard : report.shards) {
    requestSum += shard.requests;
    byteSum += shard.bytesToWorker + shard.bytesFromWorker;
    EXPECT_GT(shard.busyMs, 0.0);
    EXPECT_GT(shard.bytesToWorker, 0u);
    EXPECT_GT(shard.bytesFromWorker, 0u);
  }
  EXPECT_EQ(requestSum, report.totalRequests);
  EXPECT_EQ(byteSum, report.crossShardBytes);
  EXPECT_GT(report.criticalPathMs, 0.0);
  EXPECT_EQ(report.epochs, coordinator.epochLog().size());
}

}  // namespace
}  // namespace hbn::shard
