// Regression tests for RequestStream::skip — the checkpoint-restore
// fast-forward. The seekable generator streams must reposition in
// O(workload::kStreamReseedBlock) instead of replaying the whole served
// prefix, and skipping must land on exactly the same continuation as
// consuming: skip(N) followed by fill() yields the events a fresh
// stream yields after N fill()ed events.
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/net/generators.h"
#include "hbn/serve/request_stream.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

namespace hbn::serve {
namespace {

net::Tree testTree() { return net::makeClusterNetwork(4, 4); }

std::unique_ptr<RequestStream> makeStream(const std::string& profile,
                                          std::uint64_t total) {
  workload::StreamParams params;
  params.numObjects = 128;
  return makeGeneratedStream(profile, testTree(), params, /*seed=*/42,
                             total);
}

std::vector<RequestEvent> consume(RequestStream& stream, std::size_t n) {
  std::vector<RequestEvent> out(n);
  std::size_t have = 0;
  while (have < n) {
    const std::size_t got = stream.fill(
        std::span<RequestEvent>(out.data() + have, n - have));
    if (got == 0) break;
    have += got;
  }
  out.resize(have);
  return out;
}

bool sameEvents(const std::vector<RequestEvent>& a,
                const std::vector<RequestEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].object != b[i].object || a[i].origin != b[i].origin ||
        a[i].isWrite != b[i].isWrite) {
      return false;
    }
  }
  return true;
}

constexpr const char* kProfiles[] = {"skewed", "bursty", "diurnal",
                                     "phase-shift"};

// skip(N) must land on the same continuation as consuming N events, for
// every generated profile and for skip distances on both sides of the
// re-seed block boundary (inside one block, exactly one block, and
// spanning several).
TEST(StreamSkip, SkipMatchesConsumeAcrossProfiles) {
  constexpr std::uint64_t kTotal = 4 * workload::kStreamReseedBlock + 500;
  const std::uint64_t distances[] = {
      1, 100, workload::kStreamReseedBlock - 1,
      workload::kStreamReseedBlock,
      2 * workload::kStreamReseedBlock + 77};
  for (const char* profile : kProfiles) {
    for (const std::uint64_t distance : distances) {
      auto reference = makeStream(profile, kTotal);
      (void)consume(*reference, static_cast<std::size_t>(distance));
      const std::vector<RequestEvent> expected = consume(*reference, 256);

      auto skipped = makeStream(profile, kTotal);
      skipped->skip(distance);
      const std::vector<RequestEvent> actual = consume(*skipped, 256);
      EXPECT_TRUE(sameEvents(expected, actual))
          << profile << " diverged after skip(" << distance << ")";
    }
  }
}

// Chained skips must compose exactly like one big skip (a resumed run
// that checkpoints again re-skips from its new cursor).
TEST(StreamSkip, SkipsCompose) {
  constexpr std::uint64_t kTotal = 3 * workload::kStreamReseedBlock;
  for (const char* profile : kProfiles) {
    auto once = makeStream(profile, kTotal);
    once->skip(workload::kStreamReseedBlock + 123);
    auto twice = makeStream(profile, kTotal);
    twice->skip(1000);
    twice->skip(workload::kStreamReseedBlock - 877);
    EXPECT_TRUE(sameEvents(consume(*once, 128), consume(*twice, 128)))
        << profile;
  }
}

// The whole point of the fast-forward: skipping a hundred-billion-event
// prefix must cost O(kStreamReseedBlock), not O(prefix). The wall-clock
// bound is generous (a replaying implementation would need hours).
TEST(StreamSkip, HugeSkipIsFastForward) {
  constexpr std::uint64_t kTotal = 1ULL << 40;
  for (const char* profile : kProfiles) {
    auto stream = makeStream(profile, kTotal);
    util::Timer timer;
    stream->skip(kTotal - 64);
    EXPECT_LT(timer.millis(), 5000.0) << profile;
    EXPECT_EQ(consume(*stream, 128).size(), 64u) << profile;
  }
}

// Sources without random access (VectorStream) fall back to the base
// O(count) replay and must produce the identical continuation.
TEST(StreamSkip, DefaultPathReplaysVectorStream) {
  std::vector<RequestEvent> events;
  for (int i = 0; i < 10000; ++i) {
    events.push_back({i % 128, i % 16, i % 3 == 0});
  }
  VectorStream skipped(events);
  skipped.skip(7777);
  VectorStream reference(events);
  (void)consume(reference, 7777);
  EXPECT_TRUE(sameEvents(consume(reference, 512), consume(skipped, 512)));
}

// A skip past the end means the checkpoint claims more progress than
// the stream holds — both the fast-forward and the replay path must
// refuse rather than resume silently misaligned.
TEST(StreamSkip, SkipPastEndThrows) {
  auto generated = makeStream("skewed", 1000);
  EXPECT_THROW(generated->skip(1001), std::runtime_error);

  VectorStream vector(std::vector<RequestEvent>(100, {0, 0, false}));
  EXPECT_THROW(vector.skip(101), std::runtime_error);
}

// skipRequests is the serve-layer entry point checkpoint restore uses;
// it must delegate to the override.
TEST(StreamSkip, SkipRequestsDelegates) {
  auto reference = makeStream("diurnal", 100000);
  (void)consume(*reference, 60000);
  auto skipped = makeStream("diurnal", 100000);
  skipRequests(*skipped, 60000);
  EXPECT_TRUE(sameEvents(consume(*reference, 100), consume(*skipped, 100)));
}

}  // namespace
}  // namespace hbn::serve
