// Integration tests pinning Theorem 4.3 against the TRUE optimum (exact
// solver) on small instances — not just the analytic lower bound.
#include <gtest/gtest.h>

#include "hbn/baseline/exact.h"
#include "hbn/baseline/heuristics.h"
#include "hbn/core/extended_nibble.h"
#include "hbn/core/lower_bound.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::core {
namespace {

using net::Tree;

TEST(Approximation, Within7xExactOptimumOnSmallStars) {
  util::Rng rng(211);
  for (int trial = 0; trial < 15; ++trial) {
    const Tree t = net::makeStar(5, 1000.0);
    workload::GenParams params;
    params.numObjects = 4;
    params.requestsPerProcessor = 12;
    params.readFraction = 0.4;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);

    const ExtendedNibbleResult strategy = extendedNibble(t, load);
    baseline::ExactOptions options;
    options.maxCopiesPerObject = 2;
    const baseline::ExactResult opt = baseline::solveExact(t, load, options);
    ASSERT_TRUE(opt.provedOptimal);
    if (opt.congestion == 0.0) {
      EXPECT_DOUBLE_EQ(strategy.report.congestionFinal, 0.0);
      continue;
    }
    EXPECT_LE(strategy.report.congestionFinal, 7.0 * opt.congestion)
        << "trial " << trial;
  }
}

TEST(Approximation, Within7xExactOptimumOnTwoLevelClusters) {
  util::Rng rng(223);
  for (int trial = 0; trial < 10; ++trial) {
    const Tree t = net::makeClusterNetwork(2, 3);
    workload::GenParams params;
    params.numObjects = 3;
    params.requestsPerProcessor = 10;
    params.readFraction = 0.6;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);

    const ExtendedNibbleResult strategy = extendedNibble(t, load);
    baseline::ExactOptions options;
    options.maxCopiesPerObject = 2;
    const baseline::ExactResult opt = baseline::solveExact(t, load, options);
    ASSERT_TRUE(opt.provedOptimal);
    if (opt.congestion == 0.0) {
      EXPECT_DOUBLE_EQ(strategy.report.congestionFinal, 0.0);
      continue;
    }
    EXPECT_LE(strategy.report.congestionFinal, 7.0 * opt.congestion)
        << "trial " << trial;
  }
}

TEST(Approximation, LowerBoundNeverExceedsExactOptimum) {
  util::Rng rng(227);
  for (int trial = 0; trial < 12; ++trial) {
    const Tree t = trial % 2 == 0 ? net::makeStar(5)
                                  : net::makeClusterNetwork(2, 2);
    workload::GenParams params;
    params.numObjects = 3;
    params.requestsPerProcessor = 10;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);
    const net::RootedTree rooted(t, t.defaultRoot());
    const LowerBound lb = analyticLowerBound(rooted, load);
    baseline::ExactOptions options;
    options.maxCopiesPerObject = 2;
    const baseline::ExactResult opt = baseline::solveExact(t, load, options);
    ASSERT_TRUE(opt.provedOptimal);
    EXPECT_LE(lb.congestion, opt.congestion + 1e-9) << "trial " << trial;
  }
}

TEST(Approximation, NibbleLowerBoundAgreesWithAnalytic) {
  // Theorem 3.1 cross-check at the congestion level: the constructed
  // nibble placement and the analytic per-edge minima give the same bound.
  util::Rng rng(229);
  for (int trial = 0; trial < 10; ++trial) {
    const Tree t = net::makeRandomTree(18, 6, rng);
    workload::GenParams params;
    params.numObjects = 5;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);
    const net::RootedTree rooted(t, t.defaultRoot());
    EXPECT_DOUBLE_EQ(analyticLowerBound(rooted, load).congestion,
                     nibbleLowerBound(t, load))
        << "trial " << trial;
  }
}

TEST(Approximation, ExtendedNibbleCompetitiveWithHeuristics) {
  // Not a theorem, but the motivating comparison: extended-nibble should
  // never lose catastrophically to the single-copy baselines (it is
  // allowed to lose small constant factors on easy instances).
  util::Rng rng(233);
  double strategySum = 0.0;
  double greedySum = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    const Tree t = net::makeClusterNetwork(3, 4);
    workload::GenParams params;
    params.numObjects = 8;
    params.requestsPerProcessor = 20;
    params.readFraction = 0.8;
    const workload::Workload load =
        workload::generateClustered(t, params, rng);
    const net::RootedTree rooted(t, t.defaultRoot());
    strategySum += extendedNibble(t, load).report.congestionFinal;
    greedySum += evaluateCongestion(
        rooted, baseline::bestSingleCopy(t, load));
  }
  EXPECT_LE(strategySum, 2.0 * greedySum);
}

}  // namespace
}  // namespace hbn::core
