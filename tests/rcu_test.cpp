// Tests for the RCU publication cell: snapshot visibility, guard
// pinning, grace-period reclamation, and a readers-vs-publisher stress
// run — the concurrency pattern the pipelined epoch server relies on to
// publish handoff schedules while workers read them. Run under the CI
// ThreadSanitizer job.
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/util/rcu.h"

namespace hbn::util {
namespace {

/// Snapshot with a destruction side effect, so reclamation is countable.
struct Tracked {
  std::uint64_t value = 0;
  std::atomic<int>* destroyed = nullptr;

  ~Tracked() {
    if (destroyed != nullptr) destroyed->fetch_add(1);
  }
};

TEST(RcuCell, ReadSeesTheLatestPublishedSnapshot) {
  RcuCell<int> cell(std::make_unique<int>(1));
  EXPECT_EQ(*cell.read(), 1);
  cell.publish(std::make_unique<int>(2));
  EXPECT_EQ(*cell.read(), 2);
  cell.publish(std::make_unique<int>(3));
  cell.synchronize();
  EXPECT_EQ(*cell.read(), 3);
  EXPECT_EQ(cell.retiredCount(), 0u);
}

TEST(RcuCell, GuardPinsRetiredSnapshotUntilReleased) {
  auto destroyed = std::make_unique<std::atomic<int>>(0);
  auto first = std::make_unique<Tracked>();
  first->value = 7;
  first->destroyed = destroyed.get();
  RcuCell<Tracked> cell(std::move(first));

  {
    const auto guard = cell.read();
    auto second = std::make_unique<Tracked>();
    second->value = 8;
    second->destroyed = destroyed.get();
    cell.publish(std::move(second));
    // The guard was announced before the publication, so the retired
    // snapshot must survive while the guard lives: the opportunistic
    // reclaim in publish() cannot have freed it.
    EXPECT_EQ(guard->value, 7u);
    EXPECT_EQ(destroyed->load(), 0);
    EXPECT_EQ(cell.retiredCount(), 1u);
  }
  cell.synchronize();
  EXPECT_EQ(destroyed->load(), 1);
  EXPECT_EQ(cell.retiredCount(), 0u);
  EXPECT_EQ(cell.read()->value, 8u);
}

TEST(RcuCell, GuardsAreMovable) {
  RcuCell<int> cell(std::make_unique<int>(5));
  auto guard = cell.read();
  auto moved = std::move(guard);
  EXPECT_EQ(*moved, 5);
  moved = cell.read();
  EXPECT_EQ(*moved, 5);
}

TEST(RcuCell, ConcurrentReadersNeverObserveReclaimedMemory) {
  // The forced-handoff storm: one publisher swaps snapshots as fast as
  // it can (with synchronize() barriers mixed in, as the epoch server's
  // pass retirement does) while reader threads continuously acquire
  // guards and check the invariant that a pinned snapshot stays intact
  // — its self-check value must match, which fails loudly (and trips
  // TSan) if reclamation ever races a guard.
  struct Snapshot {
    std::uint64_t sequence = 0;
    std::uint64_t check = 0;  ///< sequence * 2654435761, verified by readers

    explicit Snapshot(std::uint64_t s)
        : sequence(s), check(s * 2654435761ULL) {}
    ~Snapshot() {
      check = ~0ULL;  // poison, so use-after-reclaim shows up in the check
    }
  };

  constexpr int kReaders = 4;
  constexpr std::uint64_t kPublications = 2000;
  RcuCell<Snapshot> cell(std::make_unique<Snapshot>(0));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t lastSeen = 0;
      // do-while: on a single hardware thread the publisher can finish
      // every publication before a reader is first scheduled; each
      // reader still validates at least one guard.
      do {
        const auto guard = cell.read();
        ASSERT_EQ(guard->check, guard->sequence * 2654435761ULL);
        // Snapshots are published in sequence order, so what a reader
        // sees must be monotone.
        ASSERT_GE(guard->sequence, lastSeen);
        lastSeen = guard->sequence;
        reads.fetch_add(1);
      } while (!stop.load());
    });
  }
  for (std::uint64_t s = 1; s <= kPublications; ++s) {
    cell.publish(std::make_unique<Snapshot>(s));
    if (s % 64 == 0) cell.synchronize();
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  cell.synchronize();
  EXPECT_EQ(cell.retiredCount(), 0u);
  EXPECT_EQ(cell.read()->sequence, kPublications);
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace hbn::util
