// Tests for the unified online-policy engine: registry specs (shared
// grammar, nested strategy specs, error vocabulary), the behaviour of
// every built-in policy against hand-computable oracles, tree-counters
// bit-identity with the underlying counter strategy, and the epoch
// server's policy plumbing (migratable() gating, report metrics).
#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/dynamic/harness.h"
#include "hbn/dynamic/online_policy.h"
#include "hbn/net/generators.h"
#include "hbn/net/steiner.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/request_stream.h"
#include "hbn/util/rng.h"

namespace hbn::dynamic {
namespace {

using core::Count;
using core::LoadMap;

std::unique_ptr<OnlinePolicy> buildPolicy(const std::string& spec,
                                          const net::RootedTree& rooted,
                                          int numObjects,
                                          net::NodeId initialLocation) {
  return OnlinePolicyRegistry::global().create(spec)->build(
      rooted, numObjects, initialLocation);
}

/// Oracle edge loads of a frozen copy configuration: every request
/// charges the origin→nearest-copy path, writes additionally charge the
/// copy set's Steiner tree — the paper's static load model evaluated
/// the slow, obvious way (per-node BFS distances).
LoadMap frozenOracle(const net::RootedTree& rooted,
                     std::span<const net::NodeId> copies,
                     const std::vector<Request>& requests) {
  const net::Tree& tree = rooted.tree();
  LoadMap loads(tree.edgeCount());
  const std::vector<net::EdgeId> steiner = net::steinerEdges(rooted, copies);
  // Nearest copy by multi-source BFS (ascending seed order — the same
  // deterministic tie-break the policies use).
  std::vector<net::NodeId> gate(static_cast<std::size_t>(tree.nodeCount()),
                                net::kInvalidNode);
  std::vector<net::NodeId> sorted(copies.begin(), copies.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<net::NodeId> queue(sorted.begin(), sorted.end());
  for (const net::NodeId c : sorted) gate[static_cast<std::size_t>(c)] = c;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const net::NodeId v = queue[head];
    for (const net::HalfEdge& half : tree.neighbors(v)) {
      if (gate[static_cast<std::size_t>(half.to)] == net::kInvalidNode) {
        gate[static_cast<std::size_t>(half.to)] =
            gate[static_cast<std::size_t>(v)];
        queue.push_back(half.to);
      }
    }
  }
  const auto chargePath = [&](net::NodeId from, net::NodeId to) {
    // Walk up from both ends to the LCA, the long way.
    while (from != to) {
      if (rooted.depth(from) >= rooted.depth(to)) {
        loads.addEdgeLoad(rooted.parentEdge(from), 1);
        from = rooted.parent(from);
      } else {
        loads.addEdgeLoad(rooted.parentEdge(to), 1);
        to = rooted.parent(to);
      }
    }
  };
  for (const Request& request : requests) {
    chargePath(request.origin,
               gate[static_cast<std::size_t>(request.origin)]);
    if (request.isWrite) {
      for (const net::EdgeId e : steiner) loads.addEdgeLoad(e, 1);
    }
  }
  return loads;
}

std::vector<Request> randomRequests(const net::Tree& tree, int numObjects,
                                    int count, double writeFraction,
                                    util::Rng& rng) {
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(count));
  const auto procs = tree.processors();
  for (int i = 0; i < count; ++i) {
    requests.push_back(Request{
        static_cast<ObjectId>(rng.nextBelow(
            static_cast<std::uint64_t>(numObjects))),
        procs[static_cast<std::size_t>(rng.nextBelow(procs.size()))],
        rng.nextBool(writeFraction)});
  }
  return requests;
}

/// Serves `requests` through `policy` shard-by-shard and returns the
/// merged loads (the competitive harness's serving loop in miniature).
LoadMap serveAll(OnlinePolicy& policy, const net::Tree& tree, int numObjects,
                 const std::vector<Request>& requests, bool useAccumulator) {
  std::vector<std::size_t> offsets(static_cast<std::size_t>(numObjects) + 1);
  std::vector<Request> bucketed(requests.size());
  bucketRequestsByObject(requests, numObjects, offsets, bucketed);
  LoadMap loads(tree.edgeCount());
  core::FlatLoadAccumulator acc(policy.flatView());
  ServeScratch scratch;
  for (ObjectId x = 0; x < numObjects; ++x) {
    const std::size_t begin = offsets[static_cast<std::size_t>(x)];
    const std::size_t end = offsets[static_cast<std::size_t>(x) + 1];
    if (begin == end) continue;
    (void)policy.serveShard(
        x, std::span<const Request>(bucketed.data() + begin, end - begin),
        loads, scratch, useAccumulator ? &acc : nullptr);
  }
  return loads;
}

TEST(OnlinePolicyRegistry, ListsBuiltinsAndSharesSpecGrammar) {
  const auto names = OnlinePolicyRegistry::global().names();
  EXPECT_GE(names.size(), 4u);
  for (const char* expected :
       {"tree-counters", "static", "full-replication", "owner-only"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  // Unknown names name the kind and the alternatives; unknown options
  // are rejected after the factory ran — the shared SpecRegistry
  // vocabulary.
  try {
    (void)OnlinePolicyRegistry::global().create("nope");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown policy"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("tree-counters"),
              std::string::npos);
  }
  EXPECT_THROW((void)OnlinePolicyRegistry::global().create(
                   "tree-counters:bogus=1"),
               std::invalid_argument);
  // Aliases resolve like strategy aliases do.
  EXPECT_NO_THROW((void)OnlinePolicyRegistry::global().create(
      "counters:threshold=3"));
}

TEST(OnlinePolicyRegistry, NestedStrategySpecsResolveAtParseTime) {
  // `static:placement=SPEC` composes the policy and strategy
  // registries; the nested spec is validated when the policy spec is
  // parsed, not at the first drift handoff.
  EXPECT_NO_THROW((void)OnlinePolicyRegistry::global().create(
      "static:placement=extended-nibble:deletion=0"));
  EXPECT_THROW(
      (void)OnlinePolicyRegistry::global().create("static:placement=typo"),
      std::invalid_argument);
  // The split helper keeps the nested colon intact.
  const engine::SpecParts parts =
      engine::splitSpec("static:placement=extended-nibble:deletion=0");
  EXPECT_EQ(parts.name, "static");
  EXPECT_EQ(parts.options, "placement=extended-nibble:deletion=0");
}

TEST(OnlinePolicy, TreeCountersMatchesUnderlyingStrategy) {
  util::Rng rng(7);
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const int numObjects = 6;
  const std::vector<Request> requests =
      randomRequests(tree, numObjects, 4000, 0.3, rng);

  OnlineOptions options;
  options.replicationThreshold = 3;
  OnlineTreeStrategy strategy(rooted, numObjects, tree.processors().front(),
                              options);
  for (const Request& request : requests) strategy.serve(request);

  const auto policy = buildPolicy(treeCountersSpec(options), rooted,
                                  numObjects, tree.processors().front());
  EXPECT_EQ(policy->name(), "tree-counters");
  const LoadMap loads =
      serveAll(*policy, tree, numObjects, requests, /*useAccumulator=*/true);
  for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
    EXPECT_EQ(loads.edgeLoad(e), strategy.loads().edgeLoad(e)) << "edge "
                                                               << e;
  }
  for (ObjectId x = 0; x < numObjects; ++x) {
    EXPECT_EQ(policy->copySet(x), strategy.copySet(x)) << "object " << x;
  }
  const auto metrics = policy->metrics();
  EXPECT_EQ(metrics.at("policy.threshold"), 3.0);
  EXPECT_TRUE(policy->migratable());
}

TEST(OnlinePolicy, OwnerOnlyChargesPathsToTheOwner) {
  util::Rng rng(11);
  const net::Tree tree = net::makeCaterpillar(3, 2);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const int numObjects = 3;
  const net::NodeId owner = tree.processors().front();
  const std::vector<Request> requests =
      randomRequests(tree, numObjects, 500, 0.4, rng);

  for (const bool useAcc : {false, true}) {
    const auto policy =
        buildPolicy("owner-only", rooted, numObjects, owner);
    EXPECT_FALSE(policy->migratable());
    const LoadMap loads =
        serveAll(*policy, tree, numObjects, requests, useAcc);
    const LoadMap oracle =
        frozenOracle(rooted, std::span(&owner, 1), requests);
    for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
      EXPECT_EQ(loads.edgeLoad(e), oracle.edgeLoad(e))
          << "edge " << e << " acc=" << useAcc;
    }
    EXPECT_EQ(policy->copySet(1), std::vector<net::NodeId>{owner});
  }
}

TEST(OnlinePolicy, FullReplicationReadsLocalWritesBroadcast) {
  util::Rng rng(13);
  const net::Tree tree = net::makeClusterNetwork(2, 3);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const int numObjects = 2;
  const std::vector<Request> requests =
      randomRequests(tree, numObjects, 600, 0.25, rng);

  const auto policy = buildPolicy("full-replication", rooted, numObjects,
                                  tree.processors().front());
  const LoadMap loads =
      serveAll(*policy, tree, numObjects, requests, /*useAccumulator=*/true);
  const std::vector<net::NodeId> procs(tree.processors().begin(),
                                       tree.processors().end());
  const LoadMap oracle = frozenOracle(rooted, procs, requests);
  Count writes = 0;
  for (const Request& request : requests) writes += request.isWrite ? 1 : 0;
  for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
    EXPECT_EQ(loads.edgeLoad(e), oracle.edgeLoad(e)) << "edge " << e;
    // Every edge lies on the all-processors Steiner tree, and
    // processor-origin reads are free: per-edge load is exactly the
    // write count.
    EXPECT_EQ(loads.edgeLoad(e), writes) << "edge " << e;
  }
  EXPECT_THROW(policy->resetCopySet(0, procs), std::logic_error);
}

TEST(OnlinePolicy, StaticServesFrozenPossiblyDisconnectedCopySets) {
  util::Rng rng(17);
  const net::Tree tree = net::makeClusterNetwork(2, 2);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const int numObjects = 2;
  const std::vector<Request> requests =
      randomRequests(tree, numObjects, 400, 0.5, rng);

  const auto policy = buildPolicy("static:placement=extended-nibble",
                                  rooted, numObjects,
                                  tree.processors().front());
  EXPECT_TRUE(policy->migratable());
  // Freeze object copies on two processors in *different* clusters — a
  // disconnected copy set, which the counter strategy's connected-
  // subtree machinery could not serve but the frozen gate tables can.
  const auto procs = tree.processors();
  const std::vector<net::NodeId> copies = {procs[0], procs[3]};
  for (ObjectId x = 0; x < numObjects; ++x) {
    policy->resetCopySet(x, copies);
    EXPECT_EQ(policy->copySet(x), copies);
  }
  for (const bool useAcc : {false, true}) {
    // Rebuild per pass: serving does not mutate frozen state, but keep
    // the two passes independent anyway.
    const auto fresh = buildPolicy("static", rooted, numObjects, procs[0]);
    for (ObjectId x = 0; x < numObjects; ++x) {
      fresh->resetCopySet(x, copies);
    }
    const LoadMap loads =
        serveAll(*fresh, tree, numObjects, requests, useAcc);
    const LoadMap oracle = frozenOracle(rooted, copies, requests);
    for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
      EXPECT_EQ(loads.edgeLoad(e), oracle.edgeLoad(e))
          << "edge " << e << " acc=" << useAcc;
    }
  }
  // The handoff placement comes from the nested strategy and covers
  // every object.
  workload::Workload aggregated(numObjects, tree.nodeCount());
  for (const Request& request : requests) {
    if (request.isWrite) {
      aggregated.addWrites(request.object, request.origin, 1);
    } else {
      aggregated.addReads(request.object, request.origin, 1);
    }
  }
  const core::Placement placement = policy->handoffPlacement(aggregated, 1);
  ASSERT_EQ(placement.numObjects(), numObjects);
  for (const auto& object : placement.objects) {
    EXPECT_FALSE(object.locations().empty());
  }
}

TEST(OnlinePolicy, RunCompetitiveAcceptsPolicySpecs) {
  util::Rng rng(23);
  const net::Tree tree = net::makeClusterNetwork(2, 3);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const std::vector<Request> requests =
      randomRequests(tree, 4, 2000, 0.2, rng);

  // The OnlineOptions overload is exactly the tree-counters spec.
  OnlineOptions options;
  options.replicationThreshold = 2;
  const CompetitiveResult viaOptions =
      runCompetitive(rooted, 4, requests, options);
  const CompetitiveResult viaSpec =
      runCompetitive(rooted, 4, requests, treeCountersSpec(options));
  EXPECT_EQ(viaOptions.onlineCongestion, viaSpec.onlineCongestion);
  EXPECT_EQ(viaOptions.replications, viaSpec.replications);
  EXPECT_EQ(viaOptions.invalidations, viaSpec.invalidations);

  // Every registered policy runs through the same harness; the frozen
  // foils bracket the counter scheme's traffic profile.
  for (const char* spec :
       {"static:placement=extended-nibble", "full-replication",
        "owner-only"}) {
    const CompetitiveResult result = runCompetitive(rooted, 4, requests,
                                                    std::string(spec));
    EXPECT_GT(result.onlineCongestion, 0.0) << spec;
    EXPECT_EQ(result.replications, 0) << spec;
  }
  EXPECT_THROW((void)runCompetitive(rooted, 4, requests,
                                    std::string("nope")),
               std::invalid_argument);
}

TEST(EpochServerPolicy, ReportCarriesPolicySpecAndMetrics) {
  const net::Tree tree = net::makeClusterNetwork(2, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  workload::StreamParams params;
  params.numObjects = 16;
  const auto stream =
      serve::makeGeneratedStream("skewed", tree, params, 3, 5'000);
  serve::ServeOptions options;
  options.epochSize = 1 << 10;
  options.policy = "tree-counters:threshold=4";
  serve::EpochServer server(rooted, params.numObjects, options);
  const serve::ServeReport report = server.serve(*stream);
  EXPECT_EQ(report.policy, "tree-counters:threshold=4");
  EXPECT_EQ(report.policyMetrics.at("policy.threshold"), 4.0);
  EXPECT_EQ(server.policy().name(), "tree-counters");
}

TEST(EpochServerPolicy, NonMigratablePoliciesNeverReplace) {
  const net::Tree tree = net::makeClusterNetwork(2, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  workload::StreamParams params;
  params.numObjects = 32;
  for (const char* spec : {"full-replication", "owner-only"}) {
    const auto stream =
        serve::makeGeneratedStream("skewed", tree, params, 5, 20'000);
    serve::ServeOptions options;
    options.epochSize = 1 << 11;
    options.replaceDrift = 0.1;  // would fire every epoch if allowed
    options.policy = spec;
    serve::EpochServer server(rooted, params.numObjects, options);
    const serve::ServeReport report = server.serve(*stream);
    EXPECT_EQ(report.replacements, 0u) << spec;
    EXPECT_EQ(report.totalRequests, 20'000u) << spec;
  }
}

TEST(EpochServerPolicy, StaticPolicyBitIdenticalAcrossThreadCounts) {
  const net::Tree tree = net::makeClusterNetwork(4, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  workload::StreamParams params;
  params.numObjects = 64;
  const auto run = [&](int threads) {
    const auto stream =
        serve::makeGeneratedStream("bursty", tree, params, 29, 40'000);
    serve::ServeOptions options;
    options.epochSize = 1 << 12;
    options.threads = threads;
    options.replaceDrift = 1.5;  // exercise the handoff path
    options.policy = "static:placement=extended-nibble";
    serve::EpochServer server(rooted, params.numObjects, options);
    const serve::ServeReport report = server.serve(*stream);
    std::ostringstream oss;
    oss.precision(17);
    oss << report.congestion << '|' << report.replacements;
    for (const core::Count load : server.loads().edgeLoads()) {
      oss << ',' << load;
    }
    for (ObjectId x = 0; x < params.numObjects; ++x) {
      oss << ';';
      for (const net::NodeId v : server.copySet(x)) oss << v << ' ';
    }
    return oss.str();
  };
  const std::string sequential = run(1);
  EXPECT_EQ(sequential, run(2));
  EXPECT_EQ(sequential, run(5));
}

}  // namespace
}  // namespace hbn::dynamic
