// The distributed nibble computation must reproduce the sequential nibble
// placement exactly, in O(|X| + height) rounds with perfect pipelining.
#include <gtest/gtest.h>

#include "hbn/core/load.h"
#include "hbn/core/nibble.h"
#include "hbn/dist/distributed_nibble.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::dist {
namespace {

using net::Tree;

void expectSamePlacement(const Tree& t, const core::Placement& a,
                         const core::Placement& b) {
  ASSERT_EQ(a.objects.size(), b.objects.size());
  const net::RootedTree rooted(t, t.defaultRoot());
  for (std::size_t x = 0; x < a.objects.size(); ++x) {
    EXPECT_EQ(a.objects[x].locations(), b.objects[x].locations())
        << "object " << x;
  }
  // Load-level identity (covers the reference assignment too).
  const core::LoadMap la = core::computeLoad(rooted, a);
  const core::LoadMap lb = core::computeLoad(rooted, b);
  for (net::EdgeId e = 0; e < t.edgeCount(); ++e) {
    EXPECT_EQ(la.edgeLoad(e), lb.edgeLoad(e)) << "edge " << e;
  }
}

TEST(DistributedNibble, MatchesSequentialOnGrid) {
  util::Rng rng(91);
  for (int trial = 0; trial < 24; ++trial) {
    const Tree t = trial % 2 == 0
                       ? net::makeRandomTree(18, 6, rng)
                       : net::makeKaryTree(3, 2);
    workload::GenParams params;
    params.numObjects = 5;
    params.requestsPerProcessor = 20;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);
    const net::RootedTree rooted(t, t.defaultRoot());
    const DistributedNibbleResult dist = distributedNibble(rooted, load);
    const core::Placement seq = core::nibblePlacement(t, load);
    expectSamePlacement(t, dist.placement, seq);
    // Gravity centres agree with the sequential tie-break.
    for (workload::ObjectId x = 0; x < load.numObjects(); ++x) {
      EXPECT_EQ(dist.gravityCenters[static_cast<std::size_t>(x)],
                core::nibbleObject(t, load, x).gravityCenter)
          << "object " << x << " trial " << trial;
    }
  }
}

TEST(DistributedNibble, RoundsLinearInObjectsPlusHeight) {
  util::Rng rng(97);
  const Tree t = net::makeKaryTree(2, 5);
  const net::RootedTree rooted(t, t.defaultRoot());
  for (const int numObjects : {1, 8, 32}) {
    workload::GenParams params;
    params.numObjects = numObjects;
    params.requestsPerProcessor = 8;
    util::Rng wrng = rng.split();
    const workload::Workload load =
        workload::generateUniform(t, params, wrng);
    const DistributedNibbleResult result = distributedNibble(rooted, load);
    // Schedule: object i starts at round i; four height-deep waves.
    EXPECT_LE(result.stats.rounds,
              static_cast<std::int64_t>(numObjects) + 4 * rooted.height() + 4)
        << numObjects << " objects";
  }
}

TEST(DistributedNibble, PerfectPipelining) {
  // The wave schedule must never queue two messages on one lane of one
  // directed edge — that is the paper's pipelining claim.
  util::Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const Tree t = net::makeRandomTree(20, 7, rng);
    const net::RootedTree rooted(t, t.defaultRoot());
    workload::GenParams params;
    params.numObjects = 12;
    params.requestsPerProcessor = 10;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);
    const DistributedNibbleResult result = distributedNibble(rooted, load);
    EXPECT_LE(result.stats.maxQueueDepth, 1) << "trial " << trial;
  }
}

TEST(DistributedNibble, HandlesUnusedObjects) {
  const Tree t = net::makeStar(4);
  const net::RootedTree rooted(t, t.defaultRoot());
  workload::Workload load(3, t.nodeCount());
  load.addWrites(1, 2, 5);  // objects 0 and 2 never accessed
  const DistributedNibbleResult result = distributedNibble(rooted, load);
  EXPECT_EQ(result.placement.objects[0].copies.size(), 1u);
  EXPECT_TRUE(t.isProcessor(result.placement.objects[0].copies[0].location));
  const core::Placement seq = core::nibblePlacement(t, load);
  expectSamePlacement(t, result.placement, seq);
}

TEST(DistributedNibble, MessageCountLinear) {
  // Per object at most 4 messages per edge direction (one per wave).
  util::Rng rng(103);
  const Tree t = net::makeKaryTree(3, 3);
  const net::RootedTree rooted(t, t.defaultRoot());
  workload::GenParams params;
  params.numObjects = 10;
  params.requestsPerProcessor = 10;
  const workload::Workload load = workload::generateUniform(t, params, rng);
  const DistributedNibbleResult result = distributedNibble(rooted, load);
  EXPECT_LE(result.stats.messages,
            static_cast<std::int64_t>(4) * load.numObjects() *
                (t.nodeCount() - 1));
}

}  // namespace
}  // namespace hbn::dist
