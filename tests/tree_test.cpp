// Tests for hbn::net::Tree / TreeBuilder — structural invariants of the
// hierarchical bus network model.
#include <gtest/gtest.h>

#include "hbn/net/tree.h"

namespace hbn::net {
namespace {

// The paper's Figure 3 shape: one bus, four processors.
Tree makeFigure3Star() {
  TreeBuilder b;
  const NodeId bus = b.addBus(1000.0);
  for (int i = 0; i < 4; ++i) {
    const NodeId p = b.addProcessor();
    b.connect(bus, p, 1.0);
  }
  return b.build();
}

TEST(TreeBuilder, BuildsStar) {
  const Tree t = makeFigure3Star();
  EXPECT_EQ(t.nodeCount(), 5);
  EXPECT_EQ(t.edgeCount(), 4);
  EXPECT_EQ(t.processorCount(), 4);
  EXPECT_EQ(t.busCount(), 1);
  EXPECT_TRUE(t.isBus(0));
  for (NodeId v = 1; v <= 4; ++v) EXPECT_TRUE(t.isProcessor(v));
  EXPECT_EQ(t.maxDegree(), 4);
  EXPECT_TRUE(t.usesUnitLeafEdges());
}

TEST(TreeBuilder, SingleProcessorTreeIsValid) {
  TreeBuilder b;
  b.addProcessor();
  const Tree t = b.build();
  EXPECT_EQ(t.nodeCount(), 1);
  EXPECT_EQ(t.edgeCount(), 0);
  EXPECT_EQ(t.defaultRoot(), 0);
}

TEST(TreeBuilder, EmptyTreeRejected) {
  TreeBuilder b;
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(TreeBuilder, WrongEdgeCountRejected) {
  TreeBuilder b;
  b.addBus();
  b.addProcessor();
  b.addProcessor();
  // 3 nodes, 1 edge: not a tree.
  b.connect(0, 1);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(TreeBuilder, DisconnectedRejected) {
  TreeBuilder b;
  const NodeId bus1 = b.addBus();
  const NodeId p1 = b.addProcessor();
  const NodeId p2 = b.addProcessor();
  const NodeId p3 = b.addProcessor();
  b.connect(bus1, p1);
  b.connect(bus1, p2);
  // p3 gets an edge to p1? processor-processor is rejected at connect time;
  // give it a multi-edge instead to keep the count right.
  EXPECT_THROW(b.connect(p3, p1), std::invalid_argument);
  b.connect(bus1, p1);  // duplicate edge, keeps |E| = n-1 but creates cycle
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(TreeBuilder, ProcessorProcessorEdgeRejected) {
  TreeBuilder b;
  const NodeId p1 = b.addProcessor();
  const NodeId p2 = b.addProcessor();
  EXPECT_THROW(b.connect(p1, p2), std::invalid_argument);
}

TEST(TreeBuilder, SelfLoopRejected) {
  TreeBuilder b;
  const NodeId bus = b.addBus();
  EXPECT_THROW(b.connect(bus, bus), std::invalid_argument);
}

TEST(TreeBuilder, LeafBusRejected) {
  TreeBuilder b;
  const NodeId bus1 = b.addBus();
  const NodeId bus2 = b.addBus();  // will dangle as a leaf
  const NodeId p = b.addProcessor();
  b.connect(bus1, bus2);
  b.connect(bus1, p);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(TreeBuilder, ProcessorWithTwoEdgesRejected) {
  TreeBuilder b;
  const NodeId bus1 = b.addBus();
  const NodeId bus2 = b.addBus();
  const NodeId p = b.addProcessor();
  // p connects to both buses: degree 2 processor (also makes bus leaves
  // but the processor check fires first at build).
  b.connect(bus1, p);
  b.connect(bus2, p);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(TreeBuilder, BandwidthBelowOneRejected) {
  TreeBuilder b;
  EXPECT_THROW(b.addBus(0.5), std::invalid_argument);
  const NodeId bus = b.addBus();
  const NodeId p = b.addProcessor();
  EXPECT_THROW(b.connect(bus, p, 0.25), std::invalid_argument);
}

TEST(Tree, NeighborsAndOtherEnd) {
  const Tree t = makeFigure3Star();
  EXPECT_EQ(t.degree(0), 4);
  EXPECT_EQ(t.degree(1), 1);
  for (const HalfEdge& he : t.neighbors(0)) {
    EXPECT_EQ(t.otherEnd(he.edge, 0), he.to);
    EXPECT_EQ(t.otherEnd(he.edge, he.to), 0);
  }
  EXPECT_THROW((void)t.otherEnd(0, 3), std::invalid_argument);
}

TEST(Tree, BusBandwidthAccess) {
  const Tree t = makeFigure3Star();
  EXPECT_DOUBLE_EQ(t.busBandwidth(0), 1000.0);
  EXPECT_THROW((void)t.busBandwidth(1), std::invalid_argument);  // a processor
}

TEST(Tree, HeightFrom) {
  // bus0 - bus1 - bus2 chain with processors at each bus.
  TreeBuilder b;
  const NodeId b0 = b.addBus();
  const NodeId b1 = b.addBus();
  const NodeId b2 = b.addBus();
  b.connect(b0, b1);
  b.connect(b1, b2);
  for (const NodeId bus : {b0, b1, b2}) {
    const NodeId p = b.addProcessor();
    b.connect(bus, p);
  }
  const Tree t = b.build();
  EXPECT_EQ(t.heightFrom(b0), 3);  // b0 -> b1 -> b2 -> processor
  EXPECT_EQ(t.heightFrom(b1), 2);
}

TEST(Tree, UnitLeafEdgeDetection) {
  TreeBuilder b;
  const NodeId bus = b.addBus();
  const NodeId p1 = b.addProcessor();
  const NodeId p2 = b.addProcessor();
  b.connect(bus, p1, 2.0);  // non-unit leaf switch
  b.connect(bus, p2, 1.0);
  const Tree t = b.build();
  EXPECT_FALSE(t.usesUnitLeafEdges());
}

TEST(Tree, DefaultRootPrefersBus) {
  const Tree t = makeFigure3Star();
  EXPECT_TRUE(t.isBus(t.defaultRoot()));
}

TEST(Tree, OutOfRangeAccessThrows) {
  const Tree t = makeFigure3Star();
  EXPECT_THROW((void)t.kind(99), std::out_of_range);
  EXPECT_THROW((void)t.kind(-1), std::out_of_range);
  EXPECT_THROW((void)t.edgeBandwidth(99), std::out_of_range);
}

TEST(Tree, ProcessorAndBusListsAreSortedAndComplete) {
  const Tree t = makeFigure3Star();
  ASSERT_EQ(t.processors().size(), 4u);
  for (std::size_t i = 1; i < t.processors().size(); ++i) {
    EXPECT_LT(t.processors()[i - 1], t.processors()[i]);
  }
  EXPECT_EQ(t.buses().size(), 1u);
  EXPECT_EQ(t.buses()[0], 0);
}

}  // namespace
}  // namespace hbn::net
