// Tests for the store-and-forward simulator: schedule validity and the
// makespan >= max(congestion, dilation) bandwidth bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "hbn/baseline/heuristics.h"
#include "hbn/core/extended_nibble.h"
#include "hbn/net/generators.h"
#include "hbn/sim/simulator.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::sim {
namespace {

using net::Tree;

TEST(TaskGraph, UnicastChainShape) {
  const Tree t = net::makeCaterpillar(3, 1);  // path-ish tree
  const net::RootedTree rooted(t, t.defaultRoot());
  TaskGraph graph(rooted);
  const net::NodeId from = t.processors().front();
  const net::NodeId to = t.processors().back();
  graph.addUnicast(from, to, 2);
  EXPECT_EQ(graph.taskCount(), 2 * rooted.distance(from, to));
  EXPECT_EQ(graph.dilation(), rooted.distance(from, to));
}

TEST(TaskGraph, SelfUnicastIsFree) {
  const Tree t = net::makeStar(3);
  const net::RootedTree rooted(t, t.defaultRoot());
  TaskGraph graph(rooted);
  graph.addUnicast(1, 1, 50);
  EXPECT_EQ(graph.taskCount(), 0);
}

TEST(TaskGraph, BroadcastCoversSteinerTreeOncePerWave) {
  const Tree t = net::makeStar(5);
  const net::RootedTree rooted(t, t.defaultRoot());
  TaskGraph graph(rooted);
  const std::vector<net::NodeId> terminals{1, 2, 3};
  graph.addWriteBroadcast(1, terminals, 4);
  // Steiner tree of {1,2,3} in a star: 3 edges; 4 waves.
  EXPECT_EQ(graph.taskCount(), 12);
  // Wave depth: root leaf -> bus -> other leaves = 2 hops.
  EXPECT_EQ(graph.dilation(), 2);
}

TEST(Simulator, SingleMessageTakesDistanceSteps) {
  const Tree t = net::makeCaterpillar(4, 1);
  const net::RootedTree rooted(t, t.defaultRoot());
  TaskGraph graph(rooted);
  const net::NodeId from = t.processors().front();
  const net::NodeId to = t.processors().back();
  graph.addUnicast(from, to, 1);
  const SimResult result = runSimulation(graph);
  EXPECT_EQ(result.makespan, rooted.distance(from, to));
  EXPECT_EQ(result.dilation, rooted.distance(from, to));
}

TEST(Simulator, MakespanAtLeastCongestionAndDilation) {
  util::Rng rng(81);
  for (int trial = 0; trial < 15; ++trial) {
    const Tree t = net::makeRandomTree(15, 5, rng);
    const net::RootedTree rooted(t, t.defaultRoot());
    workload::GenParams params;
    params.numObjects = 4;
    params.requestsPerProcessor = 10;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);
    const core::Placement placement =
        core::computeExtendedNibblePlacement(t, load);
    const SimResult result = simulatePlacement(rooted, load, placement);
    EXPECT_GE(result.makespan,
              static_cast<std::int64_t>(std::ceil(result.congestion)))
        << "trial " << trial;
    EXPECT_GE(result.makespan, result.dilation) << "trial " << trial;
  }
}

TEST(Simulator, MakespanWithinSmallFactorOfBound) {
  // The greedy schedule should stay within a modest factor of
  // congestion + dilation on reasonable instances.
  util::Rng rng(83);
  const Tree t = net::makeKaryTree(3, 3);
  const net::RootedTree rooted(t, t.defaultRoot());
  workload::GenParams params;
  params.numObjects = 6;
  params.requestsPerProcessor = 15;
  const workload::Workload load = workload::generateZipf(t, params, rng);
  const core::Placement placement =
      core::computeExtendedNibblePlacement(t, load);
  const SimResult result = simulatePlacement(rooted, load, placement);
  EXPECT_LE(static_cast<double>(result.makespan),
            4.0 * (result.congestion + result.dilation));
}

TEST(Simulator, HigherBandwidthShortensMakespan) {
  util::Rng rng(87);
  workload::GenParams params;
  params.numObjects = 4;
  params.requestsPerProcessor = 20;

  net::BandwidthModel slow;  // everything bandwidth 1
  const Tree slowTree = net::makeKaryTree(4, 2, slow);
  const workload::Workload load =
      workload::generateUniform(slowTree, params, rng);

  net::BandwidthModel fast;
  fast.fatTree = true;  // inner links scale with subtree size
  const Tree fastTree = net::makeKaryTree(4, 2, fast);

  const net::RootedTree slowRooted(slowTree, slowTree.defaultRoot());
  const net::RootedTree fastRooted(fastTree, fastTree.defaultRoot());
  const core::Placement placement =
      core::computeExtendedNibblePlacement(slowTree, load);
  // Same placement, same message set; only bandwidths differ.
  const SimResult slowResult = simulatePlacement(slowRooted, load, placement);
  const SimResult fastResult = simulatePlacement(fastRooted, load, placement);
  EXPECT_LT(fastResult.makespan, slowResult.makespan);
}

TEST(Simulator, CongestionOrderingPredictsMakespanOrdering) {
  // E7 in miniature: a strategy with clearly lower congestion should
  // finish its traffic sooner.
  util::Rng rng(89);
  const Tree t = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(t, t.defaultRoot());
  workload::GenParams params;
  params.numObjects = 6;
  params.requestsPerProcessor = 25;
  params.readFraction = 0.9;
  const workload::Workload load =
      workload::generateClustered(t, params, rng);

  const core::Placement good = core::computeExtendedNibblePlacement(t, load);
  // All copies on one leaf: maximally congested around that leaf edge.
  core::Placement bad;
  const net::NodeId hot[] = {t.processors().front()};
  for (workload::ObjectId x = 0; x < load.numObjects(); ++x) {
    bad.objects.push_back(core::makeNearestPlacement(t, load, x, hot));
  }
  const SimResult goodResult = simulatePlacement(rooted, load, good);
  const SimResult badResult = simulatePlacement(rooted, load, bad);
  ASSERT_LT(goodResult.congestion, badResult.congestion);
  EXPECT_LT(goodResult.makespan, badResult.makespan);
}

TEST(Simulator, BottleneckEdgeRunsNearFullUtilization) {
  // 100 messages across one shared leaf edge: that edge must be busy
  // every step (utilisation 1.0) and dominate the makespan.
  const Tree t = net::makeStar(3);
  const net::RootedTree rooted(t, t.defaultRoot());
  TaskGraph graph(rooted);
  graph.addUnicast(1, 2, 100);
  const SimResult result = runSimulation(graph);
  EXPECT_EQ(result.makespan, 101);  // 100 steps on each edge, 1 hop offset
  EXPECT_GT(result.maxUtilization, 0.95);
  ASSERT_EQ(result.edgeUtilization.size(),
            static_cast<std::size_t>(t.edgeCount()));
  double total = 0.0;
  for (const double u : result.edgeUtilization) {
    EXPECT_LE(u, 1.0 + 1e-9);
    total += u;
  }
  EXPECT_GT(total, 0.0);
}

TEST(Simulator, EmptyGraphIsInstant) {
  const Tree t = net::makeStar(3);
  const net::RootedTree rooted(t, t.defaultRoot());
  TaskGraph graph(rooted);
  const SimResult result = runSimulation(graph);
  EXPECT_EQ(result.makespan, 0);
  EXPECT_EQ(result.totalTasks, 0);
}

TEST(Simulator, MaxStepsGuard) {
  const Tree t = net::makeStar(3);
  const net::RootedTree rooted(t, t.defaultRoot());
  TaskGraph graph(rooted);
  graph.addUnicast(1, 2, 100);
  SimOptions options;
  options.maxSteps = 3;  // needs ~100 steps through the shared leaf edge
  EXPECT_THROW((void)runSimulation(graph, options), std::runtime_error);
}

TEST(Simulator, RejectsNegativeCounts) {
  const Tree t = net::makeStar(3);
  const net::RootedTree rooted(t, t.defaultRoot());
  TaskGraph graph(rooted);
  EXPECT_THROW(graph.addUnicast(1, 2, -1), std::invalid_argument);
  const std::vector<net::NodeId> terminals{1, 2};
  EXPECT_THROW(graph.addWriteBroadcast(1, terminals, -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace hbn::sim
