// Round-trip coverage for util/json.h: what JsonRecords emits must parse
// back through util::parseRecords with keys in emission order, values
// intact, and non-finite doubles mapped to null — the contract every
// BENCH_*.json trajectory file rests on.
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "hbn/util/json.h"

namespace hbn::util {
namespace {

std::string render(const JsonRecords& records) {
  std::ostringstream oss;
  records.write(oss);
  return oss.str();
}

TEST(JsonRoundTrip, EmptyArrayParses) {
  JsonRecords records;
  const auto parsed = parseRecords(render(records));
  EXPECT_TRUE(parsed.empty());
}

TEST(JsonRoundTrip, PreservesKeyOrderAndValues) {
  JsonRecords records;
  records.beginRecord();
  records.field("zeta", std::string_view("first"));
  records.field("alpha", std::int64_t{42});
  records.field("mid", 2.5);
  records.beginRecord();
  records.field("only", std::int64_t{-7});

  const auto parsed = parseRecords(render(records));
  ASSERT_EQ(parsed.size(), 2u);
  ASSERT_EQ(parsed[0].size(), 3u);
  // Emission order survives, not alphabetical order.
  EXPECT_EQ(parsed[0][0].key, "zeta");
  EXPECT_EQ(parsed[0][0].kind, ParsedField::Kind::string);
  EXPECT_EQ(parsed[0][0].text, "first");
  EXPECT_EQ(parsed[0][1].key, "alpha");
  EXPECT_EQ(parsed[0][1].kind, ParsedField::Kind::number);
  EXPECT_DOUBLE_EQ(parsed[0][1].number, 42.0);
  EXPECT_EQ(parsed[0][1].text, "42");
  EXPECT_EQ(parsed[0][2].key, "mid");
  EXPECT_DOUBLE_EQ(parsed[0][2].number, 2.5);
  ASSERT_EQ(parsed[1].size(), 1u);
  EXPECT_EQ(parsed[1][0].key, "only");
  EXPECT_DOUBLE_EQ(parsed[1][0].number, -7.0);
}

TEST(JsonRoundTrip, NanAndInfinityBecomeNull) {
  JsonRecords records;
  records.beginRecord();
  records.field("nan", std::numeric_limits<double>::quiet_NaN());
  records.field("pos_inf", std::numeric_limits<double>::infinity());
  records.field("neg_inf", -std::numeric_limits<double>::infinity());
  records.field("finite", 1.0);

  const auto parsed = parseRecords(render(records));
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].size(), 4u);
  EXPECT_EQ(parsed[0][0].kind, ParsedField::Kind::null);
  EXPECT_EQ(parsed[0][1].kind, ParsedField::Kind::null);
  EXPECT_EQ(parsed[0][2].kind, ParsedField::Kind::null);
  EXPECT_EQ(parsed[0][3].kind, ParsedField::Kind::number);
}

TEST(JsonRoundTrip, BooleansAreRealJsonBooleans) {
  JsonRecords records;
  records.beginRecord();
  records.field("yes", true);
  records.field("no", false);

  const std::string text = render(records);
  EXPECT_NE(text.find("\"yes\": true"), std::string::npos);
  EXPECT_NE(text.find("\"no\": false"), std::string::npos);
  const auto parsed = parseRecords(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0][0].kind, ParsedField::Kind::boolean);
  EXPECT_DOUBLE_EQ(parsed[0][0].number, 1.0);
  EXPECT_EQ(parsed[0][1].kind, ParsedField::Kind::boolean);
  EXPECT_DOUBLE_EQ(parsed[0][1].number, 0.0);
  EXPECT_THROW(parseRecords("[{\"a\": tru}]"), std::runtime_error);
}

TEST(JsonRoundTrip, EscapedStringsSurvive) {
  JsonRecords records;
  records.beginRecord();
  records.field("tricky",
                std::string_view("quote \" backslash \\ newline \n tab \t"));
  records.field("control", std::string_view("bell \x07 end"));

  const auto parsed = parseRecords(render(records));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0][0].text, "quote \" backslash \\ newline \n tab \t");
  EXPECT_EQ(parsed[0][1].text, "bell \x07 end");
}

TEST(JsonRoundTrip, ExtremeIntegersKeepExactText) {
  JsonRecords records;
  records.beginRecord();
  records.field("max", std::numeric_limits<std::int64_t>::max());
  records.field("min", std::numeric_limits<std::int64_t>::min());

  const auto parsed = parseRecords(render(records));
  // Doubles cannot hold int64 max exactly; the preserved literal can.
  EXPECT_EQ(parsed[0][0].text, "9223372036854775807");
  EXPECT_EQ(parsed[0][1].text, "-9223372036854775808");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(parseRecords(""), std::runtime_error);
  EXPECT_THROW(parseRecords("{\"a\": 1}"), std::runtime_error);  // no array
  EXPECT_THROW(parseRecords("[{\"a\": 1}"), std::runtime_error);
  EXPECT_THROW(parseRecords("[{\"a\": }]"), std::runtime_error);
  EXPECT_THROW(parseRecords("[{\"a\": 1,}]"), std::runtime_error);
  EXPECT_THROW(parseRecords("[{\"a\": 1}] trailing"), std::runtime_error);
  EXPECT_THROW(parseRecords("[{\"a\": [1]}]"), std::runtime_error);  // nested
  EXPECT_THROW(parseRecords("[{\"a\": 1, \"a\": 2}]"),
               std::runtime_error);  // duplicate key
  EXPECT_THROW(parseRecords("[{\"a\": 1e}]"), std::runtime_error);
}

TEST(JsonRoundTrip, NullIsAFixedPointAcrossASecondRoundTrip) {
  // parse→emit→parse: a field that was NaN/inf (emitted as null) must
  // come back as null again when the parsed record is re-emitted through
  // the double overload — ParsedField::number carries NaN for null.
  JsonRecords first;
  first.beginRecord();
  first.field("v", std::numeric_limits<double>::quiet_NaN());
  first.field("w", std::numeric_limits<double>::infinity());
  const auto onceParsed = parseRecords(render(first));
  ASSERT_EQ(onceParsed.size(), 1u);
  EXPECT_TRUE(std::isnan(onceParsed[0][0].number));
  EXPECT_TRUE(std::isnan(onceParsed[0][1].number));

  JsonRecords second;
  second.beginRecord();
  for (const ParsedField& field : onceParsed[0]) {
    second.field(field.key, field.number);
  }
  EXPECT_EQ(render(second), render(first));
  const auto twiceParsed = parseRecords(render(second));
  EXPECT_EQ(twiceParsed[0][0].kind, ParsedField::Kind::null);
  EXPECT_EQ(twiceParsed[0][1].kind, ParsedField::Kind::null);
}

TEST(JsonParse, NumberParsingIsStrictAndLocaleIndependent) {
  // Trailing garbage inside a number literal must fail loudly, not
  // partial-parse (std::stod semantics this parser must not have).
  EXPECT_THROW(parseRecords("[{\"a\": 1.5e}]"), std::runtime_error);
  EXPECT_THROW(parseRecords("[{\"a\": 1.2.3}]"), std::runtime_error);
  EXPECT_THROW(parseRecords("[{\"a\": 12-3}]"), std::runtime_error);
  EXPECT_THROW(parseRecords("[{\"a\": --5}]"), std::runtime_error);
  // The literal forms the emitter produces all parse exactly.
  const auto parsed =
      parseRecords("[{\"a\": 1.5, \"b\": -2e-3, \"c\": 1.2e+10}]");
  EXPECT_DOUBLE_EQ(parsed[0][0].number, 1.5);
  EXPECT_DOUBLE_EQ(parsed[0][1].number, -2e-3);
  EXPECT_DOUBLE_EQ(parsed[0][2].number, 1.2e10);
}

TEST(JsonParse, AcceptsWhitespaceAndEmptyRecords) {
  const auto parsed = parseRecords("  [ { } ,\n {\"k\" : null} ]\n");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_TRUE(parsed[0].empty());
  EXPECT_EQ(parsed[1][0].kind, ParsedField::Kind::null);
}

TEST(JsonRoundTrip, DottedPolicyMetricKeysStayFlatKeys) {
  // hbn_serve --json emits the serving policy's diagnostics as flat
  // dot-namespaced keys ("policy.adaptive.member1.share", ...). The
  // round trip must preserve those keys verbatim — dots are part of the
  // key, never an invitation to nest — and keep member metrics in
  // emission order next to their siblings.
  JsonRecords records;
  records.beginRecord();
  records.field("policy", std::string_view(
                              "adaptive:members=tree-counters+"
                              "full-replication,window=2"));
  records.field("policy.adaptive.members", std::int64_t{2});
  records.field("policy.adaptive.switches", std::int64_t{21});
  records.field("policy.adaptive.member0.objects", std::int64_t{59});
  records.field("policy.adaptive.member0.share", 0.9375);
  records.field("policy.adaptive.member1.objects", std::int64_t{5});
  records.field("policy.adaptive.member1.share", 0.0625);

  const auto parsed = parseRecords(render(records));
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].size(), 7u);
  EXPECT_EQ(parsed[0][0].kind, ParsedField::Kind::string);
  EXPECT_EQ(parsed[0][0].text,
            "adaptive:members=tree-counters+full-replication,window=2");
  EXPECT_EQ(parsed[0][3].key, "policy.adaptive.member0.objects");
  EXPECT_DOUBLE_EQ(parsed[0][3].number, 59.0);
  EXPECT_EQ(parsed[0][4].key, "policy.adaptive.member0.share");
  EXPECT_DOUBLE_EQ(parsed[0][4].number, 0.9375);
  EXPECT_EQ(parsed[0][6].key, "policy.adaptive.member1.share");
  EXPECT_DOUBLE_EQ(parsed[0][6].number, 0.0625);
  // The two members' shares partition the charged load.
  EXPECT_DOUBLE_EQ(parsed[0][4].number + parsed[0][6].number, 1.0);
}

TEST(JsonRoundTrip, FileWriteMatchesStreamWrite) {
  JsonRecords records;
  records.beginRecord();
  records.field("k", std::int64_t{1});
  const std::string path = testing::TempDir() + "json_roundtrip_test.json";
  records.writeFile(path);
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  EXPECT_EQ(oss.str(), render(records));
}

}  // namespace
}  // namespace hbn::util
