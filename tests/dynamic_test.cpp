// Tests for the online (dynamic) strategy and its competitive harness.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/dynamic/harness.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::dynamic {
namespace {

using net::Tree;

TEST(OnlineStrategy, FirstReadTravelsToInitialCopy) {
  const Tree t = net::makeStar(3);
  const net::RootedTree rooted(t, t.defaultRoot());
  OnlineTreeStrategy strategy(rooted, 1, t.processors().front());
  strategy.serve(Request{0, 2, false});
  // Path 2 -> bus -> 1 loads two edges by 1 each.
  EXPECT_EQ(strategy.loads().totalLoad(), 2);
}

TEST(OnlineStrategy, RepeatedReadsTriggerReplication) {
  const Tree t = net::makeStar(3);
  const net::RootedTree rooted(t, t.defaultRoot());
  OnlineOptions options;
  options.replicationThreshold = 2;
  OnlineTreeStrategy strategy(rooted, 1, 1, options);
  for (int i = 0; i < 6; ++i) strategy.serve(Request{0, 2, false});
  EXPECT_GT(strategy.replications(), 0);
  const auto copies = strategy.copySet(0);
  // The reader's node eventually holds a copy: later reads are local.
  EXPECT_NE(std::find(copies.begin(), copies.end(), 2), copies.end());
}

TEST(OnlineStrategy, LocalReadsAreFreeAfterReplication) {
  const Tree t = net::makeStar(3);
  const net::RootedTree rooted(t, t.defaultRoot());
  OnlineOptions options;
  options.replicationThreshold = 1;
  OnlineTreeStrategy strategy(rooted, 1, 1, options);
  for (int i = 0; i < 3; ++i) strategy.serve(Request{0, 2, false});
  const auto loadAfterWarmup = strategy.loads().totalLoad();
  strategy.serve(Request{0, 2, false});
  EXPECT_EQ(strategy.loads().totalLoad(), loadAfterWarmup);  // served locally
}

TEST(OnlineStrategy, WriteContractsCopySet) {
  const Tree t = net::makeStar(4);
  const net::RootedTree rooted(t, t.defaultRoot());
  OnlineOptions options;
  options.replicationThreshold = 1;
  OnlineTreeStrategy strategy(rooted, 1, 1, options);
  for (const net::NodeId reader : {2, 3, 4}) {
    for (int i = 0; i < 3; ++i) {
      strategy.serve(Request{0, reader, false});
    }
  }
  EXPECT_GT(strategy.copySet(0).size(), 1u);
  strategy.serve(Request{0, 2, true});
  EXPECT_EQ(strategy.copySet(0).size(), 1u);
  EXPECT_GT(strategy.invalidations(), 0);
}

TEST(OnlineStrategy, CopySetStaysConnected) {
  util::Rng rng(111);
  const Tree t = net::makeKaryTree(3, 2);
  const net::RootedTree rooted(t, t.defaultRoot());
  OnlineOptions options;
  options.replicationThreshold = 1;
  OnlineTreeStrategy strategy(rooted, 2, t.processors().front(), options);
  for (int i = 0; i < 200; ++i) {
    const Request request{
        static_cast<workload::ObjectId>(rng.nextBelow(2)),
        t.processors()[static_cast<std::size_t>(
            rng.nextBelow(t.processors().size()))],
        rng.nextBool(0.2)};
    strategy.serve(request);
    // Connectivity check of copy set 0 via BFS.
    const auto copies = strategy.copySet(0);
    ASSERT_FALSE(copies.empty());
    std::vector<char> inSet(static_cast<std::size_t>(t.nodeCount()), 0);
    for (const net::NodeId v : copies) {
      inSet[static_cast<std::size_t>(v)] = 1;
    }
    std::vector<net::NodeId> stack{copies.front()};
    std::vector<char> seen(static_cast<std::size_t>(t.nodeCount()), 0);
    seen[static_cast<std::size_t>(copies.front())] = 1;
    std::size_t reached = 1;
    while (!stack.empty()) {
      const net::NodeId v = stack.back();
      stack.pop_back();
      for (const net::HalfEdge& he : t.neighbors(v)) {
        if (inSet[static_cast<std::size_t>(he.to)] &&
            !seen[static_cast<std::size_t>(he.to)]) {
          seen[static_cast<std::size_t>(he.to)] = 1;
          ++reached;
          stack.push_back(he.to);
        }
      }
    }
    ASSERT_EQ(reached, copies.size()) << "request " << i;
  }
}

TEST(Harness, SequenceFromWorkloadCoversAllRequests) {
  util::Rng rng(113);
  const Tree t = net::makeStar(5);
  workload::GenParams params;
  params.numObjects = 3;
  params.requestsPerProcessor = 10;
  const workload::Workload load = workload::generateUniform(t, params, rng);
  const auto requests = sequenceFromWorkload(load, rng);
  EXPECT_EQ(static_cast<workload::Count>(requests.size()),
            load.grandTotal());
}

TEST(Harness, CompetitiveRatioModestOnRandomWorkloads) {
  util::Rng rng(127);
  for (int trial = 0; trial < 8; ++trial) {
    const Tree t = net::makeRandomTree(16, 5, rng);
    const net::RootedTree rooted(t, t.defaultRoot());
    workload::GenParams params;
    params.numObjects = 4;
    params.requestsPerProcessor = 30;
    params.readFraction = 0.7;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);
    const auto requests = sequenceFromWorkload(load, rng);
    const CompetitiveResult result = runCompetitive(rooted, 4, requests);
    EXPECT_GT(result.onlineCongestion, 0.0);
    if (result.offlineLowerBound > 0.0) {
      // Loose sanity bound; the bench reports the measured distribution.
      EXPECT_LT(result.ratio, 40.0) << "trial " << trial;
    } else {
      EXPECT_TRUE(std::isinf(result.ratio)) << "trial " << trial;
    }
  }
}

TEST(Harness, RatioIsTrueRatioForSubUnitLowerBounds) {
  // Bandwidth-2 edges make the offline lower bound land in (0, 1); the
  // ratio must divide by it, not by max(LB, 1) (which silently deflated
  // ratios below 1 for exactly these instances).
  net::TreeBuilder builder;
  const net::NodeId bus = builder.addBus(2.0);
  const net::NodeId writer = builder.addProcessor();
  const net::NodeId reader = builder.addProcessor();
  builder.connect(bus, writer, 2.0);
  builder.connect(bus, reader, 2.0);
  const net::Tree t = builder.build();
  const net::RootedTree rooted(t, t.defaultRoot());

  // One write from the initial location, one read from the other leaf:
  // online pays the 2-edge read path (congestion 0.5), and the offline
  // bound of the aggregated frequencies is 0.5 as well.
  const std::vector<Request> requests = {{0, writer, true},
                                         {0, reader, false}};
  const CompetitiveResult result = runCompetitive(rooted, 1, requests);
  ASSERT_GT(result.offlineLowerBound, 0.0);
  ASSERT_LT(result.offlineLowerBound, 1.0);
  EXPECT_DOUBLE_EQ(result.ratio,
                   result.onlineCongestion / result.offlineLowerBound);
  EXPECT_GE(result.ratio, 1.0);
}

TEST(Harness, RatioGuardsZeroLowerBoundExplicitly) {
  const net::Tree t = net::makeStar(3);
  const net::RootedTree rooted(t, t.defaultRoot());
  // A single remote read: online pays, but with zero write contention
  // the per-edge bound is zero — the ratio must be reported as infinite,
  // not silently divided by 1.
  const CompetitiveResult paying =
      runCompetitive(rooted, 1, {{0, 2, false}});
  EXPECT_EQ(paying.offlineLowerBound, 0.0);
  EXPECT_GT(paying.onlineCongestion, 0.0);
  EXPECT_TRUE(std::isinf(paying.ratio));
  // No requests at all: trivially optimal.
  const CompetitiveResult idle = runCompetitive(rooted, 1, {});
  EXPECT_DOUBLE_EQ(idle.ratio, 1.0);
}

TEST(Harness, PingPongSequenceShape) {
  util::Rng rng(131);
  const Tree t = net::makeClusterNetwork(2, 3);
  const auto requests = makePingPongSequence(t, 2, 5, 4, rng);
  EXPECT_EQ(requests.size(), 2u * 5u * (4u + 1u));
  int writes = 0;
  for (const Request& r : requests) writes += r.isWrite ? 1 : 0;
  EXPECT_EQ(writes, 10);
}

TEST(Harness, BucketRequestsHandlesEdgeCases) {
  // Zero objects with an empty span: offsets is the single sentinel 0.
  std::vector<std::size_t> offsets(1, 99);
  bucketRequestsByObject({}, 0, offsets, {});
  EXPECT_EQ(offsets[0], 0u);

  // Empty request span over a non-trivial object range: every run is
  // empty and every offset 0.
  offsets.assign(4, 77);
  bucketRequestsByObject({}, 3, offsets, {});
  for (const std::size_t o : offsets) EXPECT_EQ(o, 0u);

  // All requests on one object: the bucketed order is the arrival
  // order, runs of other objects are empty.
  const std::vector<Request> requests = {
      {1, 2, false}, {1, 3, true}, {1, 2, true}, {1, 4, false}};
  offsets.assign(4, 0);
  std::vector<Request> bucketed(requests.size());
  bucketRequestsByObject(requests, 3, offsets, bucketed);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 0u);
  EXPECT_EQ(offsets[2], 4u);
  EXPECT_EQ(offsets[3], 4u);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(bucketed[i].origin, requests[i].origin) << i;
    EXPECT_EQ(bucketed[i].isWrite, requests[i].isWrite) << i;
  }

  // Out-of-range object ids are rejected loudly (both directions), as
  // are mismatched buffer sizes.
  offsets.assign(3, 0);
  std::vector<Request> two(2);
  EXPECT_THROW(bucketRequestsByObject(
                   std::vector<Request>{{2, 0, false}, {0, 0, false}}, 2,
                   offsets, two),
               std::out_of_range);
  EXPECT_THROW(bucketRequestsByObject(
                   std::vector<Request>{{-1, 0, false}, {0, 0, false}}, 2,
                   offsets, two),
               std::out_of_range);
  EXPECT_THROW(
      bucketRequestsByObject(std::vector<Request>{{0, 0, false}}, 2,
                             offsets, two),
      std::invalid_argument);
  std::vector<std::size_t> shortOffsets(2, 0);
  EXPECT_THROW(bucketRequestsByObject(two, 2, shortOffsets, two),
               std::invalid_argument);
}

TEST(Harness, RejectsBadParameters) {
  util::Rng rng(137);
  const Tree t = net::makeStar(3);
  EXPECT_THROW((void)makePingPongSequence(t, 0, 1, 1, rng),
               std::invalid_argument);
  const net::RootedTree rooted(t, t.defaultRoot());
  OnlineOptions bad;
  bad.replicationThreshold = 0;
  EXPECT_THROW(OnlineTreeStrategy(rooted, 1, 1, bad), std::invalid_argument);
}

}  // namespace
}  // namespace hbn::dynamic
