// Tests for hbn::net::RootedTree — parents, depths, levels, LCA, paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "hbn/net/generators.h"
#include "hbn/net/rooted.h"
#include "hbn/util/rng.h"

namespace hbn::net {
namespace {

// Reference LCA by walking parents (O(depth)).
NodeId slowLca(const RootedTree& r, NodeId u, NodeId v) {
  while (u != v) {
    if (r.depth(u) >= r.depth(v)) {
      u = r.parent(u);
    } else {
      v = r.parent(v);
    }
  }
  return u;
}

TEST(RootedTree, ParentsAndDepths) {
  const Tree t = makeKaryTree(2, 2);  // 3 buses, 4 processors
  const RootedTree r(t, t.defaultRoot());
  EXPECT_EQ(r.parent(r.root()), kInvalidNode);
  EXPECT_EQ(r.depth(r.root()), 0);
  EXPECT_EQ(r.height(), 2);
  for (NodeId v = 0; v < t.nodeCount(); ++v) {
    if (v == r.root()) continue;
    EXPECT_EQ(r.depth(v), r.depth(r.parent(v)) + 1);
    const Edge& e = t.edge(r.parentEdge(v));
    EXPECT_TRUE((e.u == v && e.v == r.parent(v)) ||
                (e.v == v && e.u == r.parent(v)));
  }
}

TEST(RootedTree, LevelNumberingMatchesPaper) {
  const Tree t = makeKaryTree(2, 3);
  const RootedTree r(t, t.defaultRoot());
  EXPECT_EQ(r.level(r.root()), r.height());
  for (const NodeId p : t.processors()) {
    EXPECT_EQ(r.level(p), r.height() - r.depth(p));
  }
}

TEST(RootedTree, PreorderParentsFirst) {
  util::Rng rng(5);
  const Tree t = makeRandomTree(30, 8, rng);
  const RootedTree r(t, t.defaultRoot());
  std::vector<int> position(static_cast<std::size_t>(t.nodeCount()), -1);
  const auto order = r.preorder();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(t.nodeCount()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (NodeId v = 0; v < t.nodeCount(); ++v) {
    if (v == r.root()) continue;
    EXPECT_LT(position[static_cast<std::size_t>(r.parent(v))],
              position[static_cast<std::size_t>(v)]);
  }
}

TEST(RootedTree, ChildrenAreInverseOfParent) {
  util::Rng rng(6);
  const Tree t = makeRandomTree(25, 6, rng);
  const RootedTree r(t, t.defaultRoot());
  int childLinks = 0;
  for (NodeId v = 0; v < t.nodeCount(); ++v) {
    for (const NodeId c : r.children(v)) {
      EXPECT_EQ(r.parent(c), v);
      ++childLinks;
    }
  }
  EXPECT_EQ(childLinks, t.nodeCount() - 1);
}

TEST(RootedTree, LcaMatchesSlowReference) {
  util::Rng rng(7);
  const Tree t = makeRandomTree(40, 12, rng);
  const RootedTree r(t, t.defaultRoot());
  for (int trial = 0; trial < 500; ++trial) {
    const auto u = static_cast<NodeId>(
        rng.nextBelow(static_cast<std::uint64_t>(t.nodeCount())));
    const auto v = static_cast<NodeId>(
        rng.nextBelow(static_cast<std::uint64_t>(t.nodeCount())));
    EXPECT_EQ(r.lca(u, v), slowLca(r, u, v)) << "u=" << u << " v=" << v;
  }
}

TEST(RootedTree, DistanceViaLca) {
  const Tree t = makeCaterpillar(4, 1);  // chain of 4 buses, 1 proc each
  const RootedTree r(t, t.defaultRoot());
  // First and last processors are 3 bus hops + 2 leaf edges apart.
  const NodeId first = t.processors().front();
  const NodeId last = t.processors().back();
  EXPECT_EQ(r.distance(first, last), 5);
  EXPECT_EQ(r.distance(first, first), 0);
}

TEST(RootedTree, IsAncestorOf) {
  const Tree t = makeKaryTree(2, 2);
  const RootedTree r(t, t.defaultRoot());
  for (NodeId v = 0; v < t.nodeCount(); ++v) {
    EXPECT_TRUE(r.isAncestorOf(r.root(), v));
    EXPECT_TRUE(r.isAncestorOf(v, v));
    if (v != r.root()) {
      EXPECT_FALSE(r.isAncestorOf(v, r.root()));
    }
  }
}

TEST(RootedTree, PathEdgesConnectEndpoints) {
  util::Rng rng(9);
  const Tree t = makeRandomTree(35, 10, rng);
  const RootedTree r(t, t.defaultRoot());
  for (int trial = 0; trial < 200; ++trial) {
    const auto u = static_cast<NodeId>(
        rng.nextBelow(static_cast<std::uint64_t>(t.nodeCount())));
    const auto v = static_cast<NodeId>(
        rng.nextBelow(static_cast<std::uint64_t>(t.nodeCount())));
    // Walk the emitted edges; they must join u to v consecutively.
    NodeId current = u;
    int edges = 0;
    r.forEachPathEdge(u, v, [&](EdgeId e) {
      current = t.otherEnd(e, current);
      ++edges;
    });
    EXPECT_EQ(current, v);
    EXPECT_EQ(edges, r.distance(u, v));
  }
}

TEST(RootedTree, PathNodesEndpointsInclusive) {
  const Tree t = makeKaryTree(3, 2);
  const RootedTree r(t, t.defaultRoot());
  const NodeId u = t.processors().front();
  const NodeId v = t.processors().back();
  const auto nodes = r.pathNodes(u, v);
  ASSERT_GE(nodes.size(), 2u);
  EXPECT_EQ(nodes.front(), u);
  EXPECT_EQ(nodes.back(), v);
  EXPECT_EQ(static_cast<int>(nodes.size()), r.distance(u, v) + 1);
  // Consecutive nodes must be adjacent.
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    bool adjacent = false;
    for (const HalfEdge& he : t.neighbors(nodes[i - 1])) {
      adjacent |= (he.to == nodes[i]);
    }
    EXPECT_TRUE(adjacent);
  }
}

TEST(RootedTree, RootingAtProcessorWorks) {
  const Tree t = makeStar(5);
  const NodeId leaf = t.processors().front();
  const RootedTree r(t, leaf);
  EXPECT_EQ(r.root(), leaf);
  EXPECT_EQ(r.height(), 2);  // leaf -> bus -> other leaves
}

TEST(RootedTree, SingleNodeTree) {
  TreeBuilder b;
  b.addProcessor();
  const Tree t = b.build();
  const RootedTree r(t, 0);
  EXPECT_EQ(r.height(), 0);
  EXPECT_EQ(r.lca(0, 0), 0);
  EXPECT_EQ(r.distance(0, 0), 0);
}

TEST(RootedTree, ConcurrentPathWalksAreRaceFree) {
  // Regression: forEachPathEdge used to buffer the descent side in a
  // `mutable` member, so concurrent walkers sharing one RootedTree (the
  // epoch server's shard workers do) corrupted each other's emitted
  // paths. The walk is now scratch-free per call; hammering one shared
  // instance from many threads must emit only valid paths.
  util::Rng seedRng(171);
  const Tree t = makeRandomTree(60, 20, seedRng);
  const RootedTree r(t, t.defaultRoot());
  constexpr int kThreads = 8;
  constexpr int kWalks = 5000;
  std::atomic<int> badPaths{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int ti = 0; ti < kThreads; ++ti) {
    pool.emplace_back([&, ti] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(ti));
      std::vector<EdgeId> scratch;
      for (int i = 0; i < kWalks; ++i) {
        const auto u = static_cast<NodeId>(
            rng.nextBelow(static_cast<std::uint64_t>(t.nodeCount())));
        const auto v = static_cast<NodeId>(
            rng.nextBelow(static_cast<std::uint64_t>(t.nodeCount())));
        NodeId current = u;
        int edges = 0;
        r.forEachPathEdge(
            u, v,
            [&](EdgeId e) {
              current = t.otherEnd(e, current);
              ++edges;
            },
            scratch);
        if (current != v || edges != r.distance(u, v)) {
          badPaths.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  EXPECT_EQ(badPaths.load(), 0);
}

}  // namespace
}  // namespace hbn::net
