// Round-trip and error-path tests for tree serialisation.
#include <gtest/gtest.h>

#include "hbn/net/generators.h"
#include "hbn/net/serialize.h"
#include "hbn/util/rng.h"

namespace hbn::net {
namespace {

TEST(Serialize, RoundTripStar) {
  const Tree t = makeStar(4, 16.0);
  const Tree back = parseText(toText(t));
  EXPECT_EQ(back.nodeCount(), t.nodeCount());
  EXPECT_EQ(back.edgeCount(), t.edgeCount());
  EXPECT_DOUBLE_EQ(back.busBandwidth(0), 16.0);
  EXPECT_EQ(toText(back), toText(t));
}

TEST(Serialize, RoundTripRandomTrees) {
  util::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    BandwidthModel bw;
    bw.fatTree = (trial % 2 == 0);
    const Tree t = makeRandomTree(20 + trial, 5 + trial, rng, bw);
    const Tree back = parseText(toText(t));
    EXPECT_EQ(toText(back), toText(t)) << "trial " << trial;
  }
}

TEST(Serialize, MissingHeaderRejected) {
  EXPECT_THROW(parseText("node 0 processor\n"), std::invalid_argument);
}

TEST(Serialize, NonDenseIdsRejected) {
  const char* text =
      "hbn-tree v1\n"
      "node 1 processor\n";
  EXPECT_THROW(parseText(text), std::invalid_argument);
}

TEST(Serialize, UnknownKeywordRejected) {
  const char* text =
      "hbn-tree v1\n"
      "vertex 0 processor\n";
  EXPECT_THROW(parseText(text), std::invalid_argument);
}

TEST(Serialize, BusWithoutBandwidthRejected) {
  const char* text =
      "hbn-tree v1\n"
      "node 0 bus\n";
  EXPECT_THROW(parseText(text), std::invalid_argument);
}

TEST(Serialize, StructurallyInvalidRejected) {
  // Two processors connected directly.
  const char* text =
      "hbn-tree v1\n"
      "node 0 processor\n"
      "node 1 processor\n"
      "edge 0 1 1\n";
  EXPECT_THROW(parseText(text), std::invalid_argument);
}

TEST(Serialize, DotContainsAllNodes) {
  const Tree t = makeStar(3);
  const std::string dot = toDot(t);
  EXPECT_NE(dot.find("graph hbn {"), std::string::npos);
  EXPECT_NE(dot.find("B0"), std::string::npos);
  EXPECT_NE(dot.find("P1"), std::string::npos);
  EXPECT_NE(dot.find("P3"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
}

}  // namespace
}  // namespace hbn::net
