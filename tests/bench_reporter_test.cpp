// Schema coverage for the unified experiment harness: the
// ExperimentRegistry mirrors the strategy registry's contract (unknown
// names/options are loud errors, aliases resolve), and every registered
// experiment run in smoke mode emits a BENCH_<name>.json that parses,
// keeps its schema fields, and reports its pass verdict — the acceptance
// gate for `hbn_bench --suite=smoke`.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "experiments/experiments.h"
#include "hbn/util/json.h"

namespace hbn {
namespace {

using engine::BenchReporter;
using engine::ExperimentContext;
using util::ParsedField;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

const ParsedField* find(const util::ParsedRecord& record,
                        std::string_view key) {
  for (const ParsedField& field : record) {
    if (field.key == key) return &field;
  }
  return nullptr;
}

TEST(ExperimentRegistry, ListsAtLeastTenExperiments) {
  const auto names = bench::experiments().names();
  EXPECT_GE(names.size(), 10u);
}

TEST(ExperimentRegistry, AliasesResolveToCanonicalExperiments) {
  const auto e1 = bench::experiments().create("e1");
  EXPECT_EQ(e1->name(), "approx-ratio");
  const auto e10 = bench::experiments().create("e10");
  EXPECT_EQ(e10->name(), "ablation");
}

TEST(ExperimentRegistry, UnknownNameAndUnknownOptionAreLoud) {
  EXPECT_THROW((void)bench::experiments().create("no-such-experiment"),
               std::invalid_argument);
  EXPECT_THROW((void)bench::experiments().create("runtime:bogus=1"),
               std::invalid_argument);
  EXPECT_THROW((void)bench::experiments().create("runtime:reps=abc"),
               std::invalid_argument);
}

TEST(BenchReporter, SummaryRecordCarriesRunMetadata) {
  BenchReporter reporter("unit-test");
  reporter.beginRow();
  reporter.field("x", 1);
  reporter.addTiming(2.0);
  reporter.addTiming(4.0);

  ExperimentContext ctx;
  ctx.seed = 99;
  ctx.seedSet = true;
  ctx.threads = 3;
  ctx.smoke = true;
  const std::string dir =
      testing::TempDir() + "bench_reporter_schema_test";
  const std::string path = reporter.writeFile(dir, ctx, /*passed=*/false);
  EXPECT_EQ(path, dir + "/BENCH_unit-test.json");

  const auto parsed = util::parseRecords(slurp(path));
  ASSERT_EQ(parsed.size(), 2u);
  // Row record: schema fields first, in stable order.
  EXPECT_EQ(parsed[0][0].key, "schema_version");
  EXPECT_DOUBLE_EQ(parsed[0][0].number, BenchReporter::kSchemaVersion);
  EXPECT_EQ(parsed[0][1].key, "experiment");
  EXPECT_EQ(parsed[0][1].text, "unit-test");
  EXPECT_EQ(parsed[0][2].key, "kind");
  EXPECT_EQ(parsed[0][2].text, "row");
  // Summary record: verdict, run parameters, machine spec, timing stats.
  const util::ParsedRecord& summary = parsed[1];
  EXPECT_EQ(find(summary, "kind")->text, "summary");
  EXPECT_EQ(find(summary, "passed")->kind, ParsedField::Kind::boolean);
  EXPECT_EQ(find(summary, "passed")->text, "false");
  EXPECT_EQ(find(summary, "mode")->text, "smoke");
  EXPECT_DOUBLE_EQ(find(summary, "seed")->number, 99.0);
  EXPECT_DOUBLE_EQ(find(summary, "threads")->number, 3.0);
  EXPECT_DOUBLE_EQ(find(summary, "rows")->number, 1.0);
  EXPECT_DOUBLE_EQ(find(summary, "wall_ms_mean")->number, 3.0);
  EXPECT_DOUBLE_EQ(find(summary, "wall_ms_min")->number, 2.0);
  EXPECT_DOUBLE_EQ(find(summary, "wall_ms_max")->number, 4.0);
  ASSERT_NE(find(summary, "host"), nullptr);
  ASSERT_NE(find(summary, "compiler"), nullptr);
  EXPECT_GE(find(summary, "cpus")->number, 1.0);
}

TEST(BenchReporter, EmptyTimingStatsRenderAsNull) {
  BenchReporter reporter("no-timings");
  ExperimentContext ctx;
  const std::string path =
      reporter.writeFile(testing::TempDir(), ctx, /*passed=*/true);
  const auto parsed = util::parseRecords(slurp(path));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(find(parsed[0], "wall_ms_mean")->kind,
            ParsedField::Kind::null);
}

// The acceptance gate: every registered experiment, run at smoke scale,
// must pass its paper-claim checks and emit a BENCH_<name>.json that
// round-trips through the parser with the schema fields on every record.
TEST(ExperimentSuite, SmokeSuiteEmitsValidJsonForEveryExperiment) {
  const std::string dir = testing::TempDir() + "hbn_smoke_suite";
  std::filesystem::remove_all(dir);
  for (const std::string& name : bench::experiments().names()) {
    SCOPED_TRACE(name);
    const auto experiment = bench::experiments().create(name);
    ExperimentContext ctx;
    ctx.smoke = true;  // out stays null: tables are discarded
    BenchReporter reporter{std::string(experiment->name())};
    const bool passed = experiment->run(ctx, reporter);
    EXPECT_TRUE(passed) << "experiment claims failed: " << name;
    const std::string path = reporter.writeFile(dir, ctx, passed);

    const auto parsed = util::parseRecords(slurp(path));
    ASSERT_GE(parsed.size(), 2u)
        << name << " must emit at least one row plus the summary";
    for (const util::ParsedRecord& record : parsed) {
      const ParsedField* version = find(record, "schema_version");
      ASSERT_NE(version, nullptr);
      EXPECT_DOUBLE_EQ(version->number, BenchReporter::kSchemaVersion);
      EXPECT_EQ(find(record, "experiment")->text, name);
      ASSERT_NE(find(record, "kind"), nullptr);
    }
    EXPECT_EQ(find(parsed.back(), "kind")->text, "summary");
    EXPECT_EQ(find(parsed.back(), "passed")->kind,
              ParsedField::Kind::boolean);
    EXPECT_EQ(find(parsed.back(), "passed")->text, "true");
  }
}

// Determinism of the emitted trajectory: the same (experiment, seed) pair
// must produce identical measurement rows run-to-run (the summary record
// differs only in wall-clock fields).
TEST(ExperimentSuite, RingVsBusRowsAreDeterministic) {
  auto runOnce = [] {
    const auto experiment = bench::experiments().create("ring-vs-bus");
    ExperimentContext ctx;
    ctx.smoke = true;
    BenchReporter reporter{std::string(experiment->name())};
    (void)experiment->run(ctx, reporter);
    const std::string dir = testing::TempDir() + "hbn_determinism";
    return slurp(reporter.writeFile(dir, ctx, true));
  };
  const auto first = util::parseRecords(runOnce());
  const auto second = util::parseRecords(runOnce());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t r = 0; r + 1 < first.size(); ++r) {  // skip summary
    ASSERT_EQ(first[r].size(), second[r].size());
    for (std::size_t f = 0; f < first[r].size(); ++f) {
      EXPECT_EQ(first[r][f].key, second[r][f].key);
      EXPECT_EQ(first[r][f].text, second[r][f].text);
    }
  }
}

}  // namespace
}  // namespace hbn
