// Tests for the mapping algorithm — Lemma 4.1 (a free edge always
// exists), leaf-only output, and the per-edge/per-bus load bounds of
// Lemmas 4.5 and 4.6.
#include <gtest/gtest.h>

#include "hbn/core/deletion.h"
#include "hbn/core/load.h"
#include "hbn/core/mapping.h"
#include "hbn/core/nibble.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::core {
namespace {

using net::Tree;

// Full step-1 + step-2 preparation shared by the mapping tests.
struct Prepared {
  std::vector<ObjectPlacement> modified;
  std::vector<Count> kappa;
  std::vector<char> participates;
  Placement nibble;
};

Prepared prepare(const Tree& t, const workload::Workload& load) {
  Prepared prep;
  prep.modified.resize(static_cast<std::size_t>(load.numObjects()));
  prep.kappa.resize(static_cast<std::size_t>(load.numObjects()));
  prep.participates.assign(static_cast<std::size_t>(load.numObjects()), 0);
  prep.nibble.objects.resize(static_cast<std::size_t>(load.numObjects()));
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    const NibbleObjectResult nib = nibbleObject(t, load, x);
    prep.nibble.objects[static_cast<std::size_t>(x)] = nib.placement;
    prep.kappa[static_cast<std::size_t>(x)] = load.objectWrites(x);
    if (nib.placement.isLeafOnly(t)) {
      prep.modified[static_cast<std::size_t>(x)] = nib.placement;
    } else {
      prep.modified[static_cast<std::size_t>(x)] = deleteRarelyUsedCopies(
          t, nib.placement, prep.kappa[static_cast<std::size_t>(x)],
          nib.gravityCenter);
    }
    prep.participates[static_cast<std::size_t>(x)] =
        prep.modified[static_cast<std::size_t>(x)].isLeafOnly(t) ? 0 : 1;
  }
  return prep;
}

workload::Workload randomLoad(const Tree& t, util::Rng& rng, int objects,
                              workload::Profile profile) {
  workload::GenParams params;
  params.numObjects = objects;
  params.requestsPerProcessor = 30;
  params.readFraction = 0.3 + 0.5 * rng.nextDouble();
  return workload::generate(profile, t, params, rng);
}

TEST(Mapping, OutputIsLeafOnlyAndNoForcedMoves) {
  util::Rng rng(61);
  for (int trial = 0; trial < 40; ++trial) {
    const Tree t = net::makeRandomTree(20, 7, rng);
    const auto load = randomLoad(
        t, rng, 4, static_cast<workload::Profile>(trial % 6));
    const Prepared prep = prepare(t, load);
    const net::RootedTree rooted(t, t.defaultRoot());
    MappingStats stats;
    const Placement result = mapCopiesToLeaves(
        rooted, prep.modified, prep.kappa, prep.participates, &stats);
    EXPECT_TRUE(result.isLeafOnly(t)) << "trial " << trial;
    EXPECT_EQ(stats.forcedMoves, 0) << "Lemma 4.1 violated in trial "
                                    << trial;
  }
}

TEST(Mapping, StrictModeAgreesWithLemma41) {
  // With forceWhenStuck = false the algorithm throws on a Lemma 4.1
  // violation; under the paper's parameters it must never throw.
  util::Rng rng(67);
  MappingOptions options;
  options.forceWhenStuck = false;
  for (int trial = 0; trial < 25; ++trial) {
    const Tree t = net::makeRandomTree(16, 5, rng);
    const auto load = randomLoad(t, rng, 3, workload::Profile::uniform);
    const Prepared prep = prepare(t, load);
    const net::RootedTree rooted(t, t.defaultRoot());
    EXPECT_NO_THROW(mapCopiesToLeaves(rooted, prep.modified, prep.kappa,
                                      prep.participates, nullptr, options))
        << "trial " << trial;
  }
}

TEST(Mapping, LedgerConservation) {
  util::Rng rng(71);
  for (int trial = 0; trial < 25; ++trial) {
    const Tree t = net::makeRandomTree(18, 6, rng);
    const auto load = randomLoad(t, rng, 4, workload::Profile::zipf);
    const Prepared prep = prepare(t, load);
    const net::RootedTree rooted(t, t.defaultRoot());
    const Placement result = mapCopiesToLeaves(rooted, prep.modified,
                                               prep.kappa, prep.participates);
    EXPECT_NO_THROW(validateCoversWorkload(result, load)) << "trial " << trial;
  }
}

TEST(Mapping, EdgeLoadBoundedBy4NibblePlusTau) {
  // Lemma 4.5: L(e) <= 4 · L_nib(e) + τ_max.
  util::Rng rng(73);
  for (int trial = 0; trial < 40; ++trial) {
    const Tree t = net::makeRandomTree(20, 7, rng);
    const auto load = randomLoad(
        t, rng, 4, static_cast<workload::Profile>(trial % 6));
    const Prepared prep = prepare(t, load);
    const net::RootedTree rooted(t, t.defaultRoot());
    MappingStats stats;
    const Placement result = mapCopiesToLeaves(
        rooted, prep.modified, prep.kappa, prep.participates, &stats);
    const LoadMap nibbleLoad = computeLoad(rooted, prep.nibble);
    const LoadMap finalLoad = computeLoad(rooted, result);
    for (net::EdgeId e = 0; e < t.edgeCount(); ++e) {
      EXPECT_LE(finalLoad.edgeLoad(e),
                4 * nibbleLoad.edgeLoad(e) + stats.tauMax)
          << "edge " << e << " trial " << trial;
    }
  }
}

TEST(Mapping, BusLoadBoundedBy4NibblePlusTau) {
  // Lemma 4.6: L(v) <= 4 · L_nib(v) + τ_max for every bus v.
  util::Rng rng(79);
  for (int trial = 0; trial < 40; ++trial) {
    const Tree t = net::makeRandomTree(20, 7, rng);
    const auto load = randomLoad(
        t, rng, 4, static_cast<workload::Profile>((trial + 3) % 6));
    const Prepared prep = prepare(t, load);
    const net::RootedTree rooted(t, t.defaultRoot());
    MappingStats stats;
    const Placement result = mapCopiesToLeaves(
        rooted, prep.modified, prep.kappa, prep.participates, &stats);
    const LoadMap nibbleLoad = computeLoad(rooted, prep.nibble);
    const LoadMap finalLoad = computeLoad(rooted, result);
    for (const net::NodeId b : t.buses()) {
      EXPECT_LE(finalLoad.busLoad(t, b),
                4.0 * nibbleLoad.busLoad(t, b) +
                    static_cast<double>(stats.tauMax))
          << "bus " << b << " trial " << trial;
    }
  }
}

TEST(Mapping, TauMaxAtMost3KappaMax) {
  // With deletion + splitting + freezing, participating copies satisfy
  // s + κ <= 3 κ_max — the final piece of the Theorem 4.3 argument.
  util::Rng rng(83);
  for (int trial = 0; trial < 30; ++trial) {
    const Tree t = net::makeRandomTree(18, 6, rng);
    const auto load = randomLoad(
        t, rng, 5, static_cast<workload::Profile>(trial % 6));
    const Prepared prep = prepare(t, load);
    const net::RootedTree rooted(t, t.defaultRoot());
    MappingStats stats;
    (void)mapCopiesToLeaves(rooted, prep.modified, prep.kappa,
                            prep.participates, &stats);
    EXPECT_LE(stats.tauMax, 3 * load.maxWriteContention())
        << "trial " << trial;
  }
}

TEST(Mapping, FrozenObjectsUntouched) {
  util::Rng rng(89);
  const Tree t = net::makeKaryTree(3, 2);
  // Read-only object (leaf-only after nibble? it has inner copies, but we
  // freeze everything manually here to check the mechanism).
  workload::Workload load(1, t.nodeCount());
  for (const net::NodeId p : t.processors()) {
    load.addReads(0, p, 4);
  }
  const NibbleObjectResult nib = nibbleObject(t, load, 0);
  std::vector<ObjectPlacement> modified{nib.placement};
  std::vector<Count> kappa{0};
  std::vector<char> participates{0};  // frozen
  const net::RootedTree rooted(t, t.defaultRoot());
  const Placement result =
      mapCopiesToLeaves(rooted, modified, kappa, participates);
  ASSERT_EQ(result.objects.size(), 1u);
  EXPECT_EQ(result.objects[0].locations(), nib.placement.locations());
}

TEST(Mapping, NoParticipantsIsANoOp) {
  const Tree t = net::makeStar(3);
  workload::Workload load(1, t.nodeCount());
  load.addReads(0, 1, 2);
  const net::NodeId locations[] = {1};
  std::vector<ObjectPlacement> modified{
      makeNearestPlacement(t, load, 0, locations)};
  std::vector<Count> kappa{0};
  std::vector<char> participates{0};
  const net::RootedTree rooted(t, t.defaultRoot());
  MappingStats stats;
  const Placement result =
      mapCopiesToLeaves(rooted, modified, kappa, participates, &stats);
  EXPECT_EQ(stats.participatingCopies, 0);
  EXPECT_EQ(stats.upMoves + stats.downMoves, 0);
  EXPECT_EQ(result.objects[0].copies[0].location, 1);
}

TEST(Mapping, InputSizeMismatchThrows) {
  const Tree t = net::makeStar(3);
  const net::RootedTree rooted(t, t.defaultRoot());
  std::vector<ObjectPlacement> modified(2);
  std::vector<Count> kappa(1);
  std::vector<char> participates(2, 0);
  EXPECT_THROW(mapCopiesToLeaves(rooted, modified, kappa, participates),
               std::invalid_argument);
}

TEST(Mapping, SingleBusGadgetMapsToLeaves) {
  // Height-1 star: all inner copies must descend to processors directly.
  const Tree t = net::makeStar(4, 1000.0);
  workload::Workload load(1, t.nodeCount());
  for (const net::NodeId p : t.processors()) {
    load.addWrites(0, p, 5);
    load.addReads(0, p, 20);
  }
  const Prepared prep = prepare(t, load);
  const net::RootedTree rooted(t, t.defaultRoot());
  MappingStats stats;
  const Placement result = mapCopiesToLeaves(
      rooted, prep.modified, prep.kappa, prep.participates, &stats);
  EXPECT_TRUE(result.isLeafOnly(t));
  EXPECT_EQ(stats.forcedMoves, 0);
  EXPECT_NO_THROW(validateCoversWorkload(result, load));
}

}  // namespace
}  // namespace hbn::core
