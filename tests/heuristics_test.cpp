// Tests for the baseline heuristics.
#include <gtest/gtest.h>

#include "hbn/baseline/heuristics.h"
#include "hbn/core/load.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::baseline {
namespace {

using net::Tree;

struct Instance {
  Tree tree;
  workload::Workload load;
};

Instance makeInstance(std::uint64_t seed, int procs = 16, int objects = 5) {
  util::Rng rng(seed);
  Tree tree = net::makeRandomTree(procs, procs / 3, rng);
  workload::GenParams params;
  params.numObjects = objects;
  params.requestsPerProcessor = 20;
  workload::Workload load = workload::generateZipf(tree, params, rng);
  return Instance{std::move(tree), std::move(load)};
}

TEST(Heuristics, BestSingleCopyIsValidAndSingleCopy) {
  const Instance in = makeInstance(1);
  const Placement p = bestSingleCopy(in.tree, in.load);
  EXPECT_TRUE(p.isLeafOnly(in.tree));
  EXPECT_NO_THROW(core::validateCoversWorkload(p, in.load));
  for (const auto& obj : p.objects) {
    EXPECT_EQ(obj.locations().size(), 1u);
  }
}

TEST(Heuristics, WeightedMedianMinimisesTotalLoad) {
  // Check against brute force over all single-copy positions.
  const Instance in = makeInstance(2, 12, 3);
  const net::RootedTree rooted(in.tree, in.tree.defaultRoot());
  const Placement p = weightedMedian(in.tree, in.load);
  for (workload::ObjectId x = 0; x < in.load.numObjects(); ++x) {
    core::LoadMap chosen(in.tree.edgeCount());
    core::accumulateObjectLoad(
        rooted, p.objects[static_cast<std::size_t>(x)], chosen);
    const auto chosenTotal = chosen.totalLoad();
    for (const net::NodeId q : in.tree.processors()) {
      const net::NodeId locations[] = {q};
      core::LoadMap other(in.tree.edgeCount());
      core::accumulateObjectLoad(
          rooted, core::makeNearestPlacement(in.tree, in.load, x, locations),
          other);
      EXPECT_LE(chosenTotal, other.totalLoad())
          << "object " << x << " beaten by leaf " << q;
    }
  }
}

TEST(Heuristics, BestSingleCopyNoWorseThanRandomOnAverage) {
  util::Rng rng(3);
  double greedyTotal = 0.0;
  double randomTotal = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const Instance in = makeInstance(100 + static_cast<std::uint64_t>(trial));
    const net::RootedTree rooted(in.tree, in.tree.defaultRoot());
    greedyTotal +=
        core::evaluateCongestion(rooted, bestSingleCopy(in.tree, in.load));
    randomTotal += core::evaluateCongestion(
        rooted, randomSingleCopy(in.tree, in.load, rng));
  }
  EXPECT_LE(greedyTotal, randomTotal);
}

TEST(Heuristics, RandomSingleCopyDeterministicUnderSeed) {
  const Instance in = makeInstance(4);
  util::Rng rng1(9);
  util::Rng rng2(9);
  const Placement a = randomSingleCopy(in.tree, in.load, rng1);
  const Placement b = randomSingleCopy(in.tree, in.load, rng2);
  for (std::size_t x = 0; x < a.objects.size(); ++x) {
    EXPECT_EQ(a.objects[x].locations(), b.objects[x].locations());
  }
}

TEST(Heuristics, FullReplicationReadsAreLocal) {
  const Instance in = makeInstance(5);
  const Placement p = fullReplication(in.tree, in.load);
  EXPECT_NO_THROW(core::validateCoversWorkload(p, in.load));
  for (const auto& obj : p.objects) {
    EXPECT_EQ(obj.locations().size(), in.tree.processors().size());
    for (const auto& copy : obj.copies) {
      for (const auto& share : copy.served) {
        EXPECT_EQ(share.origin, copy.location);  // nearest copy is local
      }
    }
  }
}

TEST(Heuristics, FullReplicationCongestionIsWriteDriven) {
  // Read-only workload: full replication is congestion-free.
  const Tree t = net::makeStar(6);
  workload::Workload load(2, t.nodeCount());
  for (const net::NodeId p : t.processors()) {
    load.addReads(0, p, 10);
    load.addReads(1, p, 5);
  }
  const net::RootedTree rooted(t, t.defaultRoot());
  EXPECT_DOUBLE_EQ(
      core::evaluateCongestion(rooted, fullReplication(t, load)), 0.0);
}

TEST(Heuristics, LocalSearchNeverWorsens) {
  util::Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    const Instance in = makeInstance(200 + static_cast<std::uint64_t>(trial),
                                     10, 4);
    const net::RootedTree rooted(in.tree, in.tree.defaultRoot());
    const Placement start = randomSingleCopy(in.tree, in.load, rng);
    const double before = core::evaluateCongestion(rooted, start);
    LocalSearchOptions options;
    options.maxIterations = 30;
    const Placement improved =
        localSearch(in.tree, in.load, start, rng, options);
    const double after = core::evaluateCongestion(rooted, improved);
    EXPECT_LE(after, before) << "trial " << trial;
    EXPECT_NO_THROW(core::validateCoversWorkload(improved, in.load));
  }
}

TEST(Heuristics, LocalSearchRejectsBadInput) {
  const Instance in = makeInstance(7);
  util::Rng rng(1);
  Placement wrong;
  wrong.objects.resize(1);
  EXPECT_THROW(
      (void)localSearch(in.tree, in.load, wrong, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace hbn::baseline
