// Conformance suite for the OnlinePolicy contract: every registered
// policy spec (default form plus option-ful variants of the composed
// grammar) is property-checked against the promises the interface
// documents —
//   * a slow, obvious serving loop (epoch chunks, ascending-object
//     shards, §4 handoff passes applied the barrier way) reproduces the
//     EpochServer's edge loads and copy sets bit-for-bit;
//   * serving is bit-identical across thread counts AND across the
//     barrier/pipelined engines, drift passes included;
//   * the handoff seam behaves: beginHandoff targets agree with
//     handoffPlacement rows, resetCopySet commits and is idempotent,
//     and non-migratable policies refuse the seam loudly;
//   * spec() rendering is a fixed point of the registry's parser.
// A new policy registered tomorrow is picked up automatically and must
// hold every property or fail here by name.
#include <algorithm>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/dynamic/harness.h"
#include "hbn/dynamic/online_policy.h"
#include "hbn/net/generators.h"
#include "hbn/net/steiner.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/request_stream.h"
#include "hbn/workload/generators.h"

namespace hbn::dynamic {
namespace {

using core::Count;
using core::LoadMap;

constexpr int kObjects = 64;
constexpr std::size_t kEpochSize = 1 << 10;

/// Every registered policy in its default form, plus option-ful
/// variants that exercise the composed spec grammar (nested strategy
/// specs, `+`-joined adaptive members). Registry-driven on purpose: a
/// newly registered policy joins the conformance suite without edits.
std::vector<std::string> conformanceSpecs() {
  std::vector<std::string> specs = OnlinePolicyRegistry::global().names();
  std::sort(specs.begin(), specs.end());
  specs.push_back("tree-counters:threshold=3,contract=0");
  specs.push_back("static:placement=extended-nibble");
  specs.push_back("adaptive:members=tree-counters+owner-only,window=3");
  return specs;
}

std::vector<workload::RequestEvent> makeEvents(const net::Tree& tree,
                                               std::uint64_t seed,
                                               std::uint64_t total) {
  workload::StreamParams params;
  params.numObjects = kObjects;
  params.readFraction = 0.9;
  const auto stream =
      serve::makeGeneratedStream("skewed", tree, params, seed, total);
  std::vector<workload::RequestEvent> events(total);
  EXPECT_EQ(stream->fill(events), total);
  return events;
}

std::unique_ptr<OnlinePolicy> buildPolicy(const std::string& spec,
                                          const net::RootedTree& rooted) {
  return OnlinePolicyRegistry::global().create(spec)->build(
      rooted, kObjects, rooted.tree().processors().front());
}

/// The slow oracle: serve epoch-sized chunks shard-by-shard in
/// ascending object order, then poll wantsHandoff and apply the pass
/// to every object the barrier way — charging Steiner(old ∪ new) once
/// per actually-moved object, exactly the EpochServer contract.
struct OracleResult {
  LoadMap loads{1};
  std::vector<std::vector<net::NodeId>> copySets;
};

OracleResult serveOracle(OnlinePolicy& policy, const net::RootedTree& rooted,
                         std::span<const workload::RequestEvent> events) {
  const net::Tree& tree = rooted.tree();
  OracleResult result;
  result.loads = LoadMap(tree.edgeCount());
  ServeScratch scratch;
  workload::Workload aggregated(kObjects, tree.nodeCount());
  const std::shared_ptr<const workload::Workload> snapshot(
      std::shared_ptr<const workload::Workload>(), &aggregated);
  std::vector<std::size_t> offsets;
  std::vector<Request> bucketed;
  for (std::size_t begin = 0; begin < events.size(); begin += kEpochSize) {
    const std::size_t end = std::min(begin + kEpochSize, events.size());
    std::vector<Request> epoch;
    epoch.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      epoch.push_back(Request{events[i].object, events[i].origin,
                              events[i].isWrite});
    }
    offsets.assign(static_cast<std::size_t>(kObjects) + 1, 0);
    bucketed.resize(epoch.size());
    bucketRequestsByObject(epoch, kObjects, offsets, bucketed);
    for (ObjectId x = 0; x < kObjects; ++x) {
      const std::size_t lo = offsets[static_cast<std::size_t>(x)];
      const std::size_t hi = offsets[static_cast<std::size_t>(x) + 1];
      if (lo == hi) continue;
      (void)policy.serveShard(
          x, std::span<const Request>(bucketed.data() + lo, hi - lo),
          result.loads, scratch, nullptr);
    }
    for (const Request& request : epoch) {
      if (request.isWrite) {
        aggregated.addWrites(request.object, request.origin, 1);
      } else {
        aggregated.addReads(request.object, request.origin, 1);
      }
    }
    if (policy.migratable() && policy.wantsHandoff()) {
      const auto pass = policy.beginHandoff(snapshot, 1);
      for (ObjectId x = 0; x < kObjects; ++x) {
        const std::vector<net::NodeId> target = pass->target(x, 0);
        std::vector<net::NodeId> terminals = policy.copySet(x);
        if (terminals.size() == target.size() &&
            std::equal(terminals.begin(), terminals.end(),
                       target.begin())) {
          policy.resetCopySet(x, target);
          continue;
        }
        terminals.insert(terminals.end(), target.begin(), target.end());
        std::sort(terminals.begin(), terminals.end());
        terminals.erase(
            std::unique(terminals.begin(), terminals.end()),
            terminals.end());
        for (const net::EdgeId e : net::steinerEdges(rooted, terminals)) {
          result.loads.addEdgeLoad(e, 1);
        }
        policy.resetCopySet(x, target);
      }
    }
  }
  for (ObjectId x = 0; x < kObjects; ++x) {
    result.copySets.push_back(policy.copySet(x));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Property 1: the EpochServer (single thread, barrier engine, drift
// disabled so only policy-requested passes fire) is bit-identical to
// the slow oracle loop, for every registered policy.
// ---------------------------------------------------------------------------
TEST(PolicyConformance, EpochServerMatchesOracleLoop) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto events = makeEvents(tree, 41, 12'000);
  for (const std::string& spec : conformanceSpecs()) {
    SCOPED_TRACE(spec);
    const auto policy = buildPolicy(spec, rooted);
    const OracleResult oracle = serveOracle(*policy, rooted, events);

    serve::ServeOptions options;
    options.epochSize = kEpochSize;
    options.threads = 1;
    options.pipeline = false;
    options.replaceDrift = 0;  // only wantsHandoff passes fire
    options.policy = spec;
    serve::EpochServer server(rooted, kObjects, options);
    serve::VectorStream stream({events.begin(), events.end()});
    const serve::ServeReport report = server.serve(stream);
    EXPECT_EQ(report.totalRequests, events.size());

    const std::span<const Count> served = server.loads().edgeLoads();
    for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
      ASSERT_EQ(served[static_cast<std::size_t>(e)],
                oracle.loads.edgeLoad(e))
          << "edge " << e;
    }
    for (ObjectId x = 0; x < kObjects; ++x) {
      ASSERT_EQ(server.copySet(x),
                oracle.copySets[static_cast<std::size_t>(x)])
          << "object " << x;
    }
  }
}

// ---------------------------------------------------------------------------
// Property 2: serving is bit-identical across thread counts and across
// the barrier/pipelined engines, with the drift trigger enabled so
// handoff passes (server- and policy-initiated) are in play.
// ---------------------------------------------------------------------------
TEST(PolicyConformance, BitIdenticalAcrossThreadsAndEngines) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto events = makeEvents(tree, 43, 20'000);
  for (const std::string& spec : conformanceSpecs()) {
    SCOPED_TRACE(spec);
    const auto digest = [&](int threads, bool pipeline) {
      serve::ServeOptions options;
      options.epochSize = kEpochSize;
      options.threads = threads;
      options.pipeline = pipeline;
      options.replaceDrift = 1.2;
      options.policy = spec;
      serve::EpochServer server(rooted, kObjects, options);
      serve::VectorStream stream({events.begin(), events.end()});
      const serve::ServeReport report = server.serve(stream);
      std::ostringstream oss;
      oss.precision(17);
      oss << report.congestion << '|' << report.replacements;
      for (const Count load : server.loads().edgeLoads()) {
        oss << ',' << load;
      }
      for (ObjectId x = 0; x < kObjects; ++x) {
        oss << ';';
        for (const net::NodeId v : server.copySet(x)) oss << v << ' ';
      }
      return oss.str();
    };
    const std::string reference = digest(1, /*pipeline=*/false);
    EXPECT_EQ(reference, digest(3, /*pipeline=*/false));
    EXPECT_EQ(reference, digest(1, /*pipeline=*/true));
    EXPECT_EQ(reference, digest(3, /*pipeline=*/true));
  }
}

// ---------------------------------------------------------------------------
// Property 3: the handoff seam. Migratable policies must agree between
// handoffPlacement rows and beginHandoff targets, and resetCopySet must
// commit the target and be idempotent; non-migratable policies must
// refuse resetCopySet with logic_error (the server never calls it).
// ---------------------------------------------------------------------------
TEST(PolicyConformance, HandoffSeamCommitsAndIsIdempotent) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto events = makeEvents(tree, 47, 8'000);
  for (const std::string& spec : conformanceSpecs()) {
    SCOPED_TRACE(spec);
    const auto policy = buildPolicy(spec, rooted);
    // Warm the policy so counters/windows hold real state.
    (void)serveOracle(*policy, rooted, events);
    const auto procs = tree.processors();
    if (!policy->migratable()) {
      const std::vector<net::NodeId> anywhere = {procs.front()};
      EXPECT_THROW(policy->resetCopySet(0, anywhere), std::logic_error);
      continue;
    }
    workload::Workload aggregated(kObjects, tree.nodeCount());
    for (const workload::RequestEvent& event : events) {
      if (event.isWrite) {
        aggregated.addWrites(event.object, event.origin, 1);
      } else {
        aggregated.addReads(event.object, event.origin, 1);
      }
    }
    // handoffPlacement and a beginHandoff pass opened on the same
    // snapshot must route every object to the same locations.
    const core::Placement placement =
        policy->handoffPlacement(aggregated, 1);
    ASSERT_EQ(placement.numObjects(), kObjects);
    const std::shared_ptr<const workload::Workload> snapshot(
        std::shared_ptr<const workload::Workload>(), &aggregated);
    const auto pass = policy->beginHandoff(snapshot, 1);
    for (ObjectId x = 0; x < kObjects; ++x) {
      const std::vector<net::NodeId> target = pass->target(x, 0);
      EXPECT_EQ(target,
                placement.objects[static_cast<std::size_t>(x)].locations())
          << "object " << x;
      ASSERT_FALSE(target.empty()) << "object " << x;
      // Committing the same target twice is a fixed point: the second
      // reset sees locations == copySet and must leave them unchanged.
      policy->resetCopySet(x, target);
      EXPECT_EQ(policy->copySet(x), target) << "object " << x;
      policy->resetCopySet(x, target);
      EXPECT_EQ(policy->copySet(x), target) << "object " << x;
    }
  }
}

// ---------------------------------------------------------------------------
// Property 4: spec() rendering is a fixed point of the registry parser
// — create(p->spec())->spec() == p->spec(), so specs survive a
// serialize → parse → serialize round trip (report files, CLI echoes).
// ---------------------------------------------------------------------------
TEST(PolicyConformance, SpecRenderingIsAParseFixedPoint) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  for (const std::string& spec : conformanceSpecs()) {
    SCOPED_TRACE(spec);
    const auto policy = buildPolicy(spec, rooted);
    const std::string rendered = policy->spec();
    const auto reparsed = buildPolicy(rendered, rooted);
    EXPECT_EQ(reparsed->spec(), rendered);
    EXPECT_EQ(reparsed->name(), policy->name());
  }
}

// ---------------------------------------------------------------------------
// Property 5: the composed spec grammar fails loudly and precisely.
// Malformed specs — duplicate keys, empty member lists, nested
// adaptive, unknown names/options, out-of-range values — must throw
// invalid_argument (or out_of_range for numeric bounds) with a message
// that names the offending piece, and must never produce a policy.
// ---------------------------------------------------------------------------
TEST(PolicyConformance, MalformedSpecsThrowActionableErrors) {
  const auto expectInvalid = [](const std::string& spec,
                                const std::string& needle) {
    try {
      (void)OnlinePolicyRegistry::global().create(spec);
      FAIL() << "spec '" << spec << "' should not parse";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "spec '" << spec << "' threw '" << e.what()
          << "' which does not mention '" << needle << "'";
    }
  };
  // Duplicate option keys are an error, not last-wins.
  expectInvalid("adaptive:window=2,window=3", "duplicate");
  expectInvalid("tree-counters:threshold=2,threshold=4", "duplicate");
  // Member lists must name at least two non-empty member specs.
  expectInvalid("adaptive:members=tree-counters", "two member");
  expectInvalid("adaptive:members=tree-counters+", "empty member");
  expectInvalid("adaptive:members=+owner-only", "empty member");
  expectInvalid("adaptive:members=tree-counters++owner-only",
                "empty member");
  // adaptive cannot nest itself.
  expectInvalid("adaptive:members=adaptive+owner-only", "nest");
  // Unknown policy names list the alternatives; unknown option keys
  // name the policy; unknown member specs surface the inner error.
  expectInvalid("no-such-policy", "unknown policy");
  expectInvalid("adaptive:members=tree-counters+no-such-policy",
                "unknown policy");
  expectInvalid("adaptive:turbo=1", "turbo");
  expectInvalid("full-replication:copies=3", "copies");
  // Numeric bounds.
  expectInvalid("adaptive:window=0", "window");
  expectInvalid("adaptive:window=-5", "window");
}

TEST(PolicyConformance, FuzzedSpecsNeverCrashTheParser) {
  // Deterministic mutation fuzz over the grammar's alphabet: every
  // outcome must be a parsed factory or one of the two documented
  // exception types — nothing else escapes, nothing aborts.
  const std::vector<std::string> seeds = conformanceSpecs();
  const std::string alphabet = ":=,+x0";
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  const auto nextRand = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  int parsed = 0;
  int rejected = 0;
  for (const std::string& seed : seeds) {
    for (int round = 0; round < 200; ++round) {
      std::string spec = seed;
      const int edits = 1 + static_cast<int>(nextRand() % 3);
      for (int i = 0; i < edits; ++i) {
        const std::size_t at = nextRand() % (spec.size() + 1);
        const char c = alphabet[nextRand() % alphabet.size()];
        switch (nextRand() % 3) {
          case 0:
            spec.insert(spec.begin() + static_cast<std::ptrdiff_t>(at), c);
            break;
          case 1:
            if (!spec.empty()) {
              spec.erase(spec.begin() +
                         static_cast<std::ptrdiff_t>(at % spec.size()));
            }
            break;
          default:
            if (!spec.empty()) {
              spec[at % spec.size()] = c;
            }
            break;
        }
      }
      try {
        (void)OnlinePolicyRegistry::global().create(spec);
        ++parsed;
      } catch (const std::invalid_argument&) {
        ++rejected;
      } catch (const std::out_of_range&) {
        ++rejected;
      }
      // Any other exception type (or a crash) fails the test.
    }
  }
  // The fuzz must actually exercise both outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace hbn::dynamic
