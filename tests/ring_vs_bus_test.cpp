// E6's core property as a test: ring-network transaction congestion equals
// the hierarchical-bus congestion of the same message set (Figures 1-2).
#include <gtest/gtest.h>

#include "hbn/core/load.h"
#include "hbn/sci/ring_network.h"
#include "hbn/sci/transactions.h"
#include "hbn/util/rng.h"

namespace hbn::sci {
namespace {

// Accounts the same transaction multiset on both views and compares every
// ring/bus and switch/edge load, not just the max.
void expectEquivalence(const RingNetwork& net,
                       const std::vector<std::tuple<ProcId, ProcId, Count>>&
                           transactions) {
  const BusView view = toBusNetwork(net);
  const net::RootedTree rooted(view.tree, view.tree.defaultRoot());

  TransactionAccounting ringAcc(net);
  core::LoadMap busLoads(view.tree.edgeCount());
  for (const auto& [u, v, amount] : transactions) {
    ringAcc.addTransactions(u, v, amount);
    if (u != v) {
      rooted.forEachPathEdge(view.processorNode[static_cast<std::size_t>(u)],
                             view.processorNode[static_cast<std::size_t>(v)],
                             [&](net::EdgeId e) {
                               busLoads.addEdgeLoad(e, amount);
                             });
    }
  }

  // Ring occupancy == bus load (half the incident edge loads).
  for (RingId r = 0; r < net.ringCount(); ++r) {
    EXPECT_DOUBLE_EQ(
        static_cast<double>(ringAcc.ringOccupancy(r)),
        busLoads.busLoad(view.tree,
                         view.ringBus[static_cast<std::size_t>(r)]))
        << "ring " << r;
  }
  // Switch crossings == uplink edge loads.
  for (RingId r = 1; r < net.ringCount(); ++r) {
    EXPECT_EQ(ringAcc.switchCrossings(r),
              busLoads.edgeLoad(view.uplinkEdge[static_cast<std::size_t>(r)]))
        << "switch of ring " << r;
  }
  // Adapter loads == leaf edge loads.
  for (ProcId p = 0; p < net.processorCount(); ++p) {
    EXPECT_EQ(ringAcc.adapterLoad(p),
              busLoads.edgeLoad(view.adapterEdge[static_cast<std::size_t>(p)]))
        << "processor " << p;
  }
  // Hence the congestions agree.
  EXPECT_DOUBLE_EQ(ringAcc.congestion(), busLoads.congestion(view.tree));
}

TEST(RingVsBus, BalancedHierarchyRandomTraffic) {
  util::Rng rng(61);
  const RingNetwork net = makeBalancedRingHierarchy(3, 3, 3, 4.0, 2.0);
  std::vector<std::tuple<ProcId, ProcId, Count>> transactions;
  for (int i = 0; i < 300; ++i) {
    transactions.emplace_back(
        static_cast<ProcId>(rng.nextBelow(
            static_cast<std::uint64_t>(net.processorCount()))),
        static_cast<ProcId>(rng.nextBelow(
            static_cast<std::uint64_t>(net.processorCount()))),
        static_cast<Count>(1 + rng.nextBelow(5)));
  }
  expectEquivalence(net, transactions);
}

TEST(RingVsBus, RandomHierarchies) {
  util::Rng rng(67);
  for (int trial = 0; trial < 10; ++trial) {
    const RingNetwork net = makeRandomRingHierarchy(
        2 + static_cast<int>(rng.nextBelow(8)),
        10 + static_cast<int>(rng.nextBelow(20)), rng);
    std::vector<std::tuple<ProcId, ProcId, Count>> transactions;
    for (int i = 0; i < 200; ++i) {
      transactions.emplace_back(
          static_cast<ProcId>(rng.nextBelow(
              static_cast<std::uint64_t>(net.processorCount()))),
          static_cast<ProcId>(rng.nextBelow(
              static_cast<std::uint64_t>(net.processorCount()))),
          static_cast<Count>(1 + rng.nextBelow(3)));
    }
    expectEquivalence(net, transactions);
  }
}

TEST(RingVsBus, FigureOneShape) {
  // Figure 1: a ring of rings — one top-level ring with two child rings.
  RingNetworkBuilder b;
  const RingId top = b.addRing(kInvalidRing, 2.0, 1.0);
  const RingId leftRing = b.addRing(top, 2.0, 1.0);
  const RingId rightRing = b.addRing(top, 2.0, 1.0);
  b.addProcessor(top);
  for (int i = 0; i < 3; ++i) b.addProcessor(leftRing);
  for (int i = 0; i < 3; ++i) b.addProcessor(rightRing);
  const RingNetwork net = b.build();

  util::Rng rng(71);
  std::vector<std::tuple<ProcId, ProcId, Count>> transactions;
  for (int i = 0; i < 100; ++i) {
    transactions.emplace_back(
        static_cast<ProcId>(rng.nextBelow(7)),
        static_cast<ProcId>(rng.nextBelow(7)),
        static_cast<Count>(1 + rng.nextBelow(4)));
  }
  expectEquivalence(net, transactions);
}

}  // namespace
}  // namespace hbn::sci
