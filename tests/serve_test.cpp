// Tests for the streaming serving engine: request streams, epoch
// batching, shard determinism (1 vs N threads bit-identical), the
// adaptive re-placement pass, and the memory bound that proves streams
// are never materialised.
#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/dynamic/online_strategy.h"
#include "hbn/net/generators.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/request_stream.h"
#include "hbn/util/json.h"
#include "hbn/util/rng.h"
#include "hbn/workload/serialize.h"

namespace hbn::serve {
namespace {

long maxRssKb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

/// Every deterministic observable of a server, rendered through the JSON
/// emitter: copy sets, cumulative edge loads, counters. Two runs are
/// bit-identical iff these strings are.
std::string stateJson(const EpochServer& server,
                      const ServeReport& report) {
  util::JsonRecords records;
  records.beginRecord();
  records.field("requests", static_cast<std::int64_t>(report.totalRequests));
  records.field("epochs", static_cast<std::int64_t>(report.epochs));
  records.field("congestion", report.congestion);
  records.field("lower_bound", report.lowerBound);
  records.field("ratio", report.ratio);
  records.field("replacements",
                static_cast<std::int64_t>(report.replacements));
  records.field("replications",
                static_cast<std::int64_t>(report.replications));
  records.field("invalidations",
                static_cast<std::int64_t>(report.invalidations));
  for (workload::ObjectId x = 0; x < server.numObjects(); ++x) {
    records.beginRecord();
    std::ostringstream copies;
    for (const net::NodeId v : server.copySet(x)) copies << v << ' ';
    records.field("object", static_cast<std::int64_t>(x));
    records.field("copies", copies.str());
  }
  records.beginRecord();
  std::ostringstream loads;
  for (const core::Count load : server.loads().edgeLoads()) {
    loads << load << ' ';
  }
  records.field("edge_loads", loads.str());
  std::ostringstream oss;
  records.write(oss);
  return oss.str();
}

TEST(RequestStream, GeneratorStreamIsBoundedAndBatched) {
  int counter = 0;
  GeneratorStream stream(
      [&] {
        return RequestEvent{counter++ % 3, 1, false};
      },
      1000);
  std::vector<RequestEvent> batch(256);
  std::size_t total = 0;
  std::size_t fills = 0;
  while (const std::size_t n = stream.fill(batch)) {
    total += n;
    ++fills;
    ASSERT_LE(n, batch.size());
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(fills, 4u);  // 256 + 256 + 256 + 232
  EXPECT_EQ(stream.fill(batch), 0u);  // stays exhausted
}

TEST(RequestStream, GeneratedStreamsAreSeedDeterministicAndInRange) {
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  workload::StreamParams params;
  params.numObjects = 17;
  for (const char* name : {"skewed", "bursty", "diurnal", "phase-shift"}) {
    const auto a = makeGeneratedStream(name, tree, params, 5, 500);
    const auto b = makeGeneratedStream(name, tree, params, 5, 500);
    std::vector<RequestEvent> batchA(500);
    std::vector<RequestEvent> batchB(500);
    ASSERT_EQ(a->fill(batchA), 500u) << name;
    ASSERT_EQ(b->fill(batchB), 500u) << name;
    for (std::size_t i = 0; i < batchA.size(); ++i) {
      EXPECT_EQ(batchA[i].object, batchB[i].object) << name;
      EXPECT_EQ(batchA[i].origin, batchB[i].origin) << name;
      EXPECT_EQ(batchA[i].isWrite, batchB[i].isWrite) << name;
      EXPECT_GE(batchA[i].object, 0) << name;
      EXPECT_LT(batchA[i].object, params.numObjects) << name;
      EXPECT_TRUE(tree.isProcessor(batchA[i].origin)) << name;
    }
  }
  EXPECT_THROW((void)makeGeneratedStream("nope", tree, params, 1, 10),
               std::invalid_argument);
}

TEST(RequestStream, PhaseShiftFollowsTheRegimeSchedule) {
  using workload::PhaseShiftStream;
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  workload::StreamParams params;
  params.numObjects = 32;
  params.readFraction = 0.5;
  params.phaseLength = 1'000;
  // One full [skew, skew, churn, burst] cycle plus one slot of wrap.
  const std::uint64_t total =
      params.phaseLength * (PhaseShiftStream::kCycleSlots + 1);
  const auto stream =
      makeGeneratedStream("phase-shift", tree, params, 9, total);
  std::vector<workload::RequestEvent> events(total);
  ASSERT_EQ(stream->fill(events), total);

  // regimeAt is pure slot arithmetic: boundaries sit exactly on
  // phaseLength multiples and the schedule wraps around the cycle.
  for (std::uint64_t slot = 0; slot <= PhaseShiftStream::kCycleSlots;
       ++slot) {
    const int expected =
        PhaseShiftStream::kCycle[slot % PhaseShiftStream::kCycleSlots];
    const std::uint64_t begin = slot * params.phaseLength;
    EXPECT_EQ(PhaseShiftStream::regimeAt(begin, params.phaseLength),
              expected);
    EXPECT_EQ(PhaseShiftStream::regimeAt(begin + params.phaseLength - 1,
                                         params.phaseLength),
              expected);
  }

  // Realised write fractions flip with the regime: the skew slots are
  // read-heavy, the churn slot write-heavy, the burst slot near the
  // base readFraction. Generous brackets — this asserts the regime
  // identity, not the RNG.
  const auto writeFraction = [&](std::uint64_t slot) {
    std::uint64_t writes = 0;
    for (std::uint64_t i = slot * params.phaseLength;
         i < (slot + 1) * params.phaseLength; ++i) {
      writes += events[i].isWrite ? 1 : 0;
    }
    return static_cast<double>(writes) /
           static_cast<double>(params.phaseLength);
  };
  EXPECT_LT(writeFraction(0), 0.1);  // skew: 1 - kSkewReadFraction
  EXPECT_LT(writeFraction(1), 0.1);
  EXPECT_GT(writeFraction(2), 0.7);  // churn: 1 - kChurnReadFraction
  EXPECT_GT(writeFraction(3), 0.3);  // burst: 1 - readFraction
  EXPECT_LT(writeFraction(3), 0.7);
  EXPECT_LT(writeFraction(4), 0.1);  // wrap: skew again

  // The burst regime pins runs of burstLength to one (object, origin).
  const std::uint64_t burstBegin = 3 * params.phaseLength;
  bool sawRepeat = false;
  for (std::uint64_t i = burstBegin + 1; i < burstBegin + 200; ++i) {
    sawRepeat = sawRepeat || (events[i].object == events[i - 1].object &&
                              events[i].origin == events[i - 1].origin);
  }
  EXPECT_TRUE(sawRepeat);
}

TEST(RequestStream, TraceFileStreamReadsWhatWasWritten) {
  const net::Tree tree = net::makeStar(4);
  std::vector<RequestEvent> events;
  util::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    events.push_back(RequestEvent{
        static_cast<workload::ObjectId>(rng.nextBelow(3)),
        tree.processors()[static_cast<std::size_t>(
            rng.nextBelow(tree.processors().size()))],
        rng.nextBool(0.3)});
  }
  const std::string path = testing::TempDir() + "serve_test_trace.txt";
  {
    std::ofstream out(path);
    workload::writeTraceHeader(out, 3, tree.nodeCount());
    for (const RequestEvent& ev : events) workload::writeTraceEvent(out, ev);
  }
  TraceFileStream stream(path);
  EXPECT_EQ(stream.numObjects(), 3);
  EXPECT_EQ(stream.numNodes(), tree.nodeCount());
  std::vector<RequestEvent> batch(64);
  std::vector<RequestEvent> all;
  while (const std::size_t n = stream.fill(batch)) {
    all.insert(all.end(), batch.begin(),
               batch.begin() + static_cast<std::ptrdiff_t>(n));
  }
  ASSERT_EQ(all.size(), events.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].object, events[i].object);
    EXPECT_EQ(all[i].origin, events[i].origin);
    EXPECT_EQ(all[i].isWrite, events[i].isWrite);
  }
  std::remove(path.c_str());
  EXPECT_THROW(TraceFileStream("/nonexistent/trace.txt"),
               std::runtime_error);
}

TEST(EpochServer, MatchesSequentialOnlineStrategy) {
  // With re-placement disabled, epoch-batched sharded serving is exactly
  // the sequential online strategy: same loads, same copy sets, same
  // counters — for an epoch size that slices the stream mid-object.
  util::Rng rng(31);
  const net::Tree tree = net::makeClusterNetwork(2, 3);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const int numObjects = 5;
  std::vector<RequestEvent> events;
  for (int i = 0; i < 2000; ++i) {
    events.push_back(RequestEvent{
        static_cast<workload::ObjectId>(rng.nextBelow(numObjects)),
        tree.processors()[static_cast<std::size_t>(
            rng.nextBelow(tree.processors().size()))],
        rng.nextBool(0.25)});
  }

  dynamic::OnlineTreeStrategy sequential(rooted, numObjects,
                                         tree.processors().front());
  for (const RequestEvent& ev : events) sequential.serve(ev);

  ServeOptions options;
  options.epochSize = 37;  // deliberately odd, crossing object runs
  options.replaceDrift = 0.0;
  EpochServer server(rooted, numObjects, options);
  VectorStream stream(events);
  const ServeReport report = server.serve(stream);

  EXPECT_EQ(report.totalRequests, events.size());
  EXPECT_EQ(report.replications, sequential.replications());
  EXPECT_EQ(report.invalidations, sequential.invalidations());
  for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
    EXPECT_EQ(server.loads().edgeLoad(e), sequential.loads().edgeLoad(e))
        << "edge " << e;
  }
  for (workload::ObjectId x = 0; x < numObjects; ++x) {
    EXPECT_EQ(server.copySet(x), sequential.copySet(x)) << "object " << x;
  }
  EXPECT_EQ(server.aggregated().grandTotal(),
            static_cast<workload::Count>(events.size()));
}

TEST(EpochServer, BitIdenticalAcrossThreadCounts) {
  const net::Tree tree = net::makeClusterNetwork(4, 8);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  workload::StreamParams params;
  params.numObjects = 96;
  const auto run = [&](int threads) {
    const auto stream = makeGeneratedStream("skewed", tree, params, 21,
                                            60'000);
    ServeOptions options;
    options.epochSize = 1 << 12;
    options.threads = threads;
    options.replaceDrift = 1.5;  // exercise the re-placement path too
    EpochServer server(rooted, params.numObjects, options);
    const ServeReport report = server.serve(*stream);
    return stateJson(server, report);
  };
  const std::string sequential = run(1);
  EXPECT_EQ(sequential, run(2));
  EXPECT_EQ(sequential, run(5));
  EXPECT_EQ(sequential, run(0));  // hardware concurrency
}

TEST(EpochServer, ReplacementFiresUnderSlowAdaptationAndHelps) {
  const net::Tree tree = net::makeClusterNetwork(4, 8);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  workload::StreamParams params;
  params.numObjects = 64;
  params.readFraction = 0.995;
  struct Outcome {
    ServeReport report;
    std::uint64_t markedEpochs = 0;
  };
  const auto run = [&](double drift) {
    const auto stream =
        makeGeneratedStream("skewed", tree, params, 9, 120'000);
    ServeOptions options;
    options.epochSize = 1 << 13;
    options.replaceDrift = drift;
    options.policy = "tree-counters:threshold=64";  // slow online adaptation
    EpochServer server(rooted, params.numObjects, options);
    Outcome outcome{server.serve(*stream), 0};
    for (const EpochRecord& record : server.epochLog()) {
      outcome.markedEpochs += record.replaced ? 1 : 0;
    }
    return outcome;
  };
  const Outcome off = run(0.0);
  const Outcome on = run(2.0);
  EXPECT_EQ(off.report.replacements, 0u);
  EXPECT_GT(on.report.replacements, 0u);
  EXPECT_LE(on.report.congestion, off.report.congestion);
  // The epoch log marks exactly the re-placed epochs.
  EXPECT_EQ(on.markedEpochs, on.report.replacements);
}

TEST(EpochServer, EpochLogIsConsistent) {
  const net::Tree tree = net::makeClusterNetwork(2, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  workload::StreamParams params;
  params.numObjects = 8;
  const auto stream = makeGeneratedStream("bursty", tree, params, 3, 10'000);
  ServeOptions options;
  options.epochSize = 1 << 10;
  EpochServer server(rooted, params.numObjects, options);
  const ServeReport report = server.serve(*stream);
  EXPECT_EQ(report.epochs, server.epochLog().size());
  std::uint64_t total = 0;
  for (const EpochRecord& record : server.epochLog()) {
    total += record.requests;
    EXPECT_GT(record.requests, 0u);
    EXPECT_LE(record.requests, options.epochSize);
    EXPECT_GE(record.ratio, 0.0);
  }
  EXPECT_EQ(total, report.totalRequests);
  EXPECT_EQ(report.totalRequests, 10'000u);
}

TEST(EpochServer, InfiniteRatioIsAFixedPointThroughJson) {
  // Reads with zero write contention: the analytic lower bound is 0
  // while the online strategy pays for the remote read, so the epoch
  // ratio is +inf. The JSON pipeline must carry that stably:
  // JsonRecords emits non-finite doubles as null, parses null back as
  // NaN, and NaN re-emits as null — emit→parse→emit is a fixed point.
  const net::Tree tree = net::makeStar(3);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  ServeOptions options;
  options.epochSize = 8;
  EpochServer server(rooted, 1, options);
  // The initial copy sits on the first processor; read from another.
  const net::NodeId reader = tree.processors().back();
  ASSERT_NE(reader, tree.processors().front());
  VectorStream stream({RequestEvent{0, reader, false}});
  const ServeReport report = server.serve(stream);
  ASSERT_EQ(report.lowerBound, 0.0);
  ASSERT_GT(report.congestion, 0.0);
  ASSERT_TRUE(std::isinf(report.ratio));
  ASSERT_EQ(server.epochLog().size(), 1u);
  ASSERT_TRUE(std::isinf(server.epochLog().front().ratio));

  // Emit the epoch record the way hbn_serve --json does (wall-clock
  // zeroed: it is the one nondeterministic field and not under test).
  EpochRecord record = server.epochLog().front();
  record.wallMs = 0.0;
  const auto emitEpoch = [](const EpochRecord& r) {
    util::JsonRecords records;
    records.beginRecord();
    records.field("kind", "epoch");
    records.field("epoch", static_cast<std::int64_t>(r.index));
    records.field("requests", static_cast<std::int64_t>(r.requests));
    records.field("wall_ms", r.wallMs);
    records.field("congestion", r.congestion);
    records.field("lower_bound", r.lowerBound);
    records.field("ratio", r.ratio);
    records.field("replaced", r.replaced);
    std::ostringstream oss;
    records.write(oss);
    return oss.str();
  };
  const std::string emitted = emitEpoch(record);
  EXPECT_NE(emitted.find("\"ratio\": null"), std::string::npos) << emitted;

  const std::vector<util::ParsedRecord> parsed = util::parseRecords(emitted);
  ASSERT_EQ(parsed.size(), 1u);
  util::JsonRecords reEmitted;
  reEmitted.beginRecord();
  for (const util::ParsedField& field : parsed.front()) {
    switch (field.kind) {
      case util::ParsedField::Kind::string:
        reEmitted.field(field.key, field.text);
        break;
      case util::ParsedField::Kind::boolean:
        reEmitted.field(field.key, field.number == 1.0);
        break;
      case util::ParsedField::Kind::number:
      case util::ParsedField::Kind::null:
        // null parses as NaN; re-emitting NaN produces null again.
        reEmitted.field(field.key, field.number);
        break;
    }
  }
  std::ostringstream second;
  reEmitted.write(second);
  EXPECT_EQ(emitted, second.str());
}

TEST(EpochServer, PipelinedMatchesBarrierBitForBit) {
  // The pipelined engine (threaded ingest + lazy RCU-published handoff
  // application) must produce exactly the barrier engine's deterministic
  // state: counters, copy sets, edge loads, handoff count — on a skewed
  // drift workload that actually fires re-placements, for 1 and N
  // worker threads. Only wall-clock observables may differ.
  const net::Tree tree = net::makeClusterNetwork(4, 8);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  workload::StreamParams params;
  params.numObjects = 64;
  params.readFraction = 0.995;
  struct Outcome {
    std::string digest;
    std::vector<bool> replaced;
    std::uint64_t replacements = 0;
    double handoffs = 0.0;
  };
  const auto run = [&](bool pipeline, int threads) {
    const auto stream =
        makeGeneratedStream("skewed", tree, params, 9, 120'000);
    ServeOptions options;
    options.epochSize = 1 << 13;
    options.threads = threads;
    options.replaceDrift = 2.0;
    options.pipeline = pipeline;
    options.policy = "tree-counters:threshold=64";  // slow adaptation
    EpochServer server(rooted, params.numObjects, options);
    const ServeReport report = server.serve(*stream);
    Outcome outcome;
    outcome.digest = stateJson(server, report);
    for (const EpochRecord& record : server.epochLog()) {
      outcome.replaced.push_back(record.replaced);
    }
    outcome.replacements = report.replacements;
    outcome.handoffs = report.policyMetrics.at("policy.handoffs");
    return outcome;
  };
  const Outcome barrier = run(false, 1);
  ASSERT_GT(barrier.replacements, 0u)
      << "drift never fired; the test is not exercising the handoff path";
  for (const int threads : {1, 3}) {
    const Outcome pipelined = run(true, threads);
    EXPECT_EQ(pipelined.digest, barrier.digest) << "threads " << threads;
    // The serve-only drift trigger makes the schedule mode-independent:
    // the same epochs are marked replaced even though migration traffic
    // lands at different times.
    EXPECT_EQ(pipelined.replaced, barrier.replaced) << "threads " << threads;
    EXPECT_EQ(pipelined.handoffs, barrier.handoffs) << "threads " << threads;
  }
  // And the static policy (memoised monolithic handoff pass) agrees too.
  const auto runStatic = [&](bool pipeline) {
    const auto stream =
        makeGeneratedStream("skewed", tree, params, 9, 120'000);
    ServeOptions options;
    options.epochSize = 1 << 13;
    options.replaceDrift = 2.0;
    options.pipeline = pipeline;
    options.policy = "static:placement=nibble";
    EpochServer server(rooted, params.numObjects, options);
    const ServeReport report = server.serve(*stream);
    return stateJson(server, report);
  };
  EXPECT_EQ(runStatic(true), runStatic(false));
}

TEST(EpochServer, LatencyPercentilesAreSampledAndOrdered) {
  const net::Tree tree = net::makeClusterNetwork(2, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  workload::StreamParams params;
  params.numObjects = 16;
  const auto run = [&](std::size_t latencySample) {
    const auto stream =
        makeGeneratedStream("bursty", tree, params, 5, 20'000);
    ServeOptions options;
    options.epochSize = 1 << 10;
    options.latencySample = latencySample;
    EpochServer server(rooted, params.numObjects, options);
    return server.serve(*stream);
  };
  const ServeReport on = run(1024);
  EXPECT_GT(on.latencySamples, 0u);
  EXPECT_GE(on.latencyMsP50, 0.0);
  EXPECT_LE(on.latencyMsP50, on.latencyMsP99);
  EXPECT_LE(on.latencyMsP99, on.latencyMsP999);
  EXPECT_LE(on.epochMsP50, on.epochMsP99);
  EXPECT_LE(on.epochMsP99, on.epochMsP999);

  const ServeReport off = run(0);
  EXPECT_EQ(off.latencySamples, 0u);
  EXPECT_EQ(off.latencyMsP50, 0.0);
  EXPECT_EQ(off.latencyMsP99, 0.0);
  EXPECT_EQ(off.latencyMsP999, 0.0);
}

TEST(EpochServer, MillionRequestStreamNeverMaterialises) {
  // Two million requests through a small epoch buffer: RSS must grow by
  // far less than the ~24 MB the materialised stream would take, and the
  // server's own per-request buffering stays at two epochs.
  const net::Tree tree = net::makeClusterNetwork(4, 8);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  workload::StreamParams params;
  params.numObjects = 256;
  constexpr std::uint64_t kRequests = 2'000'000;
  const auto stream =
      makeGeneratedStream("skewed", tree, params, 17, kRequests);
  ServeOptions options;
  options.epochSize = 1 << 14;
  options.threads = 2;
  EpochServer server(rooted, params.numObjects, options);

  const long rssBefore = maxRssKb();
  const ServeReport report = server.serve(*stream);
  const long rssAfter = maxRssKb();

  EXPECT_EQ(report.totalRequests, kRequests);
  EXPECT_GE(report.epochs, kRequests / options.epochSize);
  // Buffering: two pipeline slots, each one arrival-order epoch + one
  // bucketed epoch + CSR offsets + a handful of arrival stamps.
  EXPECT_LT(report.epochBufferBytes,
            2 * (2 * options.epochSize * sizeof(RequestEvent) +
                 (static_cast<std::uint64_t>(params.numObjects) + 320) *
                     sizeof(std::size_t)));
  EXPECT_LT(rssAfter - rssBefore, 16 * 1024)  // < 16 MB growth
      << "serving resident set grew as if the stream were materialised";
}

}  // namespace
}  // namespace hbn::serve
