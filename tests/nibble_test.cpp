// Tests for the nibble strategy — every clause of Theorem 3.1, checked
// against analytic per-edge minima on randomised instances.
#include <gtest/gtest.h>

#include <set>

#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"
#include "hbn/core/nibble.h"
#include "hbn/net/generators.h"
#include "hbn/net/steiner.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::core {
namespace {

using net::NodeId;
using net::Tree;

TEST(CenterOfGravity, BalancesComponents) {
  util::Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const Tree t = net::makeRandomTree(20, 6, rng);
    std::vector<Count> weights(static_cast<std::size_t>(t.nodeCount()), 0);
    Count total = 0;
    for (const NodeId p : t.processors()) {
      const Count w = static_cast<Count>(rng.nextBelow(20));
      weights[static_cast<std::size_t>(p)] = w;
      total += w;
    }
    if (total == 0) continue;
    const NodeId g = centerOfGravity(t, weights);
    // Removing g must leave components of weight <= total/2 each; check by
    // BFS from each neighbour avoiding g.
    for (const net::HalfEdge& he : t.neighbors(g)) {
      Count componentWeight = 0;
      std::set<NodeId> seen{g, he.to};
      std::vector<NodeId> stack{he.to};
      componentWeight += weights[static_cast<std::size_t>(he.to)];
      while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        for (const net::HalfEdge& e2 : t.neighbors(v)) {
          if (!seen.count(e2.to)) {
            seen.insert(e2.to);
            componentWeight += weights[static_cast<std::size_t>(e2.to)];
            stack.push_back(e2.to);
          }
        }
      }
      EXPECT_LE(2 * componentWeight, total) << "trial " << trial;
    }
  }
}

TEST(CenterOfGravity, ZeroWeightFallsBackToProcessor) {
  const Tree t = net::makeStar(3);
  std::vector<Count> weights(static_cast<std::size_t>(t.nodeCount()), 0);
  const NodeId g = centerOfGravity(t, weights);
  EXPECT_TRUE(t.isProcessor(g));
}

TEST(CenterOfGravity, RejectsBadInput) {
  const Tree t = net::makeStar(3);
  std::vector<Count> tooShort(2, 1);
  EXPECT_THROW((void)centerOfGravity(t, tooShort), std::invalid_argument);
  std::vector<Count> negative(static_cast<std::size_t>(t.nodeCount()), 0);
  negative[1] = -1;
  EXPECT_THROW((void)centerOfGravity(t, negative), std::invalid_argument);
}

TEST(Nibble, CopySetIsConnectedAndContainsCenter) {
  util::Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const Tree t = net::makeRandomTree(25, 8, rng);
    workload::GenParams params;
    params.numObjects = 1;
    params.requestsPerProcessor = 30;
    params.readFraction = 0.6;
    const workload::Workload load =
        workload::generateUniform(t, params, rng);
    const NibbleObjectResult result = nibbleObject(t, load, 0);

    const auto locs = result.placement.locations();
    std::set<NodeId> locSet(locs.begin(), locs.end());
    EXPECT_TRUE(locSet.count(result.gravityCenter));

    // Connectivity: BFS within the copy set from the gravity centre.
    std::set<NodeId> reached{result.gravityCenter};
    std::vector<NodeId> stack{result.gravityCenter};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const net::HalfEdge& he : t.neighbors(v)) {
        if (locSet.count(he.to) && !reached.count(he.to)) {
          reached.insert(he.to);
          stack.push_back(he.to);
        }
      }
    }
    EXPECT_EQ(reached.size(), locSet.size()) << "trial " << trial;
  }
}

TEST(Nibble, PerObjectEdgeLoadAtMostKappa) {
  util::Rng rng(29);
  for (int trial = 0; trial < 30; ++trial) {
    const Tree t = net::makeRandomTree(20, 6, rng);
    workload::GenParams params;
    params.numObjects = 1;
    params.requestsPerProcessor = 25;
    params.readFraction = 0.5;
    const workload::Workload load = workload::generateZipf(t, params, rng);
    const Count kappa = load.objectWrites(0);
    const NibbleObjectResult result = nibbleObject(t, load, 0);
    const net::RootedTree rooted(t, t.defaultRoot());
    LoadMap lm(t.edgeCount());
    accumulateObjectLoad(rooted, result.placement, lm);
    for (net::EdgeId e = 0; e < t.edgeCount(); ++e) {
      EXPECT_LE(lm.edgeLoad(e), kappa) << "edge " << e << " trial " << trial;
    }
  }
}

TEST(Nibble, LoadInsideCopySubtreeEqualsKappa) {
  util::Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const Tree t = net::makeRandomTree(18, 5, rng);
    workload::GenParams params;
    params.numObjects = 1;
    params.requestsPerProcessor = 20;
    params.readFraction = 0.4;
    const workload::Workload load =
        workload::generateUniform(t, params, rng);
    if (load.objectWrites(0) == 0) continue;
    const NibbleObjectResult result = nibbleObject(t, load, 0);
    const auto locs = result.placement.locations();
    if (locs.size() < 2) continue;
    const net::RootedTree rooted(t, t.defaultRoot());
    LoadMap lm(t.edgeCount());
    accumulateObjectLoad(rooted, result.placement, lm);
    // Every edge of the copy subtree carries exactly κ.
    const auto inside = net::steinerEdges(rooted, locs);
    for (const net::EdgeId e : inside) {
      EXPECT_EQ(lm.edgeLoad(e), load.objectWrites(0))
          << "edge " << e << " trial " << trial;
    }
  }
}

TEST(Nibble, AchievesAnalyticMinimumOnEveryEdge) {
  // The heart of Theorem 3.1: per-edge load equals
  // Σ_x min(h_below, h_above, κ_x) — the unavoidable minimum.
  util::Rng rng(37);
  for (int trial = 0; trial < 40; ++trial) {
    const Tree t = net::makeRandomTree(15, 5, rng);
    workload::GenParams params;
    params.numObjects = 4;
    params.requestsPerProcessor = 15;
    params.readFraction = 0.5;
    const workload::Workload load =
        workload::generate(static_cast<workload::Profile>(trial % 6), t,
                           params, rng);
    const net::RootedTree rooted(t, t.defaultRoot());
    const Placement nib = nibblePlacement(t, load);
    const LoadMap actual = computeLoad(rooted, nib);
    const LowerBound analytic = analyticLowerBound(rooted, load);
    for (net::EdgeId e = 0; e < t.edgeCount(); ++e) {
      EXPECT_EQ(actual.edgeLoad(e), analytic.edgeMinima.edgeLoad(e))
          << "edge " << e << " trial " << trial;
    }
  }
}

TEST(Nibble, ReadOnlyObjectServedLocally) {
  // With κ = 0 every node whose subtree has accesses holds a copy, so all
  // requests are served on the issuing processor and no edge carries load.
  util::Rng rng(41);
  const Tree t = net::makeKaryTree(3, 2);
  workload::Workload load(1, t.nodeCount());
  for (const NodeId p : t.processors()) {
    load.addReads(0, p, 1 + static_cast<Count>(rng.nextBelow(5)));
  }
  const Placement nib = nibblePlacement(t, load);
  const net::RootedTree rooted(t, t.defaultRoot());
  EXPECT_EQ(computeLoad(rooted, nib).totalLoad(), 0);
}

TEST(Nibble, AllWritesSingleCopy) {
  // With only writes (h = w), no node except the centre can satisfy
  // h(T(v)) > w(T), so exactly one copy exists.
  const Tree t = net::makeStar(4);
  workload::Workload load(1, t.nodeCount());
  for (const NodeId p : t.processors()) {
    load.addWrites(0, p, 3);
  }
  const NibbleObjectResult result = nibbleObject(t, load, 0);
  EXPECT_EQ(result.placement.locations().size(), 1u);
}

TEST(Nibble, UnusedObjectGetsOneLeafCopy) {
  const Tree t = net::makeStar(4);
  workload::Workload load(1, t.nodeCount());
  const NibbleObjectResult result = nibbleObject(t, load, 0);
  ASSERT_EQ(result.placement.copies.size(), 1u);
  EXPECT_TRUE(t.isProcessor(result.placement.copies[0].location));
  EXPECT_TRUE(result.placement.copies[0].served.empty());
}

TEST(Nibble, CoversWorkloadExactly) {
  util::Rng rng(43);
  const Tree t = net::makeClusterNetwork(4, 4);
  workload::GenParams params;
  params.numObjects = 6;
  const workload::Workload load = workload::generateHotspot(t, params, rng);
  const Placement nib = nibblePlacement(t, load);
  EXPECT_NO_THROW(validateCoversWorkload(nib, load));
}

TEST(Nibble, HeavySingleWriterPlacesCopyThere) {
  // One processor issues > half of all requests (all writes): the centre
  // of gravity is that leaf and it holds the only copy.
  const Tree t = net::makeStar(4);
  workload::Workload load(1, t.nodeCount());
  load.addWrites(0, 2, 100);
  load.addWrites(0, 1, 10);
  const NibbleObjectResult result = nibbleObject(t, load, 0);
  EXPECT_EQ(result.gravityCenter, 2);
  const auto locs = result.placement.locations();
  ASSERT_EQ(locs.size(), 1u);
  EXPECT_EQ(locs[0], 2);
}

}  // namespace
}  // namespace hbn::core
