// Tests for load/congestion evaluation — including the exact arithmetic
// the paper's NP-hardness proof (Theorem 2.1) relies on.
#include <gtest/gtest.h>

#include "hbn/core/load.h"
#include "hbn/core/placement.h"
#include "hbn/net/generators.h"

namespace hbn::core {
namespace {

// Star with bus 0 and processors 1..4, in the paper's Figure 3 labelling:
// a=1, b=2, s=3, s̄=4. Leaf edge e_i connects processor i; edge ids follow
// creation order 0..3 for processors 1..4.
struct Gadget {
  net::Tree tree = net::makeStar(4, 1000.0);
  net::RootedTree rooted{tree, 0};
};

TEST(Load, ReadChargesPathOnly) {
  Gadget g;
  workload::Workload load(1, g.tree.nodeCount());
  load.addReads(0, 1, 5);
  const net::NodeId locations[] = {3};
  Placement p;
  p.objects.push_back(makeNearestPlacement(g.tree, load, 0, locations));
  const LoadMap lm = computeLoad(g.rooted, p);
  EXPECT_EQ(lm.edgeLoad(0), 5);  // edge to processor 1
  EXPECT_EQ(lm.edgeLoad(2), 5);  // edge to processor 3
  EXPECT_EQ(lm.edgeLoad(1), 0);
  EXPECT_EQ(lm.edgeLoad(3), 0);
  EXPECT_EQ(lm.totalLoad(), 10);
}

TEST(Load, LocalReadIsFree) {
  Gadget g;
  workload::Workload load(1, g.tree.nodeCount());
  load.addReads(0, 3, 9);
  const net::NodeId locations[] = {3};
  Placement p;
  p.objects.push_back(makeNearestPlacement(g.tree, load, 0, locations));
  const LoadMap lm = computeLoad(g.rooted, p);
  EXPECT_EQ(lm.totalLoad(), 0);
}

TEST(Load, WriteWithSingleCopyChargesPathOnly) {
  // Single copy: the Steiner tree of one node is empty, so a write behaves
  // like a read — exactly the accounting in the NP-hardness proof.
  Gadget g;
  workload::Workload load(1, g.tree.nodeCount());
  load.addWrites(0, 1, 3);
  const net::NodeId locations[] = {3};
  Placement p;
  p.objects.push_back(makeNearestPlacement(g.tree, load, 0, locations));
  const LoadMap lm = computeLoad(g.rooted, p);
  EXPECT_EQ(lm.edgeLoad(0), 3);
  EXPECT_EQ(lm.edgeLoad(2), 3);
  EXPECT_EQ(lm.totalLoad(), 6);
}

TEST(Load, WriteWithTwoCopiesChargesSteinerToo) {
  Gadget g;
  workload::Workload load(1, g.tree.nodeCount());
  load.addWrites(0, 1, 2);  // writer at a=1
  const net::NodeId locations[] = {3, 4};
  Placement p;
  p.objects.push_back(makeNearestPlacement(g.tree, load, 0, locations));
  const LoadMap lm = computeLoad(g.rooted, p);
  // Path a->nearest copy (node 3 by tie-break): edges 0 and 2, +2 each.
  // Steiner tree {3,4}: edges 2 and 3, +2 (κ=2) each.
  EXPECT_EQ(lm.edgeLoad(0), 2);
  EXPECT_EQ(lm.edgeLoad(2), 4);  // path + broadcast share the edge
  EXPECT_EQ(lm.edgeLoad(3), 2);
  EXPECT_EQ(lm.edgeLoad(1), 0);
}

TEST(Load, WriterHoldingCopyStillPaysBroadcast) {
  Gadget g;
  workload::Workload load(1, g.tree.nodeCount());
  load.addWrites(0, 1, 4);
  const net::NodeId locations[] = {1, 2};  // writer holds a copy
  Placement p;
  p.objects.push_back(makeNearestPlacement(g.tree, load, 0, locations));
  const LoadMap lm = computeLoad(g.rooted, p);
  // Local path is free; broadcast over Steiner {1,2} charges both edges κ=4.
  EXPECT_EQ(lm.edgeLoad(0), 4);
  EXPECT_EQ(lm.edgeLoad(1), 4);
}

TEST(Load, BusLoadIsHalfIncidentSum) {
  Gadget g;
  workload::Workload load(1, g.tree.nodeCount());
  load.addReads(0, 1, 6);
  const net::NodeId locations[] = {2};
  Placement p;
  p.objects.push_back(makeNearestPlacement(g.tree, load, 0, locations));
  const LoadMap lm = computeLoad(g.rooted, p);
  // Two incident edges carry 6 each -> bus load 6 (one message crossing a
  // bus counts once).
  EXPECT_DOUBLE_EQ(lm.busLoad(g.tree, 0), 6.0);
}

TEST(Load, CongestionDividesByBandwidth) {
  net::TreeBuilder b;
  const net::NodeId bus = b.addBus(4.0);
  const net::NodeId p1 = b.addProcessor();
  const net::NodeId p2 = b.addProcessor();
  b.connect(bus, p1, 1.0);
  b.connect(bus, p2, 2.0);
  const net::Tree t = b.build();
  const net::RootedTree rooted(t, bus);

  workload::Workload load(1, t.nodeCount());
  load.addReads(0, p1, 8);
  const net::NodeId locations[] = {p2};
  Placement p;
  p.objects.push_back(makeNearestPlacement(t, load, 0, locations));
  const LoadMap lm = computeLoad(rooted, p);
  // Edge to p1: 8/1 = 8; edge to p2: 8/2 = 4; bus: (8+8)/2 / 4 = 2.
  EXPECT_DOUBLE_EQ(lm.edgeCongestion(t), 8.0);
  EXPECT_DOUBLE_EQ(lm.busCongestion(t), 2.0);
  EXPECT_DOUBLE_EQ(lm.congestion(t), 8.0);
}

TEST(Load, NpHardnessProofArithmetic) {
  // The reduction's charging argument: for object x_i with weight k_i
  // written by all four leaves, edge e_a carries k_i if x_i is NOT placed
  // on a, and 3 k_i if it is.
  Gadget g;
  const Count ki = 5;
  workload::Workload load(1, g.tree.nodeCount());
  for (const net::NodeId v : g.tree.processors()) {
    load.addWrites(0, v, ki);
  }

  {  // placed on s (node 3): a's writes cross e_a once.
    const net::NodeId locations[] = {3};
    Placement p;
    p.objects.push_back(makeNearestPlacement(g.tree, load, 0, locations));
    const LoadMap lm = computeLoad(g.rooted, p);
    EXPECT_EQ(lm.edgeLoad(0), ki);
  }
  {  // placed on a (node 1): the other three writers all cross e_a.
    const net::NodeId locations[] = {1};
    Placement p;
    p.objects.push_back(makeNearestPlacement(g.tree, load, 0, locations));
    const LoadMap lm = computeLoad(g.rooted, p);
    EXPECT_EQ(lm.edgeLoad(0), 3 * ki);
  }
}

TEST(Load, MultipleObjectsAccumulate) {
  Gadget g;
  workload::Workload load(2, g.tree.nodeCount());
  load.addReads(0, 1, 3);
  load.addReads(1, 1, 4);
  Placement p;
  const net::NodeId loc2[] = {2};
  const net::NodeId loc3[] = {3};
  p.objects.push_back(makeNearestPlacement(g.tree, load, 0, loc2));
  p.objects.push_back(makeNearestPlacement(g.tree, load, 1, loc3));
  const LoadMap lm = computeLoad(g.rooted, p);
  EXPECT_EQ(lm.edgeLoad(0), 7);  // both objects' requests leave node 1
  EXPECT_EQ(lm.edgeLoad(1), 3);
  EXPECT_EQ(lm.edgeLoad(2), 4);
}

TEST(Load, LedgerSplitAcrossCoLocatedCopiesCountsOnce) {
  // Two copies on the SAME node: the Steiner tree over locations is a
  // single node, so writes pay no broadcast and the split is load-neutral.
  Gadget g;
  workload::Workload load(1, g.tree.nodeCount());
  load.addWrites(0, 1, 10);
  Placement p;
  p.objects.resize(1);
  Copy c1;
  c1.location = 3;
  c1.served.push_back(RequestShare{1, 0, 6});
  Copy c2;
  c2.location = 3;
  c2.served.push_back(RequestShare{1, 0, 4});
  p.objects[0].copies = {c1, c2};
  const LoadMap lm = computeLoad(g.rooted, p);
  EXPECT_EQ(lm.edgeLoad(0), 10);
  EXPECT_EQ(lm.edgeLoad(2), 10);
  EXPECT_EQ(lm.edgeLoad(1), 0);
}

}  // namespace
}  // namespace hbn::core
