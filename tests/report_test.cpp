// Tests for the reporting helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "hbn/core/extended_nibble.h"
#include "hbn/core/report.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::core {
namespace {

Placement makeSamplePlacement(const net::Tree& t,
                              const workload::Workload& load) {
  Placement p;
  const net::NodeId single[] = {t.processors()[0]};
  const net::NodeId pair[] = {t.processors()[0], t.processors()[1]};
  p.objects.push_back(makeNearestPlacement(t, load, 0, single));
  p.objects.push_back(makeNearestPlacement(t, load, 1, pair));
  return p;
}

TEST(Report, SummarizeCountsCopies) {
  const net::Tree t = net::makeStar(4);
  workload::Workload load(2, t.nodeCount());
  load.addReads(0, 1, 1);
  load.addReads(1, 2, 1);
  const Placement p = makeSamplePlacement(t, load);
  const PlacementSummary s = summarize(p);
  EXPECT_EQ(s.objects, 2);
  EXPECT_EQ(s.totalCopies, 3);
  EXPECT_EQ(s.minCopies, 1);
  EXPECT_EQ(s.maxCopies, 2);
  EXPECT_DOUBLE_EQ(s.meanCopies, 1.5);
  EXPECT_EQ(s.replicatedObjects, 1);
}

TEST(Report, PrintPlacementFormat) {
  const net::Tree t = net::makeStar(4);
  workload::Workload load(2, t.nodeCount());
  const Placement p = makeSamplePlacement(t, load);
  const std::string out = placementToString(p);
  EXPECT_NE(out.find("object 0 -> {1}"), std::string::npos);
  EXPECT_NE(out.find("object 1 -> {1, 2}"), std::string::npos);
}

TEST(Report, HotspotsSortedByRelativeLoad) {
  const net::Tree t = net::makeStar(3, 100.0);
  workload::Workload load(1, t.nodeCount());
  load.addReads(0, 2, 9);
  Placement p;
  const net::NodeId loc[] = {t.processors()[0]};
  p.objects.push_back(makeNearestPlacement(t, load, 0, loc));
  const net::RootedTree rooted(t, t.defaultRoot());
  const LoadMap loads = computeLoad(rooted, p);
  std::ostringstream oss;
  printHotspots(t, loads, 2, oss);
  const std::string out = oss.str();
  // Two leaf edges carry 9 at bandwidth 1; they must come first.
  const auto firstEdge = out.find("edge");
  const auto firstBus = out.find("bus");
  EXPECT_NE(firstEdge, std::string::npos);
  EXPECT_EQ(firstBus, std::string::npos);  // bus excluded by top=2
}

TEST(Report, PrintReportMentionsAllSteps) {
  util::Rng rng(7);
  const net::Tree t = net::makeKaryTree(3, 2);
  workload::GenParams params;
  params.numObjects = 4;
  const workload::Workload load = workload::generateUniform(t, params, rng);
  const auto result = extendedNibble(t, load);
  std::ostringstream oss;
  printReport(result.report, oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("nibble"), std::string::npos);
  EXPECT_NE(out.find("deletion"), std::string::npos);
  EXPECT_NE(out.find("mapping"), std::string::npos);
  EXPECT_NE(out.find("tau_max"), std::string::npos);
}

TEST(Report, EmptyPlacementSummary) {
  Placement p;
  const PlacementSummary s = summarize(p);
  EXPECT_EQ(s.objects, 0);
  EXPECT_EQ(s.totalCopies, 0);
  EXPECT_DOUBLE_EQ(s.meanCopies, 0.0);
}

}  // namespace
}  // namespace hbn::core
