// Cross-module integration tests: serialisation round-trips feeding the
// full pipeline, SCI networks driving the strategy, and end-to-end CLI-
// style flows (file formats -> placement -> loads -> report).
#include <gtest/gtest.h>

#include <sstream>

#include "hbn/core/extended_nibble.h"
#include "hbn/core/lower_bound.h"
#include "hbn/core/report.h"
#include "hbn/net/generators.h"
#include "hbn/net/serialize.h"
#include "hbn/sci/ring_network.h"
#include "hbn/sim/simulator.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"
#include "hbn/workload/serialize.h"

namespace hbn {
namespace {

TEST(Integration, SerializedInstanceReproducesPlacement) {
  // Tree and workload survive a text round-trip and produce the identical
  // extended-nibble result — the contract behind the hbn_place CLI.
  util::Rng rng(401);
  const net::Tree tree = net::makeRandomTree(24, 8, rng);
  workload::GenParams params;
  params.numObjects = 6;
  const workload::Workload load =
      workload::generateZipf(tree, params, rng);

  const net::Tree tree2 = net::parseText(net::toText(tree));
  const workload::Workload load2 =
      workload::parseText(workload::toText(load));

  const auto a = core::extendedNibble(tree, load);
  const auto b = core::extendedNibble(tree2, load2);
  EXPECT_EQ(a.report.congestionFinal, b.report.congestionFinal);
  EXPECT_EQ(core::placementToString(a.final),
            core::placementToString(b.final));
}

TEST(Integration, SciNetworkDrivesFullPipeline) {
  // Ring hardware -> bus view -> strategy -> simulator, end to end.
  util::Rng rng(409);
  const sci::RingNetwork rings = sci::makeBalancedRingHierarchy(3, 2, 4);
  const sci::BusView view = sci::toBusNetwork(rings);
  workload::GenParams params;
  params.numObjects = 8;
  params.requestsPerProcessor = 20;
  const workload::Workload load =
      workload::generateClustered(view.tree, params, rng);
  const auto result = core::extendedNibble(view.tree, load);
  EXPECT_TRUE(result.final.isLeafOnly(view.tree));
  const net::RootedTree rooted(view.tree, view.tree.defaultRoot());
  const sim::SimResult sim =
      sim::simulatePlacement(rooted, load, result.final);
  EXPECT_GE(sim.makespan, static_cast<std::int64_t>(sim.congestion));
  EXPECT_LE(sim.maxUtilization, 1.0 + 1e-9);
}

TEST(Integration, ReportSummaryMatchesPlacement) {
  util::Rng rng(419);
  const net::Tree tree = net::makeClusterNetwork(3, 4);
  workload::GenParams params;
  params.numObjects = 10;
  const workload::Workload load =
      workload::generateHotspot(tree, params, rng);
  const auto result = core::extendedNibble(tree, load);
  const core::PlacementSummary summary = core::summarize(result.final);
  EXPECT_EQ(summary.objects, 10);
  long copies = 0;
  for (const auto& object : result.final.objects) {
    copies += static_cast<long>(object.locations().size());
  }
  EXPECT_EQ(summary.totalCopies, copies);
  EXPECT_LE(summary.minCopies, summary.maxCopies);
}

TEST(Integration, WorstCaseStarUnderAllWrites) {
  // The hardest regime for the strategy: a star where everything is a
  // write. Optimal spreads objects over leaves; the strategy must stay
  // within its factor of the combined bound.
  const net::Tree tree = net::makeStar(8, 1000.0);
  workload::Workload load(8, tree.nodeCount());
  for (workload::ObjectId x = 0; x < 8; ++x) {
    for (const net::NodeId p : tree.processors()) {
      load.addWrites(x, p, 5);
    }
  }
  const auto result = core::extendedNibble(tree, load);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const double lb = core::combinedLowerBound(rooted, load);
  ASSERT_GT(lb, 0.0);
  EXPECT_LE(result.report.congestionFinal, 7.0 * lb);
}

TEST(Integration, LargeInstanceStaysHealthy) {
  // A ~1300-node network with 64 objects runs the whole pipeline in one
  // piece and keeps every invariant (smoke test at a size the benches
  // use).
  util::Rng rng(421);
  const net::Tree tree = net::makeKaryTree(4, 5);  // 1024 processors
  workload::GenParams params;
  params.numObjects = 64;
  params.requestsPerProcessor = 8;
  const workload::Workload load =
      workload::generateZipf(tree, params, rng);
  const auto result = core::extendedNibble(tree, load);
  EXPECT_TRUE(result.final.isLeafOnly(tree));
  EXPECT_EQ(result.report.mapping.forcedMoves, 0);
  EXPECT_NO_THROW(core::validateCoversWorkload(result.final, load));
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const double lb = core::combinedLowerBound(rooted, load);
  if (lb > 0.0) {
    EXPECT_LE(result.report.congestionFinal, 7.0 * lb);
  }
}

}  // namespace
}  // namespace hbn
