// Tests for hbn::util — RNG determinism and distributions, statistics,
// table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "hbn/util/alias.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"

namespace hbn::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng());
  EXPECT_GT(seen.size(), 90u);  // not stuck
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.nextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.nextBelow(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.1);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(13);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.nextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.nextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_TRUE(rng.nextBool(1.0));
  }
}

TEST(Rng, NextBoolProbability) {
  Rng rng(23);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.nextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(Rng, WeightedSamplingMatchesWeights) {
  Rng rng(29);
  const double weights[] = {1.0, 3.0, 6.0};
  int counts[3] = {};
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.nextWeighted(weights)];
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.02);
}

TEST(Rng, WeightedSkipsZeroWeight) {
  Rng rng(31);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.nextWeighted(weights), 1u);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = items;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, items);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  for (double v : {4.0, 1.0, 3.0, 2.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.median(), 2.5);
}

TEST(Stats, AccumulatorPercentiles) {
  Accumulator acc;
  for (int i = 1; i <= 100; ++i) acc.add(static_cast<double>(i));
  EXPECT_NEAR(acc.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(acc.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(acc.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(acc.percentile(90), 90.1, 0.2);
}

TEST(Stats, AccumulatorPercentileAfterAddInvalidatesCache) {
  Accumulator acc;
  acc.add(1.0);
  EXPECT_DOUBLE_EQ(acc.median(), 1.0);
  acc.add(100.0);
  EXPECT_DOUBLE_EQ(acc.median(), 50.5);
}

TEST(Stats, AccumulatorStddev) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.01);
}

TEST(Stats, EmptyAccumulatorThrows) {
  Accumulator acc;
  EXPECT_THROW((void)acc.mean(), std::logic_error);
  EXPECT_THROW((void)acc.min(), std::logic_error);
  EXPECT_THROW((void)acc.percentile(50), std::logic_error);
}

TEST(Stats, PercentileSortedMatchesAccumulator) {
  // One percentile definition: the free function on a sorted sample and
  // the Accumulator (which delegates to it) agree everywhere.
  Accumulator acc;
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) {
    acc.add(static_cast<double>(101 - i));
    values.push_back(static_cast<double>(i));
  }
  for (const double q : {0.0, 12.5, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(percentileSorted(values, q), acc.percentile(q)) << q;
  }
  EXPECT_DOUBLE_EQ(percentileSorted(values, -5.0), 1.0);    // clamped
  EXPECT_DOUBLE_EQ(percentileSorted(values, 200.0), 100.0);  // clamped
  EXPECT_THROW((void)percentileSorted({}, 50.0), std::logic_error);
}

TEST(Stats, ReservoirSamplerKeepsEverythingBelowCapacity) {
  ReservoirSampler sampler(64);
  for (int i = 0; i < 50; ++i) sampler.add(static_cast<double>(i));
  EXPECT_EQ(sampler.seen(), 50u);
  EXPECT_EQ(sampler.samples().size(), 50u);
  EXPECT_DOUBLE_EQ(sampler.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sampler.percentile(100.0), 49.0);
}

TEST(Stats, ReservoirSamplerIsBoundedUniformAndDeterministic) {
  ReservoirSampler a(100, 42);
  ReservoirSampler b(100, 42);
  for (int i = 0; i < 100'000; ++i) {
    a.add(static_cast<double>(i));
    b.add(static_cast<double>(i));
  }
  EXPECT_EQ(a.seen(), 100'000u);
  EXPECT_EQ(a.samples().size(), 100u);
  // Same seed, same stream → same reservoir.
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples()[i], b.samples()[i]);
  }
  // Algorithm R keeps a uniform sample, so the median of a uniform
  // 0..100k stream lands near the middle (loose sanity bound).
  EXPECT_GT(a.percentile(50.0), 20'000.0);
  EXPECT_LT(a.percentile(50.0), 80'000.0);
}

TEST(Stats, ReservoirSamplerDisabledCountsOnly) {
  ReservoirSampler sampler(0);
  for (int i = 0; i < 10; ++i) sampler.add(1.0);
  EXPECT_EQ(sampler.seen(), 10u);
  EXPECT_TRUE(sampler.empty());
  EXPECT_THROW((void)sampler.percentile(50.0), std::logic_error);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const double xs[] = {1, 2, 3, 4, 5};
  const double ys[] = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const double zs[] = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  const double xs[] = {1, 1, 1};
  const double ys[] = {1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, LinearSlope) {
  const double xs[] = {0, 1, 2, 3};
  const double ys[] = {1, 3, 5, 7};
  EXPECT_NEAR(linearSlope(xs, ys), 2.0, 1e-12);
}

TEST(Table, AlignsAndPrints) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22"});
  const std::string out = t.toString();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscaping) {
  Table t({"k", "v"});
  t.addRow({"with,comma", "with\"quote"});
  std::ostringstream oss;
  t.printCsv(oss);
  EXPECT_NE(oss.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(oss.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer timer;
  double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink += std::sqrt(static_cast<double>(i));
  (void)sink;
  EXPECT_GE(timer.seconds(), 0.0);
  EXPECT_GE(timer.millis(), timer.seconds());  // ms >= s for positive times
}

TEST(FormatDouble, Digits) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(AliasTable, MatchesWeightProportions) {
  const std::vector<double> weights = {1.0, 0.0, 4.0, 2.0, 1.0};
  const AliasTable table(weights);
  ASSERT_EQ(table.size(), weights.size());
  Rng rng(1234);
  std::vector<int> hits(weights.size(), 0);
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) ++hits[table.sample(rng)];
  EXPECT_EQ(hits[1], 0);  // zero weight is never drawn
  const double total = 8.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / total;
    const double observed =
        static_cast<double>(hits[i]) / static_cast<double>(kDraws);
    EXPECT_NEAR(observed, expected, 0.01) << "index " << i;
  }
}

TEST(AliasTable, DeterministicAcrossInstances) {
  std::vector<double> weights(257);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  const AliasTable a(weights);
  const AliasTable b(weights);
  Rng rngA(9);
  Rng rngB(9);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(a.sample(rngA), b.sample(rngB));
  }
}

TEST(AliasTable, RejectsDegenerateInput) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hbn::util
