// Round-trip and error-path tests for workload serialisation.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/net/generators.h"
#include "hbn/workload/generators.h"
#include "hbn/workload/serialize.h"

namespace hbn::workload {
namespace {

TEST(WorkloadSerialize, RoundTripSmall) {
  Workload w(2, 5);
  w.addReads(0, 1, 3);
  w.addWrites(1, 4, 7);
  const Workload back = parseText(toText(w));
  EXPECT_EQ(back.numObjects(), 2);
  EXPECT_EQ(back.numNodes(), 5);
  EXPECT_EQ(back.reads(0, 1), 3);
  EXPECT_EQ(back.writes(1, 4), 7);
  EXPECT_EQ(toText(back), toText(w));
}

TEST(WorkloadSerialize, RoundTripGeneratedProfiles) {
  util::Rng rng(55);
  const net::Tree t = net::makeKaryTree(3, 2);
  for (int p = 0; p < 6; ++p) {
    GenParams params;
    params.numObjects = 6;
    params.requestsPerProcessor = 20;
    const Workload w =
        generate(static_cast<Profile>(p), t, params, rng);
    const Workload back = parseText(toText(w));
    EXPECT_EQ(toText(back), toText(w)) << profileName(static_cast<Profile>(p));
  }
}

TEST(WorkloadSerialize, EmptyWorkloadRoundTrips) {
  Workload w(3, 4);
  const Workload back = parseText(toText(w));
  EXPECT_EQ(back.grandTotal(), 0);
  EXPECT_EQ(back.numObjects(), 3);
}

TEST(WorkloadSerialize, MissingHeaderRejected) {
  EXPECT_THROW((void)parseText("dims 1 1\n"), std::invalid_argument);
}

TEST(WorkloadSerialize, MissingDimsRejected) {
  EXPECT_THROW((void)parseText("hbn-workload v1\n"), std::invalid_argument);
}

TEST(WorkloadSerialize, UnknownKeywordRejected) {
  const char* text =
      "hbn-workload v1\n"
      "dims 1 2\n"
      "modify 0 0 1\n";
  EXPECT_THROW((void)parseText(text), std::invalid_argument);
}

TEST(WorkloadSerialize, OutOfRangeEntryRejected) {
  const char* text =
      "hbn-workload v1\n"
      "dims 1 2\n"
      "read 0 9 1\n";
  EXPECT_THROW((void)parseText(text), std::out_of_range);
}

TEST(WorkloadSerialize, NegativeCountRejected) {
  const char* text =
      "hbn-workload v1\n"
      "dims 1 2\n"
      "read 0 0 -5\n";
  EXPECT_THROW((void)parseText(text), std::invalid_argument);
}

TEST(WorkloadSerialize, DuplicateEntriesAccumulate) {
  const char* text =
      "hbn-workload v1\n"
      "dims 1 2\n"
      "read 0 0 2\n"
      "read 0 0 3\n";
  const Workload w = parseText(text);
  EXPECT_EQ(w.reads(0, 0), 5);
}

TEST(TraceSerialize, RoundTripPreservesOrder) {
  std::vector<RequestEvent> events = {
      {0, 3, false}, {2, 1, true}, {0, 3, false}, {1, 4, true}};
  std::ostringstream oss;
  writeTraceHeader(oss, 3, 5);
  for (const RequestEvent& ev : events) writeTraceEvent(oss, ev);

  std::istringstream in(oss.str());
  TraceReader reader(in);
  EXPECT_EQ(reader.numObjects(), 3);
  EXPECT_EQ(reader.numNodes(), 5);
  RequestEvent ev;
  for (const RequestEvent& expected : events) {
    ASSERT_TRUE(reader.next(ev));
    EXPECT_EQ(ev.object, expected.object);
    EXPECT_EQ(ev.origin, expected.origin);
    EXPECT_EQ(ev.isWrite, expected.isWrite);
  }
  EXPECT_FALSE(reader.next(ev));
  EXPECT_FALSE(reader.next(ev));  // stays exhausted
}

TEST(TraceSerialize, MissingHeaderRejected) {
  std::istringstream in("r 0 0\n");
  EXPECT_THROW(TraceReader reader(in), std::invalid_argument);
}

TEST(TraceSerialize, MalformedLinesRejected) {
  const auto readAll = [](const std::string& body) {
    std::istringstream in("hbn-trace v1\ndims 2 4\n" + body);
    TraceReader reader(in);
    RequestEvent ev;
    while (reader.next(ev)) {
    }
  };
  EXPECT_THROW(readAll("x 0 0\n"), std::invalid_argument);   // bad keyword
  EXPECT_THROW(readAll("r 0\n"), std::invalid_argument);     // missing field
  EXPECT_THROW(readAll("r 0 0 9\n"), std::invalid_argument); // trailing
  EXPECT_THROW(readAll("r 0 0x\n"), std::invalid_argument);  // partial parse
  EXPECT_THROW(readAll("r 2 0\n"), std::invalid_argument);   // object range
  EXPECT_THROW(readAll("w 0 4\n"), std::invalid_argument);   // node range
  EXPECT_THROW(readAll("r -1 0\n"), std::invalid_argument);  // negative
}

TEST(TraceSerialize, BlankLinesAreSkipped) {
  std::istringstream in("hbn-trace v1\ndims 1 2\n\nr 0 1\n\n");
  TraceReader reader(in);
  RequestEvent ev;
  ASSERT_TRUE(reader.next(ev));
  EXPECT_EQ(ev.origin, 1);
  EXPECT_FALSE(reader.next(ev));
}

}  // namespace
}  // namespace hbn::workload
