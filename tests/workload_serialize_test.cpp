// Round-trip and error-path tests for workload serialisation.
#include <gtest/gtest.h>

#include "hbn/net/generators.h"
#include "hbn/workload/generators.h"
#include "hbn/workload/serialize.h"

namespace hbn::workload {
namespace {

TEST(WorkloadSerialize, RoundTripSmall) {
  Workload w(2, 5);
  w.addReads(0, 1, 3);
  w.addWrites(1, 4, 7);
  const Workload back = parseText(toText(w));
  EXPECT_EQ(back.numObjects(), 2);
  EXPECT_EQ(back.numNodes(), 5);
  EXPECT_EQ(back.reads(0, 1), 3);
  EXPECT_EQ(back.writes(1, 4), 7);
  EXPECT_EQ(toText(back), toText(w));
}

TEST(WorkloadSerialize, RoundTripGeneratedProfiles) {
  util::Rng rng(55);
  const net::Tree t = net::makeKaryTree(3, 2);
  for (int p = 0; p < 6; ++p) {
    GenParams params;
    params.numObjects = 6;
    params.requestsPerProcessor = 20;
    const Workload w =
        generate(static_cast<Profile>(p), t, params, rng);
    const Workload back = parseText(toText(w));
    EXPECT_EQ(toText(back), toText(w)) << profileName(static_cast<Profile>(p));
  }
}

TEST(WorkloadSerialize, EmptyWorkloadRoundTrips) {
  Workload w(3, 4);
  const Workload back = parseText(toText(w));
  EXPECT_EQ(back.grandTotal(), 0);
  EXPECT_EQ(back.numObjects(), 3);
}

TEST(WorkloadSerialize, MissingHeaderRejected) {
  EXPECT_THROW((void)parseText("dims 1 1\n"), std::invalid_argument);
}

TEST(WorkloadSerialize, MissingDimsRejected) {
  EXPECT_THROW((void)parseText("hbn-workload v1\n"), std::invalid_argument);
}

TEST(WorkloadSerialize, UnknownKeywordRejected) {
  const char* text =
      "hbn-workload v1\n"
      "dims 1 2\n"
      "modify 0 0 1\n";
  EXPECT_THROW((void)parseText(text), std::invalid_argument);
}

TEST(WorkloadSerialize, OutOfRangeEntryRejected) {
  const char* text =
      "hbn-workload v1\n"
      "dims 1 2\n"
      "read 0 9 1\n";
  EXPECT_THROW((void)parseText(text), std::out_of_range);
}

TEST(WorkloadSerialize, NegativeCountRejected) {
  const char* text =
      "hbn-workload v1\n"
      "dims 1 2\n"
      "read 0 0 -5\n";
  EXPECT_THROW((void)parseText(text), std::invalid_argument);
}

TEST(WorkloadSerialize, DuplicateEntriesAccumulate) {
  const char* text =
      "hbn-workload v1\n"
      "dims 1 2\n"
      "read 0 0 2\n"
      "read 0 0 3\n";
  const Workload w = parseText(text);
  EXPECT_EQ(w.reads(0, 0), 5);
}

}  // namespace
}  // namespace hbn::workload
