// Tests for the workload matrix and every generator profile.
#include <gtest/gtest.h>

#include "hbn/net/generators.h"
#include "hbn/workload/generators.h"
#include "hbn/workload/workload.h"

namespace hbn::workload {
namespace {

TEST(Workload, StartsZeroAndAccumulates) {
  Workload w(2, 5);
  EXPECT_EQ(w.reads(0, 0), 0);
  EXPECT_EQ(w.grandTotal(), 0);
  w.addReads(0, 1, 3);
  w.addWrites(0, 2, 4);
  w.addWrites(1, 1, 2);
  EXPECT_EQ(w.reads(0, 1), 3);
  EXPECT_EQ(w.writes(0, 2), 4);
  EXPECT_EQ(w.total(0, 2), 4);
  EXPECT_EQ(w.objectReads(0), 3);
  EXPECT_EQ(w.objectWrites(0), 4);
  EXPECT_EQ(w.objectTotal(0), 7);
  EXPECT_EQ(w.objectWrites(1), 2);
  EXPECT_EQ(w.grandTotal(), 9);
  EXPECT_EQ(w.maxWriteContention(), 4);
}

TEST(Workload, SetOverwritesAndFixesTotals) {
  Workload w(1, 3);
  w.addReads(0, 0, 10);
  w.setReads(0, 0, 4);
  EXPECT_EQ(w.objectReads(0), 4);
  w.setWrites(0, 1, 6);
  w.setWrites(0, 1, 2);
  EXPECT_EQ(w.objectWrites(0), 2);
}

TEST(Workload, RejectsBadInput) {
  EXPECT_THROW(Workload(0, 3), std::invalid_argument);
  Workload w(1, 3);
  EXPECT_THROW(w.addReads(0, 0, -1), std::invalid_argument);
  EXPECT_THROW(w.addReads(5, 0, 1), std::out_of_range);
  EXPECT_THROW(w.addReads(0, 9, 1), std::out_of_range);
}

TEST(Workload, RowViews) {
  Workload w(2, 4);
  w.addReads(1, 2, 5);
  const auto row = w.readRow(1);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[2], 5);
}

TEST(Workload, ValidateProcessorOnly) {
  const net::Tree t = net::makeStar(3);  // node 0 is the bus
  Workload good(1, t.nodeCount());
  good.addReads(0, 1, 2);
  EXPECT_NO_THROW(good.validateProcessorOnly(t));

  Workload bad(1, t.nodeCount());
  bad.addReads(0, 0, 1);  // on the bus
  EXPECT_THROW(bad.validateProcessorOnly(t), std::invalid_argument);

  Workload mismatched(1, 2);
  EXPECT_THROW(mismatched.validateProcessorOnly(t), std::invalid_argument);
}

class GeneratorProfileTest : public ::testing::TestWithParam<Profile> {};

TEST_P(GeneratorProfileTest, ProducesValidProcessorOnlyWorkload) {
  util::Rng rng(1234);
  const net::Tree t = net::makeKaryTree(3, 2);
  GenParams params;
  params.numObjects = 8;
  params.requestsPerProcessor = 40;
  const Workload w = generate(GetParam(), t, params, rng);
  EXPECT_EQ(w.numObjects(), 8);
  EXPECT_NO_THROW(w.validateProcessorOnly(t));
  EXPECT_GT(w.grandTotal(), 0);
}

TEST_P(GeneratorProfileTest, DeterministicUnderSeed) {
  const net::Tree t = net::makeKaryTree(2, 2);
  GenParams params;
  params.numObjects = 4;
  params.requestsPerProcessor = 16;
  util::Rng rng1(5);
  util::Rng rng2(5);
  const Workload a = generate(GetParam(), t, params, rng1);
  const Workload b = generate(GetParam(), t, params, rng2);
  for (ObjectId x = 0; x < a.numObjects(); ++x) {
    for (net::NodeId v = 0; v < t.nodeCount(); ++v) {
      EXPECT_EQ(a.reads(x, v), b.reads(x, v));
      EXPECT_EQ(a.writes(x, v), b.writes(x, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, GeneratorProfileTest,
    ::testing::Values(Profile::uniform, Profile::zipf, Profile::hotspot,
                      Profile::clustered, Profile::producerConsumer,
                      Profile::adversarial),
    [](const ::testing::TestParamInfo<Profile>& info) {
      std::string name = profileName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Generators, UniformSpreadsRequests) {
  util::Rng rng(3);
  const net::Tree t = net::makeStar(8);
  GenParams params;
  params.numObjects = 4;
  params.requestsPerProcessor = 100;
  const Workload w = generateUniform(t, params, rng);
  // Every processor issued exactly requestsPerProcessor requests.
  for (const net::NodeId p : t.processors()) {
    Count total = 0;
    for (ObjectId x = 0; x < w.numObjects(); ++x) total += w.total(x, p);
    EXPECT_EQ(total, params.requestsPerProcessor);
  }
}

TEST(Generators, ReadFractionRespected) {
  util::Rng rng(4);
  const net::Tree t = net::makeStar(16);
  GenParams params;
  params.numObjects = 2;
  params.requestsPerProcessor = 500;
  params.readFraction = 0.8;
  const Workload w = generateUniform(t, params, rng);
  const double reads = static_cast<double>(w.objectReads(0) + w.objectReads(1));
  const double total = static_cast<double>(w.grandTotal());
  EXPECT_NEAR(reads / total, 0.8, 0.05);
}

TEST(Generators, ZipfSkewsTowardLowIds) {
  util::Rng rng(5);
  const net::Tree t = net::makeStar(16);
  GenParams params;
  params.numObjects = 16;
  params.requestsPerProcessor = 200;
  params.zipfAlpha = 1.2;
  const Workload w = generateZipf(t, params, rng);
  EXPECT_GT(w.objectTotal(0), w.objectTotal(15) * 2);
}

TEST(Generators, HotspotConcentratesOnHotObjects) {
  util::Rng rng(6);
  const net::Tree t = net::makeStar(16);
  GenParams params;
  params.numObjects = 10;
  params.requestsPerProcessor = 200;
  params.hotObjects = 1;
  params.hotFraction = 0.9;
  const Workload w = generateHotspot(t, params, rng);
  EXPECT_GT(w.objectTotal(0),
            w.grandTotal() / 2);  // the single hot object dominates
}

TEST(Generators, ProducerConsumerHasSingleWriter) {
  util::Rng rng(7);
  const net::Tree t = net::makeKaryTree(4, 1);
  GenParams params;
  params.numObjects = 6;
  params.requestsPerProcessor = 60;
  const Workload w = generateProducerConsumer(t, params, rng);
  for (ObjectId x = 0; x < w.numObjects(); ++x) {
    int writers = 0;
    for (const net::NodeId p : t.processors()) {
      if (w.writes(x, p) > 0) ++writers;
    }
    EXPECT_EQ(writers, 1) << "object " << x;
  }
}

TEST(Generators, AdversarialIsWriteHeavy) {
  util::Rng rng(8);
  const net::Tree t = net::makeKaryTree(3, 2);
  GenParams params;
  params.numObjects = 6;
  params.requestsPerProcessor = 20;
  const Workload w = generateAdversarial(t, params, rng);
  Count reads = 0;
  Count writes = 0;
  for (ObjectId x = 0; x < w.numObjects(); ++x) {
    reads += w.objectReads(x);
    writes += w.objectWrites(x);
  }
  EXPECT_GT(writes, reads);
}

TEST(Generators, BadParamsRejected) {
  util::Rng rng(9);
  const net::Tree t = net::makeStar(4);
  GenParams params;
  params.numObjects = 0;
  EXPECT_THROW(generateUniform(t, params, rng), std::invalid_argument);
  params.numObjects = 2;
  params.readFraction = 1.5;
  EXPECT_THROW(generateUniform(t, params, rng), std::invalid_argument);
}

}  // namespace
}  // namespace hbn::workload
