// Whole-pipeline property sweep: one parameterised test asserting EVERY
// paper invariant at once over a wide topology × workload × read-fraction
// grid. This is the broadest single safety net in the suite.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "hbn/core/extended_nibble.h"
#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::core {
namespace {

// (topology, profile, read-fraction-percent, seed+bandwidth-model)
// seed >= 100 selects the fat-tree bandwidth profile (non-uniform inner
// bandwidths) — the theorems hold for arbitrary bandwidths >= 1.
using Param = std::tuple<net::TopologyFamily, workload::Profile, int, int>;

class PipelineSweep : public ::testing::TestWithParam<Param> {};

TEST_P(PipelineSweep, AllPaperInvariantsHold) {
  const auto [family, profile, readPercent, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 104729 +
                static_cast<std::uint64_t>(readPercent));
  net::BandwidthModel bw;
  bw.fatTree = seed >= 100;
  const net::Tree tree = net::makeFamilyMember(family, 36, rng, bw);
  workload::GenParams params;
  params.numObjects = 8;
  params.requestsPerProcessor = 24;
  params.readFraction = readPercent / 100.0;
  const workload::Workload load =
      workload::generate(profile, tree, params, rng);
  const net::RootedTree rooted(tree, tree.defaultRoot());

  const ExtendedNibbleResult result = extendedNibble(tree, load);

  // (1) Output validity: leaf-only, exact workload cover, at least one
  //     copy per object.
  ASSERT_TRUE(result.final.isLeafOnly(tree));
  ASSERT_NO_THROW(validateCoversWorkload(result.final, load));
  for (const auto& object : result.final.objects) {
    ASSERT_FALSE(object.copies.empty());
  }

  // (2) Theorem 3.1: nibble loads equal the analytic per-edge minima.
  const LoadMap nibbleLoad = computeLoad(rooted, result.nibble);
  const LowerBound lb = analyticLowerBound(rooted, load);
  for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
    ASSERT_EQ(nibbleLoad.edgeLoad(e), lb.edgeMinima.edgeLoad(e));
  }

  // (3) Observation 3.2: modified loads within 2x nibble per edge.
  const LoadMap modifiedLoad = computeLoad(rooted, result.modified);
  for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
    ASSERT_LE(modifiedLoad.edgeLoad(e), 2 * nibbleLoad.edgeLoad(e));
  }

  // (4) Lemma 4.1: the mapping never forced a move.
  ASSERT_EQ(result.report.mapping.forcedMoves, 0);

  // (5) τ_max <= 3 κ_max (the last piece of Theorem 4.3).
  ASSERT_LE(result.report.mapping.tauMax, 3 * load.maxWriteContention());

  // (6) Lemmas 4.5/4.6: final loads within 4 L_nib + τ_max per edge/bus.
  const LoadMap finalLoad = computeLoad(rooted, result.final);
  for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
    ASSERT_LE(finalLoad.edgeLoad(e),
              4 * nibbleLoad.edgeLoad(e) + result.report.mapping.tauMax);
  }
  for (const net::NodeId b : tree.buses()) {
    ASSERT_LE(finalLoad.busLoad(tree, b),
              4.0 * nibbleLoad.busLoad(tree, b) +
                  static_cast<double>(result.report.mapping.tauMax));
  }

  // (7) Theorem 4.3: congestion within 7x of the certified lower bound.
  // The combined bound includes the per-object κ/h argument from the
  // paper's τ_max analysis — the per-edge bound alone is provably too
  // weak on fat-tree bandwidths.
  const double combined = combinedLowerBound(rooted, load);
  if (combined > 0.0) {
    ASSERT_LE(result.report.congestionFinal, 7.0 * combined);
  } else {
    ASSERT_DOUBLE_EQ(result.report.congestionFinal, 0.0);
  }

  // (8) Determinism: a second run is identical.
  const ExtendedNibbleResult again = extendedNibble(tree, load);
  ASSERT_EQ(again.report.congestionFinal, result.report.congestionFinal);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineSweep,
    ::testing::Combine(
        ::testing::Values(net::TopologyFamily::kary, net::TopologyFamily::star,
                          net::TopologyFamily::caterpillar,
                          net::TopologyFamily::random,
                          net::TopologyFamily::cluster),
        ::testing::Values(workload::Profile::uniform, workload::Profile::zipf,
                          workload::Profile::hotspot,
                          workload::Profile::clustered,
                          workload::Profile::producerConsumer,
                          workload::Profile::adversarial),
        ::testing::Values(0, 50, 95),  // write-only .. read-heavy
        ::testing::Values(1, 2, 101)),  // 101 = fat-tree bandwidths
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name =
          std::string(net::topologyFamilyName(std::get<0>(info.param))) + "_" +
          workload::profileName(std::get<1>(info.param)) + "_r" +
          std::to_string(std::get<2>(info.param)) + "_s" +
          std::to_string(std::get<3>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace hbn::core
