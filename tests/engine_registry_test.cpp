// Tests for the strategy registry: every registered name constructs and
// produces a workload-covering placement, spec options parse (and reject
// junk), and aliases resolve to their canonical strategy.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "hbn/core/load.h"
#include "hbn/core/placement.h"
#include "hbn/engine/registry.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::engine {
namespace {

workload::Workload smallLoad(const net::Tree& tree, std::uint64_t seed) {
  util::Rng rng(seed);
  workload::GenParams params;
  params.numObjects = 4;
  params.requestsPerProcessor = 10;
  params.readFraction = 0.5;
  return workload::generateUniform(tree, params, rng);
}

TEST(StrategyRegistry, ListsAtLeastSixStrategies) {
  EXPECT_GE(StrategyRegistry::global().names().size(), 6u);
}

TEST(StrategyRegistry, EveryRegisteredNameConstructsAndPlaces) {
  const net::Tree tree = net::makeKaryTree(3, 2);
  const workload::Workload load = smallLoad(tree, 11);
  for (const std::string& name : StrategyRegistry::global().names()) {
    SCOPED_TRACE(name);
    const auto strategy = StrategyRegistry::global().create(name);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), name);
    Context ctx;
    ctx.seed = 5;
    const core::Placement placement = strategy->place(tree, load, ctx);
    ASSERT_EQ(placement.numObjects(), load.numObjects());
    EXPECT_NO_THROW(core::validateCoversWorkload(placement, load));
  }
}

TEST(StrategyRegistry, AliasesResolveToCanonicalStrategy) {
  const auto greedy = StrategyRegistry::global().create("greedy");
  EXPECT_EQ(greedy->name(), "best-single-copy");
  const auto median = StrategyRegistry::global().create("median");
  EXPECT_EQ(median->name(), "weighted-median");
}

TEST(StrategyRegistry, OptionSpecsParse) {
  EXPECT_NO_THROW(
      (void)StrategyRegistry::global().create("local-search:iters=500"));
  EXPECT_NO_THROW((void)StrategyRegistry::global().create(
      "extended-nibble:deletion=0,acc=3"));
  EXPECT_NO_THROW((void)StrategyRegistry::global().create(
      "local-search:iters=50,proposals=2,init=weighted-median"));
}

TEST(StrategyRegistry, RejectsUnknownNamesAndOptions) {
  EXPECT_THROW((void)StrategyRegistry::global().create("no-such-strategy"),
               std::invalid_argument);
  EXPECT_THROW((void)StrategyRegistry::global().create("nibble:bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)StrategyRegistry::global().create("extended-nibble:acc=banana"),
      std::invalid_argument);
  EXPECT_THROW((void)StrategyRegistry::global().create("nibble:notkeyvalue"),
               std::invalid_argument);
}

TEST(StrategyRegistry, OptionsChangeBehaviour) {
  // deletion=0 must actually skip step 2, not merely parse: with deletion
  // disabled nothing is ever deleted and the modified placement is the
  // nibble placement itself; the paper configuration deletes copies on a
  // write-heavy workload.
  const net::Tree tree = net::makeKaryTree(3, 3);
  Context ctx;
  const auto paper = StrategyRegistry::global().create("extended-nibble");
  const auto ablated =
      StrategyRegistry::global().create("extended-nibble:deletion=0");

  // Deterministically scan instances until the paper configuration
  // actually deletes a copy (our Rng is cross-platform reproducible).
  std::optional<workload::Workload> found;
  for (std::uint64_t seed = 1; seed <= 32 && !found; ++seed) {
    util::Rng rng(seed);
    workload::GenParams params;
    params.numObjects = 8;
    params.requestsPerProcessor = 20;
    params.readFraction = 0.8;  // many copies => light-serving candidates
    workload::Workload candidate = workload::generateZipf(tree, params, rng);
    (void)paper->place(tree, candidate, ctx);
    if (ctx.metrics.at("deletion.copiesDeleted") > 0.0) {
      found = std::move(candidate);
    }
  }
  ASSERT_TRUE(found.has_value()) << "no instance exercised the deletion step";
  const double paperNibble = ctx.metrics.at("congestion.nibble");
  (void)ablated->place(tree, *found, ctx);
  // Step 1 is shared, so both runs report the same nibble congestion...
  EXPECT_EQ(ctx.metrics.at("congestion.nibble"), paperNibble);
  // ...but the disabled step 2 must be a no-op.
  EXPECT_EQ(ctx.metrics.at("deletion.copiesDeleted"), 0.0);
  EXPECT_EQ(ctx.metrics.at("congestion.modified"),
            ctx.metrics.at("congestion.nibble"));
}

TEST(StrategyRegistry, MetricsDescribeLastPlaceCall) {
  // A reused Context must not leak one strategy's diagnostics into the
  // next place() call's metrics.
  const net::Tree tree = net::makeKaryTree(3, 2);
  const workload::Workload load = smallLoad(tree, 19);
  Context ctx;
  (void)StrategyRegistry::global()
      .create("extended-nibble")
      ->place(tree, load, ctx);
  EXPECT_TRUE(ctx.metrics.count("congestion.final"));
  (void)StrategyRegistry::global().create("nibble")->place(tree, load, ctx);
  EXPECT_FALSE(ctx.metrics.count("congestion.final"));
  // local-search refines its init placement, so the init strategy's
  // metrics no longer describe the returned placement either.
  (void)StrategyRegistry::global()
      .create("local-search:iters=10,init=extended-nibble")
      ->place(tree, load, ctx);
  EXPECT_FALSE(ctx.metrics.count("congestion.final"));
}

TEST(StrategyRegistry, SeededStrategiesAreReproducible) {
  const net::Tree tree = net::makeKaryTree(3, 2);
  const workload::Workload load = smallLoad(tree, 17);
  const auto strategy =
      StrategyRegistry::global().create("random-single-copy");
  Context a;
  a.seed = 42;
  Context b;
  b.seed = 42;
  Context c;
  c.seed = 43;
  const core::Placement pa = strategy->place(tree, load, a);
  const core::Placement pb = strategy->place(tree, load, b);
  const core::Placement pc = strategy->place(tree, load, c);
  bool anyDiffer = false;
  for (int x = 0; x < load.numObjects(); ++x) {
    const auto xi = static_cast<std::size_t>(x);
    EXPECT_EQ(pa.objects[xi].locations(), pb.objects[xi].locations());
    anyDiffer |= pa.objects[xi].locations() != pc.objects[xi].locations();
  }
  EXPECT_TRUE(anyDiffer) << "different seeds should move some copy";
}

TEST(StrategyRegistry, HelpTextMentionsEveryStrategy) {
  const std::string help = StrategyRegistry::global().helpText();
  for (const std::string& name : StrategyRegistry::global().names()) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace hbn::engine
