// Tests for the congestion lower bounds, in particular the per-object
// bound from the τ_max analysis and its validity against the exact
// optimum.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "hbn/baseline/exact.h"
#include "hbn/core/extended_nibble.h"
#include "hbn/core/lower_bound.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace hbn::core {
namespace {

using net::Tree;

TEST(ObjectLowerBound, TwoBalancedWriters) {
  // Two writers of 10 each: single copy at either leaves 10 remote, two
  // copies force κ=20 on a leaf edge -> bound = min(20, 10) = 10.
  const Tree t = net::makeStar(4);
  workload::Workload load(1, t.nodeCount());
  load.addWrites(0, 1, 10);
  load.addWrites(0, 2, 10);
  EXPECT_DOUBLE_EQ(objectLowerBound(t, load), 10.0);
}

TEST(ObjectLowerBound, DominantLeafGivesSmallBound) {
  // One leaf issues nearly everything: a single local copy is cheap, so
  // the per-object bound must stay small.
  const Tree t = net::makeStar(4);
  workload::Workload load(1, t.nodeCount());
  load.addWrites(0, 1, 100);
  load.addWrites(0, 2, 3);
  EXPECT_DOUBLE_EQ(objectLowerBound(t, load), 3.0);  // min(103, 103-100)
}

TEST(ObjectLowerBound, ReadOnlyObjectContributesNothing) {
  const Tree t = net::makeStar(4);
  workload::Workload load(1, t.nodeCount());
  for (const net::NodeId p : t.processors()) {
    load.addReads(0, p, 50);
  }
  EXPECT_DOUBLE_EQ(objectLowerBound(t, load), 0.0);  // κ = 0
}

TEST(ObjectLowerBound, RequiresUnitLeafEdges) {
  net::TreeBuilder b;
  const net::NodeId bus = b.addBus();
  const net::NodeId p1 = b.addProcessor();
  const net::NodeId p2 = b.addProcessor();
  b.connect(bus, p1, 4.0);  // non-unit leaf switch
  b.connect(bus, p2, 4.0);
  const Tree t = b.build();
  workload::Workload load(1, t.nodeCount());
  load.addWrites(0, p1, 10);
  load.addWrites(0, p2, 10);
  EXPECT_DOUBLE_EQ(objectLowerBound(t, load), 0.0);
}

TEST(LowerBound, CombinedNeverExceedsExactOptimum) {
  util::Rng rng(311);
  for (int trial = 0; trial < 12; ++trial) {
    const Tree t =
        trial % 2 == 0 ? net::makeStar(5) : net::makeClusterNetwork(2, 2);
    workload::GenParams params;
    params.numObjects = 3;
    params.requestsPerProcessor = 10;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);
    const net::RootedTree rooted(t, t.defaultRoot());
    baseline::ExactOptions options;
    options.maxCopiesPerObject = 2;
    const baseline::ExactResult opt = baseline::solveExact(t, load, options);
    ASSERT_TRUE(opt.provedOptimal);
    EXPECT_LE(combinedLowerBound(rooted, load), opt.congestion + 1e-9)
        << "trial " << trial;
  }
}

TEST(LowerBound, CombinedAtLeastAnalytic) {
  util::Rng rng(313);
  for (int trial = 0; trial < 10; ++trial) {
    const Tree t = net::makeRandomTree(20, 6, rng);
    workload::GenParams params;
    params.numObjects = 6;
    const workload::Workload load = workload::generate(
        static_cast<workload::Profile>(trial % 6), t, params, rng);
    const net::RootedTree rooted(t, t.defaultRoot());
    EXPECT_GE(combinedLowerBound(rooted, load),
              analyticLowerBound(rooted, load).congestion);
  }
}

TEST(LowerBound, FatTreeNeedsObjectBound) {
  // Regression for the fat-tree corner where the per-edge bound alone
  // under-estimates C_opt by more than 7x: the combined bound must keep
  // the extended-nibble ratio within the theorem.
  util::Rng rng(104729ULL * 101 + 0);  // the sweep seed that exposed it
  net::BandwidthModel bw;
  bw.fatTree = true;
  const Tree t = net::makeFamilyMember(net::TopologyFamily::kary, 36, rng, bw);
  workload::GenParams params;
  params.numObjects = 8;
  params.requestsPerProcessor = 24;
  params.readFraction = 0.0;
  const workload::Workload load =
      workload::generateHotspot(t, params, rng);
  const net::RootedTree rooted(t, t.defaultRoot());
  const auto result = extendedNibble(t, load);
  const double combined = combinedLowerBound(rooted, load);
  ASSERT_GT(combined, 0.0);
  EXPECT_LE(result.report.congestionFinal, 7.0 * combined);
  EXPECT_GE(combined, analyticLowerBound(rooted, load).congestion);
}

TEST(IncrementalLowerBound, MatchesFullRecomputationUnderRowUpdates) {
  // The streaming engine's per-epoch bound: start empty, mutate random
  // object rows in batches (remove before, add after, as the epoch
  // server does), and demand bit-identical edge minima and congestion
  // against a from-scratch analyticLowerBound at every step.
  util::Rng rng(977);
  const Tree t = net::makeClusterNetwork(3, 4);
  const net::RootedTree rooted(t, t.defaultRoot());
  constexpr int kObjects = 16;
  workload::Workload load(kObjects, t.nodeCount());
  IncrementalLowerBound incremental(rooted);
  incremental.rebuild(load);

  for (int step = 0; step < 40; ++step) {
    const auto touched = static_cast<int>(1 + rng.nextBelow(5));
    std::vector<workload::ObjectId> objects;
    for (int i = 0; i < touched; ++i) {
      objects.push_back(
          static_cast<workload::ObjectId>(rng.nextBelow(kObjects)));
    }
    std::sort(objects.begin(), objects.end());
    objects.erase(std::unique(objects.begin(), objects.end()),
                  objects.end());
    for (const workload::ObjectId x : objects) incremental.remove(x, load);
    for (const workload::ObjectId x : objects) {
      const auto node =
          static_cast<net::NodeId>(rng.nextBelow(t.nodeCount()));
      if (rng.nextBelow(2) == 0) {
        load.addWrites(x, node, 1 + static_cast<core::Count>(
                                        rng.nextBelow(20)));
      } else {
        load.addReads(x, node, 1 + static_cast<core::Count>(
                                       rng.nextBelow(20)));
      }
    }
    for (const workload::ObjectId x : objects) incremental.add(x, load);

    const LowerBound full = analyticLowerBound(rooted, load);
    ASSERT_EQ(std::vector<Count>(incremental.edgeMinima().edgeLoads().begin(),
                                 incremental.edgeMinima().edgeLoads().end()),
              std::vector<Count>(full.edgeMinima.edgeLoads().begin(),
                                 full.edgeMinima.edgeLoads().end()))
        << "step " << step;
    ASSERT_DOUBLE_EQ(incremental.congestion(), full.congestion)
        << "step " << step;
  }

  // rebuild() from a populated workload must land on the same state.
  IncrementalLowerBound rebuilt(rooted);
  rebuilt.rebuild(load);
  EXPECT_DOUBLE_EQ(rebuilt.congestion(), incremental.congestion());
}

}  // namespace
}  // namespace hbn::core
