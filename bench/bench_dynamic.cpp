// Experiment E11 (related work, §1.3 — extension): empirical competitive
// ratio of the online replicate/invalidate tree strategy against the
// offline static lower bound, including adversarial ping-pong sequences.
#include <iostream>

#include "hbn/dynamic/harness.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/generators.h"

int main() {
  using namespace hbn;
  constexpr std::uint64_t kSeed = 11;
  std::cout << "E11 — online tree strategy: congestion ratio vs offline "
               "static lower bound (threshold D sweep)\nseed="
            << kSeed << "\n\n";

  util::Table table({"sequence", "threshold D", "mean ratio", "max ratio",
                     "mean replications", "mean invalidations"});
  util::Rng master(kSeed);

  for (const core::Count threshold : {1, 2, 4}) {
    for (const bool pingPong : {false, true}) {
      util::Accumulator ratio;
      util::Accumulator repl;
      util::Accumulator inval;
      for (int trial = 0; trial < 10; ++trial) {
        util::Rng rng = master.split();
        const net::Tree tree = net::makeRandomTree(24, 8, rng);
        const net::RootedTree rooted(tree, tree.defaultRoot());
        std::vector<dynamic::Request> requests;
        int numObjects = 6;
        if (pingPong) {
          requests =
              dynamic::makePingPongSequence(tree, numObjects, 20, 5, rng);
        } else {
          workload::GenParams params;
          params.numObjects = numObjects;
          params.requestsPerProcessor = 40;
          params.readFraction = 0.75;
          const workload::Workload load = workload::generate(
              static_cast<workload::Profile>(trial % 6), tree, params, rng);
          requests = dynamic::sequenceFromWorkload(load, rng);
        }
        dynamic::OnlineOptions options;
        options.replicationThreshold = threshold;
        const auto result =
            dynamic::runCompetitive(rooted, numObjects, requests, options);
        if (result.offlineLowerBound > 0.0) {
          ratio.add(result.onlineCongestion / result.offlineLowerBound);
        }
        repl.add(static_cast<double>(result.replications));
        inval.add(static_cast<double>(result.invalidations));
      }
      if (ratio.empty()) continue;
      table.addRow({pingPong ? "ping-pong adversary" : "shuffled static",
                    std::to_string(threshold),
                    util::formatDouble(ratio.mean(), 2),
                    util::formatDouble(ratio.max(), 2),
                    util::formatDouble(repl.mean(), 1),
                    util::formatDouble(inval.mean(), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(the FOCS'97 dynamic tree strategy is 3-competitive; this "
               "adaptation should land in the same small-constant regime "
               "on shuffled static traffic)\n";
  return 0;
}
