// Experiment E4 (Theorem 3.1): the nibble placement achieves the analytic
// per-edge minimum load on EVERY edge, across random instances — reported
// as the fraction of edges at the minimum (must be 100%).
#include <iostream>

#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"
#include "hbn/core/nibble.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/generators.h"

int main() {
  using namespace hbn;
  constexpr std::uint64_t kSeed = 4;
  std::cout << "E4 / Theorem 3.1 — nibble achieves the per-edge minimum "
               "load on every edge\nseed="
            << kSeed << "\n\n";

  util::Table table({"topology", "workload", "edges checked", "edges optimal",
                     "max per-object load/kappa"});
  util::Rng master(kSeed);
  bool allOptimal = true;

  for (const auto family :
       {net::TopologyFamily::kary, net::TopologyFamily::caterpillar,
        net::TopologyFamily::random, net::TopologyFamily::cluster}) {
    for (const auto profile :
         {workload::Profile::uniform, workload::Profile::zipf,
          workload::Profile::adversarial}) {
      long checked = 0;
      long optimal = 0;
      double maxKappaShare = 0.0;
      for (int trial = 0; trial < 10; ++trial) {
        util::Rng rng = master.split();
        const net::Tree tree = net::makeFamilyMember(family, 48, rng);
        workload::GenParams params;
        params.numObjects = 12;
        params.requestsPerProcessor = 25;
        const workload::Workload load =
            workload::generate(profile, tree, params, rng);
        const net::RootedTree rooted(tree, tree.defaultRoot());
        const auto placement = core::nibblePlacement(tree, load);
        const auto actual = core::computeLoad(rooted, placement);
        const auto minima = core::analyticLowerBound(rooted, load);
        for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
          ++checked;
          if (actual.edgeLoad(e) == minima.edgeMinima.edgeLoad(e)) ++optimal;
        }
        // Per-object: load never exceeds the write contention κ_x.
        for (workload::ObjectId x = 0; x < load.numObjects(); ++x) {
          if (load.objectWrites(x) == 0) continue;
          core::LoadMap one(tree.edgeCount());
          core::accumulateObjectLoad(
              rooted, placement.objects[static_cast<std::size_t>(x)], one);
          for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
            maxKappaShare = std::max(
                maxKappaShare,
                static_cast<double>(one.edgeLoad(e)) /
                    static_cast<double>(load.objectWrites(x)));
          }
        }
      }
      allOptimal &= (checked == optimal);
      table.addRow({net::topologyFamilyName(family),
                    workload::profileName(profile), std::to_string(checked),
                    std::to_string(optimal),
                    util::formatDouble(maxKappaShare, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nall edges at the analytic minimum: "
            << (allOptimal ? "yes (Theorem 3.1 confirmed)" : "NO — BUG")
            << "\n(per-object load/kappa <= 1 confirms the kappa_x bound)\n";
  return allOptimal ? 0 : 1;
}
