// Experiment E10 — ablations of the extended-nibble design choices:
//   (a) skipping the deletion step (step 2),
//   (b) the acceptable-load multiplier L_acc = factor * L_b (paper: 2).
// Reports congestion ratio vs lower bound and how often the mapping step
// had to violate its free-edge condition (forcedMoves; 0 for the paper's
// configuration by Lemma 4.1).
#include <iostream>

#include "hbn/core/extended_nibble.h"
#include "hbn/core/lower_bound.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/generators.h"

int main() {
  using namespace hbn;
  constexpr std::uint64_t kSeed = 10;
  constexpr int kTrials = 12;
  std::cout << "E10 — ablation of the extended-nibble design choices\nseed="
            << kSeed << ", trials per row=" << kTrials << "\n\n";

  struct Variant {
    const char* name;
    core::ExtendedNibbleOptions options;
  };
  Variant variants[] = {
      {"paper (delete, acc=2)", {}},
      {"no deletion", {false, 2, net::kInvalidNode}},
      {"acc factor 1", {true, 1, net::kInvalidNode}},
      {"acc factor 3", {true, 3, net::kInvalidNode}},
      {"acc factor 8", {true, 8, net::kInvalidNode}},
  };

  util::Table table({"variant", "mean C/LB", "max C/LB", "forced moves",
                     "mean tau_max/kappa_max"});
  util::Rng master(kSeed);

  for (const Variant& variant : variants) {
    util::Accumulator ratio;
    util::Accumulator tauShare;
    long forced = 0;
    util::Rng trialRng = master;  // same instances for every variant
    for (int trial = 0; trial < kTrials; ++trial) {
      util::Rng rng = trialRng.split();
      const net::Tree tree = net::makeRandomTree(48, 14, rng);
      const net::RootedTree rooted(tree, tree.defaultRoot());
      workload::GenParams params;
      params.numObjects = 16;
      params.requestsPerProcessor = 30;
      params.readFraction = 0.2 + 0.6 * rng.nextDouble();
      const workload::Workload load = workload::generate(
          static_cast<workload::Profile>(trial % 6), tree, params, rng);
      const double lb = core::analyticLowerBound(rooted, load).congestion;
      if (lb <= 0.0) continue;
      const auto result = core::extendedNibble(tree, load, variant.options);
      ratio.add(result.report.congestionFinal / lb);
      forced += result.report.mapping.forcedMoves;
      if (load.maxWriteContention() > 0) {
        tauShare.add(static_cast<double>(result.report.mapping.tauMax) /
                     static_cast<double>(load.maxWriteContention()));
      }
    }
    table.addRow({variant.name, util::formatDouble(ratio.mean(), 3),
                  util::formatDouble(ratio.max(), 3), std::to_string(forced),
                  util::formatDouble(tauShare.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\n(the paper's configuration must show 0 forced moves and "
               "tau_max <= 3*kappa_max; ablations may not)\n";
  return 0;
}
