// Experiment E10 — ablations of the extended-nibble design choices,
// expressed as registry option specs:
//   (a) skipping the deletion step     extended-nibble:deletion=0
//   (b) the acceptable-load multiplier extended-nibble:acc=N (paper: 2).
// Reports congestion ratio vs lower bound and how often the mapping step
// had to violate its free-edge condition (forcedMoves; 0 for the paper's
// configuration by Lemma 4.1), read from the strategy's Context metrics.
#include <iostream>
#include <string>
#include <vector>

#include "hbn/core/lower_bound.h"
#include "hbn/engine/cli.h"
#include "hbn/engine/registry.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/generators.h"

int main(int argc, char** argv) {
  using namespace hbn;
  try {
    const engine::CliOptions cli = engine::parseCli(argc, argv);
    if (cli.help) {
      std::cout << "usage: bench_ablation [--strategy SPEC ...] "
                   "[--threads N] [--seed N]\n\n"
                << engine::cliHelp();
      return 0;
    }
    const std::vector<std::string> specs =
        cli.strategies.empty()
            ? std::vector<std::string>{"extended-nibble",
                                       "extended-nibble:deletion=0",
                                       "extended-nibble:acc=1",
                                       "extended-nibble:acc=3",
                                       "extended-nibble:acc=8"}
            : cli.strategies;
    engine::requireNoPositional(cli);
    engine::Context baseCtx = engine::makeContext(cli, /*defaultSeed=*/10);
    constexpr int kTrials = 12;

    std::cout << "E10 — ablation of the extended-nibble design choices\nseed="
              << baseCtx.seed << ", trials per row=" << kTrials << "\n\n";

    util::Table table({"variant", "mean C/LB", "max C/LB", "forced moves",
                       "mean tau_max/kappa_max"});
    util::Rng master(baseCtx.seed);

    for (const std::string& spec : specs) {
      const auto strategy = engine::StrategyRegistry::global().create(spec);
      util::Accumulator ratio;
      util::Accumulator tauShare;
      long forced = 0;
      util::Rng trialRng = master;  // same instances for every variant
      for (int trial = 0; trial < kTrials; ++trial) {
        util::Rng rng = trialRng.split();
        const net::Tree tree = net::makeRandomTree(48, 14, rng);
        const net::RootedTree rooted(tree, tree.defaultRoot());
        workload::GenParams params;
        params.numObjects = 16;
        params.requestsPerProcessor = 30;
        params.readFraction = 0.2 + 0.6 * rng.nextDouble();
        const workload::Workload load = workload::generate(
            static_cast<workload::Profile>(trial % 6), tree, params, rng);
        const double lb = core::analyticLowerBound(rooted, load).congestion;
        if (lb <= 0.0) continue;
        engine::Context ctx = baseCtx;
        (void)strategy->place(tree, load, ctx);
        if (ctx.metrics.count("congestion.final") == 0) {
          throw std::invalid_argument(
              "bench_ablation compares extended-nibble variants; '" + spec +
              "' does not report the pipeline metrics it needs");
        }
        ratio.add(ctx.metrics.at("congestion.final") / lb);
        forced += static_cast<long>(ctx.metrics.at("mapping.forcedMoves"));
        if (load.maxWriteContention() > 0) {
          tauShare.add(ctx.metrics.at("mapping.tauMax") /
                       static_cast<double>(load.maxWriteContention()));
        }
      }
      table.addRow({spec, util::formatDouble(ratio.mean(), 3),
                    util::formatDouble(ratio.max(), 3), std::to_string(forced),
                    util::formatDouble(tauShare.mean(), 3)});
    }
    table.print(std::cout);
    std::cout << "\n(the paper's configuration must show 0 forced moves and "
                 "tau_max <= 3*kappa_max; ablations may not)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
