// Experiment E9 (motivation, §1): congestion of the extended-nibble
// strategy against the baselines across the topology × workload grid —
// the "who wins, by what factor" table. Strategies are instantiated from
// the engine registry, so `--strategy a,b,c` compares any subset.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"
#include "hbn/engine/cli.h"
#include "hbn/engine/registry.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/generators.h"

int main(int argc, char** argv) {
  using namespace hbn;
  try {
    const engine::CliOptions cli = engine::parseCli(argc, argv);
    if (cli.help) {
      std::cout << "usage: bench_strategy_comparison [--strategy SPEC,...] "
                   "[--threads N] [--seed N]\n\n"
                << engine::cliHelp();
      return 0;
    }
    const std::vector<std::string> specs =
        cli.strategies.empty()
            ? std::vector<std::string>{"extended-nibble", "best-single-copy",
                                       "weighted-median", "random-single-copy",
                                       "full-replication"}
            : cli.strategies;
    engine::requireNoPositional(cli);
    engine::Context baseCtx = engine::makeContext(cli, /*defaultSeed=*/9);
    constexpr int kTrials = 6;

    std::cout << "E9 — strategy comparison: mean congestion normalised by "
                 "the lower bound (lower is better, 1.0 = optimal)\nseed="
              << baseCtx.seed << ", trials per cell=" << kTrials << "\n\n";

    std::vector<std::unique_ptr<engine::PlacementStrategy>> strategies;
    std::vector<std::string> header{"topology", "workload"};
    for (const std::string& spec : specs) {
      strategies.push_back(engine::StrategyRegistry::global().create(spec));
      header.push_back(spec);
    }
    util::Table table(header);
    util::Rng master(baseCtx.seed);

    for (const auto family :
         {net::TopologyFamily::kary, net::TopologyFamily::star,
          net::TopologyFamily::caterpillar, net::TopologyFamily::random,
          net::TopologyFamily::cluster}) {
      for (const auto profile :
           {workload::Profile::uniform, workload::Profile::zipf,
            workload::Profile::hotspot, workload::Profile::clustered,
            workload::Profile::producerConsumer,
            workload::Profile::adversarial}) {
        std::vector<util::Accumulator> ratios(strategies.size());
        for (int trial = 0; trial < kTrials; ++trial) {
          util::Rng rng = master.split();
          const net::Tree tree = net::makeFamilyMember(family, 48, rng);
          const net::RootedTree rooted(tree, tree.defaultRoot());
          workload::GenParams params;
          params.numObjects = 16;
          params.requestsPerProcessor = 30;
          params.readFraction = 0.2 + 0.6 * rng.nextDouble();
          const workload::Workload load =
              workload::generate(profile, tree, params, rng);
          const double lb = core::analyticLowerBound(rooted, load).congestion;
          if (lb <= 0.0) continue;
          for (std::size_t s = 0; s < strategies.size(); ++s) {
            engine::Context ctx = baseCtx;
            ctx.seed = baseCtx.seed + static_cast<std::uint64_t>(trial);
            const double congestion = core::evaluateCongestion(
                rooted, strategies[s]->place(tree, load, ctx));
            ratios[s].add(congestion / lb);
          }
        }
        if (ratios.empty() || ratios[0].empty()) continue;
        std::vector<std::string> row{net::topologyFamilyName(family),
                                     workload::profileName(profile)};
        for (const util::Accumulator& acc : ratios) {
          row.push_back(util::formatDouble(acc.mean(), 2));
        }
        table.addRow(row);
      }
    }
    table.print(std::cout);
    std::cout << "\n(extended-nibble carries the only worst-case guarantee; "
                 "single-copy baselines lose badly on read-heavy or "
                 "clustered traffic, full replication on write traffic)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
