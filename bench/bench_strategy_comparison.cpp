// Experiment E9 (motivation, §1): congestion of the extended-nibble
// strategy against the baselines across the topology × workload grid —
// the "who wins, by what factor" table.
#include <iostream>

#include "hbn/baseline/heuristics.h"
#include "hbn/core/extended_nibble.h"
#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/generators.h"

int main() {
  using namespace hbn;
  constexpr std::uint64_t kSeed = 9;
  constexpr int kTrials = 6;
  std::cout << "E9 — strategy comparison: mean congestion normalised by the "
               "lower bound (lower is better, 1.0 = optimal)\nseed="
            << kSeed << ", trials per cell=" << kTrials << "\n\n";

  util::Table table({"topology", "workload", "ext-nibble", "greedy-1",
                     "median-1", "random-1", "full-repl"});
  util::Rng master(kSeed);

  for (const auto family :
       {net::TopologyFamily::kary, net::TopologyFamily::star,
        net::TopologyFamily::caterpillar, net::TopologyFamily::random,
        net::TopologyFamily::cluster}) {
    for (const auto profile :
         {workload::Profile::uniform, workload::Profile::zipf,
          workload::Profile::hotspot, workload::Profile::clustered,
          workload::Profile::producerConsumer,
          workload::Profile::adversarial}) {
      util::Accumulator ratios[5];
      for (int trial = 0; trial < kTrials; ++trial) {
        util::Rng rng = master.split();
        const net::Tree tree = net::makeFamilyMember(family, 48, rng);
        const net::RootedTree rooted(tree, tree.defaultRoot());
        workload::GenParams params;
        params.numObjects = 16;
        params.requestsPerProcessor = 30;
        params.readFraction = 0.2 + 0.6 * rng.nextDouble();
        const workload::Workload load =
            workload::generate(profile, tree, params, rng);
        const double lb =
            core::analyticLowerBound(rooted, load).congestion;
        if (lb <= 0.0) continue;
        const double values[5] = {
            core::extendedNibble(tree, load).report.congestionFinal,
            core::evaluateCongestion(rooted,
                                     baseline::bestSingleCopy(tree, load)),
            core::evaluateCongestion(rooted,
                                     baseline::weightedMedian(tree, load)),
            core::evaluateCongestion(
                rooted, baseline::randomSingleCopy(tree, load, rng)),
            core::evaluateCongestion(rooted,
                                     baseline::fullReplication(tree, load))};
        for (int s = 0; s < 5; ++s) ratios[s].add(values[s] / lb);
      }
      if (ratios[0].empty()) continue;
      table.addRow({net::topologyFamilyName(family),
                    workload::profileName(profile),
                    util::formatDouble(ratios[0].mean(), 2),
                    util::formatDouble(ratios[1].mean(), 2),
                    util::formatDouble(ratios[2].mean(), 2),
                    util::formatDouble(ratios[3].mean(), 2),
                    util::formatDouble(ratios[4].mean(), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(extended-nibble carries the only worst-case guarantee; "
               "single-copy baselines lose badly on read-heavy or "
               "clustered traffic, full replication on write traffic)\n";
  return 0;
}
