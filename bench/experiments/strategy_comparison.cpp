// Experiment E9 (motivation, §1): congestion of the extended-nibble
// strategy against the baselines across the topology × workload grid —
// the "who wins, by what factor" table. Strategies are instantiated from
// the engine registry, so `--strategy a,b,c` compares any subset.
#include <memory>
#include <string>
#include <vector>

#include "experiments.h"
#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

namespace hbn::bench {
namespace {

class StrategyComparisonExperiment final : public engine::Experiment {
 public:
  explicit StrategyComparisonExperiment(int trialsOverride)
      : trialsOverride_(trialsOverride) {}

  [[nodiscard]] std::string_view name() const override {
    return "strategy-comparison";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(9);
    const std::vector<std::string> specs =
        ctx.strategies.empty()
            ? std::vector<std::string>{"extended-nibble", "best-single-copy",
                                       "weighted-median",
                                       "random-single-copy",
                                       "full-replication"}
            : ctx.strategies;
    const int kTrials =
        trialsOverride_ > 0 ? trialsOverride_ : ctx.trials(6);

    ctx.os() << "E9 — strategy comparison: mean congestion normalised by "
                "the lower bound (lower is better, 1.0 = optimal)\nseed="
             << seed << ", trials per cell=" << kTrials << "\n\n";

    std::vector<std::unique_ptr<engine::PlacementStrategy>> strategies;
    std::vector<std::string> header{"topology", "workload"};
    for (const std::string& spec : specs) {
      strategies.push_back(engine::StrategyRegistry::global().create(spec));
      header.push_back(spec);
    }
    util::Table table(header);
    util::Rng master(seed);

    for (const auto family :
         {net::TopologyFamily::kary, net::TopologyFamily::star,
          net::TopologyFamily::caterpillar, net::TopologyFamily::random,
          net::TopologyFamily::cluster}) {
      for (const auto profile :
           {workload::Profile::uniform, workload::Profile::zipf,
            workload::Profile::hotspot, workload::Profile::clustered,
            workload::Profile::producerConsumer,
            workload::Profile::adversarial}) {
        std::vector<util::Accumulator> ratios(strategies.size());
        for (int trial = 0; trial < kTrials; ++trial) {
          util::Rng rng = master.split();
          const net::Tree tree = net::makeFamilyMember(family, 48, rng);
          const net::RootedTree rooted(tree, tree.defaultRoot());
          workload::GenParams params;
          params.numObjects = 16;
          params.requestsPerProcessor = 30;
          params.readFraction = 0.2 + 0.6 * rng.nextDouble();
          const workload::Workload load =
              workload::generate(profile, tree, params, rng);
          const double lb =
              core::analyticLowerBound(rooted, load).congestion;
          if (lb <= 0.0) continue;
          for (std::size_t s = 0; s < strategies.size(); ++s) {
            engine::Context strategyCtx;
            strategyCtx.threads = ctx.threads;
            strategyCtx.seed = seed + static_cast<std::uint64_t>(trial);
            util::Timer timer;
            const core::Placement placement =
                strategies[s]->place(tree, load, strategyCtx);
            reporter.addTiming(timer.millis());
            const double congestion =
                core::evaluateCongestion(rooted, placement);
            ratios[s].add(congestion / lb);
          }
        }
        if (ratios.empty() || ratios[0].empty()) continue;
        std::vector<std::string> row{net::topologyFamilyName(family),
                                     workload::profileName(profile)};
        for (const util::Accumulator& acc : ratios) {
          row.push_back(util::formatDouble(acc.mean(), 2));
        }
        table.addRow(row);
        for (std::size_t s = 0; s < specs.size(); ++s) {
          reporter.beginRow();
          reporter.field("topology", net::topologyFamilyName(family));
          reporter.field("workload", workload::profileName(profile));
          reporter.field("strategy", specs[s]);
          reporter.field("ratio_mean", ratios[s].mean());
          reporter.field("ratio_max", ratios[s].max());
        }
      }
    }
    table.print(ctx.os());
    ctx.os() << "\n(extended-nibble carries the only worst-case guarantee; "
                "single-copy baselines lose badly on read-heavy or "
                "clustered traffic, full replication on write traffic)\n";
    return true;
  }

 private:
  int trialsOverride_;
};

}  // namespace

namespace detail {
void registerStrategyComparison(engine::ExperimentRegistry& registry) {
  registry.add(
      {"strategy-comparison",
       "congestion of every registry strategy normalised by the lower "
       "bound over the topology x workload grid",
       "E9 / motivation (section 1)", "trials=N"},
      [](engine::StrategyOptions& options) {
        const int trials = static_cast<int>(options.getInt("trials", 0));
        return std::make_unique<StrategyComparisonExperiment>(trials);
      },
      {"e9"});
}
}  // namespace detail

}  // namespace hbn::bench
