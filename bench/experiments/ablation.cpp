// Experiment E10 — ablations of the extended-nibble design choices,
// expressed as registry option specs:
//   (a) skipping the deletion step     extended-nibble:deletion=0
//   (b) the acceptable-load multiplier extended-nibble:acc=N (paper: 2).
// Reports congestion ratio vs lower bound and how often the mapping step
// had to violate its free-edge condition (forcedMoves; 0 for the paper's
// configuration by Lemma 4.1), read from the strategy's Context metrics.
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiments.h"
#include "hbn/core/lower_bound.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

namespace hbn::bench {
namespace {

class AblationExperiment final : public engine::Experiment {
 public:
  explicit AblationExperiment(int trialsOverride)
      : trialsOverride_(trialsOverride) {}

  [[nodiscard]] std::string_view name() const override { return "ablation"; }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(10);
    const int kTrials =
        trialsOverride_ > 0 ? trialsOverride_ : ctx.trials(12);
    const std::vector<std::string> specs =
        ctx.strategies.empty()
            ? std::vector<std::string>{"extended-nibble",
                                       "extended-nibble:deletion=0",
                                       "extended-nibble:acc=1",
                                       "extended-nibble:acc=3",
                                       "extended-nibble:acc=8"}
            : ctx.strategies;

    ctx.os() << "E10 — ablation of the extended-nibble design choices\n"
                "seed="
             << seed << ", trials per row=" << kTrials << "\n\n";

    util::Table table({"variant", "mean C/LB", "max C/LB", "forced moves",
                       "mean tau_max/kappa_max"});
    util::Rng master(seed);
    bool paperConfigClean = true;

    for (const std::string& spec : specs) {
      const auto strategy = engine::StrategyRegistry::global().create(spec);
      util::Accumulator ratio;
      util::Accumulator tauShare;
      long forced = 0;
      util::Rng trialRng = master;  // same instances for every variant
      for (int trial = 0; trial < kTrials; ++trial) {
        util::Rng rng = trialRng.split();
        const net::Tree tree = net::makeRandomTree(48, 14, rng);
        const net::RootedTree rooted(tree, tree.defaultRoot());
        workload::GenParams params;
        params.numObjects = 16;
        params.requestsPerProcessor = 30;
        params.readFraction = 0.2 + 0.6 * rng.nextDouble();
        const workload::Workload load = workload::generate(
            static_cast<workload::Profile>(trial % 6), tree, params, rng);
        const double lb =
            core::analyticLowerBound(rooted, load).congestion;
        if (lb <= 0.0) continue;
        engine::Context strategyCtx;
        strategyCtx.threads = ctx.threads;
        strategyCtx.seed = seed;
        util::Timer timer;
        (void)strategy->place(tree, load, strategyCtx);
        reporter.addTiming(timer.millis());
        if (strategyCtx.metrics.count("congestion.final") == 0) {
          throw std::invalid_argument(
              "ablation compares extended-nibble variants; '" + spec +
              "' does not report the pipeline metrics it needs");
        }
        ratio.add(strategyCtx.metrics.at("congestion.final") / lb);
        forced +=
            static_cast<long>(strategyCtx.metrics.at("mapping.forcedMoves"));
        if (load.maxWriteContention() > 0) {
          tauShare.add(strategyCtx.metrics.at("mapping.tauMax") /
                       static_cast<double>(load.maxWriteContention()));
        }
      }
      // Lemma 4.1: the paper's configuration (the plain spec) never
      // forces a mapping move and keeps tau_max within 3x the write
      // contention.
      if (spec == "extended-nibble") {
        paperConfigClean &= (forced == 0);
        paperConfigClean &=
            tauShare.empty() || tauShare.max() <= 3.0 + 1e-12;
      }
      table.addRow({spec, util::formatDouble(ratio.mean(), 3),
                    util::formatDouble(ratio.max(), 3),
                    std::to_string(forced),
                    util::formatDouble(tauShare.mean(), 3)});
      reporter.beginRow();
      reporter.field("variant", spec);
      reporter.field("ratio_mean", ratio.mean());
      reporter.field("ratio_max", ratio.max());
      reporter.field("forced_moves", forced);
      reporter.field("tau_share_mean", tauShare.mean());
    }
    table.print(ctx.os());
    ctx.os() << "\n(the paper's configuration must show 0 forced moves and "
                "tau_max <= 3*kappa_max; ablations may not)\n";
    reporter.beginRow("check");
    reporter.field("claim",
                   "the paper's configuration forces no mapping moves and "
                   "keeps tau_max <= 3*kappa_max (Lemma 4.1)");
    reporter.field("held", paperConfigClean);
    return paperConfigClean;
  }

 private:
  int trialsOverride_;
};

}  // namespace

namespace detail {
void registerAblation(engine::ExperimentRegistry& registry) {
  registry.add(
      {"ablation",
       "extended-nibble design ablations (skip deletion, vary the "
       "acceptable-load multiplier) vs the paper's configuration",
       "E10 / design ablations", "trials=N"},
      [](engine::StrategyOptions& options) {
        const int trials = static_cast<int>(options.getInt("trials", 0));
        return std::make_unique<AblationExperiment>(trials);
      },
      {"e10"});
}
}  // namespace detail

}  // namespace hbn::bench
