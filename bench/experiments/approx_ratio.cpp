// Experiment E1 (Theorem 4.3): measured congestion of the extended-nibble
// strategy divided by the certified lower bound, across the full
// topology × workload grid. The theorem promises a ratio of at most 7;
// this experiment reports the realised distribution.
#include <algorithm>
#include <memory>

#include "experiments.h"
#include "hbn/core/extended_nibble.h"
#include "hbn/core/lower_bound.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

namespace hbn::bench {
namespace {

class ApproxRatioExperiment final : public engine::Experiment {
 public:
  explicit ApproxRatioExperiment(int trialsOverride)
      : trialsOverride_(trialsOverride) {}

  [[nodiscard]] std::string_view name() const override {
    return "approx-ratio";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(20000701);  // SPAA 2000
    const int kTrials =
        trialsOverride_ > 0 ? trialsOverride_ : ctx.trials(8);
    ctx.os() << "E1 / Theorem 4.3 — extended-nibble congestion vs lower "
                "bound (<= 7 guaranteed)\n"
             << "seed=" << seed << ", trials per cell=" << kTrials << "\n\n";

    util::Table table({"topology", "bandwidths", "workload", "procs",
                       "mean C/LB", "max C/LB", "mean C", "mean LB"});
    util::Rng master(seed);
    double globalMax = 0.0;

    for (const bool fatTree : {false, true}) {
      for (const auto family :
           {net::TopologyFamily::kary, net::TopologyFamily::star,
            net::TopologyFamily::caterpillar, net::TopologyFamily::random,
            net::TopologyFamily::cluster}) {
        for (const auto profile :
             {workload::Profile::uniform, workload::Profile::zipf,
              workload::Profile::hotspot, workload::Profile::clustered,
              workload::Profile::producerConsumer,
              workload::Profile::adversarial}) {
          util::Accumulator ratio;
          util::Accumulator congestion;
          util::Accumulator lowerBound;
          int procs = 0;
          for (int trial = 0; trial < kTrials; ++trial) {
            util::Rng rng = master.split();
            net::BandwidthModel bw;
            bw.fatTree = fatTree;
            const net::Tree tree = net::makeFamilyMember(family, 64, rng, bw);
            procs = tree.processorCount();
            workload::GenParams params;
            params.numObjects = 24;
            params.requestsPerProcessor = 40;
            params.readFraction = 0.2 + 0.6 * rng.nextDouble();
            const workload::Workload load =
                workload::generate(profile, tree, params, rng);

            util::Timer timer;
            const auto result = core::extendedNibble(tree, load);
            reporter.addTiming(timer.millis());
            const net::RootedTree rooted(tree, tree.defaultRoot());
            // Combined bound: per-edge minima plus the per-object κ/h
            // argument (essential on fat trees; see lower_bound.h).
            const double lb = core::combinedLowerBound(rooted, load);
            if (lb <= 0.0) continue;
            ratio.add(result.report.congestionFinal / lb);
            congestion.add(result.report.congestionFinal);
            lowerBound.add(lb);
          }
          if (ratio.empty()) continue;
          globalMax = std::max(globalMax, ratio.max());
          table.addRow({net::topologyFamilyName(family),
                        fatTree ? "fat-tree" : "uniform",
                        workload::profileName(profile), std::to_string(procs),
                        util::formatDouble(ratio.mean(), 3),
                        util::formatDouble(ratio.max(), 3),
                        util::formatDouble(congestion.mean(), 1),
                        util::formatDouble(lowerBound.mean(), 1)});
          reporter.beginRow();
          reporter.field("topology", net::topologyFamilyName(family));
          reporter.field("bandwidths", fatTree ? "fat-tree" : "uniform");
          reporter.field("workload", workload::profileName(profile));
          reporter.field("procs", procs);
          reporter.field("trials", static_cast<std::int64_t>(ratio.count()));
          reporter.field("ratio_mean", ratio.mean());
          reporter.field("ratio_max", ratio.max());
          reporter.field("congestion_mean", congestion.mean());
          reporter.field("lower_bound_mean", lowerBound.mean());
        }
      }
    }
    table.print(ctx.os());
    const bool withinBound = globalMax <= 7.0;
    ctx.os() << "\nglobal max C/LB = " << util::formatDouble(globalMax, 3)
             << (withinBound ? "  (within the Theorem 4.3 bound of 7)"
                             : "  (BOUND VIOLATED!)")
             << "\n";
    reporter.beginRow("check");
    reporter.field("claim", "congestion/lower-bound <= 7 (Theorem 4.3)");
    reporter.field("value", globalMax);
    reporter.field("held", withinBound);
    return withinBound;
  }

 private:
  int trialsOverride_;
};

}  // namespace

namespace detail {
void registerApproxRatio(engine::ExperimentRegistry& registry) {
  registry.add(
      {"approx-ratio",
       "extended-nibble congestion vs certified lower bound across the "
       "topology x workload grid",
       "E1 / Theorem 4.3", "trials=N"},
      [](engine::StrategyOptions& options) {
        const int trials = static_cast<int>(options.getInt("trials", 0));
        return std::make_unique<ApproxRatioExperiment>(trials);
      },
      {"e1"});
}
}  // namespace detail

}  // namespace hbn::bench
