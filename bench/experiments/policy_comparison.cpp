// Experiment E14 (§4 + §1.3, extension): the unified online-policy
// engine. Sweeps every registered serving policy — the FOCS'97
// tree-counters scheme, the frozen static:placement=extended-nibble
// composition, full-replication, and owner-only — over the generated
// skewed / bursty / diurnal streams, a write-heavy churn variant, and
// the adversarial ping-pong sequence, all through the same EpochServer.
//
// Checks (the cross-policy claims of the redesign):
//   * tree-counters beats owner-only on read-heavy skew (replication
//     towards readers pays off),
//   * tree-counters beats full-replication on write-heavy churn
//     (invalidate-on-write caps broadcast traffic),
//   * static + the drift handoff stays within the e12 congestion-ratio
//     bound on the generated streams (periodic offline re-optimisation
//     is a serviceable policy),
//   * every policy's epoch sharding is thread-count independent.
#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "experiments.h"
#include "hbn/dynamic/harness.h"
#include "hbn/net/generators.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/request_stream.h"
#include "hbn/util/rng.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"

namespace hbn::bench {
namespace {

constexpr double kRatioBound = 8.0;  // e12's realised-congestion bound
/// adaptive must stay within this factor of the best fixed policy on
/// every fixed-regime stream (the price of scoring before switching).
constexpr double kAdaptiveSlack = 1.10;

/// One spec per registered policy, so a newly registered policy joins
/// the sweep (and the committed comparison) automatically. `static` is
/// pinned to the extended-nibble composition the checks and the
/// acceptance surface name explicitly; every other policy runs with
/// its defaults.
std::vector<std::string> policySpecs() {
  std::vector<std::string> specs;
  for (const std::string& name :
       dynamic::OnlinePolicyRegistry::global().names()) {
    specs.push_back(name == "static" ? "static:placement=extended-nibble"
                                     : name);
  }
  return specs;
}

class PolicyComparisonExperiment final : public engine::Experiment {
 public:
  PolicyComparisonExperiment(std::int64_t requests, std::int64_t epoch,
                             std::int64_t objects)
      : requestsOverride_(requests),
        epochOverride_(epoch),
        objectsOverride_(objects) {}

  [[nodiscard]] std::string_view name() const override {
    return "policy-comparison";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(14);
    const std::uint64_t perStream =
        requestsOverride_ > 0
            ? static_cast<std::uint64_t>(requestsOverride_)
            : (ctx.smoke ? 300'000ULL : 600'000ULL);
    const std::size_t epochSize =
        epochOverride_ > 0 ? static_cast<std::size_t>(epochOverride_)
                           : (1u << 12);
    const int objects =
        objectsOverride_ > 0 ? static_cast<int>(objectsOverride_) : 512;

    const net::Tree tree = net::makeClusterNetwork(4, 8);
    const net::RootedTree rooted(tree, tree.defaultRoot());
    ctx.os() << "E14 — online-policy comparison: every registered policy "
                "over every stream family\nseed="
             << seed << ", " << perStream << " requests/stream, epoch="
             << epochSize << ", objects=" << objects
             << ", threads=" << ctx.threads << "\n\n";

    // Stream configurations: the three generated e12 profiles, a
    // write-heavy churn variant, and the adversarial ping-pong
    // sequence (materialised once, served identically by each policy).
    struct StreamConfig {
      std::string label;
      std::string generator;  ///< empty = ping-pong vector
      double readFraction = 0.9;
      std::uint64_t seedOffset = 0;
    };
    const std::vector<StreamConfig> streams = {
        {"skewed", "skewed", 0.95, 1},
        {"bursty", "bursty", 0.9, 2},
        {"diurnal", "diurnal", 0.9, 3},
        {"skewed-churn", "skewed", 0.25, 4},
        {"ping-pong", "", 0.0, 5},
        {"phase-shift", "phase-shift", 0.9, 6},
    };
    util::Rng pingRng(seed + 5);
    const int pingRounds = std::max<int>(
        1, static_cast<int>(perStream /
                            (static_cast<std::uint64_t>(objects) * 6)));
    const std::vector<dynamic::Request> pingPong =
        dynamic::makePingPongSequence(tree, objects, pingRounds, 5, pingRng);

    const auto makeStream =
        [&](const StreamConfig& config) -> std::unique_ptr<serve::RequestStream> {
      if (config.generator.empty()) {
        return std::make_unique<serve::VectorStream>(pingPong);
      }
      workload::StreamParams params;
      params.numObjects = objects;
      params.readFraction = config.readFraction;
      // Regime boundaries land on epoch boundaries (9 epochs per
      // schedule slot, so one [skew, skew, churn, burst] cycle spans
      // 36 epochs), and adaptive sees whole epochs of each regime
      // before re-scoring.
      if (config.generator == "phase-shift") {
        params.phaseLength = static_cast<std::uint64_t>(epochSize) * 9;
      }
      return serve::makeGeneratedStream(config.generator, tree, params,
                                        seed + config.seedOffset, perStream);
    };

    util::Table table({"stream", "policy", "requests", "Mreq/s",
                       "congestion", "ratio", "re-placements"});
    // congestion[stream label][policy spec], ratio likewise — the
    // checks below read specific cells.
    std::map<std::string, std::map<std::string, double>> congestion;
    std::map<std::string, std::map<std::string, double>> ratio;
    std::map<std::string, std::map<std::string, std::uint64_t>> replaced;

    for (const StreamConfig& config : streams) {
      for (const std::string& policy : policySpecs()) {
        const auto stream = makeStream(config);
        serve::ServeOptions options;
        options.epochSize = epochSize;
        options.threads = ctx.threads;
        options.policy = policy;
        serve::EpochServer server(rooted, objects, options);
        util::Timer timer;
        const serve::ServeReport report = server.serve(*stream);
        reporter.addTiming(timer.millis());
        congestion[config.label][policy] = report.congestion;
        ratio[config.label][policy] = report.ratio;
        replaced[config.label][policy] = report.replacements;

        table.addRow({config.label, policy,
                      std::to_string(report.totalRequests),
                      util::formatDouble(report.requestsPerSec / 1e6, 2),
                      util::formatDouble(report.congestion, 1),
                      util::formatDouble(report.ratio, 2),
                      std::to_string(report.replacements)});
        reporter.beginRow();
        reporter.field("stream", config.label);
        reporter.field("policy", policy);
        reporter.field("requests",
                       static_cast<std::int64_t>(report.totalRequests));
        reporter.field("epochs", static_cast<std::int64_t>(report.epochs));
        reporter.field("objects", objects);
        reporter.field("threads", ctx.threads);
        reporter.field("wall_ms", report.wallMs);
        reporter.field("requests_per_sec", report.requestsPerSec);
        reporter.field("congestion", report.congestion);
        reporter.field("lower_bound", report.lowerBound);
        reporter.field("ratio", report.ratio);
        reporter.field("replacements",
                       static_cast<std::int64_t>(report.replacements));
        reporter.field("replications",
                       static_cast<std::int64_t>(report.replications));
        reporter.field("invalidations",
                       static_cast<std::int64_t>(report.invalidations));
        for (const auto& [key, value] : report.policyMetrics) {
          reporter.field(key, value);
        }
      }
    }
    table.print(ctx.os());

    // Thread-count independence, per policy: the per-worker policy
    // state must keep the engine's 1-vs-N bit-identity guarantee.
    const auto digest = [&](const std::string& policy, int threads) {
      workload::StreamParams params;
      params.numObjects = objects;
      const auto stream = serve::makeGeneratedStream(
          "skewed", tree, params, seed + 99, /*total=*/50'000);
      serve::ServeOptions options;
      options.epochSize = 1 << 12;
      options.threads = threads;
      options.replaceDrift = 1.5;  // exercise the handoff path too
      options.policy = policy;
      serve::EpochServer server(rooted, objects, options);
      const serve::ServeReport report = server.serve(*stream);
      std::ostringstream oss;
      oss.precision(17);
      oss << report.congestion << '|' << report.replications << '|'
          << report.invalidations << '|' << report.replacements;
      for (const core::Count load : server.loads().edgeLoads()) {
        oss << ',' << load;
      }
      for (workload::ObjectId x = 0; x < objects; x += 37) {
        oss << ';';
        for (const net::NodeId v : server.copySet(x)) oss << v << ' ';
      }
      return oss.str();
    };
    bool deterministic = true;
    for (const std::string& policy : policySpecs()) {
      if (digest(policy, 1) != digest(policy, 3)) {
        deterministic = false;
        ctx.os() << "\n" << policy << ": 1-vs-3-thread STATES DIVERGED\n";
      }
    }

    // The cross-policy claims.
    const bool beatsOwnerOnly =
        congestion["skewed"]["tree-counters"] <
        congestion["skewed"]["owner-only"];
    const bool beatsFullReplication =
        congestion["skewed-churn"]["tree-counters"] <
        congestion["skewed-churn"]["full-replication"];
    double staticWorstRatio = 0.0;
    std::uint64_t staticHandoffs = 0;
    for (const char* label : {"skewed", "bursty", "diurnal"}) {
      staticWorstRatio = std::max(
          staticWorstRatio, ratio[label]["static:placement=extended-nibble"]);
      staticHandoffs += replaced[label]["static:placement=extended-nibble"];
    }
    const bool staticWithinBound =
        staticWorstRatio <= kRatioBound && staticHandoffs > 0;

    // Adaptive's claims: on every fixed-regime stream it tracks the
    // best fixed policy (paying at most kAdaptiveSlack for scoring and
    // switch lag); on the regime-cycling phase-shift stream no fixed
    // policy keeps up and adaptive is strictly best.
    double adaptiveWorstSlack = 0.0;
    std::string adaptiveWorstStream;
    for (const char* label :
         {"skewed", "bursty", "diurnal", "skewed-churn", "ping-pong"}) {
      double bestFixed = 0.0;
      bool first = true;
      for (const auto& [policy, value] : congestion[label]) {
        if (policy == "adaptive") continue;
        if (first || value < bestFixed) bestFixed = value;
        first = false;
      }
      const double slack =
          bestFixed > 0.0 ? congestion[label]["adaptive"] / bestFixed : 0.0;
      if (slack > adaptiveWorstSlack) {
        adaptiveWorstSlack = slack;
        adaptiveWorstStream = label;
      }
    }
    const bool adaptiveNearBest = adaptiveWorstSlack <= kAdaptiveSlack;
    bool adaptiveBestOnPhaseShift = true;
    for (const auto& [policy, value] : congestion["phase-shift"]) {
      if (policy == "adaptive") continue;
      if (congestion["phase-shift"]["adaptive"] >= value) {
        adaptiveBestOnPhaseShift = false;
      }
    }

    ctx.os() << "\nread-heavy skew: tree-counters "
             << util::formatDouble(congestion["skewed"]["tree-counters"], 1)
             << " vs owner-only "
             << util::formatDouble(congestion["skewed"]["owner-only"], 1)
             << "\nwrite-heavy churn: tree-counters "
             << util::formatDouble(
                    congestion["skewed-churn"]["tree-counters"], 1)
             << " vs full-replication "
             << util::formatDouble(
                    congestion["skewed-churn"]["full-replication"], 1)
             << "\nstatic+handoff worst generated-stream ratio "
             << util::formatDouble(staticWorstRatio, 2) << " (bound "
             << util::formatDouble(kRatioBound, 1) << ", "
             << staticHandoffs << " handoffs); per-policy sharding "
             << (deterministic ? "thread-count independent"
                               : "DIVERGED")
             << "\nadaptive worst slack vs best fixed "
             << util::formatDouble(adaptiveWorstSlack, 3) << " ("
             << adaptiveWorstStream << ", bound "
             << util::formatDouble(kAdaptiveSlack, 2)
             << "); phase-shift: adaptive "
             << util::formatDouble(congestion["phase-shift"]["adaptive"], 1)
             << (adaptiveBestOnPhaseShift ? " strictly best"
                                          : " NOT best")
             << "\n";

    reporter.beginRow("check");
    reporter.field("claim",
                   "tree-counters beats owner-only on read-heavy skew");
    reporter.field("value", congestion["skewed"]["tree-counters"]);
    reporter.field("held", beatsOwnerOnly);
    reporter.beginRow("check");
    reporter.field("claim",
                   "tree-counters beats full-replication on write-heavy "
                   "churn");
    reporter.field("value", congestion["skewed-churn"]["tree-counters"]);
    reporter.field("held", beatsFullReplication);
    reporter.beginRow("check");
    reporter.field("claim",
                   "static + drift handoff stays within the e12 ratio "
                   "bound on generated streams");
    reporter.field("value", staticWorstRatio);
    reporter.field("held", staticWithinBound);
    reporter.beginRow("check");
    reporter.field("claim",
                   "every policy's epoch sharding is thread-count "
                   "independent");
    reporter.field("held", deterministic);
    reporter.beginRow("check");
    reporter.field("claim",
                   "adaptive stays within 1.10x of the best fixed policy "
                   "on every fixed-regime stream");
    reporter.field("value", adaptiveWorstSlack);
    reporter.field("held", adaptiveNearBest);
    reporter.beginRow("check");
    reporter.field("claim",
                   "adaptive is strictly best on the regime-cycling "
                   "phase-shift stream");
    reporter.field("value", congestion["phase-shift"]["adaptive"]);
    reporter.field("held", adaptiveBestOnPhaseShift);
    return beatsOwnerOnly && beatsFullReplication && staticWithinBound &&
           deterministic && adaptiveNearBest && adaptiveBestOnPhaseShift;
  }

 private:
  std::int64_t requestsOverride_;
  std::int64_t epochOverride_;
  std::int64_t objectsOverride_;
};

}  // namespace

namespace detail {
void registerPolicyComparison(engine::ExperimentRegistry& registry) {
  registry.add(
      {"policy-comparison",
       "unified online-policy engine: every registered policy over every "
       "stream family, cross-policy congestion claims checked",
       "E14 / section 4 + section 1.3 (online policy family)",
       "requests=N,epoch=N,objects=N"},
      [](engine::StrategyOptions& options) {
        const std::int64_t requests = options.getInt("requests", 0);
        const std::int64_t epoch = options.getInt("epoch", 0);
        const std::int64_t objects = options.getInt("objects", 0);
        return std::make_unique<PolicyComparisonExperiment>(requests, epoch,
                                                            objects);
      },
      {"e14"});
}
}  // namespace detail

}  // namespace hbn::bench
