// Experiment E7 (congestion predicts throughput, cf. [8]): deliver the
// message set of the registry strategies through the store-and-forward
// simulator and correlate congestion with makespan.
#include <memory>
#include <string>
#include <vector>

#include "experiments.h"
#include "hbn/net/generators.h"
#include "hbn/sim/simulator.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

namespace hbn::bench {
namespace {

class ThroughputExperiment final : public engine::Experiment {
 public:
  explicit ThroughputExperiment(int trialsOverride)
      : trialsOverride_(trialsOverride) {}

  [[nodiscard]] std::string_view name() const override {
    return "throughput";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(7);
    const std::vector<std::string> specs =
        ctx.strategies.empty()
            ? std::vector<std::string>{"extended-nibble", "best-single-copy",
                                       "weighted-median",
                                       "random-single-copy",
                                       "full-replication"}
            : ctx.strategies;
    const int kTrials =
        trialsOverride_ > 0 ? trialsOverride_ : ctx.trials(8);

    ctx.os() << "E7 — congestion vs simulated makespan across strategies "
                "(store-and-forward delivery of the full message set)\nseed="
             << seed << "\n\n";

    struct StrategyRow {
      util::Accumulator congestion;
      util::Accumulator makespan;
      util::Accumulator dilation;
      util::Accumulator wallMs;
    };
    std::vector<StrategyRow> rows(specs.size());
    std::vector<double> allCongestion;
    std::vector<double> allMakespan;

    util::Rng master(seed);
    const net::Tree tree = net::makeClusterNetwork(4, 5);
    const net::RootedTree rooted(tree, tree.defaultRoot());
    std::vector<std::unique_ptr<engine::PlacementStrategy>> strategies;
    for (const std::string& spec : specs) {
      strategies.push_back(engine::StrategyRegistry::global().create(spec));
    }
    for (int trial = 0; trial < kTrials; ++trial) {
      util::Rng rng = master.split();
      workload::GenParams params;
      params.numObjects = 10;
      params.requestsPerProcessor = 30;
      params.readFraction = 0.75;
      const workload::Workload load =
          workload::generateClustered(tree, params, rng);

      for (std::size_t s = 0; s < specs.size(); ++s) {
        engine::Context strategyCtx;
        strategyCtx.threads = ctx.threads;
        strategyCtx.seed = seed + static_cast<std::uint64_t>(trial);
        util::Timer timer;
        const core::Placement placement =
            strategies[s]->place(tree, load, strategyCtx);
        const double wallMs = timer.millis();
        reporter.addTiming(wallMs);
        const sim::SimResult result =
            sim::simulatePlacement(rooted, load, placement);
        rows[s].congestion.add(result.congestion);
        rows[s].makespan.add(static_cast<double>(result.makespan));
        rows[s].dilation.add(static_cast<double>(result.dilation));
        rows[s].wallMs.add(wallMs);
        allCongestion.push_back(result.congestion);
        allMakespan.push_back(static_cast<double>(result.makespan));
      }
    }

    util::Table table({"strategy", "mean congestion", "mean makespan",
                       "mean dilation", "makespan/congestion"});
    for (std::size_t s = 0; s < specs.size(); ++s) {
      table.addRow(
          {specs[s], util::formatDouble(rows[s].congestion.mean(), 1),
           util::formatDouble(rows[s].makespan.mean(), 1),
           util::formatDouble(rows[s].dilation.mean(), 1),
           util::formatDouble(
               rows[s].makespan.mean() / rows[s].congestion.mean(), 3)});
      reporter.beginRow();
      reporter.field("strategy", specs[s]);
      reporter.field("n", tree.nodeCount());
      reporter.field("objects", 10);
      reporter.field("threads", ctx.threads);
      reporter.field("trials", kTrials);
      reporter.field("wall_ms", rows[s].wallMs.mean());
      reporter.field("congestion", rows[s].congestion.mean());
      reporter.field("makespan", rows[s].makespan.mean());
      reporter.field("dilation", rows[s].dilation.mean());
    }
    table.print(ctx.os());
    const double correlation = util::pearson(allCongestion, allMakespan);
    ctx.os() << "\nPearson correlation (congestion, makespan) = "
             << util::formatDouble(correlation, 4)
             << (correlation > 0.9 ? "  (congestion predicts throughput)"
                                   : "")
             << "\n";
    reporter.beginRow("check");
    reporter.field("claim",
                   "congestion correlates with simulated makespan (cf. [8])");
    reporter.field("value", correlation);
    reporter.field("held", true);  // informational: no hard paper bound
    return true;
  }

 private:
  int trialsOverride_;
};

}  // namespace

namespace detail {
void registerThroughput(engine::ExperimentRegistry& registry) {
  registry.add(
      {"throughput",
       "store-and-forward delivery of each strategy's message set: "
       "congestion vs makespan and dilation",
       "E7 / congestion-throughput relation", "trials=N"},
      [](engine::StrategyOptions& options) {
        const int trials = static_cast<int>(options.getInt("trials", 0));
        return std::make_unique<ThroughputExperiment>(trials);
      },
      {"e7"});
}
}  // namespace detail

}  // namespace hbn::bench
