// Experiment E16: multi-process sharded serving. The object space is
// partitioned over N shard workers behind the coordinator/worker wire
// protocol (docs/sharding.md); each worker runs the single-process
// serving stack over its shard and the coordinator merges the
// convergecast stats.
//
// Three claims, per the sharding design:
//   identity     for EVERY registered policy, the merged loads, final
//                congestion/lower bound/ratio, and the
//                replication/invalidation/re-placement counters of a
//                sharded run are bit-identical to the single-process
//                EpochServer — for 1, 2 and 4 workers (the partition
//                only decides who serves, never what is served).
//   transports   the socket transport (fork()ed worker processes over
//                Unix sockets) produces the same bits as in-process
//                loopback.
//   scaling      on a skewed stream with the adaptive policy, the
//                critical-path throughput (Σ over epochs of the
//                slowest shard's CPU time — what N truly parallel
//                workers would take; see docs/sharding.md) scales to
//                >= 1.5x at 4 workers. Wall clock is reported
//                alongside but not gated: on fewer cores than workers
//                the shards time-slice and wall clock measures the
//                machine, not the protocol.
#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "experiments.h"
#include "hbn/dynamic/online_policy.h"
#include "hbn/net/generators.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/request_stream.h"
#include "hbn/shard/coordinator.h"
#include "hbn/shard/process.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"

namespace hbn::bench {
namespace {

/// Identity-phase stream scale. Small on purpose: the phase runs
/// (1 single-process + 3 sharded) runs per registered policy.
constexpr std::uint64_t kIdentityRequestsFull = 120'000;
constexpr std::uint64_t kIdentityRequestsSmoke = 48'000;
constexpr std::size_t kIdentityEpoch = 8192;
constexpr int kIdentityObjects = 256;

/// Scaling-phase scale: the adaptive policy on a skewed stream over a
/// small hot set, where per-object serving dominates the per-worker
/// fixed epoch work (decode + full-matrix aggregation + lower-bound
/// refresh) and sharding has something to win.
constexpr std::uint64_t kScalingRequestsFull = 640'000;
constexpr std::uint64_t kScalingRequestsSmoke = 160'000;
constexpr std::size_t kScalingEpoch = 32768;
constexpr int kScalingObjects = 256;
constexpr const char* kScalingPolicy = "adaptive";

/// Critical-path speedup floors at 4 workers. Full mode gates the
/// headline claim; smoke scale keeps a direction-only margin because
/// five-epoch runs leave little amortisation.
constexpr double kSpeedupFloorFull = 1.5;
constexpr double kSpeedupFloorSmoke = 1.05;

std::vector<workload::RequestEvent> materialize(const net::Tree& tree,
                                                int objects,
                                                std::uint64_t seed,
                                                std::uint64_t total) {
  workload::StreamParams params;
  params.numObjects = objects;
  const auto stream =
      serve::makeGeneratedStream("skewed", tree, params, seed, total);
  std::vector<workload::RequestEvent> events(total);
  std::size_t have = 0;
  while (have < total) {
    const std::size_t got = stream->fill(
        std::span<workload::RequestEvent>(events.data() + have,
                                          total - have));
    if (got == 0) break;
    have += got;
  }
  events.resize(have);
  return events;
}

/// The digest both engines are compared on: every run-level counter the
/// serve layer reports plus the full merged edge-load vector, printed
/// at round-trip precision.
template <typename Report>
std::string digestOf(const Report& report, const core::LoadMap& loads) {
  std::ostringstream oss;
  oss.precision(17);
  oss << report.congestion << '|' << report.lowerBound << '|'
      << report.ratio << '|' << report.replacements << '|'
      << report.replications << '|' << report.invalidations;
  for (const core::Count load : loads.edgeLoads()) oss << ',' << load;
  return oss.str();
}

class ShardedServingExperiment final : public engine::Experiment {
 public:
  ShardedServingExperiment(std::int64_t requests, std::int64_t epoch,
                           std::int64_t objects)
      : requestsOverride_(requests),
        epochOverride_(epoch),
        objectsOverride_(objects) {}

  [[nodiscard]] std::string_view name() const override {
    return "sharded-serving";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(12);
    const net::Tree tree = net::makeClusterNetwork(4, 8);
    const net::RootedTree rooted(tree, tree.defaultRoot());

    const std::uint64_t identityRequests =
        requestsOverride_ > 0
            ? static_cast<std::uint64_t>(requestsOverride_)
            : (ctx.smoke ? kIdentityRequestsSmoke : kIdentityRequestsFull);
    const std::size_t identityEpoch =
        epochOverride_ > 0 ? static_cast<std::size_t>(epochOverride_)
                           : kIdentityEpoch;
    const int identityObjects =
        objectsOverride_ > 0 ? static_cast<int>(objectsOverride_)
                             : kIdentityObjects;
    const std::uint64_t scalingRequests =
        requestsOverride_ > 0
            ? static_cast<std::uint64_t>(requestsOverride_)
            : (ctx.smoke ? kScalingRequestsSmoke : kScalingRequestsFull);

    ctx.os() << "E16 — multi-process sharded serving: coordinator/worker "
                "protocol vs the single-process engine\nseed="
             << seed << ", identity: " << identityRequests
             << " requests x epoch " << identityEpoch << " x "
             << identityObjects << " objects; scaling: " << scalingRequests
             << " requests (policy=" << kScalingPolicy << ")\n\n";

    const auto singleProcess =
        [&](const std::vector<workload::RequestEvent>& events,
            const std::string& policy, int objects, std::size_t epochSize,
            std::string* digest) {
          serve::VectorStream stream(events);
          serve::ServeOptions options;
          options.epochSize = epochSize;
          options.threads = 1;
          options.policy = policy;
          serve::EpochServer server(rooted, objects, options);
          const serve::ServeReport report = server.serve(stream);
          *digest = digestOf(report, server.loads());
          return report;
        };

    const auto sharded =
        [&](const std::vector<workload::RequestEvent>& events,
            const std::string& policy, int objects, std::size_t epochSize,
            int workers, bool socket, std::string* digest) {
          serve::VectorStream stream(events);
          shard::ShardOptions options;
          options.serve.epochSize = epochSize;
          options.serve.threads = 1;
          options.serve.policy = policy;
          options.partitionSeed = seed;
          // fork (not exec): process isolation without depending on the
          // host binary's path, so the experiment runs identically from
          // hbn_bench and hbn_place --bench.
          std::unique_ptr<shard::ShardCluster> cluster =
              socket ? shard::makeForkCluster(workers)
                     : shard::makeLoopbackCluster(workers);
          shard::ShardCoordinator coordinator(
              tree, objects, options, cluster->links(),
              socket ? "socket" : "loopback");
          const shard::ShardedReport report = coordinator.serve(stream);
          cluster->join();
          *digest = digestOf(report, coordinator.loads());
          return report;
        };

    // --- Phase 1: digest identity for every registered policy. -------
    const std::vector<workload::RequestEvent> identityEvents =
        materialize(tree, identityObjects, seed + 1, identityRequests);
    util::Table identityTable(
        {"policy", "congestion", "ratio", "re-placed", "1w", "2w", "4w"});
    bool identityHeld = true;
    for (const std::string& policy :
         dynamic::OnlinePolicyRegistry::global().names()) {
      std::string reference;
      const serve::ServeReport report = singleProcess(
          identityEvents, policy, identityObjects, identityEpoch,
          &reference);
      std::vector<std::string> verdicts;
      for (const int workers : {1, 2, 4}) {
        std::string shardedDigest;
        util::Timer timer;
        const shard::ShardedReport shardedReport =
            sharded(identityEvents, policy, identityObjects, identityEpoch,
                    workers, /*socket=*/false, &shardedDigest);
        reporter.addTiming(timer.millis());
        const bool match = shardedDigest == reference;
        identityHeld = identityHeld && match;
        verdicts.push_back(match ? "ok" : "DIVERGED");

        reporter.beginRow();
        reporter.field("phase", "identity");
        reporter.field("policy", policy);
        reporter.field("transport", "loopback");
        reporter.field("workers", workers);
        reporter.field("requests", static_cast<std::int64_t>(
                                       shardedReport.totalRequests));
        reporter.field("congestion", shardedReport.congestion);
        reporter.field("lower_bound", shardedReport.lowerBound);
        reporter.field("ratio", shardedReport.ratio);
        reporter.field("replacements", static_cast<std::int64_t>(
                                           shardedReport.replacements));
        reporter.field("cross_shard_bytes",
                       static_cast<std::int64_t>(
                           shardedReport.crossShardBytes));
        reporter.field("bytes_per_request", shardedReport.bytesPerRequest);
        reporter.field("digest_matches_single_process", match);
      }
      identityTable.addRow({policy,
                            util::formatDouble(report.congestion, 1),
                            util::formatDouble(report.ratio, 2),
                            std::to_string(report.replacements),
                            verdicts[0], verdicts[1], verdicts[2]});
    }
    ctx.os() << "digest identity vs single-process engine (merged edge "
                "loads + counters, all registered policies):\n";
    identityTable.print(ctx.os());

    // --- Phase 2: socket transport produces the same bits. -----------
    std::string loopbackDigest;
    std::string socketDigest;
    {
      util::Timer timer;
      (void)sharded(identityEvents, "tree-counters", identityObjects,
                    identityEpoch, 2, /*socket=*/false, &loopbackDigest);
      (void)sharded(identityEvents, "tree-counters", identityObjects,
                    identityEpoch, 2, /*socket=*/true, &socketDigest);
      reporter.addTiming(timer.millis());
    }
    const bool socketHeld = socketDigest == loopbackDigest;
    ctx.os() << "\nsocket transport (2 fork()ed worker processes): "
             << (socketHeld ? "bit-identical to loopback" : "DIVERGED")
             << "\n";

    // --- Phase 3: critical-path scaling on the skewed stream. --------
    const std::vector<workload::RequestEvent> scalingEvents =
        materialize(tree, kScalingObjects, seed + 2, scalingRequests);
    util::Table scalingTable({"workers", "wall Mreq/s", "critical Mreq/s",
                              "speedup", "bytes/request", "epoch p99 ms"});
    double baselineCritical = 0.0;
    double speedupAt4 = 0.0;
    std::string scalingReference;
    bool scalingIdentity = true;
    for (const int workers : {1, 2, 4}) {
      std::string digest;
      util::Timer timer;
      const shard::ShardedReport report =
          sharded(scalingEvents, kScalingPolicy, kScalingObjects,
                  kScalingEpoch, workers, /*socket=*/false, &digest);
      reporter.addTiming(timer.millis());
      if (workers == 1) {
        baselineCritical = report.requestsPerSecCritical;
        scalingReference = digest;
      } else {
        scalingIdentity = scalingIdentity && digest == scalingReference;
      }
      const double speedup =
          baselineCritical > 0.0
              ? report.requestsPerSecCritical / baselineCritical
              : 0.0;
      if (workers == 4) speedupAt4 = speedup;
      scalingTable.addRow(
          {std::to_string(workers),
           util::formatDouble(report.requestsPerSec / 1e6, 2),
           util::formatDouble(report.requestsPerSecCritical / 1e6, 2),
           util::formatDouble(speedup, 2),
           util::formatDouble(report.bytesPerRequest, 1),
           util::formatDouble(report.epochMsP99, 2)});

      reporter.beginRow();
      reporter.field("phase", "scaling");
      reporter.field("policy", kScalingPolicy);
      reporter.field("transport", "loopback");
      reporter.field("workers", workers);
      reporter.field("requests",
                     static_cast<std::int64_t>(report.totalRequests));
      reporter.field("epochs", static_cast<std::int64_t>(report.epochs));
      reporter.field("wall_ms", report.wallMs);
      reporter.field("requests_per_sec", report.requestsPerSec);
      reporter.field("critical_path_ms", report.criticalPathMs);
      reporter.field("requests_per_sec_critical",
                     report.requestsPerSecCritical);
      reporter.field("speedup_critical", speedup);
      reporter.field("epoch_ms_p50", report.epochMsP50);
      reporter.field("epoch_ms_p99", report.epochMsP99);
      reporter.field("congestion", report.congestion);
      reporter.field("lower_bound", report.lowerBound);
      reporter.field("ratio", report.ratio);
      reporter.field("replacements",
                     static_cast<std::int64_t>(report.replacements));
      reporter.field("cross_shard_bytes",
                     static_cast<std::int64_t>(report.crossShardBytes));
      reporter.field("bytes_per_request", report.bytesPerRequest);
    }
    ctx.os() << "\ncritical-path scaling, " << kScalingPolicy
             << " policy on the skewed stream:\n";
    scalingTable.print(ctx.os());

    const double speedupFloor =
        ctx.smoke ? kSpeedupFloorSmoke : kSpeedupFloorFull;
    const bool scalingHeld = speedupAt4 >= speedupFloor;
    ctx.os() << "\ncritical-path speedup at 4 workers: "
             << util::formatDouble(speedupAt4, 2) << "x (floor "
             << util::formatDouble(speedupFloor, 2) << "x, "
             << (ctx.smoke ? "smoke" : "full") << " mode)\n";

    reporter.beginRow("check");
    reporter.field("claim",
                   "sharded serving is bit-identical to the "
                   "single-process engine for every registered policy "
                   "at 1, 2 and 4 workers");
    reporter.field("held", identityHeld);
    reporter.beginRow("check");
    reporter.field("claim",
                   "socket transport produces the same bits as loopback");
    reporter.field("held", socketHeld);
    reporter.beginRow("check");
    reporter.field("claim",
                   "aggregate load digests are worker-count independent "
                   "on the scaling stream");
    reporter.field("held", scalingIdentity);
    reporter.beginRow("check");
    reporter.field("claim",
                   ctx.smoke
                       ? "critical-path throughput does not lose at 4 "
                         "workers (smoke floor)"
                       : "critical-path throughput scales >= 1.5x at 4 "
                         "workers on the skewed stream");
    reporter.field("value", speedupAt4);
    reporter.field("held", scalingHeld);
    return identityHeld && socketHeld && scalingIdentity && scalingHeld;
  }

 private:
  std::int64_t requestsOverride_;
  std::int64_t epochOverride_;
  std::int64_t objectsOverride_;
};

}  // namespace

namespace detail {
void registerShardedServing(engine::ExperimentRegistry& registry) {
  registry.add(
      {"sharded-serving",
       "multi-process sharded serving: per-policy digest identity with "
       "the single-process engine, socket-vs-loopback transport "
       "equivalence, and critical-path throughput scaling vs worker "
       "count",
       "E16 / docs/sharding.md (coordinator/worker protocol)",
       "requests=N,epoch=N,objects=N"},
      [](engine::StrategyOptions& options) {
        const std::int64_t requests = options.getInt("requests", 0);
        const std::int64_t epoch = options.getInt("epoch", 0);
        const std::int64_t objects = options.getInt("objects", 0);
        return std::make_unique<ShardedServingExperiment>(requests, epoch,
                                                          objects);
      },
      {"e16"});
}
}  // namespace detail

}  // namespace hbn::bench
