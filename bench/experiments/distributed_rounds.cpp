// Experiment E8 (distributed execution): round counts of the distributed
// nibble computation vs the O(|X| + height(T)) schedule, with perfect
// pipelining (max queue depth 1).
#include <memory>
#include <string>

#include "experiments.h"
#include "hbn/core/nibble.h"
#include "hbn/dist/distributed_nibble.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

namespace hbn::bench {
namespace {

class DistributedRoundsExperiment final : public engine::Experiment {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "distributed-rounds";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(8);
    ctx.os() << "E8 — distributed nibble: measured rounds vs the "
                "|X| + 4*height schedule; placement identical to "
                "sequential\nseed="
             << seed << "\n\n";

    util::Table table({"topology", "height", "|X|", "rounds",
                       "|X|+4h bound", "max queue", "messages",
                       "matches sequential"});
    util::Rng master(seed);
    bool allMatch = true;
    bool allPipelined = true;

    struct Case {
      const char* name;
      net::Tree tree;
    };
    util::Rng topoRng = master.split();
    Case cases[] = {
        {"kary(4,3)", net::makeKaryTree(4, 3)},
        {"kary(2,6)", net::makeKaryTree(2, 6)},
        {"caterpillar(16,2)", net::makeCaterpillar(16, 2)},
        {"random(48,16)", net::makeRandomTree(48, 16, topoRng)},
        {"cluster(6,6)", net::makeClusterNetwork(6, 6)},
    };
    // Smoke mode drops the largest object count, not the topologies: the
    // round-count claim must keep covering every tree shape.
    const std::vector<int> objectCounts =
        ctx.smoke ? std::vector<int>{4, 16} : std::vector<int>{4, 16, 64};
    for (const auto& c : cases) {
      for (const int numObjects : objectCounts) {
        util::Rng rng = master.split();
        workload::GenParams params;
        params.numObjects = numObjects;
        params.requestsPerProcessor = 12;
        const workload::Workload load =
            workload::generateUniform(c.tree, params, rng);
        const net::RootedTree rooted(c.tree, c.tree.defaultRoot());
        util::Timer timer;
        const auto dist = dist::distributedNibble(rooted, load);
        reporter.addTiming(timer.millis());
        const auto seq = core::nibblePlacement(c.tree, load);
        bool match = true;
        for (std::size_t x = 0; x < seq.objects.size(); ++x) {
          match &= dist.placement.objects[x].locations() ==
                   seq.objects[x].locations();
        }
        allMatch &= match;
        allPipelined &= dist.stats.maxQueueDepth <= 1;
        const auto bound =
            static_cast<std::int64_t>(numObjects) + 4 * rooted.height() + 4;
        table.addRow({c.name, std::to_string(rooted.height()),
                      std::to_string(numObjects),
                      std::to_string(dist.stats.rounds),
                      std::to_string(bound),
                      std::to_string(dist.stats.maxQueueDepth),
                      std::to_string(dist.stats.messages),
                      match ? "yes" : "NO"});
        reporter.beginRow();
        reporter.field("topology", c.name);
        reporter.field("height",
                       static_cast<std::int64_t>(rooted.height()));
        reporter.field("objects", numObjects);
        reporter.field("rounds",
                       static_cast<std::int64_t>(dist.stats.rounds));
        reporter.field("round_bound", bound);
        reporter.field("max_queue_depth",
                       static_cast<std::int64_t>(dist.stats.maxQueueDepth));
        reporter.field("messages",
                       static_cast<std::int64_t>(dist.stats.messages));
        reporter.field("matches_sequential", match);
      }
    }
    table.print(ctx.os());
    ctx.os() << "\nplacements identical everywhere: "
             << (allMatch ? "yes" : "NO — BUG")
             << "; pipelining perfect (queue<=1): "
             << (allPipelined ? "yes" : "NO") << "\n";
    reporter.beginRow("check");
    reporter.field("claim",
                   "distributed placement identical to sequential with "
                   "perfect pipelining (queue depth <= 1)");
    reporter.field("held", allMatch && allPipelined);
    return allMatch && allPipelined;
  }
};

}  // namespace

namespace detail {
void registerDistributedRounds(engine::ExperimentRegistry& registry) {
  registry.add(
      {"distributed-rounds",
       "distributed nibble rounds vs the |X| + O(height) schedule; "
       "placements bit-identical to the sequential computation",
       "E8 / distributed execution", ""},
      [](engine::StrategyOptions&) {
        return std::make_unique<DistributedRoundsExperiment>();
      },
      {"e8"});
}
}  // namespace detail

}  // namespace hbn::bench
