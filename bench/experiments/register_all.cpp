#include "experiments.h"

namespace hbn::bench {

engine::ExperimentRegistry& experiments() {
  static const bool populated = [] {
    engine::ExperimentRegistry& registry =
        engine::ExperimentRegistry::global();
    detail::registerApproxRatio(registry);
    detail::registerNpGadget(registry);
    detail::registerRuntime(registry);
    detail::registerNibbleOptimality(registry);
    detail::registerDeletionFactor(registry);
    detail::registerRingVsBus(registry);
    detail::registerThroughput(registry);
    detail::registerDistributedRounds(registry);
    detail::registerStrategyComparison(registry);
    detail::registerAblation(registry);
    detail::registerDynamic(registry);
    detail::registerServingThroughput(registry);
    detail::registerLoadEngine(registry);
    detail::registerPolicyComparison(registry);
    detail::registerFaultRecovery(registry);
    detail::registerShardedServing(registry);
    return true;
  }();
  (void)populated;
  return engine::ExperimentRegistry::global();
}

}  // namespace hbn::bench
