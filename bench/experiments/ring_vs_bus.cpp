// Experiment E6 (Figures 1-2): a hierarchical ring network and its bus
// abstraction carry identical loads for the same transaction sets — the
// modelling step the whole paper rests on.
#include <memory>
#include <string>

#include "experiments.h"
#include "hbn/core/load.h"
#include "hbn/sci/ring_network.h"
#include "hbn/sci/transactions.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"

namespace hbn::bench {
namespace {

class RingVsBusExperiment final : public engine::Experiment {
 public:
  explicit RingVsBusExperiment(int trialsOverride)
      : trialsOverride_(trialsOverride) {}

  [[nodiscard]] std::string_view name() const override {
    return "ring-vs-bus";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(6);
    const int kRandomCases =
        trialsOverride_ > 0 ? trialsOverride_ : ctx.trials(5);
    ctx.os() << "E6 / Figures 1-2 — ring-network congestion vs bus-model "
                "congestion for identical transaction sets\nseed="
             << seed << "\n\n";

    util::Table table({"topology", "rings", "procs", "transactions",
                       "ring congestion", "bus congestion", "equal"});
    util::Rng master(seed);
    bool allEqual = true;

    auto runCase = [&](const sci::RingNetwork& network, const char* label,
                       int transactions) {
      util::Rng rng = master.split();
      const sci::BusView view = sci::toBusNetwork(network);
      const net::RootedTree rooted(view.tree, view.tree.defaultRoot());
      sci::TransactionAccounting ringAcc(network);
      core::LoadMap busLoads(view.tree.edgeCount());
      util::Timer timer;
      for (int i = 0; i < transactions; ++i) {
        const auto u = static_cast<sci::ProcId>(rng.nextBelow(
            static_cast<std::uint64_t>(network.processorCount())));
        const auto v = static_cast<sci::ProcId>(rng.nextBelow(
            static_cast<std::uint64_t>(network.processorCount())));
        const auto amount = static_cast<sci::Count>(1 + rng.nextBelow(4));
        ringAcc.addTransactions(u, v, amount);
        if (u != v) {
          rooted.forEachPathEdge(
              view.processorNode[static_cast<std::size_t>(u)],
              view.processorNode[static_cast<std::size_t>(v)],
              [&](net::EdgeId e) { busLoads.addEdgeLoad(e, amount); });
        }
      }
      reporter.addTiming(timer.millis());
      const double ringCongestion = ringAcc.congestion();
      const double busCongestion = busLoads.congestion(view.tree);
      const bool equal = ringCongestion == busCongestion;
      allEqual &= equal;
      table.addRow({label, std::to_string(network.ringCount()),
                    std::to_string(network.processorCount()),
                    std::to_string(transactions),
                    util::formatDouble(ringCongestion, 2),
                    util::formatDouble(busCongestion, 2),
                    equal ? "yes" : "NO"});
      reporter.beginRow();
      reporter.field("topology", label);
      reporter.field("rings", network.ringCount());
      reporter.field("procs", network.processorCount());
      reporter.field("transactions", transactions);
      reporter.field("ring_congestion", ringCongestion);
      reporter.field("bus_congestion", busCongestion);
      reporter.field("equal", equal);
    };

    runCase(sci::makeBalancedRingHierarchy(2, 2, 4, 4.0, 2.0), "binary d2",
            500);
    runCase(sci::makeBalancedRingHierarchy(3, 3, 3, 8.0, 4.0), "ternary d3",
            800);
    runCase(sci::makeBalancedRingHierarchy(4, 2, 6, 16.0, 8.0), "quad d2",
            800);
    for (int trial = 0; trial < kRandomCases; ++trial) {
      util::Rng rng = master.split();
      runCase(sci::makeRandomRingHierarchy(
                  3 + static_cast<int>(rng.nextBelow(10)),
                  16 + static_cast<int>(rng.nextBelow(32)), rng),
              "random", 600);
    }
    table.print(ctx.os());
    ctx.os() << "\nring model == bus model on every instance: "
             << (allEqual ? "yes (Figure 1 -> Figure 2 is exact)"
                          : "NO — BUG")
             << "\n";
    reporter.beginRow("check");
    reporter.field("claim",
                   "hierarchical ring loads equal bus-abstraction loads "
                   "(Figures 1-2)");
    reporter.field("held", allEqual);
    return allEqual;
  }

 private:
  int trialsOverride_;
};

}  // namespace

namespace detail {
void registerRingVsBus(engine::ExperimentRegistry& registry) {
  registry.add(
      {"ring-vs-bus",
       "SCI ring hierarchy and its bus-network abstraction carry "
       "identical congestion for the same transactions",
       "E6 / Figures 1-2", "trials=N"},
      [](engine::StrategyOptions& options) {
        const int trials = static_cast<int>(options.getInt("trials", 0));
        return std::make_unique<RingVsBusExperiment>(trials);
      },
      {"e6"});
}
}  // namespace detail

}  // namespace hbn::bench
