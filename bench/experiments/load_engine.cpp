// Experiment E13: the batched difference-counting load engine versus the
// seed's per-request accounting, on serving-style traffic (the e12
// smoke workload: a skewed stream over the cluster network).
//
// The "legacy" arm is a faithful replica of the pre-batching serving
// engine — BFS entry point, binary-lifting LCA with a scratch-buffered
// path walk per request, an O(n) copy-location scan plus a
// vector-allocating steinerEdges call per write, and bounds-checked
// per-edge adds. The "flat" arm is the production path:
// OnlineTreeStrategy::serveShard over the FlatTreeView with the
// difference-counting accumulator. Both arms serve the identical
// object-bucketed request sequence, and the experiment asserts their
// edge loads, replication and invalidation counts are bit-identical
// before it compares wall clocks — the speedup is only meaningful if
// the engines agree.
//
// A second comparison covers the static layer: computeLoad over the
// aggregated ledger placement, legacy walk vs the flat view.
#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiments.h"
#include "hbn/core/flat_load.h"
#include "hbn/core/load.h"
#include "hbn/core/nibble.h"
#include "hbn/core/placement.h"
#include "hbn/dynamic/harness.h"
#include "hbn/dynamic/online_strategy.h"
#include "hbn/net/generators.h"
#include "hbn/net/steiner.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

namespace hbn::bench {
namespace {

/// The PR's measured single-thread target; reported as its own check.
constexpr double kSpeedupTarget = 3.0;
/// The pass/fail gate (and CI trip-wire): a ratio this far below the
/// measured 3.4-3.5x means the engine collapsed, not that a shared
/// runner was noisy. Same-run ratios largely cancel machine speed, but
/// the gate still leaves headroom for co-tenant jitter.
constexpr double kCollapseBound = 2.0;

using dynamic::Request;

/// Replica of the seed engine's per-request load accounting (the state
/// this PR's batched engine replaced); kept verbatim so the old-vs-new
/// comparison stays honest across future PRs.
class SeedReferenceEngine {
 public:
  SeedReferenceEngine(const net::RootedTree& rooted, int numObjects,
                      net::NodeId initialLocation)
      : rooted_(&rooted),
        loads_(static_cast<std::size_t>(rooted.tree().edgeCount()), 0) {
    const auto n = static_cast<std::size_t>(rooted.tree().nodeCount());
    const auto e = static_cast<std::size_t>(rooted.tree().edgeCount());
    objects_.resize(static_cast<std::size_t>(numObjects));
    for (auto& state : objects_) {
      state.hasCopy.assign(n, 0);
      state.readCounter.assign(e, 0);
      state.hasCopy[static_cast<std::size_t>(initialLocation)] = 1;
      state.copyCount = 1;
    }
  }

  void serve(const Request& request) {
    ObjectState& state = objects_[static_cast<std::size_t>(request.object)];
    const net::NodeId origin = request.origin;
    const net::NodeId entry = entryPoint(state, origin);
    const auto edgeBetween = [&](net::NodeId a, net::NodeId b) {
      return rooted_->depth(a) > rooted_->depth(b) ? rooted_->parentEdge(a)
                                                   : rooted_->parentEdge(b);
    };
    if (!request.isWrite) {
      path_.clear();
      const net::NodeId a = rooted_->lca(entry, origin);
      for (net::NodeId x = entry; x != a; x = rooted_->parent(x)) {
        path_.push_back(x);
      }
      path_.push_back(a);
      const std::size_t downStart = path_.size();
      for (net::NodeId x = origin; x != a; x = rooted_->parent(x)) {
        path_.push_back(x);
      }
      std::reverse(path_.begin() + static_cast<std::ptrdiff_t>(downStart),
                   path_.end());
      for (std::size_t i = 1; i < path_.size(); ++i) {
        const net::EdgeId edge = edgeBetween(path_[i - 1], path_[i]);
        loads_.at(static_cast<std::size_t>(edge)) += 1;  // seed used .at()
        ++state.readCounter[static_cast<std::size_t>(edge)];
      }
      for (std::size_t i = 1; i < path_.size(); ++i) {
        const net::NodeId from = path_[i - 1];
        const net::NodeId to = path_[i];
        if (!state.hasCopy[static_cast<std::size_t>(from)]) break;
        if (state.hasCopy[static_cast<std::size_t>(to)]) continue;
        const net::EdgeId edge = edgeBetween(from, to);
        if (state.readCounter[static_cast<std::size_t>(edge)] <
            replicationThreshold_) {
          break;
        }
        loads_.at(static_cast<std::size_t>(edge)) += 1;
        state.hasCopy[static_cast<std::size_t>(to)] = 1;
        ++state.copyCount;
        ++replications_;
        state.readCounter[static_cast<std::size_t>(edge)] = 0;
      }
      return;
    }
    if (origin != entry) {
      const net::NodeId a = rooted_->lca(origin, entry);
      for (net::NodeId x = origin; x != a; x = rooted_->parent(x)) {
        loads_.at(static_cast<std::size_t>(rooted_->parentEdge(x))) += 1;
      }
      for (net::NodeId x = entry; x != a; x = rooted_->parent(x)) {
        loads_.at(static_cast<std::size_t>(rooted_->parentEdge(x))) += 1;
      }
    }
    if (state.copyCount > 1) {
      locations_.clear();
      for (net::NodeId v = 0; v < rooted_->tree().nodeCount(); ++v) {
        if (state.hasCopy[static_cast<std::size_t>(v)]) {
          locations_.push_back(v);
        }
      }
      const auto steiner = net::steinerEdges(*rooted_, locations_);
      for (const net::EdgeId e : steiner) {
        loads_.at(static_cast<std::size_t>(e)) += 1;
      }
      for (const net::NodeId v : locations_) {
        if (v != entry) {
          state.hasCopy[static_cast<std::size_t>(v)] = 0;
          ++invalidations_;
        }
      }
      state.copyCount = 1;
      std::fill(state.readCounter.begin(), state.readCounter.end(), 0);
    }
  }

  [[nodiscard]] const std::vector<core::Count>& loads() const noexcept {
    return loads_;
  }
  [[nodiscard]] core::Count replications() const noexcept {
    return replications_;
  }
  [[nodiscard]] core::Count invalidations() const noexcept {
    return invalidations_;
  }

 private:
  struct ObjectState {
    std::vector<char> hasCopy;
    std::vector<core::Count> readCounter;
    int copyCount = 0;
  };

  net::NodeId entryPoint(const ObjectState& state, net::NodeId v) {
    if (state.hasCopy[static_cast<std::size_t>(v)]) return v;
    const net::Tree& tree = rooted_->tree();
    const auto n = static_cast<std::size_t>(tree.nodeCount());
    if (seenStamp_.size() != n) {
      seenStamp_.assign(n, 0);
      stamp_ = 0;
    }
    const std::uint32_t stamp = ++stamp_;
    queue_.clear();
    queue_.push_back(v);
    seenStamp_[static_cast<std::size_t>(v)] = stamp;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const net::NodeId u = queue_[head];
      if (state.hasCopy[static_cast<std::size_t>(u)]) return u;
      for (const net::HalfEdge& he : tree.neighbors(u)) {
        if (seenStamp_[static_cast<std::size_t>(he.to)] != stamp) {
          seenStamp_[static_cast<std::size_t>(he.to)] = stamp;
          queue_.push_back(he.to);
        }
      }
    }
    throw std::logic_error("SeedReferenceEngine: copy set empty");
  }

  const net::RootedTree* rooted_;
  core::Count replicationThreshold_ = 2;  // OnlineOptions default
  std::vector<ObjectState> objects_;
  std::vector<core::Count> loads_;
  core::Count replications_ = 0;
  core::Count invalidations_ = 0;
  std::vector<std::uint32_t> seenStamp_;
  std::uint32_t stamp_ = 0;
  std::vector<net::NodeId> queue_;
  std::vector<net::NodeId> path_;
  std::vector<net::NodeId> locations_;
};

class LoadEngineExperiment final : public engine::Experiment {
 public:
  LoadEngineExperiment(std::int64_t requests, std::int64_t objects)
      : requestsOverride_(requests), objectsOverride_(objects) {}

  [[nodiscard]] std::string_view name() const override {
    return "load-engine";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(13);
    const std::uint64_t requests =
        requestsOverride_ > 0
            ? static_cast<std::uint64_t>(requestsOverride_)
            : (ctx.smoke ? 400'000ULL : 2'000'000ULL);
    const int objects =
        objectsOverride_ > 0 ? static_cast<int>(objectsOverride_) : 1024;
    const int reps = 3;  // best-of; shields the ratio from scheduler noise

    // The e12 serving workload: skewed stream over the cluster network.
    const net::Tree tree = net::makeClusterNetwork(4, 8);
    const net::RootedTree rooted(tree, tree.defaultRoot());
    workload::StreamParams params;
    params.numObjects = objects;
    workload::SkewedStream stream(tree, params, seed);
    std::vector<Request> events;
    events.reserve(requests);
    for (std::uint64_t i = 0; i < requests; ++i) {
      events.push_back(stream.next());
    }
    ctx.os() << "E13 — batched difference-counting load engine vs the "
                "seed's per-request accounting\nseed="
             << seed << ", " << requests << " requests, objects=" << objects
             << ", tree n=" << tree.nodeCount() << "\n\n";

    // Bucket by object (stable), the layout both engines consume; the
    // serving layers do exactly this per epoch.
    std::vector<std::size_t> offsets(static_cast<std::size_t>(objects) + 1);
    std::vector<Request> bucketed(events.size());
    dynamic::bucketRequestsByObject(events, objects, offsets, bucketed);

    // --- Serving-path comparison -------------------------------------
    double legacyMs = 0.0;
    double flatMs = 0.0;
    core::Count legacyReplications = 0;
    core::Count flatReplications = 0;
    core::Count legacyInvalidations = 0;
    core::Count flatInvalidations = 0;
    bool identical = true;
    for (int rep = 0; rep < reps; ++rep) {
      SeedReferenceEngine legacy(rooted, objects, tree.processors().front());
      util::Timer legacyTimer;
      for (int x = 0; x < objects; ++x) {
        for (std::size_t i = offsets[static_cast<std::size_t>(x)];
             i < offsets[static_cast<std::size_t>(x) + 1]; ++i) {
          legacy.serve(bucketed[i]);
        }
      }
      const double lms = legacyTimer.millis();
      reporter.addTiming(lms);
      legacyMs = rep == 0 ? lms : std::min(legacyMs, lms);
      legacyReplications = legacy.replications();
      legacyInvalidations = legacy.invalidations();

      dynamic::OnlineTreeStrategy strategy(rooted, objects,
                                           tree.processors().front());
      core::LoadMap loads(tree.edgeCount());
      core::FlatLoadAccumulator acc(strategy.flatView());
      dynamic::ServeScratch scratch;
      core::Count replications = 0;
      core::Count invalidations = 0;
      util::Timer flatTimer;
      for (int x = 0; x < objects; ++x) {
        const std::size_t begin = offsets[static_cast<std::size_t>(x)];
        const std::size_t end = offsets[static_cast<std::size_t>(x) + 1];
        if (begin == end) continue;
        const dynamic::ShardStats stats = strategy.serveShard(
            x,
            std::span<const Request>(bucketed.data() + begin, end - begin),
            loads, scratch, &acc);
        replications += stats.replications;
        invalidations += stats.invalidations;
      }
      const double fms = flatTimer.millis();
      reporter.addTiming(fms);
      flatMs = rep == 0 ? fms : std::min(flatMs, fms);
      flatReplications = replications;
      flatInvalidations = invalidations;

      identical = identical && replications == legacy.replications() &&
                  invalidations == legacy.invalidations();
      for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
        identical = identical &&
                    loads.edgeLoad(e) ==
                        legacy.loads()[static_cast<std::size_t>(e)];
      }
    }
    const double servingSpeedup = flatMs > 0.0 ? legacyMs / flatMs : 0.0;

    // --- Static-layer comparison: computeLoad over the aggregated
    // ledger placement (nibble copy sets), legacy walk vs flat view. ---
    workload::Workload aggregated(objects, tree.nodeCount());
    for (const Request& ev : events) {
      if (ev.isWrite) {
        aggregated.addWrites(ev.object, ev.origin, 1);
      } else {
        aggregated.addReads(ev.object, ev.origin, 1);
      }
    }
    core::Placement placement;
    core::NibbleScratch nibbleScratch;
    for (workload::ObjectId x = 0; x < objects; ++x) {
      core::NibbleObjectResult result;
      core::nibbleObjectInto(tree, aggregated, x, nibbleScratch, result);
      placement.objects.push_back(std::move(result.placement));
    }
    double staticLegacyMs = 0.0;
    double staticFlatMs = 0.0;
    bool staticIdentical = true;
    const core::FlatTreeView flat(rooted);
    for (int rep = 0; rep < reps; ++rep) {
      util::Timer legacyTimer;
      core::LoadMap legacyLoads(tree.edgeCount());
      for (const core::ObjectPlacement& object : placement.objects) {
        core::accumulateObjectLoad(rooted, object, legacyLoads);
      }
      const double lms = legacyTimer.millis();
      staticLegacyMs = rep == 0 ? lms : std::min(staticLegacyMs, lms);

      util::Timer flatTimer;
      const core::LoadMap flatLoads = core::computeLoad(flat, placement);
      const double fms = flatTimer.millis();
      staticFlatMs = rep == 0 ? fms : std::min(staticFlatMs, fms);
      for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
        staticIdentical = staticIdentical &&
                          legacyLoads.edgeLoad(e) == flatLoads.edgeLoad(e);
      }
    }
    const double staticSpeedup =
        staticFlatMs > 0.0 ? staticLegacyMs / staticFlatMs : 0.0;

    util::Table table({"layer", "engine", "wall ms", "Mreq/s"});
    const auto mreqPerSec = [&](double wallMs) {
      return wallMs > 0.0
                 ? static_cast<double>(requests) / wallMs * 1e3 / 1e6
                 : 0.0;
    };
    table.addRow({"serving", "legacy-seed", util::formatDouble(legacyMs, 2),
                  util::formatDouble(mreqPerSec(legacyMs), 2)});
    table.addRow({"serving", "flat", util::formatDouble(flatMs, 2),
                  util::formatDouble(mreqPerSec(flatMs), 2)});
    table.addRow({"static", "legacy-walk",
                  util::formatDouble(staticLegacyMs, 3), "-"});
    table.addRow({"static", "flat", util::formatDouble(staticFlatMs, 3),
                  "-"});
    table.print(ctx.os());
    ctx.os() << "\nserving speedup " << util::formatDouble(servingSpeedup, 2)
             << "x (target >= " << util::formatDouble(kSpeedupTarget, 1)
             << "x, collapse gate >= "
             << util::formatDouble(kCollapseBound, 1)
             << "x), static speedup "
             << util::formatDouble(staticSpeedup, 2) << "x; engines "
             << (identical && staticIdentical ? "bit-identical"
                                              : "DIVERGED")
             << "\n";

    for (const auto& [engineName, wallMs, reps2, inv] :
         {std::tuple<const char*, double, core::Count, core::Count>{
              "legacy-seed", legacyMs, legacyReplications,
              legacyInvalidations},
          {"flat", flatMs, flatReplications, flatInvalidations}}) {
      reporter.beginRow();
      reporter.field("layer", "serving");
      reporter.field("engine", engineName);
      reporter.field("requests", static_cast<std::int64_t>(requests));
      reporter.field("objects", objects);
      reporter.field("wall_ms", wallMs);
      reporter.field("requests_per_sec",
                     wallMs > 0.0
                         ? static_cast<double>(requests) / wallMs * 1e3
                         : 0.0);
      reporter.field("replications", static_cast<std::int64_t>(reps2));
      reporter.field("invalidations", static_cast<std::int64_t>(inv));
    }
    for (const auto& [engineName, wallMs] :
         {std::pair<const char*, double>{"legacy-walk", staticLegacyMs},
          {"flat", staticFlatMs}}) {
      reporter.beginRow();
      reporter.field("layer", "static");
      reporter.field("engine", engineName);
      reporter.field("requests", static_cast<std::int64_t>(requests));
      reporter.field("objects", objects);
      reporter.field("wall_ms", wallMs);
    }

    reporter.beginRow("check");
    reporter.field("claim",
                   "old and new engines are bit-identical (loads, "
                   "replications, invalidations)");
    reporter.field("held", identical && staticIdentical);
    reporter.beginRow("check");
    reporter.field("claim",
                   "batched engine serves load accounting >= 3x faster "
                   "than the seed engine");
    reporter.field("value", servingSpeedup);
    reporter.field("held", servingSpeedup >= kSpeedupTarget);
    reporter.beginRow("check");
    reporter.field("claim",
                   "no engine collapse (speedup stays >= 2x; the CI "
                   "pass/fail gate, noise-tolerant)");
    reporter.field("value", servingSpeedup);
    reporter.field("held", servingSpeedup >= kCollapseBound);
    return identical && staticIdentical && servingSpeedup >= kCollapseBound;
  }

 private:
  std::int64_t requestsOverride_;
  std::int64_t objectsOverride_;
};

}  // namespace

namespace detail {
void registerLoadEngine(engine::ExperimentRegistry& registry) {
  registry.add(
      {"load-engine",
       "batched difference-counting load engine vs the seed's per-request "
       "path walks, on serving-style traffic",
       "E13 / section 1.1 (edge/bus load accounting)",
       "requests=N,objects=N"},
      [](engine::StrategyOptions& options) {
        const std::int64_t requests = options.getInt("requests", 0);
        const std::int64_t objects = options.getInt("objects", 0);
        return std::make_unique<LoadEngineExperiment>(requests, objects);
      },
      {"e13"});
}
}  // namespace detail

}  // namespace hbn::bench
