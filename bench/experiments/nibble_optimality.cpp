// Experiment E4 (Theorem 3.1): the nibble placement achieves the analytic
// per-edge minimum load on EVERY edge, across random instances — reported
// as the fraction of edges at the minimum (must be 100%).
#include <algorithm>
#include <memory>

#include "experiments.h"
#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"
#include "hbn/core/nibble.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

namespace hbn::bench {
namespace {

class NibbleOptimalityExperiment final : public engine::Experiment {
 public:
  explicit NibbleOptimalityExperiment(int trialsOverride)
      : trialsOverride_(trialsOverride) {}

  [[nodiscard]] std::string_view name() const override {
    return "nibble-optimality";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(4);
    const int kTrials =
        trialsOverride_ > 0 ? trialsOverride_ : ctx.trials(10);
    ctx.os() << "E4 / Theorem 3.1 — nibble achieves the per-edge minimum "
                "load on every edge\nseed="
             << seed << "\n\n";

    util::Table table({"topology", "workload", "edges checked",
                       "edges optimal", "max per-object load/kappa"});
    util::Rng master(seed);
    bool allOptimal = true;

    for (const auto family :
         {net::TopologyFamily::kary, net::TopologyFamily::caterpillar,
          net::TopologyFamily::random, net::TopologyFamily::cluster}) {
      for (const auto profile :
           {workload::Profile::uniform, workload::Profile::zipf,
            workload::Profile::adversarial}) {
        long checked = 0;
        long optimal = 0;
        double maxKappaShare = 0.0;
        for (int trial = 0; trial < kTrials; ++trial) {
          util::Rng rng = master.split();
          const net::Tree tree = net::makeFamilyMember(family, 48, rng);
          workload::GenParams params;
          params.numObjects = 12;
          params.requestsPerProcessor = 25;
          const workload::Workload load =
              workload::generate(profile, tree, params, rng);
          const net::RootedTree rooted(tree, tree.defaultRoot());
          util::Timer timer;
          const auto placement = core::nibblePlacement(tree, load);
          reporter.addTiming(timer.millis());
          const auto actual = core::computeLoad(rooted, placement);
          const auto minima = core::analyticLowerBound(rooted, load);
          for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
            ++checked;
            if (actual.edgeLoad(e) == minima.edgeMinima.edgeLoad(e)) {
              ++optimal;
            }
          }
          // Per-object: load never exceeds the write contention κ_x.
          for (workload::ObjectId x = 0; x < load.numObjects(); ++x) {
            if (load.objectWrites(x) == 0) continue;
            core::LoadMap one(tree.edgeCount());
            core::accumulateObjectLoad(
                rooted, placement.objects[static_cast<std::size_t>(x)], one);
            for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
              maxKappaShare = std::max(
                  maxKappaShare,
                  static_cast<double>(one.edgeLoad(e)) /
                      static_cast<double>(load.objectWrites(x)));
            }
          }
        }
        allOptimal &= (checked == optimal);
        // The per-object kappa_x bound is part of the theorem, so it
        // gates the verdict too, not just the table.
        allOptimal &= (maxKappaShare <= 1.0 + 1e-12);
        table.addRow({net::topologyFamilyName(family),
                      workload::profileName(profile), std::to_string(checked),
                      std::to_string(optimal),
                      util::formatDouble(maxKappaShare, 3)});
        reporter.beginRow();
        reporter.field("topology", net::topologyFamilyName(family));
        reporter.field("workload", workload::profileName(profile));
        reporter.field("edges_checked", checked);
        reporter.field("edges_optimal", optimal);
        reporter.field("max_per_object_load_over_kappa", maxKappaShare);
      }
    }
    table.print(ctx.os());
    ctx.os() << "\nall edges at the analytic minimum: "
             << (allOptimal ? "yes (Theorem 3.1 confirmed)" : "NO — BUG")
             << "\n(per-object load/kappa <= 1 confirms the kappa_x "
                "bound)\n";
    reporter.beginRow("check");
    reporter.field("claim",
                   "nibble load equals the per-edge analytic minimum on "
                   "every edge and per-object load stays <= kappa_x "
                   "(Theorem 3.1)");
    reporter.field("held", allOptimal);
    return allOptimal;
  }

 private:
  int trialsOverride_;
};

}  // namespace

namespace detail {
void registerNibbleOptimality(engine::ExperimentRegistry& registry) {
  registry.add(
      {"nibble-optimality",
       "nibble placement hits the analytic per-edge minimum load on every "
       "edge of every random instance",
       "E4 / Theorem 3.1", "trials=N"},
      [](engine::StrategyOptions& options) {
        const int trials = static_cast<int>(options.getInt("trials", 0));
        return std::make_unique<NibbleOptimalityExperiment>(trials);
      },
      {"e4"});
}
}  // namespace detail

}  // namespace hbn::bench
