// Experiment E2 (Theorem 2.1 / Figure 3): the PARTITION reduction.
// For YES instances the exact optimum congestion equals the threshold 4k;
// for NO instances it strictly exceeds it. Also reports how the
// (polynomial) extended-nibble strategy behaves on the gadget.
#include <memory>
#include <string>

#include "experiments.h"
#include "hbn/baseline/exact.h"
#include "hbn/core/extended_nibble.h"
#include "hbn/nphard/gadget.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"

namespace hbn::bench {
namespace {

class NpGadgetExperiment final : public engine::Experiment {
 public:
  explicit NpGadgetExperiment(int trialsOverride)
      : trialsOverride_(trialsOverride) {}

  [[nodiscard]] std::string_view name() const override { return "np-gadget"; }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(21);
    const int kTrials =
        trialsOverride_ > 0 ? trialsOverride_ : ctx.trials(6);
    ctx.os() << "E2 / Theorem 2.1 — PARTITION gadget: congestion <= 4k iff "
                "the instance is solvable\nseed="
             << seed << "\n\n";

    util::Table table({"instance", "n", "k", "threshold 4k", "exact OPT",
                       "OPT==4k", "partition?", "ext-nibble C",
                       "search nodes"});
    util::Rng rng(seed);
    bool allConsistent = true;

    auto runInstance = [&](const nphard::PartitionInstance& instance,
                           const std::string& label) {
      const nphard::Gadget gadget = nphard::encodePartition(instance);
      const bool solvable = nphard::solvePartition(instance).has_value();
      util::Timer timer;
      const baseline::ExactResult opt =
          baseline::solveExact(gadget.tree, gadget.load);
      reporter.addTiming(timer.millis());
      const auto strategy = core::extendedNibble(gadget.tree, gadget.load);
      const bool hitsThreshold =
          opt.congestion == static_cast<double>(gadget.threshold());
      allConsistent &= (hitsThreshold == solvable);
      table.addRow({label, std::to_string(instance.items.size()),
                    std::to_string(gadget.k),
                    std::to_string(gadget.threshold()),
                    util::formatDouble(opt.congestion, 1),
                    hitsThreshold ? "yes" : "no", solvable ? "yes" : "no",
                    util::formatDouble(strategy.report.congestionFinal, 1),
                    std::to_string(opt.nodesExplored)});
      reporter.beginRow();
      reporter.field("instance", label);
      reporter.field("items", static_cast<std::int64_t>(
                                  instance.items.size()));
      reporter.field("k", static_cast<std::int64_t>(gadget.k));
      reporter.field("threshold",
                     static_cast<std::int64_t>(gadget.threshold()));
      reporter.field("exact_opt", opt.congestion);
      reporter.field("hits_threshold", hitsThreshold);
      reporter.field("partition_solvable", solvable);
      reporter.field("extended_nibble_congestion",
                     strategy.report.congestionFinal);
      reporter.field("search_nodes",
                     static_cast<std::int64_t>(opt.nodesExplored));
    };

    for (int trial = 0; trial < kTrials; ++trial) {
      runInstance(nphard::makeYesInstance(5 + trial, 15 + 3 * trial, rng),
                  "yes-" + std::to_string(trial));
    }
    for (int trial = 0; trial < kTrials; ++trial) {
      runInstance(nphard::makeNoInstance(4 + trial % 3, 9, rng),
                  "no-" + std::to_string(trial));
    }
    table.print(ctx.os());
    ctx.os() << "\nreduction consistent on all instances: "
             << (allConsistent ? "yes" : "NO — BUG") << "\n";
    reporter.beginRow("check");
    reporter.field("claim",
                   "exact OPT == 4k iff PARTITION solvable (Theorem 2.1)");
    reporter.field("held", allConsistent);
    return allConsistent;
  }

 private:
  int trialsOverride_;
};

}  // namespace

namespace detail {
void registerNpGadget(engine::ExperimentRegistry& registry) {
  registry.add(
      {"np-gadget",
       "PARTITION reduction gadget: exact optimum hits the 4k threshold "
       "iff the instance is solvable",
       "E2 / Theorem 2.1", "trials=N"},
      [](engine::StrategyOptions& options) {
        const int trials = static_cast<int>(options.getInt("trials", 0));
        return std::make_unique<NpGadgetExperiment>(trials);
      },
      {"e2"});
}
}  // namespace detail

}  // namespace hbn::bench
