// Experiment E11 (related work, §1.3 — extension): empirical competitive
// ratio of the online replicate/invalidate tree strategy against the
// offline static lower bound, including adversarial ping-pong sequences.
#include <memory>
#include <string>
#include <vector>

#include "experiments.h"
#include "hbn/dynamic/harness.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

namespace hbn::bench {
namespace {

class DynamicExperiment final : public engine::Experiment {
 public:
  explicit DynamicExperiment(int trialsOverride)
      : trialsOverride_(trialsOverride) {}

  [[nodiscard]] std::string_view name() const override { return "dynamic"; }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(11);
    const int kTrials =
        trialsOverride_ > 0 ? trialsOverride_ : ctx.trials(10);
    ctx.os() << "E11 — online tree strategy: congestion ratio vs offline "
                "static lower bound (threshold D sweep)\nseed="
             << seed << "\n\n";

    util::Table table({"sequence", "threshold D", "mean ratio", "max ratio",
                       "mean replications", "mean invalidations"});
    util::Rng master(seed);

    for (const core::Count threshold : {1, 2, 4}) {
      for (const bool pingPong : {false, true}) {
        util::Accumulator ratio;
        util::Accumulator repl;
        util::Accumulator inval;
        for (int trial = 0; trial < kTrials; ++trial) {
          util::Rng rng = master.split();
          const net::Tree tree = net::makeRandomTree(24, 8, rng);
          const net::RootedTree rooted(tree, tree.defaultRoot());
          std::vector<dynamic::Request> requests;
          int numObjects = 6;
          if (pingPong) {
            requests =
                dynamic::makePingPongSequence(tree, numObjects, 20, 5, rng);
          } else {
            workload::GenParams params;
            params.numObjects = numObjects;
            params.requestsPerProcessor = 40;
            params.readFraction = 0.75;
            const workload::Workload load = workload::generate(
                static_cast<workload::Profile>(trial % 6), tree, params,
                rng);
            requests = dynamic::sequenceFromWorkload(load, rng);
          }
          dynamic::OnlineOptions options;
          options.replicationThreshold = threshold;
          util::Timer timer;
          const auto result =
              dynamic::runCompetitive(rooted, numObjects, requests, options);
          reporter.addTiming(timer.millis());
          if (result.offlineLowerBound > 0.0) {
            ratio.add(result.onlineCongestion / result.offlineLowerBound);
          }
          repl.add(static_cast<double>(result.replications));
          inval.add(static_cast<double>(result.invalidations));
        }
        if (ratio.empty()) continue;
        table.addRow({pingPong ? "ping-pong adversary" : "shuffled static",
                      std::to_string(threshold),
                      util::formatDouble(ratio.mean(), 2),
                      util::formatDouble(ratio.max(), 2),
                      util::formatDouble(repl.mean(), 1),
                      util::formatDouble(inval.mean(), 1)});
        reporter.beginRow();
        reporter.field("sequence",
                       pingPong ? "ping-pong" : "shuffled-static");
        reporter.field("threshold",
                       static_cast<std::int64_t>(threshold));
        reporter.field("ratio_mean", ratio.mean());
        reporter.field("ratio_max", ratio.max());
        reporter.field("replications_mean", repl.mean());
        reporter.field("invalidations_mean", inval.mean());
      }
    }
    table.print(ctx.os());
    ctx.os() << "\n(the FOCS'97 dynamic tree strategy is 3-competitive; "
                "this adaptation should land in the same small-constant "
                "regime on shuffled static traffic)\n";
    return true;
  }

 private:
  int trialsOverride_;
};

}  // namespace

namespace detail {
void registerDynamic(engine::ExperimentRegistry& registry) {
  registry.add(
      {"dynamic",
       "online replicate/invalidate tree strategy: empirical competitive "
       "ratio vs the offline static lower bound",
       "E11 / related work (section 1.3)", "trials=N"},
      [](engine::StrategyOptions& options) {
        const int trials = static_cast<int>(options.getInt("trials", 0));
        return std::make_unique<DynamicExperiment>(trials);
      },
      {"e11"});
}
}  // namespace detail

}  // namespace hbn::bench
