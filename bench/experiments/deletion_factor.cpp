// Experiment E5 (Observation 3.2): after the deletion step every copy
// serves between κ_x and 2κ_x requests and every edge load grows by at
// most κ_x — measured as the realised worst-case factors.
#include <algorithm>
#include <memory>

#include "experiments.h"
#include "hbn/core/deletion.h"
#include "hbn/core/load.h"
#include "hbn/core/nibble.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

namespace hbn::bench {
namespace {

class DeletionFactorExperiment final : public engine::Experiment {
 public:
  explicit DeletionFactorExperiment(int trialsOverride)
      : trialsOverride_(trialsOverride) {}

  [[nodiscard]] std::string_view name() const override {
    return "deletion-factor";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(5);
    const int kTrials =
        trialsOverride_ > 0 ? trialsOverride_ : ctx.trials(12);
    ctx.os() << "E5 / Observation 3.2 — deletion step: copy loads in "
                "[kappa, 2*kappa], per-edge growth <= kappa\nseed="
             << seed << "\n\n";

    util::Table table({"workload", "copies before", "copies after",
                       "min s/kappa", "max s/kappa",
                       "max edge growth/kappa", "max edge factor"});
    util::Rng master(seed);
    bool withinBounds = true;

    for (const auto profile :
         {workload::Profile::uniform, workload::Profile::zipf,
          workload::Profile::hotspot, workload::Profile::clustered,
          workload::Profile::producerConsumer,
          workload::Profile::adversarial}) {
      long before = 0;
      long after = 0;
      double minShare = 1e18;
      double maxShare = 0.0;
      double maxGrowth = 0.0;
      double maxFactor = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        util::Rng rng = master.split();
        const net::Tree tree = net::makeRandomTree(40, 12, rng);
        workload::GenParams params;
        params.numObjects = 10;
        params.requestsPerProcessor = 30;
        const workload::Workload load =
            workload::generate(profile, tree, params, rng);
        const net::RootedTree rooted(tree, tree.defaultRoot());
        util::Timer timer;
        for (workload::ObjectId x = 0; x < load.numObjects(); ++x) {
          const auto kappa = load.objectWrites(x);
          if (kappa == 0) continue;
          const auto nib = core::nibbleObject(tree, load, x);
          const auto mod = core::deleteRarelyUsedCopies(
              tree, nib.placement, kappa, nib.gravityCenter);
          before += static_cast<long>(nib.placement.copies.size());
          after += static_cast<long>(mod.copies.size());
          if (mod.copies.size() > 1) {
            for (const auto& copy : mod.copies) {
              const double share = static_cast<double>(copy.servedTotal()) /
                                   static_cast<double>(kappa);
              minShare = std::min(minShare, share);
              maxShare = std::max(maxShare, share);
              withinBounds &=
                  (share >= 1.0 - 1e-12 && share <= 2.0 + 1e-12);
            }
          }
          core::LoadMap loadBefore(tree.edgeCount());
          core::accumulateObjectLoad(rooted, nib.placement, loadBefore);
          core::LoadMap loadAfter(tree.edgeCount());
          core::accumulateObjectLoad(rooted, mod, loadAfter);
          for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
            const auto growth =
                loadAfter.edgeLoad(e) - loadBefore.edgeLoad(e);
            maxGrowth = std::max(maxGrowth, static_cast<double>(growth) /
                                                static_cast<double>(kappa));
            if (loadBefore.edgeLoad(e) > 0) {
              maxFactor = std::max(
                  maxFactor, static_cast<double>(loadAfter.edgeLoad(e)) /
                                 static_cast<double>(loadBefore.edgeLoad(e)));
            }
            withinBounds &= (growth <= kappa);
          }
        }
        reporter.addTiming(timer.millis());
      }
      table.addRow({workload::profileName(profile), std::to_string(before),
                    std::to_string(after),
                    util::formatDouble(minShare > 1e17 ? 0.0 : minShare, 3),
                    util::formatDouble(maxShare, 3),
                    util::formatDouble(maxGrowth, 3),
                    util::formatDouble(maxFactor, 3)});
      reporter.beginRow();
      reporter.field("workload", workload::profileName(profile));
      reporter.field("copies_before", before);
      reporter.field("copies_after", after);
      reporter.field("min_share", minShare > 1e17 ? 0.0 : minShare);
      reporter.field("max_share", maxShare);
      reporter.field("max_edge_growth_over_kappa", maxGrowth);
      reporter.field("max_edge_factor", maxFactor);
    }
    table.print(ctx.os());
    ctx.os() << "\nall Observation 3.2 bounds held: "
             << (withinBounds ? "yes" : "NO — BUG") << "\n";
    reporter.beginRow("check");
    reporter.field("claim",
                   "copy loads in [kappa, 2*kappa] and edge growth <= "
                   "kappa (Observation 3.2)");
    reporter.field("held", withinBounds);
    return withinBounds;
  }

 private:
  int trialsOverride_;
};

}  // namespace

namespace detail {
void registerDeletionFactor(engine::ExperimentRegistry& registry) {
  registry.add(
      {"deletion-factor",
       "deletion step invariants: surviving copy loads stay in [kappa, "
       "2*kappa], per-edge growth at most kappa",
       "E5 / Observation 3.2", "trials=N"},
      [](engine::StrategyOptions& options) {
        const int trials = static_cast<int>(options.getInt("trials", 0));
        return std::make_unique<DeletionFactorExperiment>(trials);
      },
      {"e5"});
}
}  // namespace detail

}  // namespace hbn::bench
