// Experiment E12 (§4, extension): the streaming request-serving engine
// at millions-of-requests scale. Serves generated online streams
// (skewed / bursty / diurnal) through the epoch-batched EpochServer and
// reports sustained throughput, epoch latency percentiles, and the
// realised-congestion ratio against the analytic offline lower bound of
// the aggregated frequencies — the dynamic-to-static handoff the
// paper's online strategy implies.
#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "experiments.h"
#include "hbn/net/generators.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/request_stream.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"

namespace hbn::bench {
namespace {

constexpr double kRatioBound = 8.0;

class ServingThroughputExperiment final : public engine::Experiment {
 public:
  ServingThroughputExperiment(std::int64_t requests, std::int64_t epoch,
                              std::int64_t objects)
      : requestsOverride_(requests),
        epochOverride_(epoch),
        objectsOverride_(objects) {}

  [[nodiscard]] std::string_view name() const override {
    return "serving-throughput";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(12);
    // The point of this experiment is scale: even the smoke suite pushes
    // more than a million requests end-to-end through the engine.
    const std::uint64_t perProfile =
        requestsOverride_ > 0
            ? static_cast<std::uint64_t>(requestsOverride_)
            : (ctx.smoke ? 400'000ULL : 2'000'000ULL);
    const std::size_t epochSize =
        epochOverride_ > 0 ? static_cast<std::size_t>(epochOverride_)
                           : (1u << 16);
    const int objects =
        objectsOverride_ > 0 ? static_cast<int>(objectsOverride_) : 1024;

    const net::Tree tree = net::makeClusterNetwork(4, 8);
    const net::RootedTree rooted(tree, tree.defaultRoot());
    ctx.os() << "E12 — streaming request-serving engine: epoch-batched "
                "online traffic vs the offline lower bound\nseed="
             << seed << ", " << perProfile << " requests/profile, epoch="
             << epochSize << ", objects=" << objects
             << ", threads=" << ctx.threads << "\n\n";

    util::Table table({"stream", "requests", "epochs", "Mreq/s",
                       "epoch p50 ms", "epoch p99 ms", "ratio",
                       "re-placements"});
    std::uint64_t totalServed = 0;
    double worstRatio = 0.0;
    int profileIndex = 0;
    for (const char* profile : {"skewed", "bursty", "diurnal"}) {
      workload::StreamParams params;
      params.numObjects = objects;
      const auto stream = serve::makeGeneratedStream(
          profile, tree, params, seed + static_cast<std::uint64_t>(
                                            ++profileIndex),
          perProfile);
      serve::ServeOptions options;
      options.epochSize = epochSize;
      options.threads = ctx.threads;
      serve::EpochServer server(rooted, objects, options);
      util::Timer timer;
      const serve::ServeReport report = server.serve(*stream);
      reporter.addTiming(timer.millis());
      totalServed += report.totalRequests;
      worstRatio = std::max(worstRatio, report.ratio);

      table.addRow({profile, std::to_string(report.totalRequests),
                    std::to_string(report.epochs),
                    util::formatDouble(report.requestsPerSec / 1e6, 2),
                    util::formatDouble(report.epochMsP50, 2),
                    util::formatDouble(report.epochMsP99, 2),
                    util::formatDouble(report.ratio, 2),
                    std::to_string(report.replacements)});
      reporter.beginRow();
      reporter.field("stream", profile);
      reporter.field("requests",
                     static_cast<std::int64_t>(report.totalRequests));
      reporter.field("epochs", static_cast<std::int64_t>(report.epochs));
      reporter.field("epoch_size", static_cast<std::int64_t>(epochSize));
      reporter.field("objects", objects);
      reporter.field("threads", ctx.threads);
      reporter.field("wall_ms", report.wallMs);
      reporter.field("requests_per_sec", report.requestsPerSec);
      reporter.field("epoch_ms_p50", report.epochMsP50);
      reporter.field("epoch_ms_p99", report.epochMsP99);
      reporter.field("congestion", report.congestion);
      reporter.field("lower_bound", report.lowerBound);
      reporter.field("ratio", report.ratio);
      reporter.field("replacements",
                     static_cast<std::int64_t>(report.replacements));
      reporter.field("replications",
                     static_cast<std::int64_t>(report.replications));
      reporter.field("invalidations",
                     static_cast<std::int64_t>(report.invalidations));
    }
    table.print(ctx.os());

    // The dynamic-to-static handoff, in the regime where the online
    // strategy adapts slowly (read-mostly traffic, high replication
    // threshold): drift-triggered nibble re-placement must fire and must
    // not serve the same stream at higher congestion than leaving the
    // stale copy configuration in place.
    // Floor the demonstration size: below ~10^5 requests a single
    // migration pass is not amortised and the comparison is noise.
    const std::uint64_t handoffRequests =
        std::max<std::uint64_t>(perProfile / 2, 120'000);
    const auto handoffRun = [&](double drift) {
      workload::StreamParams params;
      params.numObjects = objects;
      params.readFraction = 0.995;
      const auto stream = serve::makeGeneratedStream(
          "skewed", tree, params, seed + 7, handoffRequests);
      serve::ServeOptions options;
      options.epochSize = epochSize;
      options.threads = ctx.threads;
      options.policy = "tree-counters:threshold=64";
      options.replaceDrift = drift;
      serve::EpochServer server(rooted, objects, options);
      util::Timer timer;
      const serve::ServeReport report = server.serve(*stream);
      reporter.addTiming(timer.millis());
      totalServed += report.totalRequests;
      return report;
    };
    const serve::ServeReport driftOff = handoffRun(0.0);
    const serve::ServeReport driftOn = handoffRun(2.0);
    for (const auto& [variant, report] :
         {std::pair<const char*, const serve::ServeReport&>{"drift-off",
                                                            driftOff},
          {"drift-on", driftOn}}) {
      reporter.beginRow();
      reporter.field("stream", "skewed-slow-adapt");
      reporter.field("variant", variant);
      reporter.field("requests",
                     static_cast<std::int64_t>(report.totalRequests));
      reporter.field("congestion", report.congestion);
      reporter.field("lower_bound", report.lowerBound);
      reporter.field("ratio", report.ratio);
      reporter.field("replacements",
                     static_cast<std::int64_t>(report.replacements));
    }
    const bool handoffHelps = driftOn.replacements > 0 &&
                              driftOn.congestion <= driftOff.congestion;
    ctx.os() << "\nslow-adaptation handoff: congestion "
             << util::formatDouble(driftOff.congestion, 1)
             << " without re-placement vs "
             << util::formatDouble(driftOn.congestion, 1) << " with ("
             << driftOn.replacements << " re-placements)\n";

    // Thread-count independence: the sharded epoch path must produce the
    // exact serving state a sequential run produces.
    const auto digest = [&](int threads) {
      workload::StreamParams params;
      params.numObjects = objects;
      const auto stream = serve::makeGeneratedStream(
          "skewed", tree, params, seed + 99, /*total=*/100'000);
      serve::ServeOptions options;
      options.epochSize = 1 << 14;
      options.threads = threads;
      serve::EpochServer server(rooted, objects, options);
      const serve::ServeReport report = server.serve(*stream);
      std::ostringstream oss;
      oss.precision(17);
      oss << report.congestion << '|' << report.lowerBound << '|'
          << report.replications << '|' << report.invalidations << '|'
          << report.replacements;
      for (const core::Count load : server.loads().edgeLoads()) {
        oss << ',' << load;
      }
      return oss.str();
    };
    const bool deterministic = digest(1) == digest(4);

    const bool servedAll =
        totalServed == 3 * perProfile + 2 * handoffRequests &&
        (requestsOverride_ > 0 || totalServed >= 1'000'000ULL);
    const bool ratioHeld = worstRatio <= kRatioBound;
    ctx.os() << "\nserved " << totalServed
             << " requests total; worst congestion ratio "
             << util::formatDouble(worstRatio, 2) << " (bound "
             << util::formatDouble(kRatioBound, 1) << "); 1-vs-4-thread "
             << (deterministic ? "states identical" : "STATES DIVERGED")
             << "\n";

    reporter.beginRow("check");
    reporter.field("claim", "stream served end-to-end (>= 1M at suite scale)");
    reporter.field("value", static_cast<std::int64_t>(totalServed));
    reporter.field("held", servedAll);
    reporter.beginRow("check");
    reporter.field("claim",
                   "realised congestion within bound of the offline "
                   "lower bound");
    reporter.field("value", worstRatio);
    reporter.field("held", ratioHeld);
    reporter.beginRow("check");
    reporter.field("claim",
                   "adaptive re-placement fires under slow adaptation "
                   "and does not increase congestion");
    reporter.field("value", driftOn.congestion);
    reporter.field("held", handoffHelps);
    reporter.beginRow("check");
    reporter.field("claim", "epoch sharding is thread-count independent");
    reporter.field("held", deterministic);
    return servedAll && ratioHeld && deterministic && handoffHelps;
  }

 private:
  std::int64_t requestsOverride_;
  std::int64_t epochOverride_;
  std::int64_t objectsOverride_;
};

}  // namespace

namespace detail {
void registerServingThroughput(engine::ExperimentRegistry& registry) {
  registry.add(
      {"serving-throughput",
       "streaming request-serving engine: epoch-batched online traffic at "
       "millions-of-requests scale vs the offline lower bound",
       "E12 / section 4 (dynamic-to-static handoff)",
       "requests=N,epoch=N,objects=N"},
      [](engine::StrategyOptions& options) {
        const std::int64_t requests = options.getInt("requests", 0);
        const std::int64_t epoch = options.getInt("epoch", 0);
        const std::int64_t objects = options.getInt("objects", 0);
        return std::make_unique<ServingThroughputExperiment>(requests, epoch,
                                                             objects);
      },
      {"e12"});
}
}  // namespace detail

}  // namespace hbn::bench
