// Experiment E12 (§4, extension): the streaming request-serving engine
// at millions-of-requests scale. Serves generated online streams
// (skewed / bursty / diurnal) through the pipelined EpochServer and
// reports sustained throughput, epoch AND per-request latency
// percentiles, and the realised-congestion ratio against the analytic
// offline lower bound of the aggregated frequencies — the
// dynamic-to-static handoff the paper's online strategy implies.
//
// The headline perf claim is the pipelined-vs-barrier comparison on a
// calibrated drift-handoff stream: RCU-published lazy re-placement must
// keep the serving state bit-identical to the stop-the-world barrier
// engine while cutting tail latency — epoch p99 by >= 1.5x (measured
// ~3x) and request p99 by >= 1.25x (measured ~1.5x; the pipelined
// baseline is structurally ~2 epochs) — at near-parity throughput.
#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "experiments.h"
#include "hbn/net/generators.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/request_stream.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"

namespace hbn::bench {
namespace {

constexpr double kRatioBound = 8.0;

// The drift-handoff latency scenario is a calibrated demonstration, not
// a scale test: the stream length, epoch size, object count, drift
// threshold, and seed are pinned so that re-placement fires a handful
// of times across ~25 epochs — rare enough that the barrier engine's
// handoff epochs are genuine tail events, frequent enough that the p99
// rank sees them. Serving runs on one worker thread so the tail is the
// handoff lump, not scheduler jitter.
constexpr std::uint64_t kLatencyRequests = 200'000;
constexpr std::size_t kLatencyEpoch = 4096;
constexpr int kLatencyObjects = 32768;
constexpr std::uint64_t kLatencySeed = 19;
constexpr double kLatencyDrift = 20.0;
// Latency-win floors. A pipelined request waits ~2 epochs (its arrival
// is stamped one epoch early by the ingest thread), so its p99 win is
// roughly spike / (2 * epoch duration) while the epoch-p99 win is
// spike / epoch duration — both are ratios of wall-clock timings. Full
// mode asserts the product claim (>= 1.5x on both); smoke mode runs
// the same comparison but only asserts direction (pipelining may not
// LOSE), because at CI scale on shared runners the spike-to-epoch
// ratio carries too much scheduler noise to gate a 1.5x magnitude on.
constexpr double kEpochWinFloorFull = 1.5;
// The request-p99 floor is lower than the epoch-p99 floor because the
// pipelined baseline is structurally ~2 epochs: with spike/epoch ~= 3
// the request win sits near 1.5 exactly, and on one hardware thread it
// cannot be pushed robustly past that bound (typical measurements are
// 1.5-1.9; the floor leaves noise margin below them).
constexpr double kRequestWinFloorFull = 1.25;
constexpr double kLatencyWinFloorSmoke = 1.05;
// Throughput parity floors for pipelined vs barrier. On a single
// hardware thread the ingest worker is pure scheduling overhead (no
// core to overlap onto), which costs a few percent of wall clock; with
// any spare core the pipelined engine is at or above parity. 15% (20%
// at smoke scale) accommodates the worst (serial) case without masking
// a real regression.
constexpr double kThroughputParityFloorFull = 0.85;
constexpr double kThroughputParityFloorSmoke = 0.80;

class ServingThroughputExperiment final : public engine::Experiment {
 public:
  ServingThroughputExperiment(std::int64_t requests, std::int64_t epoch,
                              std::int64_t objects)
      : requestsOverride_(requests),
        epochOverride_(epoch),
        objectsOverride_(objects) {}

  [[nodiscard]] std::string_view name() const override {
    return "serving-throughput";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(12);
    // The point of this experiment is scale: even the smoke suite pushes
    // more than a million requests end-to-end through the engine.
    const std::uint64_t perProfile =
        requestsOverride_ > 0
            ? static_cast<std::uint64_t>(requestsOverride_)
            : (ctx.smoke ? 400'000ULL : 2'000'000ULL);
    const std::size_t epochSize =
        epochOverride_ > 0 ? static_cast<std::size_t>(epochOverride_)
                           : (1u << 16);
    const int objects =
        objectsOverride_ > 0 ? static_cast<int>(objectsOverride_) : 1024;

    const net::Tree tree = net::makeClusterNetwork(4, 8);
    const net::RootedTree rooted(tree, tree.defaultRoot());
    ctx.os() << "E12 — streaming request-serving engine: pipelined "
                "epoch-batched online traffic vs the offline lower "
                "bound\nseed="
             << seed << ", " << perProfile << " requests/profile, epoch="
             << epochSize << ", objects=" << objects
             << ", threads=" << ctx.threads << "\n\n";

    // Every row this experiment emits — profile sweeps and handoff
    // comparisons alike — carries the same latency schema, so the CI
    // trajectory consumers can require the fields uniformly.
    const auto emitRow = [&reporter](
                             const char* stream, const char* variant,
                             const serve::ServeReport& report,
                             std::size_t rowEpochSize, int rowObjects,
                             int rowThreads) {
      reporter.beginRow();
      reporter.field("stream", stream);
      if (variant != nullptr) reporter.field("variant", variant);
      reporter.field("pipeline", report.pipeline);
      reporter.field("requests",
                     static_cast<std::int64_t>(report.totalRequests));
      reporter.field("epochs", static_cast<std::int64_t>(report.epochs));
      reporter.field("epoch_size", static_cast<std::int64_t>(rowEpochSize));
      reporter.field("objects", rowObjects);
      reporter.field("threads", rowThreads);
      reporter.field("wall_ms", report.wallMs);
      reporter.field("requests_per_sec", report.requestsPerSec);
      reporter.field("epoch_ms_p50", report.epochMsP50);
      reporter.field("epoch_ms_p99", report.epochMsP99);
      reporter.field("epoch_ms_p999", report.epochMsP999);
      reporter.field("latency_ms_p50", report.latencyMsP50);
      reporter.field("latency_ms_p99", report.latencyMsP99);
      reporter.field("latency_ms_p999", report.latencyMsP999);
      reporter.field("latency_samples",
                     static_cast<std::int64_t>(report.latencySamples));
      reporter.field("congestion", report.congestion);
      reporter.field("lower_bound", report.lowerBound);
      reporter.field("ratio", report.ratio);
      reporter.field("replacements",
                     static_cast<std::int64_t>(report.replacements));
      reporter.field("replications",
                     static_cast<std::int64_t>(report.replications));
      reporter.field("invalidations",
                     static_cast<std::int64_t>(report.invalidations));
    };

    util::Table table({"stream", "requests", "epochs", "Mreq/s",
                       "epoch p99 ms", "req p99 ms", "ratio",
                       "re-placements"});
    std::uint64_t totalServed = 0;
    double worstRatio = 0.0;
    int profileIndex = 0;
    for (const char* profile : {"skewed", "bursty", "diurnal"}) {
      workload::StreamParams params;
      params.numObjects = objects;
      const auto stream = serve::makeGeneratedStream(
          profile, tree, params, seed + static_cast<std::uint64_t>(
                                            ++profileIndex),
          perProfile);
      serve::ServeOptions options;
      options.epochSize = epochSize;
      options.threads = ctx.threads;
      serve::EpochServer server(rooted, objects, options);
      util::Timer timer;
      const serve::ServeReport report = server.serve(*stream);
      reporter.addTiming(timer.millis());
      totalServed += report.totalRequests;
      worstRatio = std::max(worstRatio, report.ratio);

      table.addRow({profile, std::to_string(report.totalRequests),
                    std::to_string(report.epochs),
                    util::formatDouble(report.requestsPerSec / 1e6, 2),
                    util::formatDouble(report.epochMsP99, 2),
                    util::formatDouble(report.latencyMsP99, 2),
                    util::formatDouble(report.ratio, 2),
                    std::to_string(report.replacements)});
      emitRow(profile, nullptr, report, epochSize, objects, ctx.threads);
    }
    table.print(ctx.os());

    // Pipelined vs barrier on the drift-handoff stream: a diurnal hot
    // set drifts until the drift trigger fires a full nibble
    // re-placement. The barrier engine pays the whole handoff inside
    // the epoch that fired it; the pipelined engine publishes the pass
    // RCU-style and applies it lazily per touched object, so the lump
    // never lands in one epoch. Counters and loads must nevertheless be
    // bit-identical — lazy application is a scheduling change, not a
    // semantic one.
    const auto latencyRun = [&](bool pipeline, std::string* digest) {
      workload::StreamParams params;
      params.numObjects = kLatencyObjects;
      const auto stream = serve::makeGeneratedStream(
          "diurnal", tree, params, kLatencySeed, kLatencyRequests);
      serve::ServeOptions options;
      options.epochSize = kLatencyEpoch;
      options.threads = 1;
      options.policy = "tree-counters";
      options.replaceDrift = kLatencyDrift;
      options.pipeline = pipeline;
      serve::EpochServer server(rooted, kLatencyObjects, options);
      util::Timer timer;
      const serve::ServeReport report = server.serve(*stream);
      reporter.addTiming(timer.millis());
      totalServed += report.totalRequests;
      std::ostringstream oss;
      oss.precision(17);
      oss << report.congestion << '|' << report.lowerBound << '|'
          << report.replications << '|' << report.invalidations << '|'
          << report.replacements;
      for (const core::Count load : server.loads().edgeLoads()) {
        oss << ',' << load;
      }
      *digest = oss.str();
      return report;
    };
    std::string barrierDigest;
    std::string pipelinedDigest;
    const serve::ServeReport barrier = latencyRun(false, &barrierDigest);
    const serve::ServeReport pipelined = latencyRun(true, &pipelinedDigest);
    emitRow("diurnal-handoff", "barrier", barrier, kLatencyEpoch,
            kLatencyObjects, 1);
    emitRow("diurnal-handoff", "pipelined", pipelined, kLatencyEpoch,
            kLatencyObjects, 1);

    const bool bitIdentical = barrierDigest == pipelinedDigest;
    const double epochP99Win =
        pipelined.epochMsP99 > 0.0 ? barrier.epochMsP99 / pipelined.epochMsP99
                                   : 0.0;
    const double requestP99Win =
        pipelined.latencyMsP99 > 0.0
            ? barrier.latencyMsP99 / pipelined.latencyMsP99
            : 0.0;
    const double throughputParity =
        barrier.requestsPerSec > 0.0
            ? pipelined.requestsPerSec / barrier.requestsPerSec
            : 0.0;
    ctx.os() << "\ndrift-handoff stream (" << barrier.replacements
             << " re-placements over " << barrier.epochs
             << " epochs):\n  epoch p99   "
             << util::formatDouble(barrier.epochMsP99, 2) << " ms barrier vs "
             << util::formatDouble(pipelined.epochMsP99, 2)
             << " ms pipelined (" << util::formatDouble(epochP99Win, 2)
             << "x)\n  request p99 "
             << util::formatDouble(barrier.latencyMsP99, 2)
             << " ms barrier vs "
             << util::formatDouble(pipelined.latencyMsP99, 2)
             << " ms pipelined (" << util::formatDouble(requestP99Win, 2)
             << "x)\n  throughput  "
             << util::formatDouble(barrier.requestsPerSec / 1e6, 2)
             << " Mreq/s barrier vs "
             << util::formatDouble(pipelined.requestsPerSec / 1e6, 2)
             << " Mreq/s pipelined\n  serving state "
             << (bitIdentical ? "bit-identical" : "DIVERGED") << "\n";

    // The dynamic-to-static handoff, in the regime where the online
    // strategy adapts slowly (read-mostly traffic, high replication
    // threshold): drift-triggered nibble re-placement must fire and must
    // not serve the same stream at higher congestion than leaving the
    // stale copy configuration in place.
    // Floor the demonstration size: below ~10^5 requests a single
    // migration pass is not amortised and the comparison is noise.
    const std::uint64_t handoffRequests =
        std::max<std::uint64_t>(perProfile / 2, 120'000);
    const auto handoffRun = [&](double drift) {
      workload::StreamParams params;
      params.numObjects = objects;
      params.readFraction = 0.995;
      const auto stream = serve::makeGeneratedStream(
          "skewed", tree, params, seed + 7, handoffRequests);
      serve::ServeOptions options;
      options.epochSize = epochSize;
      options.threads = ctx.threads;
      options.policy = "tree-counters:threshold=64";
      options.replaceDrift = drift;
      serve::EpochServer server(rooted, objects, options);
      util::Timer timer;
      const serve::ServeReport report = server.serve(*stream);
      reporter.addTiming(timer.millis());
      totalServed += report.totalRequests;
      return report;
    };
    const serve::ServeReport driftOff = handoffRun(0.0);
    const serve::ServeReport driftOn = handoffRun(2.0);
    emitRow("skewed-slow-adapt", "drift-off", driftOff, epochSize, objects,
            ctx.threads);
    emitRow("skewed-slow-adapt", "drift-on", driftOn, epochSize, objects,
            ctx.threads);
    const bool handoffHelps = driftOn.replacements > 0 &&
                              driftOn.congestion <= driftOff.congestion;
    ctx.os() << "\nslow-adaptation handoff: congestion "
             << util::formatDouble(driftOff.congestion, 1)
             << " without re-placement vs "
             << util::formatDouble(driftOn.congestion, 1) << " with ("
             << driftOn.replacements << " re-placements)\n";

    // Thread-count independence: the sharded epoch path must produce the
    // exact serving state a sequential run produces — with the pipeline
    // on, as it now is by default.
    const auto digest = [&](int threads) {
      workload::StreamParams params;
      params.numObjects = objects;
      const auto stream = serve::makeGeneratedStream(
          "skewed", tree, params, seed + 99, /*total=*/100'000);
      serve::ServeOptions options;
      options.epochSize = 1 << 14;
      options.threads = threads;
      serve::EpochServer server(rooted, objects, options);
      const serve::ServeReport report = server.serve(*stream);
      std::ostringstream oss;
      oss.precision(17);
      oss << report.congestion << '|' << report.lowerBound << '|'
          << report.replications << '|' << report.invalidations << '|'
          << report.replacements;
      for (const core::Count load : server.loads().edgeLoads()) {
        oss << ',' << load;
      }
      return oss.str();
    };
    const bool deterministic = digest(1) == digest(4);

    const bool servedAll =
        totalServed == 3 * perProfile + 2 * handoffRequests +
                           2 * kLatencyRequests &&
        (requestsOverride_ > 0 || totalServed >= 1'000'000ULL);
    const bool ratioHeld = worstRatio <= kRatioBound;
    ctx.os() << "\nserved " << totalServed
             << " requests total; worst congestion ratio "
             << util::formatDouble(worstRatio, 2) << " (bound "
             << util::formatDouble(kRatioBound, 1) << "); 1-vs-4-thread "
             << (deterministic ? "states identical" : "STATES DIVERGED")
             << "\n";

    reporter.beginRow("check");
    reporter.field("claim", "stream served end-to-end (>= 1M at suite scale)");
    reporter.field("value", static_cast<std::int64_t>(totalServed));
    reporter.field("held", servedAll);
    reporter.beginRow("check");
    reporter.field("claim",
                   "realised congestion within bound of the offline "
                   "lower bound");
    reporter.field("value", worstRatio);
    reporter.field("held", ratioHeld);
    reporter.beginRow("check");
    reporter.field("claim",
                   "adaptive re-placement fires under slow adaptation "
                   "and does not increase congestion");
    reporter.field("value", driftOn.congestion);
    reporter.field("held", handoffHelps);
    reporter.beginRow("check");
    reporter.field("claim", "epoch sharding is thread-count independent");
    reporter.field("held", deterministic);
    reporter.beginRow("check");
    reporter.field("claim",
                   "pipelined serving state is bit-identical to the "
                   "barrier engine on the drift-handoff stream");
    reporter.field("held", bitIdentical);
    const double epochWinFloor =
        ctx.smoke ? kLatencyWinFloorSmoke : kEpochWinFloorFull;
    const double requestWinFloor =
        ctx.smoke ? kLatencyWinFloorSmoke : kRequestWinFloorFull;
    const double parityFloor =
        ctx.smoke ? kThroughputParityFloorSmoke : kThroughputParityFloorFull;
    reporter.beginRow("check");
    reporter.field("claim",
                   ctx.smoke
                       ? "pipelining does not worsen epoch p99 latency "
                         "on the drift-handoff stream (smoke floor)"
                       : "pipelining improves epoch p99 latency >= 1.5x "
                         "on the drift-handoff stream");
    reporter.field("value", epochP99Win);
    reporter.field("held", epochP99Win >= epochWinFloor);
    reporter.beginRow("check");
    reporter.field("claim",
                   ctx.smoke
                       ? "pipelining does not worsen request p99 latency "
                         "on the drift-handoff stream (smoke floor)"
                       : "pipelining improves request p99 latency >= 1.25x "
                         "on the drift-handoff stream");
    reporter.field("value", requestP99Win);
    reporter.field("held", requestP99Win >= requestWinFloor);
    reporter.beginRow("check");
    reporter.field("claim",
                   ctx.smoke
                       ? "pipelined throughput within 20% of the barrier "
                         "engine (smoke floor)"
                       : "pipelined throughput within 15% of the barrier "
                         "engine");
    reporter.field("value", throughputParity);
    reporter.field("held", throughputParity >= parityFloor);
    return servedAll && ratioHeld && deterministic && handoffHelps &&
           bitIdentical && epochP99Win >= epochWinFloor &&
           requestP99Win >= requestWinFloor && throughputParity >= parityFloor;
  }

 private:
  std::int64_t requestsOverride_;
  std::int64_t epochOverride_;
  std::int64_t objectsOverride_;
};

}  // namespace

namespace detail {
void registerServingThroughput(engine::ExperimentRegistry& registry) {
  registry.add(
      {"serving-throughput",
       "pipelined streaming request-serving engine: epoch-batched online "
       "traffic at millions-of-requests scale, with tail-latency "
       "comparison against the barrier engine",
       "E12 / section 4 (dynamic-to-static handoff)",
       "requests=N,epoch=N,objects=N"},
      [](engine::StrategyOptions& options) {
        const std::int64_t requests = options.getInt("requests", 0);
        const std::int64_t epoch = options.getInt("epoch", 0);
        const std::int64_t objects = options.getInt("objects", 0);
        return std::make_unique<ServingThroughputExperiment>(requests, epoch,
                                                             objects);
      },
      {"e12"});
}
}  // namespace detail

}  // namespace hbn::bench
