// The repository's experiment catalogue: one registration function per
// experiment (one .cpp per experiment in this directory), plus the
// populated-registry accessor every frontend (hbn_bench, hbn_place
// --bench, tests) goes through.
//
// docs/experiments.md maps each name registered here to the paper
// section/claim it reproduces and the JSON fields it emits.
#pragma once

#include "hbn/engine/experiment.h"

namespace hbn::bench {

/// engine::ExperimentRegistry::global(), populated with every experiment
/// below on first use (idempotent).
[[nodiscard]] engine::ExperimentRegistry& experiments();

namespace detail {
void registerApproxRatio(engine::ExperimentRegistry&);       // E1
void registerNpGadget(engine::ExperimentRegistry&);          // E2
void registerRuntime(engine::ExperimentRegistry&);           // E3
void registerNibbleOptimality(engine::ExperimentRegistry&);  // E4
void registerDeletionFactor(engine::ExperimentRegistry&);    // E5
void registerRingVsBus(engine::ExperimentRegistry&);         // E6
void registerThroughput(engine::ExperimentRegistry&);        // E7
void registerDistributedRounds(engine::ExperimentRegistry&); // E8
void registerStrategyComparison(engine::ExperimentRegistry&);// E9
void registerAblation(engine::ExperimentRegistry&);          // E10
void registerDynamic(engine::ExperimentRegistry&);           // E11
void registerServingThroughput(engine::ExperimentRegistry&); // E12
void registerLoadEngine(engine::ExperimentRegistry&);        // E13
void registerPolicyComparison(engine::ExperimentRegistry&);  // E14
void registerFaultRecovery(engine::ExperimentRegistry&);     // E15
void registerShardedServing(engine::ExperimentRegistry&);    // E16
}  // namespace detail

}  // namespace hbn::bench
