// Experiment E3 (Theorem 4.3 runtime): wall-clock running time of the
// registry strategies while scaling |X|, |V|, height(T), degree(T), and
// the worker-thread count. The theorem claims sequential time
// O(|X| · |P ∪ B| · height(T) · log(degree(T))); the thread-scaling rows
// time the object-sharded executor (its 1-vs-N bit-identity is pinned
// down by tests/engine_determinism_test.cpp, not here).
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "experiments.h"
#include "hbn/core/load.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

namespace hbn::bench {
namespace {

workload::Workload makeLoad(const net::Tree& tree, int numObjects,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  workload::GenParams params;
  params.numObjects = numObjects;
  params.requestsPerProcessor = 16;
  params.readFraction = 0.5;
  return workload::generateUniform(tree, params, rng);
}

struct Case {
  std::string label;  // scaling axis description
  std::string topology;
  net::Tree tree;
  int objects;
  int threads;
};

class RuntimeExperiment final : public engine::Experiment {
 public:
  explicit RuntimeExperiment(int reps) : reps_(reps) {}

  [[nodiscard]] std::string_view name() const override { return "runtime"; }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    const std::uint64_t seed = ctx.resolveSeed(3);
    const std::vector<std::string> specs =
        ctx.strategies.empty()
            ? std::vector<std::string>{"nibble", "extended-nibble"}
            : ctx.strategies;
    // Smoke mode trims the top of every scaling axis; the axes and code
    // paths stay identical.
    const int maxObjects = ctx.smoke ? 32 : 128;
    const int maxArity = ctx.smoke ? 12 : 20;
    const int maxBuses = ctx.smoke ? 16 : 64;
    const int maxLeaves = ctx.smoke ? 64 : 256;
    const int maxThreads = ctx.smoke ? 4 : 8;
    const int threadCaseObjects = ctx.smoke ? 64 : 256;
    const int reps = reps_ > 0 ? reps_ : (ctx.smoke ? 2 : 3);

    std::vector<Case> cases;
    // --- Scale |X| at fixed topology.
    for (int objects = 8; objects <= maxObjects; objects *= 2) {
      cases.push_back({"objects", "kary(4,3)", net::makeKaryTree(4, 3),
                       objects, ctx.threads});
    }
    // --- Scale |V| at fixed height (wider k-ary trees).
    for (int arity = 4; arity <= maxArity; arity += 4) {
      cases.push_back({"nodes", "kary(" + std::to_string(arity) + ",2)",
                       net::makeKaryTree(arity, 2), 16, ctx.threads});
    }
    // --- Scale height at roughly fixed node count (caterpillars).
    for (int buses = 4; buses <= maxBuses; buses *= 2) {
      const int procsPerBus = std::max(1, 64 / buses);
      cases.push_back({"height",
                       "caterpillar(" + std::to_string(buses) + "," +
                           std::to_string(procsPerBus) + ")",
                       net::makeCaterpillar(buses, procsPerBus), 16,
                       ctx.threads});
    }
    // --- Scale degree at fixed size (stars).
    for (int leaves = 8; leaves <= maxLeaves; leaves *= 2) {
      cases.push_back({"degree", "star(" + std::to_string(leaves) + ")",
                       net::makeStar(leaves), 16, ctx.threads});
    }
    // --- Thread scaling on one large instance (result bit-identical).
    for (int threads = 1; threads <= maxThreads; threads *= 2) {
      cases.push_back({"threads", "kary(4,4)", net::makeKaryTree(4, 4),
                       threadCaseObjects, threads});
    }

    util::Table table({"axis", "strategy", "topology", "n", "objects",
                       "threads", "wall ms", "congestion"});
    for (const std::string& spec : specs) {
      const auto strategy = engine::StrategyRegistry::global().create(spec);
      for (const Case& c : cases) {
        const workload::Workload load = makeLoad(c.tree, c.objects, seed);
        engine::Context strategyCtx;
        strategyCtx.seed = seed;
        strategyCtx.threads = c.threads;
        // Best of `reps` runs: the usual antidote to scheduler noise.
        double wallMs = 0.0;
        core::Placement placement;
        for (int rep = 0; rep < reps; ++rep) {
          util::Timer timer;
          placement = strategy->place(c.tree, load, strategyCtx);
          const double ms = timer.millis();
          wallMs = rep == 0 ? ms : std::min(wallMs, ms);
        }
        reporter.addTiming(wallMs);
        const net::RootedTree rooted(c.tree, c.tree.defaultRoot());
        const double congestion = core::evaluateCongestion(rooted, placement);

        table.addRow({c.label, spec, c.topology,
                      std::to_string(c.tree.nodeCount()),
                      std::to_string(c.objects), std::to_string(c.threads),
                      util::formatDouble(wallMs, 3),
                      util::formatDouble(congestion, 2)});
        reporter.beginRow();
        reporter.field("strategy", spec);
        reporter.field("axis", c.label);
        reporter.field("topology", c.topology);
        reporter.field("n", c.tree.nodeCount());
        reporter.field("objects", c.objects);
        reporter.field("threads", c.threads);
        reporter.field("wall_ms", wallMs);
        reporter.field("congestion", congestion);
      }
    }

    ctx.os() << "E3 — runtime scaling (seed=" << seed << ")\n\n";
    table.print(ctx.os());
    return true;
  }

 private:
  int reps_;
};

}  // namespace

namespace detail {
void registerRuntime(engine::ExperimentRegistry& registry) {
  registry.add(
      {"runtime",
       "wall-clock scaling of the registry strategies over objects, "
       "nodes, height, degree, and worker threads",
       "E3 / Theorem 4.3 (runtime)", "reps=N"},
      [](engine::StrategyOptions& options) {
        const int reps = static_cast<int>(options.getInt("reps", 0));
        return std::make_unique<RuntimeExperiment>(reps);
      },
      {"e3"});
}
}  // namespace detail

}  // namespace hbn::bench
