// Experiment E15 (robustness extension): fault-tolerant serving.
//
// Measures what fault tolerance costs and proves what it guarantees:
//   * checkpoint overhead — wall-clock of a checkpointed run vs an
//     uncheckpointed baseline (min-of-K timing on both sides), as a
//     percentage; the acceptance bound is <= 5%,
//   * recovery — kill the server mid-run with an injected shard throw,
//     restore the latest epoch-boundary snapshot into a fresh server,
//     re-serve the remaining stream; reports the recovery wall-clock
//     and checks the final load digest is bit-identical to the
//     uninterrupted run,
//   * graceful degradation — an injected ingest stall trips the
//     pipeline watchdog, the stalled epoch is assembled inline, and
//     throughput in degraded mode is reported; the digest again must
//     not move by a single bit.
#include <algorithm>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "experiments.h"
#include "hbn/net/generators.h"
#include "hbn/serve/checkpoint.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/error.h"
#include "hbn/serve/request_stream.h"
#include "hbn/util/fault.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"

namespace hbn::bench {
namespace {

constexpr double kOverheadBoundPct = 5.0;
constexpr int kTimingRuns = 3;  ///< min-of-K on both sides of the overhead

class FaultRecoveryExperiment final : public engine::Experiment {
 public:
  FaultRecoveryExperiment(std::int64_t requests, std::int64_t epoch,
                          std::int64_t objects)
      : requestsOverride_(requests),
        epochOverride_(epoch),
        objectsOverride_(objects) {}

  [[nodiscard]] std::string_view name() const override {
    return "fault-recovery";
  }

  [[nodiscard]] bool run(engine::ExperimentContext& ctx,
                         engine::BenchReporter& reporter) const override {
    namespace fs = std::filesystem;
    const std::uint64_t seed = ctx.resolveSeed(15);
    const std::uint64_t requests =
        requestsOverride_ > 0
            ? static_cast<std::uint64_t>(requestsOverride_)
            : (ctx.smoke ? 2'000'000ULL : 4'000'000ULL);
    const std::size_t epochSize =
        epochOverride_ > 0 ? static_cast<std::size_t>(epochOverride_)
                           : (1u << 14);
    const int objects =
        objectsOverride_ > 0 ? static_cast<int>(objectsOverride_) : 256;
    const std::uint64_t totalEpochs =
        (requests + epochSize - 1) / epochSize;
    const std::uint64_t killEpoch = totalEpochs / 2;

    const net::Tree tree = net::makeClusterNetwork(4, 8);
    const net::RootedTree rooted(tree, tree.defaultRoot());
    ctx.os() << "E15 — fault-tolerant serving: checkpoint overhead, "
                "kill-and-restore recovery, degraded-mode throughput\nseed="
             << seed << ", " << requests << " requests, epoch=" << epochSize
             << ", objects=" << objects << ", threads=" << ctx.threads
             << ", kill at epoch " << killEpoch << "\n\n";

    // One materialised stream: every phase serves the same requests.
    std::vector<workload::RequestEvent> events(requests);
    {
      workload::StreamParams params;
      params.numObjects = objects;
      params.readFraction = 0.95;
      const auto stream = serve::makeGeneratedStream("skewed", tree, params,
                                                     seed, requests);
      if (stream->fill(events) != requests) {
        ctx.os() << "stream under-filled\n";
        return false;
      }
    }

    const auto makeOptions = [&] {
      serve::ServeOptions options;
      options.epochSize = epochSize;
      options.threads = ctx.threads;
      options.policy = "tree-counters";
      return options;
    };
    const auto digestOf = [&](const serve::EpochServer& server,
                              const serve::ServeReport& report) {
      std::ostringstream oss;
      oss.precision(17);
      oss << report.congestion << '|' << report.replacements << '|'
          << report.replications << '|' << report.invalidations;
      for (const core::Count load : server.loads().edgeLoads()) {
        oss << ',' << load;
      }
      for (workload::ObjectId x = 0; x < objects; ++x) {
        oss << ';';
        for (const net::NodeId v : server.copySet(x)) oss << v << ' ';
      }
      return oss.str();
    };

    struct Timed {
      double wallMs = 0.0;
      double requestsPerSec = 0.0;
      std::string digest;
      serve::ServeReport report;
    };
    // Min-of-K wall clock (digest is run-invariant; any run's will do).
    const auto timedRun = [&](const serve::ServeOptions& options) {
      Timed best;
      for (int i = 0; i < kTimingRuns; ++i) {
        serve::EpochServer server(rooted, objects, options);
        serve::VectorStream stream({events.begin(), events.end()});
        util::Timer timer;
        const serve::ServeReport report = server.serve(stream);
        const double wall = timer.millis();
        reporter.addTiming(wall);
        if (i == 0 || wall < best.wallMs) {
          best.wallMs = wall;
          best.requestsPerSec = report.requestsPerSec;
        }
        if (i == 0) {
          best.digest = digestOf(server, report);
          best.report = report;
        }
      }
      return best;
    };

    const fs::path dir =
        fs::temp_directory_path() / ("hbn-e15-" + std::to_string(seed));
    fs::remove_all(dir);

    // --- Phase 1: checkpoint overhead -----------------------------------
    // A checkpoint costs a few milliseconds (rendering the frequency
    // matrix dominates), so its amortised overhead is per-checkpoint
    // cost over inter-checkpoint serve time: the cadence here is the
    // deployment-realistic one the 5% bound is stated for. The recovery
    // phase below uses a much tighter cadence — its job is correctness,
    // not cost.
    const Timed baseline = timedRun(makeOptions());
    serve::ServeOptions checkpointed = makeOptions();
    checkpointed.checkpointDir = (dir / "overhead").string();
    checkpointed.checkpointEvery = 128;
    const Timed withCkpt = timedRun(checkpointed);
    const double overheadPct =
        baseline.wallMs > 0.0
            ? (withCkpt.wallMs - baseline.wallMs) / baseline.wallMs * 100.0
            : 0.0;
    const bool checkpointNeutral = withCkpt.digest == baseline.digest;

    // --- Phase 2: kill mid-run, restore, finish -------------------------
    const std::string recoveryDir = (dir / "recovery").string();
    bool killed = false;
    {
      serve::ServeOptions doomed = makeOptions();
      doomed.checkpointDir = recoveryDir;
      doomed.checkpointEvery = 8;
      doomed.faults = util::makeFaultInjector(
          "shard-throw@epoch" + std::to_string(killEpoch));
      serve::EpochServer server(rooted, objects, doomed);
      serve::VectorStream stream({events.begin(), events.end()});
      try {
        (void)server.serve(stream);
      } catch (const serve::Error& e) {
        killed = e.stage() == serve::Stage::Serve;
      }
    }
    double recoveryMs = 0.0;
    double restoredFromEpoch = 0.0;
    bool recoveryIdentical = false;
    if (killed) {
      util::Timer timer;
      const serve::CheckpointData data =
          serve::readCheckpointFile(serve::latestCheckpointPath(recoveryDir));
      serve::EpochServer server(rooted, objects, makeOptions());
      server.restoreFrom(data);
      serve::VectorStream stream({events.begin(), events.end()});
      serve::skipRequests(stream, data.servedTotal);
      const serve::ServeReport report = server.serve(stream);
      recoveryMs = timer.millis();
      reporter.addTiming(recoveryMs);
      restoredFromEpoch = static_cast<double>(data.epochs);
      recoveryIdentical = digestOf(server, report) == baseline.digest;
    }

    // --- Phase 3: degraded-mode throughput ------------------------------
    serve::ServeOptions degraded = makeOptions();
    degraded.faults =
        util::makeFaultInjector("ingest-stall@epoch2:ms=2000");
    degraded.stallTimeoutMs = 20.0;
    Timed degradedRun;
    {
      serve::EpochServer server(rooted, objects, degraded);
      serve::VectorStream stream({events.begin(), events.end()});
      util::Timer timer;
      const serve::ServeReport report = server.serve(stream);
      degradedRun.wallMs = timer.millis();
      reporter.addTiming(degradedRun.wallMs);
      degradedRun.requestsPerSec = report.requestsPerSec;
      degradedRun.digest = digestOf(server, report);
      degradedRun.report = report;
    }
    const bool degradedIdentical = degradedRun.digest == baseline.digest;
    const bool watchdogFired = degradedRun.report.degradedEpochs >= 1;

    util::Table table({"phase", "wall ms", "Mreq/s", "notes"});
    table.addRow({"baseline", util::formatDouble(baseline.wallMs, 1),
                  util::formatDouble(baseline.requestsPerSec / 1e6, 2), "-"});
    table.addRow({"checkpointed", util::formatDouble(withCkpt.wallMs, 1),
                  util::formatDouble(withCkpt.requestsPerSec / 1e6, 2),
                  "overhead " + util::formatDouble(overheadPct, 2) + "%, " +
                      std::to_string(withCkpt.report.checkpoints) +
                      " checkpoints"});
    table.addRow({"kill+restore", util::formatDouble(recoveryMs, 1), "-",
                  "restored from epoch " +
                      util::formatDouble(restoredFromEpoch, 0) +
                      (recoveryIdentical ? ", digest identical"
                                         : ", DIGEST DIVERGED")});
    table.addRow({"degraded", util::formatDouble(degradedRun.wallMs, 1),
                  util::formatDouble(degradedRun.requestsPerSec / 1e6, 2),
                  std::to_string(degradedRun.report.degradedEpochs) +
                      " degraded epochs"});
    table.print(ctx.os());

    ctx.os() << "\ncheckpoint overhead "
             << util::formatDouble(overheadPct, 2) << "% (bound "
             << util::formatDouble(kOverheadBoundPct, 1)
             << "%); recovery " << util::formatDouble(recoveryMs, 1)
             << " ms, digest "
             << (recoveryIdentical ? "identical" : "DIVERGED")
             << "; degraded-mode "
             << util::formatDouble(degradedRun.requestsPerSec / 1e6, 2)
             << " Mreq/s, digest "
             << (degradedIdentical ? "identical" : "DIVERGED") << "\n";

    reporter.beginRow();
    reporter.field("phase", std::string("baseline"));
    reporter.field("wall_ms", baseline.wallMs);
    reporter.field("requests_per_sec", baseline.requestsPerSec);
    reporter.beginRow();
    reporter.field("phase", std::string("checkpointed"));
    reporter.field("wall_ms", withCkpt.wallMs);
    reporter.field("requests_per_sec", withCkpt.requestsPerSec);
    reporter.field("checkpoint_overhead_pct", overheadPct);
    reporter.field("checkpoints",
                   static_cast<std::int64_t>(withCkpt.report.checkpoints));
    reporter.beginRow();
    reporter.field("phase", std::string("kill-restore"));
    reporter.field("kill_epoch", static_cast<std::int64_t>(killEpoch));
    reporter.field("restored_from_epoch", restoredFromEpoch);
    reporter.field("recovery_ms", recoveryMs);
    reporter.field("digest_identical", recoveryIdentical);
    reporter.beginRow();
    reporter.field("phase", std::string("degraded"));
    reporter.field("wall_ms", degradedRun.wallMs);
    reporter.field("requests_per_sec", degradedRun.requestsPerSec);
    reporter.field("degraded_epochs",
                   static_cast<std::int64_t>(
                       degradedRun.report.degradedEpochs));
    reporter.field("digest_identical", degradedIdentical);

    reporter.beginRow("check");
    reporter.field("claim",
                   "kill + restore ends bit-identical to an uninterrupted "
                   "run");
    reporter.field("held", killed && recoveryIdentical);
    reporter.beginRow("check");
    reporter.field("claim", "checkpointing is digest-neutral");
    reporter.field("held", checkpointNeutral);
    reporter.beginRow("check");
    reporter.field("claim",
                   "checkpoint overhead stays within 5% of baseline "
                   "throughput");
    reporter.field("value", overheadPct);
    reporter.field("held", overheadPct <= kOverheadBoundPct);
    reporter.beginRow("check");
    reporter.field("claim",
                   "ingest-stall watchdog degrades gracefully with an "
                   "unchanged digest");
    reporter.field("held", watchdogFired && degradedIdentical);

    fs::remove_all(dir);
    return killed && recoveryIdentical && checkpointNeutral &&
           overheadPct <= kOverheadBoundPct && watchdogFired &&
           degradedIdentical;
  }

 private:
  std::int64_t requestsOverride_;
  std::int64_t epochOverride_;
  std::int64_t objectsOverride_;
};

}  // namespace

namespace detail {
void registerFaultRecovery(engine::ExperimentRegistry& registry) {
  registry.add(
      {"fault-recovery",
       "fault-tolerant serving: checkpoint overhead, kill-and-restore "
       "digest identity, degraded-mode throughput",
       "E15 / robustness extension (checkpoint/restore + fault injection)",
       "requests=N,epoch=N,objects=N"},
      [](engine::StrategyOptions& options) {
        const std::int64_t requests = options.getInt("requests", 0);
        const std::int64_t epoch = options.getInt("epoch", 0);
        const std::int64_t objects = options.getInt("objects", 0);
        return std::make_unique<FaultRecoveryExperiment>(requests, epoch,
                                                         objects);
      },
      {"e15"});
}
}  // namespace detail

}  // namespace hbn::bench
