// hbn_bench — the unified experiment driver.
//
// Usage:
//   hbn_bench --list
//   hbn_bench approx-ratio runtime:reps=5
//   hbn_bench --suite=smoke --out results/
//
// Every experiment in bench/experiments/ is registered by name (spec
// syntax `name[:key=value,...]`, shared with strategy specs); each run
// prints its human-readable tables and writes a schema-versioned
// BENCH_<experiment>.json for the cross-PR perf trajectory. The same
// driver is reachable as `hbn_place --bench ...`.
#include "experiments/experiments.h"
#include "hbn/shard/process.h"

int main(int argc, char** argv) {
  // The sharded-serving experiment spawns exec-cluster workers from
  // this binary; a worker invocation short-circuits here.
  if (const int code = hbn::shard::maybeRunWorkerMain(argc, argv);
      code >= 0) {
    return code;
  }
  return hbn::engine::runBenchCli(hbn::bench::experiments(), argc, argv);
}
