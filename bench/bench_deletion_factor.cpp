// Experiment E5 (Observation 3.2): after the deletion step every copy
// serves between κ_x and 2κ_x requests and every edge load grows by at
// most κ_x — measured as the realised worst-case factors.
#include <iostream>

#include "hbn/core/deletion.h"
#include "hbn/core/load.h"
#include "hbn/core/nibble.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/generators.h"

int main() {
  using namespace hbn;
  constexpr std::uint64_t kSeed = 5;
  std::cout << "E5 / Observation 3.2 — deletion step: copy loads in "
               "[kappa, 2*kappa], per-edge growth <= kappa\nseed="
            << kSeed << "\n\n";

  util::Table table({"workload", "copies before", "copies after",
                     "min s/kappa", "max s/kappa", "max edge growth/kappa",
                     "max edge factor"});
  util::Rng master(kSeed);
  bool withinBounds = true;

  for (const auto profile :
       {workload::Profile::uniform, workload::Profile::zipf,
        workload::Profile::hotspot, workload::Profile::clustered,
        workload::Profile::producerConsumer, workload::Profile::adversarial}) {
    long before = 0;
    long after = 0;
    double minShare = 1e18;
    double maxShare = 0.0;
    double maxGrowth = 0.0;
    double maxFactor = 0.0;
    for (int trial = 0; trial < 12; ++trial) {
      util::Rng rng = master.split();
      const net::Tree tree = net::makeRandomTree(40, 12, rng);
      workload::GenParams params;
      params.numObjects = 10;
      params.requestsPerProcessor = 30;
      const workload::Workload load =
          workload::generate(profile, tree, params, rng);
      const net::RootedTree rooted(tree, tree.defaultRoot());
      for (workload::ObjectId x = 0; x < load.numObjects(); ++x) {
        const auto kappa = load.objectWrites(x);
        if (kappa == 0) continue;
        const auto nib = core::nibbleObject(tree, load, x);
        const auto mod = core::deleteRarelyUsedCopies(
            tree, nib.placement, kappa, nib.gravityCenter);
        before += static_cast<long>(nib.placement.copies.size());
        after += static_cast<long>(mod.copies.size());
        if (mod.copies.size() > 1) {
          for (const auto& copy : mod.copies) {
            const double share = static_cast<double>(copy.servedTotal()) /
                                 static_cast<double>(kappa);
            minShare = std::min(minShare, share);
            maxShare = std::max(maxShare, share);
            withinBounds &= (share >= 1.0 - 1e-12 && share <= 2.0 + 1e-12);
          }
        }
        core::LoadMap loadBefore(tree.edgeCount());
        core::accumulateObjectLoad(rooted, nib.placement, loadBefore);
        core::LoadMap loadAfter(tree.edgeCount());
        core::accumulateObjectLoad(rooted, mod, loadAfter);
        for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
          const auto growth = loadAfter.edgeLoad(e) - loadBefore.edgeLoad(e);
          maxGrowth = std::max(maxGrowth, static_cast<double>(growth) /
                                              static_cast<double>(kappa));
          if (loadBefore.edgeLoad(e) > 0) {
            maxFactor = std::max(
                maxFactor, static_cast<double>(loadAfter.edgeLoad(e)) /
                               static_cast<double>(loadBefore.edgeLoad(e)));
          }
          withinBounds &= (growth <= kappa);
        }
      }
    }
    table.addRow({workload::profileName(profile), std::to_string(before),
                  std::to_string(after),
                  util::formatDouble(minShare > 1e17 ? 0.0 : minShare, 3),
                  util::formatDouble(maxShare, 3),
                  util::formatDouble(maxGrowth, 3),
                  util::formatDouble(maxFactor, 3)});
  }
  table.print(std::cout);
  std::cout << "\nall Observation 3.2 bounds held: "
            << (withinBounds ? "yes" : "NO — BUG") << "\n";
  return withinBounds ? 0 : 1;
}
