// Experiment E7 (congestion predicts throughput, cf. [8]): deliver the
// message set of several placement strategies through the store-and-
// forward simulator and correlate congestion with makespan.
#include <iostream>

#include "hbn/baseline/heuristics.h"
#include "hbn/core/extended_nibble.h"
#include "hbn/net/generators.h"
#include "hbn/sim/simulator.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/generators.h"

int main() {
  using namespace hbn;
  constexpr std::uint64_t kSeed = 7;
  std::cout << "E7 — congestion vs simulated makespan across strategies "
               "(store-and-forward delivery of the full message set)\nseed="
            << kSeed << "\n\n";

  util::Table table({"strategy", "mean congestion", "mean makespan",
                     "mean dilation", "makespan/congestion"});
  util::Rng master(kSeed);

  struct StrategyRow {
    const char* name;
    util::Accumulator congestion;
    util::Accumulator makespan;
    util::Accumulator dilation;
  };
  StrategyRow rows[] = {{"extended-nibble", {}, {}, {}},
                        {"greedy single copy", {}, {}, {}},
                        {"weighted median", {}, {}, {}},
                        {"random single copy", {}, {}, {}},
                        {"full replication", {}, {}, {}}};
  std::vector<double> allCongestion;
  std::vector<double> allMakespan;

  for (int trial = 0; trial < 8; ++trial) {
    util::Rng rng = master.split();
    const net::Tree tree = net::makeClusterNetwork(4, 5);
    const net::RootedTree rooted(tree, tree.defaultRoot());
    workload::GenParams params;
    params.numObjects = 10;
    params.requestsPerProcessor = 30;
    params.readFraction = 0.75;
    const workload::Workload load =
        workload::generateClustered(tree, params, rng);

    core::Placement placements[5] = {
        core::computeExtendedNibblePlacement(tree, load),
        baseline::bestSingleCopy(tree, load),
        baseline::weightedMedian(tree, load),
        baseline::randomSingleCopy(tree, load, rng),
        baseline::fullReplication(tree, load)};
    for (int s = 0; s < 5; ++s) {
      const sim::SimResult result =
          sim::simulatePlacement(rooted, load, placements[s]);
      rows[s].congestion.add(result.congestion);
      rows[s].makespan.add(static_cast<double>(result.makespan));
      rows[s].dilation.add(static_cast<double>(result.dilation));
      allCongestion.push_back(result.congestion);
      allMakespan.push_back(static_cast<double>(result.makespan));
    }
  }
  for (auto& row : rows) {
    table.addRow({row.name, util::formatDouble(row.congestion.mean(), 1),
                  util::formatDouble(row.makespan.mean(), 1),
                  util::formatDouble(row.dilation.mean(), 1),
                  util::formatDouble(
                      row.makespan.mean() / row.congestion.mean(), 3)});
  }
  table.print(std::cout);
  const double correlation = util::pearson(allCongestion, allMakespan);
  std::cout << "\nPearson correlation (congestion, makespan) = "
            << util::formatDouble(correlation, 4)
            << (correlation > 0.9 ? "  (congestion predicts throughput)"
                                  : "")
            << "\n";
  return 0;
}
