// Experiment E7 (congestion predicts throughput, cf. [8]): deliver the
// message set of the registry strategies through the store-and-forward
// simulator and correlate congestion with makespan.
//
// Emits a human table and BENCH_throughput.json (strategy, n, objects,
// threads, wall_ms, congestion, makespan, dilation) for cross-PR perf
// trajectories.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "hbn/engine/cli.h"
#include "hbn/engine/registry.h"
#include "hbn/net/generators.h"
#include "hbn/sim/simulator.h"
#include "hbn/util/json.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

int main(int argc, char** argv) {
  using namespace hbn;
  try {
    const engine::CliOptions cli = engine::parseCli(argc, argv);
    if (cli.help) {
      std::cout << "usage: bench_throughput [--strategy SPEC,...] "
                   "[--threads N] [--seed N]\n\n"
                << engine::cliHelp();
      return 0;
    }
    const std::vector<std::string> specs =
        cli.strategies.empty()
            ? std::vector<std::string>{"extended-nibble", "best-single-copy",
                                       "weighted-median", "random-single-copy",
                                       "full-replication"}
            : cli.strategies;
    engine::requireNoPositional(cli);
    engine::Context baseCtx = engine::makeContext(cli, /*defaultSeed=*/7);

    std::cout << "E7 — congestion vs simulated makespan across strategies "
                 "(store-and-forward delivery of the full message set)\nseed="
              << baseCtx.seed << "\n\n";

    struct StrategyRow {
      util::Accumulator congestion;
      util::Accumulator makespan;
      util::Accumulator dilation;
      util::Accumulator wallMs;
    };
    std::vector<StrategyRow> rows(specs.size());
    std::vector<double> allCongestion;
    std::vector<double> allMakespan;

    util::Rng master(baseCtx.seed);
    constexpr int kTrials = 8;
    const net::Tree tree = net::makeClusterNetwork(4, 5);
    const net::RootedTree rooted(tree, tree.defaultRoot());
    for (int trial = 0; trial < kTrials; ++trial) {
      util::Rng rng = master.split();
      workload::GenParams params;
      params.numObjects = 10;
      params.requestsPerProcessor = 30;
      params.readFraction = 0.75;
      const workload::Workload load =
          workload::generateClustered(tree, params, rng);

      for (std::size_t s = 0; s < specs.size(); ++s) {
        const auto strategy =
            engine::StrategyRegistry::global().create(specs[s]);
        engine::Context ctx = baseCtx;
        ctx.seed = baseCtx.seed + static_cast<std::uint64_t>(trial);
        util::Timer timer;
        const core::Placement placement = strategy->place(tree, load, ctx);
        const double wallMs = timer.millis();
        const sim::SimResult result =
            sim::simulatePlacement(rooted, load, placement);
        rows[s].congestion.add(result.congestion);
        rows[s].makespan.add(static_cast<double>(result.makespan));
        rows[s].dilation.add(static_cast<double>(result.dilation));
        rows[s].wallMs.add(wallMs);
        allCongestion.push_back(result.congestion);
        allMakespan.push_back(static_cast<double>(result.makespan));
      }
    }

    util::Table table({"strategy", "mean congestion", "mean makespan",
                       "mean dilation", "makespan/congestion"});
    util::JsonRecords json;
    for (std::size_t s = 0; s < specs.size(); ++s) {
      table.addRow(
          {specs[s], util::formatDouble(rows[s].congestion.mean(), 1),
           util::formatDouble(rows[s].makespan.mean(), 1),
           util::formatDouble(rows[s].dilation.mean(), 1),
           util::formatDouble(
               rows[s].makespan.mean() / rows[s].congestion.mean(), 3)});
      json.beginRecord();
      json.field("strategy", specs[s]);
      json.field("n", tree.nodeCount());
      json.field("objects", 10);
      json.field("threads", baseCtx.threads);
      json.field("wall_ms", rows[s].wallMs.mean());
      json.field("congestion", rows[s].congestion.mean());
      json.field("makespan", rows[s].makespan.mean());
      json.field("dilation", rows[s].dilation.mean());
    }
    table.print(std::cout);
    const double correlation = util::pearson(allCongestion, allMakespan);
    std::cout << "\nPearson correlation (congestion, makespan) = "
              << util::formatDouble(correlation, 4)
              << (correlation > 0.9 ? "  (congestion predicts throughput)"
                                    : "")
              << "\n";
    json.writeFile("BENCH_throughput.json");
    std::cout << "wrote BENCH_throughput.json (" << json.recordCount()
              << " records)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
