// Experiment E1 (Theorem 4.3): measured congestion of the extended-nibble
// strategy divided by the certified lower bound, across the full
// topology × workload grid. The theorem promises a ratio of at most 7;
// this harness reports the realised distribution.
#include <cstdio>
#include <iostream>

#include "hbn/core/extended_nibble.h"
#include "hbn/core/lower_bound.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/generators.h"

namespace {

constexpr std::uint64_t kSeed = 20000701;  // SPAA 2000, deterministic
constexpr int kTrials = 8;

}  // namespace

int main() {
  using namespace hbn;
  std::cout << "E1 / Theorem 4.3 — extended-nibble congestion vs lower "
               "bound (<= 7 guaranteed)\n"
            << "seed=" << kSeed << ", trials per cell=" << kTrials << "\n\n";

  util::Table table({"topology", "bandwidths", "workload", "procs",
                     "mean C/LB", "max C/LB", "mean C", "mean LB"});
  util::Rng master(kSeed);
  double globalMax = 0.0;

  for (const bool fatTree : {false, true}) {
    for (const auto family :
         {net::TopologyFamily::kary, net::TopologyFamily::star,
          net::TopologyFamily::caterpillar, net::TopologyFamily::random,
          net::TopologyFamily::cluster}) {
      for (const auto profile :
           {workload::Profile::uniform, workload::Profile::zipf,
            workload::Profile::hotspot, workload::Profile::clustered,
            workload::Profile::producerConsumer,
            workload::Profile::adversarial}) {
        util::Accumulator ratio;
        util::Accumulator congestion;
        util::Accumulator lowerBound;
        int procs = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
          util::Rng rng = master.split();
          net::BandwidthModel bw;
          bw.fatTree = fatTree;
          const net::Tree tree = net::makeFamilyMember(family, 64, rng, bw);
          procs = tree.processorCount();
          workload::GenParams params;
          params.numObjects = 24;
          params.requestsPerProcessor = 40;
          params.readFraction = 0.2 + 0.6 * rng.nextDouble();
          const workload::Workload load =
              workload::generate(profile, tree, params, rng);

          const auto result = core::extendedNibble(tree, load);
          const net::RootedTree rooted(tree, tree.defaultRoot());
          // Combined bound: per-edge minima plus the per-object κ/h
          // argument (essential on fat trees; see lower_bound.h).
          const double lb = core::combinedLowerBound(rooted, load);
          if (lb <= 0.0) continue;
          ratio.add(result.report.congestionFinal / lb);
          congestion.add(result.report.congestionFinal);
          lowerBound.add(lb);
        }
        if (ratio.empty()) continue;
        globalMax = std::max(globalMax, ratio.max());
        table.addRow({net::topologyFamilyName(family),
                      fatTree ? "fat-tree" : "uniform",
                      workload::profileName(profile), std::to_string(procs),
                      util::formatDouble(ratio.mean(), 3),
                      util::formatDouble(ratio.max(), 3),
                      util::formatDouble(congestion.mean(), 1),
                      util::formatDouble(lowerBound.mean(), 1)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nglobal max C/LB = " << util::formatDouble(globalMax, 3)
            << (globalMax <= 7.0 ? "  (within the Theorem 4.3 bound of 7)"
                                 : "  (BOUND VIOLATED!)")
            << "\n";
  return globalMax <= 7.0 ? 0 : 1;
}
