// Experiment E8 (distributed execution): round counts of the distributed
// nibble computation vs the O(|X| + height(T)) schedule, with perfect
// pipelining (max queue depth 1).
#include <iostream>

#include "hbn/core/nibble.h"
#include "hbn/dist/distributed_nibble.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/table.h"
#include "hbn/workload/generators.h"

int main() {
  using namespace hbn;
  constexpr std::uint64_t kSeed = 8;
  std::cout << "E8 — distributed nibble: measured rounds vs the "
               "|X| + 4*height schedule; placement identical to "
               "sequential\nseed="
            << kSeed << "\n\n";

  util::Table table({"topology", "height", "|X|", "rounds",
                     "|X|+4h bound", "max queue", "messages",
                     "matches sequential"});
  util::Rng master(kSeed);
  bool allMatch = true;
  bool allPipelined = true;

  struct Case {
    const char* name;
    net::Tree tree;
  };
  util::Rng topoRng = master.split();
  Case cases[] = {
      {"kary(4,3)", net::makeKaryTree(4, 3)},
      {"kary(2,6)", net::makeKaryTree(2, 6)},
      {"caterpillar(16,2)", net::makeCaterpillar(16, 2)},
      {"random(48,16)", net::makeRandomTree(48, 16, topoRng)},
      {"cluster(6,6)", net::makeClusterNetwork(6, 6)},
  };
  for (const auto& c : cases) {
    for (const int numObjects : {4, 16, 64}) {
      util::Rng rng = master.split();
      workload::GenParams params;
      params.numObjects = numObjects;
      params.requestsPerProcessor = 12;
      const workload::Workload load =
          workload::generateUniform(c.tree, params, rng);
      const net::RootedTree rooted(c.tree, c.tree.defaultRoot());
      const auto dist = dist::distributedNibble(rooted, load);
      const auto seq = core::nibblePlacement(c.tree, load);
      bool match = true;
      for (std::size_t x = 0; x < seq.objects.size(); ++x) {
        match &= dist.placement.objects[x].locations() ==
                 seq.objects[x].locations();
      }
      allMatch &= match;
      allPipelined &= dist.stats.maxQueueDepth <= 1;
      const auto bound =
          static_cast<std::int64_t>(numObjects) + 4 * rooted.height() + 4;
      table.addRow({c.name, std::to_string(rooted.height()),
                    std::to_string(numObjects),
                    std::to_string(dist.stats.rounds), std::to_string(bound),
                    std::to_string(dist.stats.maxQueueDepth),
                    std::to_string(dist.stats.messages),
                    match ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nplacements identical everywhere: "
            << (allMatch ? "yes" : "NO — BUG")
            << "; pipelining perfect (queue<=1): "
            << (allPipelined ? "yes" : "NO") << "\n";
  return (allMatch && allPipelined) ? 0 : 1;
}
