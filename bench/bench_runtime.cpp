// Experiment E3 (Theorem 4.3 runtime): sequential running time of the
// extended-nibble strategy, scaling |X|, |V|, height(T) and degree(T)
// independently. The theorem claims
// O(|X| · |P ∪ B| · height(T) · log(degree(T))).
#include <benchmark/benchmark.h>

#include "hbn/core/extended_nibble.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

namespace {

using namespace hbn;

workload::Workload makeLoad(const net::Tree& tree, int numObjects,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  workload::GenParams params;
  params.numObjects = numObjects;
  params.requestsPerProcessor = 16;
  params.readFraction = 0.5;
  return workload::generateUniform(tree, params, rng);
}

// --- Scale |X| at fixed topology.
void BM_ScaleObjects(benchmark::State& state) {
  const net::Tree tree = net::makeKaryTree(4, 3);  // 85 nodes
  const auto load =
      makeLoad(tree, static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extendedNibble(tree, load));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScaleObjects)->RangeMultiplier(2)->Range(8, 128)->Complexity(
    benchmark::oN);

// --- Scale |V| at fixed height (wider k-ary trees).
void BM_ScaleNodes(benchmark::State& state) {
  const int arity = static_cast<int>(state.range(0));
  const net::Tree tree = net::makeKaryTree(arity, 2);
  const auto load = makeLoad(tree, 16, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extendedNibble(tree, load));
  }
  state.SetComplexityN(tree.nodeCount());
}
BENCHMARK(BM_ScaleNodes)->DenseRange(4, 20, 4)->Complexity(benchmark::oN);

// --- Scale height at roughly fixed node count (caterpillars).
void BM_ScaleHeight(benchmark::State& state) {
  const int buses = static_cast<int>(state.range(0));
  const int procsPerBus = std::max(1, 64 / buses);
  const net::Tree tree = net::makeCaterpillar(buses, procsPerBus);
  const auto load = makeLoad(tree, 16, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extendedNibble(tree, load));
  }
  state.SetComplexityN(buses);
}
BENCHMARK(BM_ScaleHeight)->RangeMultiplier(2)->Range(4, 64);

// --- Scale degree at fixed size (stars).
void BM_ScaleDegree(benchmark::State& state) {
  const net::Tree tree = net::makeStar(static_cast<int>(state.range(0)));
  const auto load = makeLoad(tree, 16, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extendedNibble(tree, load));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScaleDegree)->RangeMultiplier(2)->Range(8, 256);

// --- The nibble step alone is linear per object (paper §3.1).
void BM_NibbleOnly(benchmark::State& state) {
  const int arity = static_cast<int>(state.range(0));
  const net::Tree tree = net::makeKaryTree(arity, 2);
  const auto load = makeLoad(tree, 8, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::nibblePlacement(tree, load));
  }
  state.SetComplexityN(tree.nodeCount());
}
BENCHMARK(BM_NibbleOnly)->DenseRange(4, 20, 4)->Complexity(benchmark::oN);

// --- Thread scaling of the per-object steps (result is bit-identical).
void BM_ThreadScaling(benchmark::State& state) {
  const net::Tree tree = net::makeKaryTree(4, 4);  // 341 nodes
  const auto load = makeLoad(tree, 256, 6);
  core::ExtendedNibbleOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extendedNibble(tree, load, options));
  }
}
BENCHMARK(BM_ThreadScaling)->RangeMultiplier(2)->Range(1, 8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
