// Experiment E3 (Theorem 4.3 runtime): wall-clock running time of the
// registry strategies while scaling |X|, |V|, height(T), degree(T), and
// the worker-thread count. The theorem claims sequential time
// O(|X| · |P ∪ B| · height(T) · log(degree(T))); the thread-scaling rows
// time the object-sharded executor (its 1-vs-N bit-identity is pinned
// down by tests/engine_determinism_test.cpp, not here).
//
// Emits a human table and BENCH_runtime.json (strategy, topology, n,
// objects, threads, wall_ms, congestion) for cross-PR perf trajectories.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "hbn/core/load.h"
#include "hbn/engine/cli.h"
#include "hbn/engine/registry.h"
#include "hbn/net/generators.h"
#include "hbn/util/json.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"
#include "hbn/workload/generators.h"

namespace {

using namespace hbn;

workload::Workload makeLoad(const net::Tree& tree, int numObjects,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  workload::GenParams params;
  params.numObjects = numObjects;
  params.requestsPerProcessor = 16;
  params.readFraction = 0.5;
  return workload::generateUniform(tree, params, rng);
}

struct Case {
  std::string label;     // scaling axis description
  std::string topology;
  net::Tree tree;
  int objects;
  int threads;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hbn;
  try {
    const engine::CliOptions cli = engine::parseCli(argc, argv);
    if (cli.help) {
      std::cout << "usage: bench_runtime [--strategy SPEC,...] [--threads N] "
                   "[--seed N]\n\n"
                << engine::cliHelp();
      return 0;
    }
    const std::vector<std::string> specs =
        cli.strategies.empty()
            ? std::vector<std::string>{"nibble", "extended-nibble"}
            : cli.strategies;
    engine::requireNoPositional(cli);
    engine::Context baseCtx = engine::makeContext(cli, /*defaultSeed=*/3);

    std::vector<Case> cases;
    // --- Scale |X| at fixed topology.
    for (int objects = 8; objects <= 128; objects *= 2) {
      cases.push_back({"objects", "kary(4,3)", net::makeKaryTree(4, 3),
                       objects, baseCtx.threads});
    }
    // --- Scale |V| at fixed height (wider k-ary trees).
    for (int arity = 4; arity <= 20; arity += 4) {
      cases.push_back({"nodes", "kary(" + std::to_string(arity) + ",2)",
                       net::makeKaryTree(arity, 2), 16, baseCtx.threads});
    }
    // --- Scale height at roughly fixed node count (caterpillars).
    for (int buses = 4; buses <= 64; buses *= 2) {
      const int procsPerBus = std::max(1, 64 / buses);
      cases.push_back({"height",
                       "caterpillar(" + std::to_string(buses) + "," +
                           std::to_string(procsPerBus) + ")",
                       net::makeCaterpillar(buses, procsPerBus), 16,
                       baseCtx.threads});
    }
    // --- Scale degree at fixed size (stars).
    for (int leaves = 8; leaves <= 256; leaves *= 2) {
      cases.push_back({"degree", "star(" + std::to_string(leaves) + ")",
                       net::makeStar(leaves), 16, baseCtx.threads});
    }
    // --- Thread scaling on one large instance (result bit-identical).
    for (int threads = 1; threads <= 8; threads *= 2) {
      cases.push_back({"threads", "kary(4,4)", net::makeKaryTree(4, 4), 256,
                       threads});
    }

    util::Table table({"axis", "strategy", "topology", "n", "objects",
                       "threads", "wall ms", "congestion"});
    util::JsonRecords json;
    for (const std::string& spec : specs) {
      const auto strategy = engine::StrategyRegistry::global().create(spec);
      for (const Case& c : cases) {
        const workload::Workload load =
            makeLoad(c.tree, c.objects, baseCtx.seed);
        engine::Context ctx = baseCtx;
        ctx.threads = c.threads;
        // Best of three runs: the usual antidote to scheduler noise.
        double wallMs = 0.0;
        core::Placement placement;
        for (int rep = 0; rep < 3; ++rep) {
          util::Timer timer;
          placement = strategy->place(c.tree, load, ctx);
          const double ms = timer.millis();
          wallMs = rep == 0 ? ms : std::min(wallMs, ms);
        }
        const net::RootedTree rooted(c.tree, c.tree.defaultRoot());
        const double congestion = core::evaluateCongestion(rooted, placement);

        table.addRow({c.label, spec, c.topology,
                      std::to_string(c.tree.nodeCount()),
                      std::to_string(c.objects), std::to_string(c.threads),
                      util::formatDouble(wallMs, 3),
                      util::formatDouble(congestion, 2)});
        json.beginRecord();
        json.field("strategy", spec);
        json.field("axis", c.label);
        json.field("topology", c.topology);
        json.field("n", c.tree.nodeCount());
        json.field("objects", c.objects);
        json.field("threads", c.threads);
        json.field("wall_ms", wallMs);
        json.field("congestion", congestion);
      }
    }

    std::cout << "E3 — runtime scaling (seed=" << baseCtx.seed << ")\n\n";
    table.print(std::cout);
    json.writeFile("BENCH_runtime.json");
    std::cout << "\nwrote BENCH_runtime.json (" << json.recordCount()
              << " records)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
