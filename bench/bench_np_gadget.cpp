// Experiment E2 (Theorem 2.1 / Figure 3): the PARTITION reduction.
// For YES instances the exact optimum congestion equals the threshold 4k;
// for NO instances it strictly exceeds it. Also reports how the
// (polynomial) extended-nibble strategy behaves on the gadget.
#include <iostream>

#include "hbn/baseline/exact.h"
#include "hbn/core/extended_nibble.h"
#include "hbn/nphard/gadget.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"

int main() {
  using namespace hbn;
  constexpr std::uint64_t kSeed = 21;
  std::cout << "E2 / Theorem 2.1 — PARTITION gadget: congestion <= 4k iff "
               "the instance is solvable\nseed="
            << kSeed << "\n\n";

  util::Table table({"instance", "n", "k", "threshold 4k", "exact OPT",
                     "OPT==4k", "partition?", "ext-nibble C", "search nodes"});
  util::Rng rng(kSeed);
  bool allConsistent = true;

  auto runInstance = [&](const nphard::PartitionInstance& instance,
                         const std::string& label) {
    const nphard::Gadget gadget = nphard::encodePartition(instance);
    const bool solvable = nphard::solvePartition(instance).has_value();
    const baseline::ExactResult opt =
        baseline::solveExact(gadget.tree, gadget.load);
    const auto strategy = core::extendedNibble(gadget.tree, gadget.load);
    const bool hitsThreshold =
        opt.congestion == static_cast<double>(gadget.threshold());
    allConsistent &= (hitsThreshold == solvable);
    table.addRow({label, std::to_string(instance.items.size()),
                  std::to_string(gadget.k),
                  std::to_string(gadget.threshold()),
                  util::formatDouble(opt.congestion, 1),
                  hitsThreshold ? "yes" : "no", solvable ? "yes" : "no",
                  util::formatDouble(strategy.report.congestionFinal, 1),
                  std::to_string(opt.nodesExplored)});
  };

  for (int trial = 0; trial < 6; ++trial) {
    runInstance(nphard::makeYesInstance(5 + trial, 15 + 3 * trial, rng),
                "yes-" + std::to_string(trial));
  }
  for (int trial = 0; trial < 6; ++trial) {
    runInstance(nphard::makeNoInstance(4 + trial % 3, 9, rng),
                "no-" + std::to_string(trial));
  }
  table.print(std::cout);
  std::cout << "\nreduction consistent on all instances: "
            << (allConsistent ? "yes" : "NO — BUG") << "\n";
  return allConsistent ? 0 : 1;
}
