// hbn_serve — the streaming request-serving frontend.
//
// Usage:
//   hbn_serve [options] [<tree-file>]
//
// Serves an online stream of read/write requests through the epoch-batched
// serving engine (hbn/serve/epoch_server.h): requests are consumed in
// epochs, sharded over worker threads by object id (bit-identical output
// for any --threads value), and between epochs the engine runs the
// policy's drift-triggered re-placement pass against the analytic
// offline lower bound of the aggregated frequencies.
//
// The serving policy is selected by --policy SPEC from the
// OnlinePolicyRegistry (--list-policies enumerates them), sharing the
// `name[:key=value,...]` grammar of --strategy specs; nested strategy
// specs compose, e.g. --policy static:placement=extended-nibble.
//
// The stream comes either from a trace file (hbn-trace v1, --trace) or
// from one of the generated profiles (--stream skewed|bursty|diurnal,
// bounded by --requests). Without a tree file a two-level cluster network
// is generated (--clusters/--procs).
#include <charconv>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "hbn/dynamic/online_policy.h"
#include "hbn/engine/cli.h"
#include "hbn/net/generators.h"
#include "hbn/net/serialize.h"
#include "hbn/serve/checkpoint.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/error.h"
#include "hbn/serve/request_stream.h"
#include "hbn/shard/coordinator.h"
#include "hbn/shard/partition.h"
#include "hbn/shard/process.h"
#include "hbn/util/fault.h"
#include "hbn/util/json.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"

namespace {

/// Cap for every int-typed count flag: without it the uint64→int cast
/// would silently wrap values >= 2^32.
constexpr std::uint64_t kMaxInt = std::numeric_limits<int>::max();

struct ServeCli {
  std::string trace;            ///< trace file; empty = generated stream
  std::string stream = "skewed";
  std::uint64_t requests = 1'000'000;
  std::size_t epoch = 1 << 16;
  int objects = 1024;
  int clusters = 4;
  int procs = 8;                ///< processors per cluster
  double drift = 3.0;
  bool pipeline = true;            ///< pipelined (vs barrier) engine
  std::size_t latencySample = 4096;  ///< latency reservoir capacity
  double reads = 0.9;              ///< stream read fraction
  hbn::core::Count threshold = 2;  ///< online replication threshold D
  bool thresholdSet = false;
  std::string policy;           ///< policy spec; empty = tree-counters
  bool listPolicies = false;
  std::string jsonOut;          ///< empty = no JSON report
  std::string checkpointDir;    ///< empty = checkpointing off
  std::uint64_t checkpointEvery = 1;
  std::string restoreDir;       ///< resume from this checkpoint dir
  std::string inject;           ///< comma-joined fault specs
  double stallTimeout = 0.0;    ///< ingest watchdog ms; 0 = wait forever
  std::uint64_t handoffRetries = 3;
  int workers = 0;              ///< sharded workers; 0 = single-process
  std::string transport = "loopback";  ///< loopback | socket
  std::string partition = "hash";      ///< hash | range
  hbn::engine::CliOptions shared;
};

/// Strict double flag parser matching parseUintFlag's discipline: the
/// whole text must be one finite number inside [lo, hi] — '2x', 'nan',
/// and '' are errors, not partial parses.
double parseDoubleFlag(const std::string& flag, const std::string& text,
                       double lo, double hi) {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || !std::isfinite(value) ||
      value < lo || value > hi) {
    std::ostringstream range;
    range << flag << " expects a number in [" << lo << ", " << hi
          << "], got '" << text << "'";
    throw std::invalid_argument(range.str());
  }
  return value;
}

ServeCli parseServeCli(int argc, char** argv) {
  ServeCli cli;
  std::vector<char*> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(flag + " expects a value");
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      cli.trace = value(arg);
    } else if (arg == "--stream") {
      cli.stream = value(arg);
    } else if (arg == "--requests" || arg == "-n") {
      cli.requests = hbn::engine::parseUintFlag(arg, value(arg));
    } else if (arg == "--epoch" || arg == "-e") {
      const std::uint64_t epoch =
          hbn::engine::parseUintFlag(arg, value(arg));
      if (epoch < 1) throw std::invalid_argument("--epoch expects >= 1");
      cli.epoch = static_cast<std::size_t>(epoch);
    } else if (arg == "--objects") {
      cli.objects = static_cast<int>(
          hbn::engine::parseUintFlag(arg, value(arg), kMaxInt));
    } else if (arg == "--clusters") {
      cli.clusters = static_cast<int>(
          hbn::engine::parseUintFlag(arg, value(arg), kMaxInt));
    } else if (arg == "--procs") {
      cli.procs = static_cast<int>(
          hbn::engine::parseUintFlag(arg, value(arg), kMaxInt));
    } else if (arg == "--reads") {
      cli.reads = parseDoubleFlag(arg, value(arg), 0.0, 1.0);
    } else if (arg == "--threshold") {
      cli.threshold = static_cast<hbn::core::Count>(
          hbn::engine::parseUintFlag(arg, value(arg)));
      cli.thresholdSet = true;
    } else if (arg == "--policy") {
      cli.policy = value(arg);
    } else if (arg == "--list-policies") {
      cli.listPolicies = true;
    } else if (arg == "--drift") {
      cli.drift = parseDoubleFlag(arg, value(arg), 0.0, 1e9);
    } else if (arg == "--pipeline" || arg.rfind("--pipeline=", 0) == 0) {
      const std::string mode =
          arg == "--pipeline" ? value(arg) : arg.substr(11);
      if (mode == "on") {
        cli.pipeline = true;
      } else if (mode == "off") {
        cli.pipeline = false;
      } else {
        throw std::invalid_argument("--pipeline expects on|off, got '" +
                                    mode + "'");
      }
    } else if (arg == "--latency-sample" ||
               arg.rfind("--latency-sample=", 0) == 0) {
      const std::string text =
          arg == "--latency-sample" ? value(arg) : arg.substr(17);
      cli.latencySample = static_cast<std::size_t>(
          hbn::engine::parseUintFlag("--latency-sample", text));
    } else if (arg == "--json") {
      cli.jsonOut = value(arg);
    } else if (arg == "--checkpoint-dir") {
      cli.checkpointDir = value(arg);
    } else if (arg == "--checkpoint-every") {
      cli.checkpointEvery = hbn::engine::parseUintFlag(arg, value(arg));
      if (cli.checkpointEvery < 1) {
        throw std::invalid_argument("--checkpoint-every expects >= 1");
      }
    } else if (arg == "--restore") {
      cli.restoreDir = value(arg);
    } else if (arg == "--inject") {
      // Repeatable; specs accumulate (each may itself be a comma list).
      const std::string spec = value(arg);
      if (!cli.inject.empty()) cli.inject += ',';
      cli.inject += spec;
    } else if (arg == "--stall-timeout") {
      cli.stallTimeout = parseDoubleFlag(arg, value(arg), 0.0, 1e9);
    } else if (arg == "--handoff-retries") {
      cli.handoffRetries =
          hbn::engine::parseUintFlag(arg, value(arg), kMaxInt);
    } else if (arg == "--workers" || arg.rfind("--workers=", 0) == 0) {
      const std::string text =
          arg == "--workers" ? value(arg) : arg.substr(10);
      cli.workers = static_cast<int>(
          hbn::engine::parseUintFlag("--workers", text, kMaxInt));
    } else if (arg == "--transport" || arg.rfind("--transport=", 0) == 0) {
      cli.transport = arg == "--transport" ? value(arg) : arg.substr(12);
      if (cli.transport != "loopback" && cli.transport != "socket") {
        throw std::invalid_argument(
            "--transport expects loopback|socket, got '" + cli.transport +
            "'");
      }
    } else if (arg == "--partition" || arg.rfind("--partition=", 0) == 0) {
      cli.partition = arg == "--partition" ? value(arg) : arg.substr(12);
      (void)hbn::shard::parsePartitionKind(cli.partition);  // validate
    } else {
      rest.push_back(argv[i]);
    }
  }
  cli.shared = hbn::engine::parseCli(static_cast<int>(rest.size()),
                                     rest.data());
  return cli;
}

void printUsage(std::ostream& os) {
  os << "usage: hbn_serve [options] [<tree-file>]\n"
        "\n"
        "Streams requests through the epoch-batched serving engine and\n"
        "reports throughput, epoch latency, and the realised-congestion\n"
        "ratio against the offline lower bound.\n"
        "\n"
        "options:\n"
        "  --trace FILE      serve a trace file (hbn-trace v1) instead of\n"
        "                    a generated stream\n"
        "  --stream NAME     generated stream profile: skewed | bursty |\n"
        "                    diurnal | phase-shift (default skewed)\n"
        "  --requests N      generated stream length (default 1000000)\n"
        "  --epoch N         requests per epoch (default 65536)\n"
        "  --objects N       shared objects for generated streams\n"
        "                    (default 1024)\n"
        "  --clusters N      generated topology: cluster count (default 4)\n"
        "  --procs N         processors per cluster (default 8)\n"
        "  --reads F         generated stream read fraction (default 0.9)\n"
        "  --policy SPEC     online policy spec (default tree-counters);\n"
        "                    nested strategy specs compose, e.g.\n"
        "                    static:placement=extended-nibble\n"
        "  --list-policies   list registered policies and exit\n"
        "  --threshold D     tree-counters replication threshold\n"
        "                    (default 2; shorthand for\n"
        "                    --policy tree-counters:threshold=D)\n"
        "  --drift F         re-place when congestion growth > F x lower-\n"
        "                    bound growth since the last re-placement;\n"
        "                    0 disables (default 3.0)\n"
        "  --pipeline MODE   on (default): threaded double-buffered ingest\n"
        "                    plus lazy RCU-published re-placement; off:\n"
        "                    barrier engine (same results, spikier tails)\n"
        "  --latency-sample N  request-latency reservoir capacity for the\n"
        "                    p50/p99/p999 metrics; 0 disables (default 4096)\n"
        "  --checkpoint-dir D  write epoch-boundary checkpoints\n"
        "                    (hbn-checkpoint v1) into D; restore with\n"
        "                    --restore D after a crash\n"
        "  --checkpoint-every K  epochs between checkpoints (default 1)\n"
        "  --restore D       resume from the latest checkpoint in D (the\n"
        "                    stream is rebuilt and the served prefix\n"
        "                    skipped; the resumed run's final state is\n"
        "                    bit-identical to an uninterrupted one)\n"
        "  --inject SPEC     arm a deterministic fault (repeatable):\n"
        "                    ingest-stall@epochN[:ms=T] |\n"
        "                    shard-throw@epochN[:shardM] |\n"
        "                    handoff-fail@epochN[:times=K]\n"
        "  --stall-timeout MS  ingest watchdog: past MS the serve thread\n"
        "                    assembles the epoch inline (degraded mode);\n"
        "                    0 waits forever (default)\n"
        "  --handoff-retries N  retries before a failed handoff\n"
        "                    publication aborts the run (default 3)\n"
        "  --workers N       shard the object space over N workers and\n"
        "                    serve through the coordinator/worker protocol\n"
        "                    (docs/sharding.md); 0 = single-process engine\n"
        "                    (default). Bit-identical loads and ratio for\n"
        "                    any N. Incompatible with --checkpoint-dir,\n"
        "                    --restore and --inject.\n"
        "  --transport T     worker transport: loopback (in-process\n"
        "                    threads) | socket (fork+exec'd processes over\n"
        "                    Unix sockets); default loopback\n"
        "  --partition P     object partition: hash (seeded stable hash) |\n"
        "                    range (contiguous blocks); default hash\n"
        "  --json FILE       also write the serve report as JSON records\n"
        "  --threads N       worker threads (0 = all cores)\n"
        "  --seed N          stream RNG seed\n"
        "  --help            show this text\n"
        "\n"
        "exit codes: 0 ok, 1 error, 2 usage/bad input; stage failures:\n"
        "  10 ingest, 11 serve, 12 handoff, 13 checkpoint, 14 restore,\n"
        "  15 connect, 16 frame, 17 peer (see docs/robustness.md)\n"
        "\n"
        "policies:\n"
     << hbn::dynamic::OnlinePolicyRegistry::global().helpText();
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbn;
  // Worker mode: when spawned by an exec cluster with
  // --shard-worker-fd=K this process IS a shard worker; it speaks the
  // wire protocol over fd K and exits with the stage code on failure.
  if (const int code = shard::maybeRunWorkerMain(argc, argv); code >= 0) {
    return code;
  }
  try {
    const ServeCli cli = parseServeCli(argc, argv);
    if (cli.shared.help) {
      printUsage(std::cout);
      return 0;
    }
    if (cli.listPolicies) {
      std::cout << "policies:\n"
                << dynamic::OnlinePolicyRegistry::global().helpText();
      return 0;
    }
    if (cli.shared.positional.size() > 1) {
      printUsage(std::cerr);
      return 2;
    }
    if (!cli.shared.strategies.empty()) {
      throw std::invalid_argument(
          "hbn_serve serves through --policy; --strategy is not accepted "
          "(nest it: --policy static:placement=SPEC)");
    }
    if (!cli.policy.empty() && cli.thresholdSet) {
      throw std::invalid_argument(
          "--threshold is shorthand for tree-counters; pass "
          "--policy tree-counters:threshold=D instead of combining them");
    }
    if (cli.workers > 0 &&
        (!cli.checkpointDir.empty() || !cli.restoreDir.empty() ||
         !cli.inject.empty())) {
      throw std::invalid_argument(
          "--workers is incompatible with --checkpoint-dir/--restore/"
          "--inject: checkpointing and fault injection are single-process "
          "features (see docs/sharding.md)");
    }
    // When resuming, load the snapshot before anything else: it decides
    // the policy (absent --policy/--threshold) and the object count for
    // generated streams, so a bare `--restore D` resumes faithfully.
    std::optional<serve::CheckpointData> restored;
    if (!cli.restoreDir.empty()) {
      try {
        restored = serve::readCheckpointFile(
            serve::latestCheckpointPath(cli.restoreDir));
      } catch (const serve::Error&) {
        throw;
      } catch (const std::exception& e) {
        throw serve::Error(serve::Stage::Restore, 0, e.what());
      }
    }

    dynamic::OnlineOptions defaults;
    defaults.replicationThreshold = cli.threshold;
    const std::string policySpec =
        !cli.policy.empty() ? cli.policy
        : (restored && !cli.thresholdSet)
            ? restored->policySpec
            : dynamic::treeCountersSpec(defaults);

    const net::Tree tree =
        cli.shared.positional.empty()
            ? net::makeClusterNetwork(cli.clusters, cli.procs)
            : net::parseText(readFile(cli.shared.positional.front()));
    const net::RootedTree rooted(tree, tree.defaultRoot());
    const std::uint64_t seed = cli.shared.seedSet ? cli.shared.seed : 12;

    std::unique_ptr<serve::RequestStream> stream;
    int numObjects = restored ? restored->numObjects : cli.objects;
    if (!cli.trace.empty()) {
      auto traceStream = std::make_unique<serve::TraceFileStream>(cli.trace);
      if (traceStream->numNodes() != tree.nodeCount()) {
        throw std::runtime_error("trace node count does not match tree");
      }
      numObjects = traceStream->numObjects();
      stream = std::move(traceStream);
    } else {
      workload::StreamParams params;
      params.numObjects = numObjects;
      params.readFraction = cli.reads;
      stream = serve::makeGeneratedStream(cli.stream, tree, params, seed,
                                          cli.requests);
    }

    serve::ServeOptions options;
    options.epochSize = cli.epoch;
    options.threads = cli.shared.threads;
    options.replaceDrift = cli.drift;
    options.policy = policySpec;
    options.pipeline = cli.pipeline;
    options.latencySample = cli.latencySample;
    options.checkpointDir = cli.checkpointDir;
    options.checkpointEvery = cli.checkpointEvery;
    options.stallTimeoutMs = cli.stallTimeout;
    options.handoffRetries = static_cast<int>(cli.handoffRetries);
    options.faults = util::makeFaultInjector(cli.inject);

    if (cli.workers > 0) {
      // Sharded mode: fan the stream out over a worker cluster through
      // the coordinator/worker wire protocol (docs/sharding.md). The
      // merged loads and ratio are bit-identical to the single-process
      // engine below for any worker count.
      shard::ShardOptions sharded;
      sharded.serve = options;
      sharded.partition = shard::parsePartitionKind(cli.partition);
      sharded.partitionSeed = seed;
      sharded.peerTimeoutMs = cli.stallTimeout;
      std::unique_ptr<shard::ShardCluster> cluster =
          cli.transport == "loopback"
              ? shard::makeLoopbackCluster(cli.workers)
              : shard::makeExecCluster(cli.workers);
      shard::ShardCoordinator coordinator(tree, numObjects, sharded,
                                          cluster->links(), cli.transport);

      std::cout << "serving "
                << (cli.trace.empty() ? "stream '" + cli.stream + "'"
                                      : "trace " + cli.trace)
                << " over " << tree.processorCount() << " processors, "
                << numObjects << " objects, " << cli.workers
                << " shard workers (policy=" << policySpec
                << ", transport=" << cli.transport
                << ", partition=" << cli.partition
                << ", epoch=" << cli.epoch << ", seed=" << seed
                << ", drift=" << cli.drift << ")\n\n";

      const shard::ShardedReport report = coordinator.serve(*stream);
      cluster->join();

      util::Table epochs({"epoch", "requests", "ms", "congestion",
                          "lower bound", "ratio", "re-placed", "degraded"});
      const std::size_t logSize = coordinator.epochLog().size();
      for (std::size_t i = 0; i < logSize; ++i) {
        if (logSize > 12 && i == 6) {
          epochs.addRow(
              {"...", "...", "...", "...", "...", "...", "...", "..."});
        }
        if (logSize > 12 && i >= 6 && i + 6 < logSize) continue;
        const serve::EpochRecord& r = coordinator.epochLog()[i];
        epochs.addRow({std::to_string(r.index), std::to_string(r.requests),
                       util::formatDouble(r.wallMs, 1),
                       util::formatDouble(r.congestion, 1),
                       util::formatDouble(r.lowerBound, 1),
                       util::formatDouble(r.ratio, 2),
                       r.replaced ? "yes" : "", r.degraded ? "yes" : ""});
      }
      epochs.print(std::cout);

      util::Table shardsTable({"shard", "requests", "busy ms",
                               "replications", "invalidations", "bytes in",
                               "bytes out"});
      for (const shard::ShardBreakdown& b : report.shards) {
        shardsTable.addRow(
            {std::to_string(b.shard), std::to_string(b.requests),
             util::formatDouble(b.busyMs, 1), std::to_string(b.replications),
             std::to_string(b.invalidations),
             std::to_string(b.bytesToWorker),
             std::to_string(b.bytesFromWorker)});
      }
      std::cout << "\n";
      shardsTable.print(std::cout);

      std::cout << "\nserved " << report.totalRequests << " requests in "
                << report.epochs << " epochs, "
                << util::formatDouble(report.wallMs, 1) << " ms ("
                << util::formatDouble(report.requestsPerSec / 1e6, 2)
                << " M req/s wall, "
                << util::formatDouble(report.requestsPerSecCritical / 1e6, 2)
                << " M req/s critical-path)\n"
                << "epoch latency p50/p99/p999: "
                << util::formatDouble(report.epochMsP50, 2) << " / "
                << util::formatDouble(report.epochMsP99, 2) << " / "
                << util::formatDouble(report.epochMsP999, 2) << " ms\n"
                << "congestion " << util::formatDouble(report.congestion, 1)
                << " vs offline lower bound "
                << util::formatDouble(report.lowerBound, 1) << " — ratio "
                << util::formatDouble(report.ratio, 2) << "\n"
                << report.replacements << " re-placements, "
                << report.replications << " replications, "
                << report.invalidations << " invalidations\n"
                << "cross-shard traffic " << report.crossShardBytes
                << " bytes ("
                << util::formatDouble(report.bytesPerRequest, 1)
                << " bytes/request)\n";

      if (!cli.jsonOut.empty()) {
        util::JsonRecords records;
        for (const serve::EpochRecord& r : coordinator.epochLog()) {
          records.beginRecord();
          records.field("kind", "epoch");
          records.field("epoch", static_cast<std::int64_t>(r.index));
          records.field("requests", static_cast<std::int64_t>(r.requests));
          records.field("wall_ms", r.wallMs);
          records.field("congestion", r.congestion);
          records.field("lower_bound", r.lowerBound);
          records.field("ratio", r.ratio);
          records.field("replaced", r.replaced);
          records.field("degraded", r.degraded);
        }
        for (const shard::ShardBreakdown& b : report.shards) {
          records.beginRecord();
          records.field("kind", "shard");
          records.field("shard", static_cast<std::int64_t>(b.shard));
          records.field("requests", static_cast<std::int64_t>(b.requests));
          records.field("busy_ms", b.busyMs);
          records.field("replications",
                        static_cast<std::int64_t>(b.replications));
          records.field("invalidations",
                        static_cast<std::int64_t>(b.invalidations));
          records.field("bytes_to_worker",
                        static_cast<std::int64_t>(b.bytesToWorker));
          records.field("bytes_from_worker",
                        static_cast<std::int64_t>(b.bytesFromWorker));
          for (const auto& [key, value] : b.policyMetrics) {
            records.field(key, value);
          }
        }
        records.beginRecord();
        records.field("kind", "summary");
        records.field("policy", report.policy);
        records.field("transport", report.transport);
        records.field("partition", report.partition);
        records.field("workers", static_cast<std::int64_t>(report.workers));
        records.field("requests",
                      static_cast<std::int64_t>(report.totalRequests));
        records.field("epochs", static_cast<std::int64_t>(report.epochs));
        records.field("wall_ms", report.wallMs);
        records.field("requests_per_sec", report.requestsPerSec);
        records.field("critical_path_ms", report.criticalPathMs);
        records.field("requests_per_sec_critical",
                      report.requestsPerSecCritical);
        records.field("epoch_ms_p50", report.epochMsP50);
        records.field("epoch_ms_p99", report.epochMsP99);
        records.field("epoch_ms_p999", report.epochMsP999);
        records.field("congestion", report.congestion);
        records.field("lower_bound", report.lowerBound);
        records.field("ratio", report.ratio);
        records.field("replacements",
                      static_cast<std::int64_t>(report.replacements));
        records.field("replications",
                      static_cast<std::int64_t>(report.replications));
        records.field("invalidations",
                      static_cast<std::int64_t>(report.invalidations));
        records.field("cross_shard_bytes",
                      static_cast<std::int64_t>(report.crossShardBytes));
        records.field("bytes_per_request", report.bytesPerRequest);
        records.field("seed", static_cast<std::int64_t>(seed));
        records.writeFile(cli.jsonOut);
        std::cout << "wrote " << cli.jsonOut << "\n";
      }
      return 0;
    }

    serve::EpochServer server(rooted, numObjects, options);

    if (restored) {
      try {
        server.restoreFrom(*restored);
        serve::skipRequests(*stream, restored->servedTotal);
      } catch (const serve::Error&) {
        throw;
      } catch (const std::exception& e) {
        throw serve::Error(serve::Stage::Restore, restored->epochs, e.what());
      }
      std::cout << "restored from " << cli.restoreDir << ": epoch "
                << restored->epochs << ", " << restored->servedTotal
                << " requests already served\n";
    }

    std::cout << "serving "
              << (cli.trace.empty() ? "stream '" + cli.stream + "'"
                                    : "trace " + cli.trace)
              << " over " << tree.processorCount() << " processors, "
              << numObjects << " objects (policy=" << policySpec
              << ", epoch=" << cli.epoch
              << ", threads=" << options.threads << ", seed=" << seed
              << ", drift=" << cli.drift
              << ", pipeline=" << (cli.pipeline ? "on" : "off") << ")\n\n";

    const serve::ServeReport report = server.serve(*stream);

    util::Table epochs({"epoch", "requests", "ms", "congestion",
                        "lower bound", "ratio", "re-placed", "degraded",
                        "ckpt"});
    // The log can run to thousands of epochs; print the first and last
    // few, eliding the middle.
    const std::size_t logSize = server.epochLog().size();
    for (std::size_t i = 0; i < logSize; ++i) {
      if (logSize > 12 && i == 6) {
        epochs.addRow({"...", "...", "...", "...", "...", "...", "...",
                       "...", "..."});
      }
      if (logSize > 12 && i >= 6 && i + 6 < logSize) continue;
      const serve::EpochRecord& r = server.epochLog()[i];
      epochs.addRow({std::to_string(r.index), std::to_string(r.requests),
                     util::formatDouble(r.wallMs, 1),
                     util::formatDouble(r.congestion, 1),
                     util::formatDouble(r.lowerBound, 1),
                     util::formatDouble(r.ratio, 2),
                     r.replaced ? "yes" : "", r.degraded ? "yes" : "",
                     r.checkpointed ? "yes" : ""});
    }
    epochs.print(std::cout);

    std::cout << "\nserved " << report.totalRequests << " requests in "
              << report.epochs << " epochs, "
              << util::formatDouble(report.wallMs, 1) << " ms ("
              << util::formatDouble(report.requestsPerSec / 1e6, 2)
              << " M req/s)\n"
              << "epoch latency p50/p99/p999: "
              << util::formatDouble(report.epochMsP50, 2) << " / "
              << util::formatDouble(report.epochMsP99, 2) << " / "
              << util::formatDouble(report.epochMsP999, 2) << " ms\n"
              << "request latency p50/p99/p999: "
              << util::formatDouble(report.latencyMsP50, 2) << " / "
              << util::formatDouble(report.latencyMsP99, 2) << " / "
              << util::formatDouble(report.latencyMsP999, 2) << " ms ("
              << report.latencySamples << " sampled)\n"
              << "congestion " << util::formatDouble(report.congestion, 1)
              << " vs offline lower bound "
              << util::formatDouble(report.lowerBound, 1) << " — ratio "
              << util::formatDouble(report.ratio, 2) << "\n"
              << report.replacements << " re-placements, "
              << report.replications << " replications, "
              << report.invalidations << " invalidations\n"
              << report.checkpoints << " checkpoints, "
              << report.degradedEpochs << " degraded epochs, "
              << report.handoffRetries << " handoff retries\n";
    if (options.faults && options.faults->triggered() > 0) {
      std::cout << options.faults->triggered() << " faults injected\n";
    }

    if (!cli.jsonOut.empty()) {
      // Ratio fields may be +inf (positive congestion against a zero
      // lower bound); JsonRecords emits non-finite doubles as null and
      // parses null back to NaN, so emit→parse→emit of such records is
      // a fixed point (pinned by tests/serve_test.cpp).
      util::JsonRecords records;
      for (const serve::EpochRecord& r : server.epochLog()) {
        records.beginRecord();
        records.field("kind", "epoch");
        records.field("epoch", static_cast<std::int64_t>(r.index));
        records.field("requests", static_cast<std::int64_t>(r.requests));
        records.field("wall_ms", r.wallMs);
        records.field("congestion", r.congestion);
        records.field("lower_bound", r.lowerBound);
        records.field("ratio", r.ratio);
        records.field("latency_ms_p50", r.latencyMsP50);
        records.field("latency_ms_p99", r.latencyMsP99);
        records.field("latency_ms_p999", r.latencyMsP999);
        records.field("replaced", r.replaced);
        records.field("degraded", r.degraded);
        records.field("checkpointed", r.checkpointed);
      }
      records.beginRecord();
      records.field("kind", "summary");
      records.field("policy", report.policy);
      records.field("pipeline", report.pipeline);
      records.field("latency_sample",
                    static_cast<std::int64_t>(cli.latencySample));
      records.field("requests",
                    static_cast<std::int64_t>(report.totalRequests));
      records.field("epochs", static_cast<std::int64_t>(report.epochs));
      records.field("wall_ms", report.wallMs);
      records.field("requests_per_sec", report.requestsPerSec);
      records.field("epoch_ms_p50", report.epochMsP50);
      records.field("epoch_ms_p99", report.epochMsP99);
      records.field("epoch_ms_p999", report.epochMsP999);
      records.field("latency_ms_p50", report.latencyMsP50);
      records.field("latency_ms_p99", report.latencyMsP99);
      records.field("latency_ms_p999", report.latencyMsP999);
      records.field("latency_samples",
                    static_cast<std::int64_t>(report.latencySamples));
      records.field("congestion", report.congestion);
      records.field("lower_bound", report.lowerBound);
      records.field("ratio", report.ratio);
      records.field("replacements",
                    static_cast<std::int64_t>(report.replacements));
      records.field("replications",
                    static_cast<std::int64_t>(report.replications));
      records.field("invalidations",
                    static_cast<std::int64_t>(report.invalidations));
      records.field("degraded_epochs",
                    static_cast<std::int64_t>(report.degradedEpochs));
      records.field("handoff_retries",
                    static_cast<std::int64_t>(report.handoffRetries));
      records.field("checkpoints",
                    static_cast<std::int64_t>(report.checkpoints));
      records.field("seed", static_cast<std::int64_t>(seed));
      records.field("threads", options.threads);
      // The policy's own diagnostics, keys already "policy."-prefixed.
      for (const auto& [key, value] : report.policyMetrics) {
        records.field(key, value);
      }
      records.writeFile(cli.jsonOut);
      std::cout << "wrote " << cli.jsonOut << "\n";
    }
    return 0;
  } catch (const serve::Error& e) {
    // Stage failures carry their own exit code (10-14, one per stage —
    // see docs/robustness.md) so supervisors can tell a corrupt trace
    // from a failed checkpoint without parsing stderr.
    std::cerr << "error: " << e.what() << "\n";
    return e.exitCode();
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
