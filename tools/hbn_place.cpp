// hbn_place — command-line placement driver.
//
// Usage:
//   hbn_place <tree-file> <workload-file> [strategy]
//
// strategy: extended-nibble (default) | nibble | greedy | median |
//           full-replication
//
// Reads a hierarchical bus network (hbn-tree v1 text format, see
// hbn/net/serialize.h) and a workload (hbn-workload v1, see
// hbn/workload/serialize.h), computes the placement, and prints each
// object's copy locations plus the load report (per-edge loads, bus
// loads, congestion, certified lower bound).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "hbn/baseline/heuristics.h"
#include "hbn/core/extended_nibble.h"
#include "hbn/core/lower_bound.h"
#include "hbn/core/nibble.h"
#include "hbn/net/serialize.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/serialize.h"

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbn;
  if (argc < 3 || argc > 4) {
    std::cerr << "usage: hbn_place <tree-file> <workload-file> "
                 "[extended-nibble|nibble|greedy|median|full-replication]\n";
    return 2;
  }
  try {
    const net::Tree tree = net::parseText(readFile(argv[1]));
    const workload::Workload load = workload::parseText(readFile(argv[2]));
    if (load.numNodes() != tree.nodeCount()) {
      throw std::runtime_error("workload node count does not match tree");
    }
    const std::string strategy = argc == 4 ? argv[3] : "extended-nibble";

    core::Placement placement;
    if (strategy == "extended-nibble") {
      placement = core::computeExtendedNibblePlacement(tree, load);
    } else if (strategy == "nibble") {
      placement = core::nibblePlacement(tree, load);
    } else if (strategy == "greedy") {
      placement = baseline::bestSingleCopy(tree, load);
    } else if (strategy == "median") {
      placement = baseline::weightedMedian(tree, load);
    } else if (strategy == "full-replication") {
      placement = baseline::fullReplication(tree, load);
    } else {
      std::cerr << "unknown strategy '" << strategy << "'\n";
      return 2;
    }

    std::cout << "strategy: " << strategy << "\n\nplacement:\n";
    for (workload::ObjectId x = 0; x < load.numObjects(); ++x) {
      std::cout << "  object " << x << " -> {";
      bool first = true;
      for (const net::NodeId v :
           placement.objects[static_cast<std::size_t>(x)].locations()) {
        std::cout << (first ? "" : ", ") << v;
        first = false;
      }
      std::cout << "}\n";
    }

    const net::RootedTree rooted(tree, tree.defaultRoot());
    const core::LoadMap loads = core::computeLoad(rooted, placement);
    util::Table edges({"edge", "u", "v", "load", "bandwidth", "relative"});
    for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
      const net::Edge& ed = tree.edge(e);
      edges.addRow({std::to_string(e), std::to_string(ed.u),
                    std::to_string(ed.v), std::to_string(loads.edgeLoad(e)),
                    util::formatDouble(ed.bandwidth, 1),
                    util::formatDouble(static_cast<double>(loads.edgeLoad(e)) /
                                           ed.bandwidth,
                                       2)});
    }
    std::cout << "\nedge loads:\n";
    edges.print(std::cout);

    util::Table buses({"bus", "load", "bandwidth", "relative"});
    for (const net::NodeId b : tree.buses()) {
      buses.addRow({std::to_string(b),
                    util::formatDouble(loads.busLoad(tree, b), 1),
                    util::formatDouble(tree.busBandwidth(b), 1),
                    util::formatDouble(
                        loads.busLoad(tree, b) / tree.busBandwidth(b), 2)});
    }
    std::cout << "\nbus loads:\n";
    buses.print(std::cout);

    const double lb = core::analyticLowerBound(rooted, load).congestion;
    std::cout << "\ncongestion:  " << loads.congestion(tree)
              << "\nlower bound: " << lb << "\n";
    if (lb > 0) {
      std::cout << "ratio:       " << loads.congestion(tree) / lb << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
