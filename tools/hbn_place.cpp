// hbn_place — command-line placement driver.
//
// Usage:
//   hbn_place [options] <tree-file> <workload-file>
//   hbn_place --bench [hbn_bench arguments...]
//
// Strategies come from the engine registry (see --help for the generated
// list); --threads shards the per-object work over a pool with
// bit-identical output for any thread count. `--bench` forwards the
// remaining arguments to the hbn_bench experiment driver, so the
// strategy and experiment surfaces share one binary and one CLI
// vocabulary.
//
// Reads a hierarchical bus network (hbn-tree v1 text format, see
// hbn/net/serialize.h) and a workload (hbn-workload v1, see
// hbn/workload/serialize.h), computes the placement, and prints each
// object's copy locations plus the load report (per-edge loads, bus
// loads, congestion, certified lower bound).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "experiments/experiments.h"
#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"
#include "hbn/engine/cli.h"
#include "hbn/engine/registry.h"
#include "hbn/net/serialize.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/serialize.h"

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

void printUsage(std::ostream& os) {
  os << "usage: hbn_place [options] <tree-file> <workload-file>\n"
        "       hbn_place --bench [hbn_bench arguments...]\n\n"
     << hbn::engine::cliHelp();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbn;
  // `hbn_place --bench ...` hands everything after the flag to the
  // unified experiment driver (same registry, same JSON emission as
  // hbn_bench). It must come first: placement arguments cannot be mixed
  // into a bench invocation.
  if (argc > 1 && std::string_view(argv[1]) == "--bench") {
    std::vector<char*> rest;
    rest.reserve(static_cast<std::size_t>(argc - 1));
    rest.push_back(argv[0]);
    for (int j = 2; j < argc; ++j) rest.push_back(argv[j]);
    return engine::runBenchCli(bench::experiments(),
                               static_cast<int>(rest.size()), rest.data());
  }
  try {
    const engine::CliOptions cli = engine::parseCli(argc, argv);
    if (cli.help) {
      printUsage(std::cout);
      return 0;
    }
    if (cli.positional.size() != 2) {
      printUsage(std::cerr);
      return 2;
    }
    if (cli.strategies.size() > 1) {
      throw std::invalid_argument("hbn_place takes a single --strategy");
    }
    const std::string spec =
        cli.strategies.empty() ? "extended-nibble" : cli.strategies.front();

    const net::Tree tree = net::parseText(readFile(cli.positional[0]));
    const workload::Workload load =
        workload::parseText(readFile(cli.positional[1]));
    if (load.numNodes() != tree.nodeCount()) {
      throw std::runtime_error("workload node count does not match tree");
    }

    const auto strategy = engine::StrategyRegistry::global().create(spec);
    engine::Context ctx = engine::makeContext(cli, /*defaultSeed=*/1);
    const core::Placement placement = strategy->place(tree, load, ctx);

    std::cout << "strategy: " << spec << " (threads=" << ctx.threads
              << ", seed=" << ctx.seed << ")\n\nplacement:\n";
    for (workload::ObjectId x = 0; x < load.numObjects(); ++x) {
      std::cout << "  object " << x << " -> {";
      bool first = true;
      for (const net::NodeId v :
           placement.objects[static_cast<std::size_t>(x)].locations()) {
        std::cout << (first ? "" : ", ") << v;
        first = false;
      }
      std::cout << "}\n";
    }

    const net::RootedTree rooted(tree, tree.defaultRoot());
    const core::LoadMap loads = core::computeLoad(rooted, placement);
    util::Table edges({"edge", "u", "v", "load", "bandwidth", "relative"});
    for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
      const net::Edge& ed = tree.edge(e);
      edges.addRow({std::to_string(e), std::to_string(ed.u),
                    std::to_string(ed.v), std::to_string(loads.edgeLoad(e)),
                    util::formatDouble(ed.bandwidth, 1),
                    util::formatDouble(static_cast<double>(loads.edgeLoad(e)) /
                                           ed.bandwidth,
                                       2)});
    }
    std::cout << "\nedge loads:\n";
    edges.print(std::cout);

    util::Table buses({"bus", "load", "bandwidth", "relative"});
    for (const net::NodeId b : tree.buses()) {
      buses.addRow({std::to_string(b),
                    util::formatDouble(loads.busLoad(tree, b), 1),
                    util::formatDouble(tree.busBandwidth(b), 1),
                    util::formatDouble(
                        loads.busLoad(tree, b) / tree.busBandwidth(b), 2)});
    }
    std::cout << "\nbus loads:\n";
    buses.print(std::cout);

    const double lb = core::analyticLowerBound(rooted, load).congestion;
    std::cout << "\ncongestion:  " << loads.congestion(tree)
              << "\nlower bound: " << lb << "\n";
    if (lb > 0) {
      std::cout << "ratio:       " << loads.congestion(tree) / lb << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
