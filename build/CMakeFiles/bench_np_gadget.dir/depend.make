# Empty dependencies file for bench_np_gadget.
# This may be replaced when dependencies are built.
