file(REMOVE_RECURSE
  "CMakeFiles/bench_np_gadget.dir/bench/bench_np_gadget.cpp.o"
  "CMakeFiles/bench_np_gadget.dir/bench/bench_np_gadget.cpp.o.d"
  "bench_np_gadget"
  "bench_np_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_np_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
