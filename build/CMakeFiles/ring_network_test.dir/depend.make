# Empty dependencies file for ring_network_test.
# This may be replaced when dependencies are built.
