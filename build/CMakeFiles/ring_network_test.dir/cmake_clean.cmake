file(REMOVE_RECURSE
  "CMakeFiles/ring_network_test.dir/tests/ring_network_test.cpp.o"
  "CMakeFiles/ring_network_test.dir/tests/ring_network_test.cpp.o.d"
  "ring_network_test"
  "ring_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
