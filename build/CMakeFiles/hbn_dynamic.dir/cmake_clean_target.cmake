file(REMOVE_RECURSE
  "libhbn_dynamic.a"
)
