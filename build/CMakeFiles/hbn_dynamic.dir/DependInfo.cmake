
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynamic/harness.cpp" "CMakeFiles/hbn_dynamic.dir/src/dynamic/harness.cpp.o" "gcc" "CMakeFiles/hbn_dynamic.dir/src/dynamic/harness.cpp.o.d"
  "/root/repo/src/dynamic/online_strategy.cpp" "CMakeFiles/hbn_dynamic.dir/src/dynamic/online_strategy.cpp.o" "gcc" "CMakeFiles/hbn_dynamic.dir/src/dynamic/online_strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/hbn_core.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_baseline.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_workload.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_net.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
