file(REMOVE_RECURSE
  "CMakeFiles/hbn_dynamic.dir/src/dynamic/harness.cpp.o"
  "CMakeFiles/hbn_dynamic.dir/src/dynamic/harness.cpp.o.d"
  "CMakeFiles/hbn_dynamic.dir/src/dynamic/online_strategy.cpp.o"
  "CMakeFiles/hbn_dynamic.dir/src/dynamic/online_strategy.cpp.o.d"
  "libhbn_dynamic.a"
  "libhbn_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbn_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
