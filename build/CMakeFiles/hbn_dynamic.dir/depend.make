# Empty dependencies file for hbn_dynamic.
# This may be replaced when dependencies are built.
