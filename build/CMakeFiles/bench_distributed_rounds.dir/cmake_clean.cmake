file(REMOVE_RECURSE
  "CMakeFiles/bench_distributed_rounds.dir/bench/bench_distributed_rounds.cpp.o"
  "CMakeFiles/bench_distributed_rounds.dir/bench/bench_distributed_rounds.cpp.o.d"
  "bench_distributed_rounds"
  "bench_distributed_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
