# Empty dependencies file for bench_distributed_rounds.
# This may be replaced when dependencies are built.
