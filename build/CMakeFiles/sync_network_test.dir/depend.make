# Empty dependencies file for sync_network_test.
# This may be replaced when dependencies are built.
