file(REMOVE_RECURSE
  "CMakeFiles/sync_network_test.dir/tests/sync_network_test.cpp.o"
  "CMakeFiles/sync_network_test.dir/tests/sync_network_test.cpp.o.d"
  "sync_network_test"
  "sync_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
