file(REMOVE_RECURSE
  "CMakeFiles/hbn_sim.dir/src/sim/simulator.cpp.o"
  "CMakeFiles/hbn_sim.dir/src/sim/simulator.cpp.o.d"
  "libhbn_sim.a"
  "libhbn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
