# Empty dependencies file for hbn_sim.
# This may be replaced when dependencies are built.
