file(REMOVE_RECURSE
  "libhbn_sim.a"
)
