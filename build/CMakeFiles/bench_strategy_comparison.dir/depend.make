# Empty dependencies file for bench_strategy_comparison.
# This may be replaced when dependencies are built.
