file(REMOVE_RECURSE
  "CMakeFiles/bench_strategy_comparison.dir/bench/bench_strategy_comparison.cpp.o"
  "CMakeFiles/bench_strategy_comparison.dir/bench/bench_strategy_comparison.cpp.o.d"
  "bench_strategy_comparison"
  "bench_strategy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strategy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
