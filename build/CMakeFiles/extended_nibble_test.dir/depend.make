# Empty dependencies file for extended_nibble_test.
# This may be replaced when dependencies are built.
