file(REMOVE_RECURSE
  "CMakeFiles/extended_nibble_test.dir/tests/extended_nibble_test.cpp.o"
  "CMakeFiles/extended_nibble_test.dir/tests/extended_nibble_test.cpp.o.d"
  "extended_nibble_test"
  "extended_nibble_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_nibble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
