file(REMOVE_RECURSE
  "libhbn_sci.a"
)
