file(REMOVE_RECURSE
  "CMakeFiles/hbn_sci.dir/src/sci/ring_network.cpp.o"
  "CMakeFiles/hbn_sci.dir/src/sci/ring_network.cpp.o.d"
  "CMakeFiles/hbn_sci.dir/src/sci/transactions.cpp.o"
  "CMakeFiles/hbn_sci.dir/src/sci/transactions.cpp.o.d"
  "libhbn_sci.a"
  "libhbn_sci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbn_sci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
