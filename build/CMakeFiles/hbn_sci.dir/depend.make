# Empty dependencies file for hbn_sci.
# This may be replaced when dependencies are built.
