# Empty dependencies file for hbn_baseline.
# This may be replaced when dependencies are built.
