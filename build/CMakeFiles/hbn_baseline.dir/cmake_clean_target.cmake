file(REMOVE_RECURSE
  "libhbn_baseline.a"
)
