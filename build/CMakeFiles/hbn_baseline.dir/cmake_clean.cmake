file(REMOVE_RECURSE
  "CMakeFiles/hbn_baseline.dir/src/baseline/exact.cpp.o"
  "CMakeFiles/hbn_baseline.dir/src/baseline/exact.cpp.o.d"
  "CMakeFiles/hbn_baseline.dir/src/baseline/heuristics.cpp.o"
  "CMakeFiles/hbn_baseline.dir/src/baseline/heuristics.cpp.o.d"
  "libhbn_baseline.a"
  "libhbn_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbn_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
