# Empty dependencies file for hbn_core.
# This may be replaced when dependencies are built.
