file(REMOVE_RECURSE
  "CMakeFiles/hbn_core.dir/src/core/deletion.cpp.o"
  "CMakeFiles/hbn_core.dir/src/core/deletion.cpp.o.d"
  "CMakeFiles/hbn_core.dir/src/core/extended_nibble.cpp.o"
  "CMakeFiles/hbn_core.dir/src/core/extended_nibble.cpp.o.d"
  "CMakeFiles/hbn_core.dir/src/core/load.cpp.o"
  "CMakeFiles/hbn_core.dir/src/core/load.cpp.o.d"
  "CMakeFiles/hbn_core.dir/src/core/lower_bound.cpp.o"
  "CMakeFiles/hbn_core.dir/src/core/lower_bound.cpp.o.d"
  "CMakeFiles/hbn_core.dir/src/core/mapping.cpp.o"
  "CMakeFiles/hbn_core.dir/src/core/mapping.cpp.o.d"
  "CMakeFiles/hbn_core.dir/src/core/nibble.cpp.o"
  "CMakeFiles/hbn_core.dir/src/core/nibble.cpp.o.d"
  "CMakeFiles/hbn_core.dir/src/core/parallel.cpp.o"
  "CMakeFiles/hbn_core.dir/src/core/parallel.cpp.o.d"
  "CMakeFiles/hbn_core.dir/src/core/placement.cpp.o"
  "CMakeFiles/hbn_core.dir/src/core/placement.cpp.o.d"
  "CMakeFiles/hbn_core.dir/src/core/report.cpp.o"
  "CMakeFiles/hbn_core.dir/src/core/report.cpp.o.d"
  "libhbn_core.a"
  "libhbn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
