
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/deletion.cpp" "CMakeFiles/hbn_core.dir/src/core/deletion.cpp.o" "gcc" "CMakeFiles/hbn_core.dir/src/core/deletion.cpp.o.d"
  "/root/repo/src/core/extended_nibble.cpp" "CMakeFiles/hbn_core.dir/src/core/extended_nibble.cpp.o" "gcc" "CMakeFiles/hbn_core.dir/src/core/extended_nibble.cpp.o.d"
  "/root/repo/src/core/load.cpp" "CMakeFiles/hbn_core.dir/src/core/load.cpp.o" "gcc" "CMakeFiles/hbn_core.dir/src/core/load.cpp.o.d"
  "/root/repo/src/core/lower_bound.cpp" "CMakeFiles/hbn_core.dir/src/core/lower_bound.cpp.o" "gcc" "CMakeFiles/hbn_core.dir/src/core/lower_bound.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "CMakeFiles/hbn_core.dir/src/core/mapping.cpp.o" "gcc" "CMakeFiles/hbn_core.dir/src/core/mapping.cpp.o.d"
  "/root/repo/src/core/nibble.cpp" "CMakeFiles/hbn_core.dir/src/core/nibble.cpp.o" "gcc" "CMakeFiles/hbn_core.dir/src/core/nibble.cpp.o.d"
  "/root/repo/src/core/parallel.cpp" "CMakeFiles/hbn_core.dir/src/core/parallel.cpp.o" "gcc" "CMakeFiles/hbn_core.dir/src/core/parallel.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "CMakeFiles/hbn_core.dir/src/core/placement.cpp.o" "gcc" "CMakeFiles/hbn_core.dir/src/core/placement.cpp.o.d"
  "/root/repo/src/core/report.cpp" "CMakeFiles/hbn_core.dir/src/core/report.cpp.o" "gcc" "CMakeFiles/hbn_core.dir/src/core/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/hbn_workload.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_net.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
