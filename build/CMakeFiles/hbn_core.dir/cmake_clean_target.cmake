file(REMOVE_RECURSE
  "libhbn_core.a"
)
