file(REMOVE_RECURSE
  "CMakeFiles/hbn_engine.dir/src/engine/cli.cpp.o"
  "CMakeFiles/hbn_engine.dir/src/engine/cli.cpp.o.d"
  "CMakeFiles/hbn_engine.dir/src/engine/registry.cpp.o"
  "CMakeFiles/hbn_engine.dir/src/engine/registry.cpp.o.d"
  "CMakeFiles/hbn_engine.dir/src/engine/strategies.cpp.o"
  "CMakeFiles/hbn_engine.dir/src/engine/strategies.cpp.o.d"
  "libhbn_engine.a"
  "libhbn_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbn_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
