# Empty dependencies file for hbn_engine.
# This may be replaced when dependencies are built.
