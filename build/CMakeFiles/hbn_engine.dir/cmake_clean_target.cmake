file(REMOVE_RECURSE
  "libhbn_engine.a"
)
