
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/report_test.cpp" "CMakeFiles/report_test.dir/tests/report_test.cpp.o" "gcc" "CMakeFiles/report_test.dir/tests/report_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/hbn_engine.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_dist.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_sim.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_sci.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_nphard.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_baseline.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_core.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_workload.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_net.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
