file(REMOVE_RECURSE
  "CMakeFiles/distributed_nibble_test.dir/tests/distributed_nibble_test.cpp.o"
  "CMakeFiles/distributed_nibble_test.dir/tests/distributed_nibble_test.cpp.o.d"
  "distributed_nibble_test"
  "distributed_nibble_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_nibble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
