# Empty dependencies file for distributed_nibble_test.
# This may be replaced when dependencies are built.
