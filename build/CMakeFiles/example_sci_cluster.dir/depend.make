# Empty dependencies file for example_sci_cluster.
# This may be replaced when dependencies are built.
