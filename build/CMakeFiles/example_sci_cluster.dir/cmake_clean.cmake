file(REMOVE_RECURSE
  "CMakeFiles/example_sci_cluster.dir/examples/sci_cluster.cpp.o"
  "CMakeFiles/example_sci_cluster.dir/examples/sci_cluster.cpp.o.d"
  "example_sci_cluster"
  "example_sci_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sci_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
