file(REMOVE_RECURSE
  "CMakeFiles/rooted_test.dir/tests/rooted_test.cpp.o"
  "CMakeFiles/rooted_test.dir/tests/rooted_test.cpp.o.d"
  "rooted_test"
  "rooted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rooted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
