# Empty dependencies file for rooted_test.
# This may be replaced when dependencies are built.
