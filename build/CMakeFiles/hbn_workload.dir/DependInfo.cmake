
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generators.cpp" "CMakeFiles/hbn_workload.dir/src/workload/generators.cpp.o" "gcc" "CMakeFiles/hbn_workload.dir/src/workload/generators.cpp.o.d"
  "/root/repo/src/workload/serialize.cpp" "CMakeFiles/hbn_workload.dir/src/workload/serialize.cpp.o" "gcc" "CMakeFiles/hbn_workload.dir/src/workload/serialize.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "CMakeFiles/hbn_workload.dir/src/workload/workload.cpp.o" "gcc" "CMakeFiles/hbn_workload.dir/src/workload/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/hbn_net.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/hbn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
