file(REMOVE_RECURSE
  "CMakeFiles/hbn_workload.dir/src/workload/generators.cpp.o"
  "CMakeFiles/hbn_workload.dir/src/workload/generators.cpp.o.d"
  "CMakeFiles/hbn_workload.dir/src/workload/serialize.cpp.o"
  "CMakeFiles/hbn_workload.dir/src/workload/serialize.cpp.o.d"
  "CMakeFiles/hbn_workload.dir/src/workload/workload.cpp.o"
  "CMakeFiles/hbn_workload.dir/src/workload/workload.cpp.o.d"
  "libhbn_workload.a"
  "libhbn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
