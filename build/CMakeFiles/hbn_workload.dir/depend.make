# Empty dependencies file for hbn_workload.
# This may be replaced when dependencies are built.
