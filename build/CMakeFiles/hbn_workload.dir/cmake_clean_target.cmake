file(REMOVE_RECURSE
  "libhbn_workload.a"
)
