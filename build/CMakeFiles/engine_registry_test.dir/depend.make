# Empty dependencies file for engine_registry_test.
# This may be replaced when dependencies are built.
