file(REMOVE_RECURSE
  "CMakeFiles/engine_registry_test.dir/tests/engine_registry_test.cpp.o"
  "CMakeFiles/engine_registry_test.dir/tests/engine_registry_test.cpp.o.d"
  "engine_registry_test"
  "engine_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
