file(REMOVE_RECURSE
  "CMakeFiles/hbn_net.dir/src/net/generators.cpp.o"
  "CMakeFiles/hbn_net.dir/src/net/generators.cpp.o.d"
  "CMakeFiles/hbn_net.dir/src/net/rooted.cpp.o"
  "CMakeFiles/hbn_net.dir/src/net/rooted.cpp.o.d"
  "CMakeFiles/hbn_net.dir/src/net/serialize.cpp.o"
  "CMakeFiles/hbn_net.dir/src/net/serialize.cpp.o.d"
  "CMakeFiles/hbn_net.dir/src/net/steiner.cpp.o"
  "CMakeFiles/hbn_net.dir/src/net/steiner.cpp.o.d"
  "CMakeFiles/hbn_net.dir/src/net/tree.cpp.o"
  "CMakeFiles/hbn_net.dir/src/net/tree.cpp.o.d"
  "libhbn_net.a"
  "libhbn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
