
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/generators.cpp" "CMakeFiles/hbn_net.dir/src/net/generators.cpp.o" "gcc" "CMakeFiles/hbn_net.dir/src/net/generators.cpp.o.d"
  "/root/repo/src/net/rooted.cpp" "CMakeFiles/hbn_net.dir/src/net/rooted.cpp.o" "gcc" "CMakeFiles/hbn_net.dir/src/net/rooted.cpp.o.d"
  "/root/repo/src/net/serialize.cpp" "CMakeFiles/hbn_net.dir/src/net/serialize.cpp.o" "gcc" "CMakeFiles/hbn_net.dir/src/net/serialize.cpp.o.d"
  "/root/repo/src/net/steiner.cpp" "CMakeFiles/hbn_net.dir/src/net/steiner.cpp.o" "gcc" "CMakeFiles/hbn_net.dir/src/net/steiner.cpp.o.d"
  "/root/repo/src/net/tree.cpp" "CMakeFiles/hbn_net.dir/src/net/tree.cpp.o" "gcc" "CMakeFiles/hbn_net.dir/src/net/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/hbn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
