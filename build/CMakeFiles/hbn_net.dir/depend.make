# Empty dependencies file for hbn_net.
# This may be replaced when dependencies are built.
