file(REMOVE_RECURSE
  "libhbn_net.a"
)
