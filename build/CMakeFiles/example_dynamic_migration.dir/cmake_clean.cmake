file(REMOVE_RECURSE
  "CMakeFiles/example_dynamic_migration.dir/examples/dynamic_migration.cpp.o"
  "CMakeFiles/example_dynamic_migration.dir/examples/dynamic_migration.cpp.o.d"
  "example_dynamic_migration"
  "example_dynamic_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dynamic_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
