file(REMOVE_RECURSE
  "CMakeFiles/bench_approx_ratio.dir/bench/bench_approx_ratio.cpp.o"
  "CMakeFiles/bench_approx_ratio.dir/bench/bench_approx_ratio.cpp.o.d"
  "bench_approx_ratio"
  "bench_approx_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approx_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
