# Empty dependencies file for example_web_cache.
# This may be replaced when dependencies are built.
