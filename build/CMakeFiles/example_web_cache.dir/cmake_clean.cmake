file(REMOVE_RECURSE
  "CMakeFiles/example_web_cache.dir/examples/web_cache.cpp.o"
  "CMakeFiles/example_web_cache.dir/examples/web_cache.cpp.o.d"
  "example_web_cache"
  "example_web_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_web_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
