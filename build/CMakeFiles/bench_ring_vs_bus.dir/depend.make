# Empty dependencies file for bench_ring_vs_bus.
# This may be replaced when dependencies are built.
