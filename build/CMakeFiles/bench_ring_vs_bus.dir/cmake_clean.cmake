file(REMOVE_RECURSE
  "CMakeFiles/bench_ring_vs_bus.dir/bench/bench_ring_vs_bus.cpp.o"
  "CMakeFiles/bench_ring_vs_bus.dir/bench/bench_ring_vs_bus.cpp.o.d"
  "bench_ring_vs_bus"
  "bench_ring_vs_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ring_vs_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
