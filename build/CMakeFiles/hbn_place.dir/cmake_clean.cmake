file(REMOVE_RECURSE
  "CMakeFiles/hbn_place.dir/tools/hbn_place.cpp.o"
  "CMakeFiles/hbn_place.dir/tools/hbn_place.cpp.o.d"
  "hbn_place"
  "hbn_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbn_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
