# Empty dependencies file for hbn_place.
# This may be replaced when dependencies are built.
