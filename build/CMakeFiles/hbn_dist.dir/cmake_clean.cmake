file(REMOVE_RECURSE
  "CMakeFiles/hbn_dist.dir/src/dist/distributed_nibble.cpp.o"
  "CMakeFiles/hbn_dist.dir/src/dist/distributed_nibble.cpp.o.d"
  "CMakeFiles/hbn_dist.dir/src/dist/sync_network.cpp.o"
  "CMakeFiles/hbn_dist.dir/src/dist/sync_network.cpp.o.d"
  "libhbn_dist.a"
  "libhbn_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbn_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
