# Empty dependencies file for hbn_dist.
# This may be replaced when dependencies are built.
