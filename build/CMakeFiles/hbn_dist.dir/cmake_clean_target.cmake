file(REMOVE_RECURSE
  "libhbn_dist.a"
)
