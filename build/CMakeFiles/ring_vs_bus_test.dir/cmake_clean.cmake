file(REMOVE_RECURSE
  "CMakeFiles/ring_vs_bus_test.dir/tests/ring_vs_bus_test.cpp.o"
  "CMakeFiles/ring_vs_bus_test.dir/tests/ring_vs_bus_test.cpp.o.d"
  "ring_vs_bus_test"
  "ring_vs_bus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_vs_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
