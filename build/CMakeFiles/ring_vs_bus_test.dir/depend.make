# Empty dependencies file for ring_vs_bus_test.
# This may be replaced when dependencies are built.
