file(REMOVE_RECURSE
  "CMakeFiles/engine_determinism_test.dir/tests/engine_determinism_test.cpp.o"
  "CMakeFiles/engine_determinism_test.dir/tests/engine_determinism_test.cpp.o.d"
  "engine_determinism_test"
  "engine_determinism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
