# Empty dependencies file for engine_determinism_test.
# This may be replaced when dependencies are built.
