# Empty dependencies file for bench_nibble_optimality.
# This may be replaced when dependencies are built.
