file(REMOVE_RECURSE
  "CMakeFiles/bench_nibble_optimality.dir/bench/bench_nibble_optimality.cpp.o"
  "CMakeFiles/bench_nibble_optimality.dir/bench/bench_nibble_optimality.cpp.o.d"
  "bench_nibble_optimality"
  "bench_nibble_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nibble_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
