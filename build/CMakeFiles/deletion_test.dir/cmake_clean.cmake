file(REMOVE_RECURSE
  "CMakeFiles/deletion_test.dir/tests/deletion_test.cpp.o"
  "CMakeFiles/deletion_test.dir/tests/deletion_test.cpp.o.d"
  "deletion_test"
  "deletion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deletion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
