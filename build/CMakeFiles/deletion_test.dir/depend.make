# Empty dependencies file for deletion_test.
# This may be replaced when dependencies are built.
