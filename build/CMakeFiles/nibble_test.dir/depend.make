# Empty dependencies file for nibble_test.
# This may be replaced when dependencies are built.
