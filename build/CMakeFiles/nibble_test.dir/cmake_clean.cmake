file(REMOVE_RECURSE
  "CMakeFiles/nibble_test.dir/tests/nibble_test.cpp.o"
  "CMakeFiles/nibble_test.dir/tests/nibble_test.cpp.o.d"
  "nibble_test"
  "nibble_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nibble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
