file(REMOVE_RECURSE
  "libhbn_nphard.a"
)
