# Empty dependencies file for hbn_nphard.
# This may be replaced when dependencies are built.
