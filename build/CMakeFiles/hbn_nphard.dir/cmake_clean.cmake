file(REMOVE_RECURSE
  "CMakeFiles/hbn_nphard.dir/src/nphard/gadget.cpp.o"
  "CMakeFiles/hbn_nphard.dir/src/nphard/gadget.cpp.o.d"
  "CMakeFiles/hbn_nphard.dir/src/nphard/partition.cpp.o"
  "CMakeFiles/hbn_nphard.dir/src/nphard/partition.cpp.o.d"
  "libhbn_nphard.a"
  "libhbn_nphard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbn_nphard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
