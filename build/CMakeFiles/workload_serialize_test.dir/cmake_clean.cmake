file(REMOVE_RECURSE
  "CMakeFiles/workload_serialize_test.dir/tests/workload_serialize_test.cpp.o"
  "CMakeFiles/workload_serialize_test.dir/tests/workload_serialize_test.cpp.o.d"
  "workload_serialize_test"
  "workload_serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
