# Empty dependencies file for workload_serialize_test.
# This may be replaced when dependencies are built.
