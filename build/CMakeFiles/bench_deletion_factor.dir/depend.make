# Empty dependencies file for bench_deletion_factor.
# This may be replaced when dependencies are built.
