file(REMOVE_RECURSE
  "CMakeFiles/bench_deletion_factor.dir/bench/bench_deletion_factor.cpp.o"
  "CMakeFiles/bench_deletion_factor.dir/bench/bench_deletion_factor.cpp.o.d"
  "bench_deletion_factor"
  "bench_deletion_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deletion_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
