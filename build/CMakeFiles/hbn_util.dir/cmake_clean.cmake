file(REMOVE_RECURSE
  "CMakeFiles/hbn_util.dir/src/util/json.cpp.o"
  "CMakeFiles/hbn_util.dir/src/util/json.cpp.o.d"
  "CMakeFiles/hbn_util.dir/src/util/rng.cpp.o"
  "CMakeFiles/hbn_util.dir/src/util/rng.cpp.o.d"
  "CMakeFiles/hbn_util.dir/src/util/stats.cpp.o"
  "CMakeFiles/hbn_util.dir/src/util/stats.cpp.o.d"
  "CMakeFiles/hbn_util.dir/src/util/table.cpp.o"
  "CMakeFiles/hbn_util.dir/src/util/table.cpp.o.d"
  "libhbn_util.a"
  "libhbn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
