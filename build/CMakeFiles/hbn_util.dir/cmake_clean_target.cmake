file(REMOVE_RECURSE
  "libhbn_util.a"
)
