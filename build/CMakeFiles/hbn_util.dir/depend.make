# Empty dependencies file for hbn_util.
# This may be replaced when dependencies are built.
