#include "hbn/dist/distributed_nibble.h"

#include <algorithm>
#include <stdexcept>

#include "hbn/core/nibble.h"

namespace hbn::dist {
namespace {

using workload::Count;
using workload::ObjectId;

/// Weight of v's subtree when the tree is re-rooted at g, derived from the
/// fixed-root subtree sums: unchanged when g is outside v's subtree,
/// complemented along the g-to-root path otherwise.
Count subtreeTowards(const net::RootedTree& rooted, net::NodeId v,
                     net::NodeId g, Count total,
                     const std::vector<Count>& sub) {
  if (v == g) return total;
  if (!rooted.isAncestorOf(v, g)) return sub[static_cast<std::size_t>(v)];
  for (const net::NodeId c : rooted.children(v)) {
    if (rooted.isAncestorOf(c, g)) {
      return total - sub[static_cast<std::size_t>(c)];
    }
  }
  return sub[static_cast<std::size_t>(v)];  // unreachable for valid inputs
}

}  // namespace

DistributedNibbleResult distributedNibble(const net::RootedTree& rooted,
                                          const workload::Workload& load) {
  const net::Tree& tree = rooted.tree();
  if (load.numNodes() != tree.nodeCount()) {
    throw std::invalid_argument(
        "distributedNibble: workload dimension mismatch");
  }
  const auto n = static_cast<std::size_t>(tree.nodeCount());
  const int numObjects = load.numObjects();
  const int height = rooted.height();

  DistributedNibbleResult result;
  result.placement.objects.resize(static_cast<std::size_t>(numObjects));
  result.gravityCenters.assign(static_cast<std::size_t>(numObjects),
                               net::kInvalidNode);

  // Per-object working state filled in by the wave callbacks.
  std::vector<std::vector<Count>> sub(static_cast<std::size_t>(numObjects));
  std::vector<Count> total(static_cast<std::size_t>(numObjects), 0);
  std::vector<std::vector<char>> candidate(
      static_cast<std::size_t>(numObjects));
  std::vector<std::vector<char>> hasCopy(static_cast<std::size_t>(numObjects));
  std::vector<net::NodeId> center(static_cast<std::size_t>(numObjects),
                                  net::kInvalidNode);

  SyncEngine engine(rooted);
  const auto inf = static_cast<std::int64_t>(tree.nodeCount());

  for (ObjectId x = 0; x < numObjects; ++x) {
    const auto xi = static_cast<std::size_t>(x);
    if (load.objectTotal(x) == 0) {
      // Sequential convention: one (unused) copy on the first processor.
      result.gravityCenters[xi] = tree.processors().front();
      core::Copy c;
      c.location = tree.processors().front();
      result.placement.objects[xi].copies.push_back(std::move(c));
      continue;
    }
    if (height == 0) {
      // Single-node tree: nothing to communicate.
      const net::NodeId only = rooted.root();
      result.gravityCenters[xi] = only;
      std::vector<char> flags(n, 1);
      result.placement.objects[xi] =
          core::assembleCopySet(tree, load, x, flags, only);
      continue;
    }
    sub[xi].assign(n, 0);
    candidate[xi].assign(n, 0);
    hasCopy[xi].assign(n, 0);
    const Count kappa = load.objectWrites(x);

    // Wave A (lane 0, rounds x+1 .. x+h): convergecast of subtree weights
    // h(T_r(v), x); every node learns its own subtree sum on the way up.
    ConvergecastWave weightsUp;
    weightsUp.startRound = x;
    weightsUp.lane = 0;
    weightsUp.localValue = [&load, x](net::NodeId v) {
      return Payload{load.total(x, v), 0, 0, 0};
    };
    weightsUp.combine = [](const Payload& a, const Payload& b) {
      return Payload{a[0] + b[0], 0, 0, 0};
    };
    weightsUp.onPartial = [&sub, xi](net::NodeId v, const Payload& p) {
      sub[xi][static_cast<std::size_t>(v)] = p[0];
    };
    weightsUp.onResult = [&sub, &total, xi, &rooted](const Payload& p) {
      total[xi] = p[0];
      sub[xi][static_cast<std::size_t>(rooted.root())] = p[0];
    };
    engine.add(std::move(weightsUp));

    // Wave B (lane 1, rounds x+h+1 .. x+2h): broadcast of the
    // parent-side component weight; with the children's subtree sums each
    // node decides locally whether it is a centre-of-gravity candidate
    // (every component of T - v at most half the total).
    BroadcastWave componentsDown;
    componentsDown.startRound = x + height;
    componentsDown.lane = 1;
    componentsDown.rootValue = Payload{0, 0, 0, 0};
    componentsDown.childValue = [&sub, &total, xi](net::NodeId,
                                                   net::NodeId to,
                                                   const Payload&) {
      return Payload{total[xi] - sub[xi][static_cast<std::size_t>(to)], 0, 0,
                     0};
    };
    componentsDown.onArrive = [&sub, &total, &candidate, xi, &rooted](
                                  net::NodeId v, const Payload& p) {
      Count maxComponent = p[0];
      for (const net::NodeId c : rooted.children(v)) {
        maxComponent =
            std::max(maxComponent, sub[xi][static_cast<std::size_t>(c)]);
      }
      candidate[xi][static_cast<std::size_t>(v)] =
          2 * maxComponent <= total[xi] ? 1 : 0;
    };
    engine.add(std::move(componentsDown));

    // Wave C (lane 2, rounds x+2h+1 .. x+3h): elect the smallest-index
    // candidate — the sequential tie-break of centerOfGravity.
    ConvergecastWave electCenter;
    electCenter.startRound = x + 2 * height;
    electCenter.lane = 2;
    electCenter.localValue = [&candidate, xi, inf](net::NodeId v) {
      return Payload{candidate[xi][static_cast<std::size_t>(v)]
                         ? static_cast<std::int64_t>(v)
                         : inf,
                     0, 0, 0};
    };
    electCenter.combine = [](const Payload& a, const Payload& b) {
      return Payload{std::min(a[0], b[0]), 0, 0, 0};
    };
    electCenter.onResult = [&center, xi](const Payload& p) {
      center[xi] = static_cast<net::NodeId>(p[0]);
    };
    engine.add(std::move(electCenter));

    // Wave D (lane 3, rounds x+3h+1 .. x+4h): announce the centre; each
    // node derives its g-rooted subtree weight from the wave-A sums and
    // applies the nibble rule h(T_g(v)) > w(T) locally.
    BroadcastWave announceCenter;
    announceCenter.startRound = x + 3 * height;
    announceCenter.lane = 3;
    announceCenter.rootValueFn = [&center, xi] {
      return Payload{center[xi], 0, 0, 0};
    };
    announceCenter.childValue = [](net::NodeId, net::NodeId,
                                   const Payload& p) { return p; };
    announceCenter.onArrive = [&sub, &total, &hasCopy, xi, kappa, &rooted](
                                  net::NodeId v, const Payload& p) {
      const auto g = static_cast<net::NodeId>(p[0]);
      const Count below =
          subtreeTowards(rooted, v, g, total[xi], sub[xi]);
      hasCopy[xi][static_cast<std::size_t>(v)] =
          (v == g || below > kappa) ? 1 : 0;
    };
    engine.add(std::move(announceCenter));
  }

  result.stats = engine.run();

  for (ObjectId x = 0; x < numObjects; ++x) {
    const auto xi = static_cast<std::size_t>(x);
    if (result.gravityCenters[xi] != net::kInvalidNode) continue;  // no waves
    result.gravityCenters[xi] = center[xi];
    result.placement.objects[xi] =
        core::assembleCopySet(tree, load, x, hasCopy[xi], center[xi]);
  }
  return result;
}

}  // namespace hbn::dist
