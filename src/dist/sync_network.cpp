#include "hbn/dist/sync_network.h"

#include <deque>
#include <map>
#include <stdexcept>
#include <utility>

namespace hbn::dist {
namespace {

// Channel key: (directed use of an edge, lane). Direction 0 = child to
// parent (convergecast), 1 = parent to child (broadcast). std::map keeps
// the per-round service order deterministic.
using ChannelKey = std::pair<std::int64_t, int>;

ChannelKey channelOf(net::EdgeId edge, int direction, int lane) {
  return {static_cast<std::int64_t>(edge) * 2 + direction, lane};
}

}  // namespace

SyncEngine::SyncEngine(const net::RootedTree& rooted) : rooted_(&rooted) {}

void SyncEngine::add(ConvergecastWave wave) {
  if (!wave.localValue || !wave.combine) {
    throw std::invalid_argument(
        "SyncEngine: convergecast wave needs localValue and combine");
  }
  conv_.push_back(std::move(wave));
}

void SyncEngine::add(BroadcastWave wave) {
  if (!wave.childValue) {
    throw std::invalid_argument(
        "SyncEngine: broadcast wave needs childValue");
  }
  bcast_.push_back(std::move(wave));
}

SyncStats SyncEngine::run() {
  const net::RootedTree& rooted = *rooted_;
  const net::Tree& tree = rooted.tree();
  const auto n = static_cast<std::size_t>(tree.nodeCount());
  const net::NodeId root = rooted.root();

  struct ConvState {
    std::vector<int> pending;   // children not yet received
    std::vector<Payload> acc;   // fold of received child aggregates
    std::vector<char> anyAcc;
    bool complete = false;
    // Send frontier: nodes whose subtree completed. Each node enters
    // exactly once (pending hits zero once), so the enqueue phase visits
    // senders instead of rescanning the whole tree every round.
    std::vector<net::NodeId> readyNow;
    std::vector<net::NodeId> readyNext;  // deliver round t -> send t+1
  };
  struct BcastState {
    std::vector<Payload> value;
    std::vector<char> arrived;
    bool started = false;
    int arrivedCount = 0;
    std::vector<net::NodeId> forwardNext;  // deliver round t -> forward t+1
    std::vector<net::NodeId> forwardNow;
  };

  std::vector<ConvState> conv(conv_.size());
  for (std::size_t w = 0; w < conv_.size(); ++w) {
    conv[w].pending.resize(n);
    conv[w].acc.resize(n);
    conv[w].anyAcc.assign(n, 0);
    for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
      conv[w].pending[static_cast<std::size_t>(v)] =
          static_cast<int>(rooted.children(v).size());
      if (v != root && rooted.children(v).empty()) {
        conv[w].readyNow.push_back(v);
      }
    }
  }
  std::vector<BcastState> bcast(bcast_.size());
  for (auto& state : bcast) {
    state.value.resize(n);
    state.arrived.assign(n, 0);
  }

  std::map<ChannelKey, std::deque<Message>> channels;
  SyncStats stats;
  std::int64_t lastDelivery = 0;

  int maxStart = 0;
  for (const auto& w : conv_) maxStart = std::max(maxStart, w.startRound);
  for (const auto& w : bcast_) maxStart = std::max(maxStart, w.startRound);
  const std::int64_t roundCap =
      maxStart +
      static_cast<std::int64_t>(conv_.size() + bcast_.size() + 1) *
          (rooted.height() + 2) * 2 +
      64;

  auto allComplete = [&] {
    for (const auto& state : conv) {
      if (!state.complete) return false;
    }
    for (const auto& state : bcast) {
      if (state.arrivedCount < tree.nodeCount()) return false;
    }
    return true;
  };

  auto convRootResult = [&](std::size_t w) {
    ConvState& state = conv[w];
    const auto r = static_cast<std::size_t>(root);
    const Payload own = conv_[w].localValue(root);
    const Payload result =
        state.anyAcc[r] ? conv_[w].combine(own, state.acc[r]) : own;
    if (conv_[w].onResult) conv_[w].onResult(result);
    state.complete = true;
  };

  for (std::int64_t round = 1; !allComplete(); ++round) {
    if (round > roundCap) {
      throw std::logic_error("SyncEngine: schedule did not converge");
    }

    // --- Enqueue phase: ready senders whose wave is active put one
    // message on their channel.
    for (std::size_t w = 0; w < conv_.size(); ++w) {
      if (round <= conv_[w].startRound || conv[w].complete) continue;
      ConvState& state = conv[w];
      // Root with no outstanding children completes without sending
      // (single-node trees, or all children already delivered).
      if (state.pending[static_cast<std::size_t>(root)] == 0) {
        convRootResult(w);
        // fall through: other nodes may still hold undelivered state only
        // if the root completed early, which cannot happen in a tree.
        continue;
      }
      for (const net::NodeId v : state.readyNow) {
        const auto vi = static_cast<std::size_t>(v);
        const Payload own = conv_[w].localValue(v);
        const Payload out =
            state.anyAcc[vi] ? conv_[w].combine(own, state.acc[vi]) : own;
        if (conv_[w].onPartial) conv_[w].onPartial(v, out);
        channels[channelOf(rooted.parentEdge(v), 0, conv_[w].lane)].push_back(
            Message{static_cast<int>(w), false, rooted.parent(v), v, out});
      }
      state.readyNow.clear();
    }
    for (std::size_t w = 0; w < bcast_.size(); ++w) {
      if (round <= bcast_[w].startRound) continue;
      BcastState& state = bcast[w];
      if (!state.started) {
        state.started = true;
        const Payload rootVal =
            bcast_[w].rootValueFn ? bcast_[w].rootValueFn() : bcast_[w].rootValue;
        state.value[static_cast<std::size_t>(root)] = rootVal;
        state.arrived[static_cast<std::size_t>(root)] = 1;
        ++state.arrivedCount;
        if (bcast_[w].onArrive) bcast_[w].onArrive(root, rootVal);
        state.forwardNow.push_back(root);
      }
      for (const net::NodeId v : state.forwardNow) {
        const Payload& held = state.value[static_cast<std::size_t>(v)];
        for (const net::NodeId c : rooted.children(v)) {
          channels[channelOf(rooted.parentEdge(c), 1, bcast_[w].lane)]
              .push_back(Message{static_cast<int>(w), true, c, v,
                                 bcast_[w].childValue(v, c, held)});
        }
      }
      state.forwardNow.clear();
    }

    // --- Backlog measurement (after enqueues, before service).
    for (const auto& [key, queue] : channels) {
      stats.maxQueueDepth = std::max(
          stats.maxQueueDepth, static_cast<std::int64_t>(queue.size()));
    }

    // --- Delivery phase: each channel serves one message this round.
    for (auto& [key, queue] : channels) {
      if (queue.empty()) continue;
      const Message msg = queue.front();
      queue.pop_front();
      ++stats.messages;
      lastDelivery = round;
      if (!msg.broadcast) {
        ConvState& state = conv[static_cast<std::size_t>(msg.wave)];
        const auto ti = static_cast<std::size_t>(msg.to);
        state.acc[ti] = state.anyAcc[ti]
                            ? conv_[static_cast<std::size_t>(msg.wave)].combine(
                                  state.acc[ti], msg.payload)
                            : msg.payload;
        state.anyAcc[ti] = 1;
        --state.pending[ti];
        if (state.pending[ti] == 0) {
          if (msg.to == root) {
            convRootResult(static_cast<std::size_t>(msg.wave));
          } else {
            state.readyNext.push_back(msg.to);
          }
        }
      } else {
        BcastState& state = bcast[static_cast<std::size_t>(msg.wave)];
        const auto ti = static_cast<std::size_t>(msg.to);
        state.value[ti] = msg.payload;
        state.arrived[ti] = 1;
        ++state.arrivedCount;
        if (bcast_[static_cast<std::size_t>(msg.wave)].onArrive) {
          bcast_[static_cast<std::size_t>(msg.wave)].onArrive(msg.to,
                                                              msg.payload);
        }
        state.forwardNext.push_back(msg.to);
      }
    }
    for (auto& state : bcast) {
      state.forwardNow.insert(state.forwardNow.end(),
                              state.forwardNext.begin(),
                              state.forwardNext.end());
      state.forwardNext.clear();
    }
    for (auto& state : conv) {
      state.readyNow.insert(state.readyNow.end(), state.readyNext.begin(),
                            state.readyNext.end());
      state.readyNext.clear();
    }
  }

  stats.rounds = lastDelivery;
  conv_.clear();
  bcast_.clear();
  return stats;
}

}  // namespace hbn::dist
