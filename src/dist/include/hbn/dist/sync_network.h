// Synchronous message-passing engine over a rooted tree.
//
// Models the paper's distributed setting: in each round, every directed
// edge (and, with multiple lanes, every lane of it) carries at most one
// message; excess messages queue. Computations are expressed as *waves* —
// convergecasts (leaves-to-root aggregation) and broadcasts (root-to-
// leaves dissemination) — that can be scheduled at chosen start rounds and
// on separate lanes, which is exactly the pipelining vocabulary the
// paper's O(|X| + height) round bound for the nibble computation uses.
//
// The engine reports rounds, message count, and the maximum channel queue
// depth; a schedule pipelines perfectly iff that depth never exceeds 1.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "hbn/net/rooted.h"

namespace hbn::dist {

/// Fixed-size message payload (the model charges one message per edge per
/// round regardless of the few words it carries).
using Payload = std::array<std::int64_t, 4>;

/// Aggregate execution statistics of one SyncEngine::run().
struct SyncStats {
  std::int64_t rounds = 0;         ///< round in which the last message moved
  std::int64_t messages = 0;       ///< total edge-messages delivered
  std::int64_t maxQueueDepth = 0;  ///< max per-channel backlog observed
};

/// Leaves-to-root aggregation. Every node contributes localValue(v); a
/// node forwards combine-folds of its own value and its children's
/// aggregates. `onResult` fires at the root with the tree-wide aggregate,
/// `onPartial` at every non-root node with its subtree aggregate as it is
/// sent (both optional). Callbacks are evaluated lazily, at send time, so
/// they may depend on the results of waves that completed earlier.
struct ConvergecastWave {
  int startRound = 0;
  int lane = 0;
  std::function<Payload(net::NodeId)> localValue;
  std::function<Payload(const Payload&, const Payload&)> combine;
  std::function<void(const Payload&)> onResult;
  std::function<void(net::NodeId, const Payload&)> onPartial;
};

/// Root-to-leaves dissemination. The root's value is transformed per edge
/// by childValue(parent, child, payload); `onArrive` fires at every node
/// (the root immediately on wave start). `rootValue` may be overridden
/// lazily via `rootValueFn`, evaluated when the wave starts.
struct BroadcastWave {
  int startRound = 0;
  int lane = 0;
  Payload rootValue{};
  std::function<Payload()> rootValueFn;
  std::function<Payload(net::NodeId, net::NodeId, const Payload&)> childValue;
  std::function<void(net::NodeId, const Payload&)> onArrive;
};

/// Executes a set of waves round-by-round with per-channel FIFO queues.
class SyncEngine {
 public:
  explicit SyncEngine(const net::RootedTree& rooted);

  /// Registers a wave. Throws std::invalid_argument when the wave's
  /// required callbacks (localValue+combine / childValue) are missing.
  void add(ConvergecastWave wave);
  void add(BroadcastWave wave);

  /// Runs all registered waves to completion and returns the statistics.
  /// The engine is exhausted afterwards (waves are consumed).
  [[nodiscard]] SyncStats run();

 private:
  struct Message {
    int wave = 0;          // index into conv_ / bcast_ (sign via kind)
    bool broadcast = false;
    net::NodeId to = net::kInvalidNode;
    net::NodeId from = net::kInvalidNode;
    Payload payload{};
  };

  const net::RootedTree* rooted_;
  std::vector<ConvergecastWave> conv_;
  std::vector<BroadcastWave> bcast_;
};

}  // namespace hbn::dist
