// Distributed nibble placement (paper §3.2): each object's placement is
// computed by four height-deep waves — a subtree-weight convergecast, a
// component-weight broadcast, a gravity-centre election convergecast, and
// the centre announcement broadcast — with object x's schedule offset by x
// rounds. The schedule pipelines perfectly (no lane of a directed edge
// ever queues two messages), giving O(|X| + height(T)) rounds total, and
// reproduces the sequential nibble placement bit-exactly, including the
// smallest-index tie-break for the centre of gravity.
#pragma once

#include <vector>

#include "hbn/core/placement.h"
#include "hbn/dist/sync_network.h"
#include "hbn/net/rooted.h"
#include "hbn/workload/workload.h"

namespace hbn::dist {

/// Output of the distributed computation.
struct DistributedNibbleResult {
  core::Placement placement;                ///< identical to nibblePlacement
  std::vector<net::NodeId> gravityCenters;  ///< per object
  SyncStats stats;                          ///< rounds / messages / queueing
};

/// Runs the wave schedule on `rooted` for every object of `load`.
/// Objects without any access skip the waves and receive the sequential
/// convention (a single copy on the first processor).
[[nodiscard]] DistributedNibbleResult distributedNibble(
    const net::RootedTree& rooted, const workload::Workload& load);

}  // namespace hbn::dist
