#include "hbn/core/lower_bound.h"

#include <algorithm>
#include <span>

#include "hbn/core/nibble.h"

namespace hbn::core {

LowerBound analyticLowerBound(const net::RootedTree& rooted,
                              const workload::Workload& load) {
  const net::Tree& tree = rooted.tree();
  LowerBound result{0.0, LoadMap(tree.edgeCount())};

  // For every object, accumulate subtree request sums bottom-up; the edge
  // above v separates h(T(v)) (= subtree side) from h_x - h(T(v)).
  const auto order = rooted.preorder();
  std::vector<Count> sub(static_cast<std::size_t>(tree.nodeCount()), 0);
  for (workload::ObjectId x = 0; x < load.numObjects(); ++x) {
    const Count hx = load.objectTotal(x);
    if (hx == 0) continue;
    const Count kappa = load.objectWrites(x);
    for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
      sub[static_cast<std::size_t>(v)] = load.total(x, v);
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const net::NodeId v = *it;
      const net::NodeId p = rooted.parent(v);
      if (p != net::kInvalidNode) {
        sub[static_cast<std::size_t>(p)] += sub[static_cast<std::size_t>(v)];
      }
    }
    for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
      const net::NodeId p = rooted.parent(v);
      if (p == net::kInvalidNode) continue;
      const Count below = sub[static_cast<std::size_t>(v)];
      const Count above = hx - below;
      const Count minLoad = std::min({below, above, kappa});
      if (minLoad > 0) {
        result.edgeMinima.addEdgeLoad(rooted.parentEdge(v), minLoad);
      }
    }
  }
  result.congestion = result.edgeMinima.congestion(tree);
  return result;
}

IncrementalLowerBound::IncrementalLowerBound(const net::RootedTree& rooted)
    : rooted_(&rooted),
      minima_(rooted.tree().edgeCount()),
      sub_(static_cast<std::size_t>(rooted.tree().nodeCount()), 0) {}

void IncrementalLowerBound::rebuild(const workload::Workload& load) {
  minima_.clear();
  for (workload::ObjectId x = 0; x < load.numObjects(); ++x) {
    apply(x, load, 1);
  }
}

void IncrementalLowerBound::remove(workload::ObjectId x,
                                   const workload::Workload& load) {
  apply(x, load, -1);
}

void IncrementalLowerBound::add(workload::ObjectId x,
                                const workload::Workload& load) {
  apply(x, load, 1);
}

double IncrementalLowerBound::congestion() const {
  return minima_.congestion(rooted_->tree());
}

void IncrementalLowerBound::apply(workload::ObjectId x,
                                  const workload::Workload& load,
                                  Count sign) {
  // Per-object body of analyticLowerBound, signed: identical subtree
  // sums, identical min() operands, so add-after-remove reproduces the
  // full recomputation bit for bit.
  const net::Tree& tree = rooted_->tree();
  const Count hx = load.objectTotal(x);
  if (hx == 0) return;
  const Count kappa = load.objectWrites(x);
  for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
    sub_[static_cast<std::size_t>(v)] = load.total(x, v);
  }
  const std::span<const net::NodeId> order = rooted_->preorder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const net::NodeId v = *it;
    const net::NodeId p = rooted_->parent(v);
    if (p != net::kInvalidNode) {
      sub_[static_cast<std::size_t>(p)] += sub_[static_cast<std::size_t>(v)];
    }
  }
  for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
    const net::NodeId p = rooted_->parent(v);
    if (p == net::kInvalidNode) continue;
    const Count below = sub_[static_cast<std::size_t>(v)];
    const Count above = hx - below;
    const Count minLoad = std::min({below, above, kappa});
    if (minLoad > 0) {
      minima_.addEdgeLoad(rooted_->parentEdge(v), sign * minLoad);
    }
  }
}

double nibbleLowerBound(const net::Tree& tree,
                        const workload::Workload& load) {
  const net::RootedTree rooted(tree, tree.defaultRoot());
  return evaluateCongestion(rooted, nibblePlacement(tree, load));
}

double objectLowerBound(const net::Tree& tree,
                        const workload::Workload& load) {
  if (!tree.usesUnitLeafEdges()) return 0.0;
  Count best = 0;
  for (workload::ObjectId x = 0; x < load.numObjects(); ++x) {
    const Count hx = load.objectTotal(x);
    if (hx == 0) continue;
    Count maxLeaf = 0;
    for (const net::NodeId p : tree.processors()) {
      maxLeaf = std::max(maxLeaf, load.total(x, p));
    }
    best = std::max(best, std::min(load.objectWrites(x), hx - maxLeaf));
  }
  return static_cast<double>(best);
}

double combinedLowerBound(const net::RootedTree& rooted,
                          const workload::Workload& load) {
  return std::max(analyticLowerBound(rooted, load).congestion,
                  objectLowerBound(rooted.tree(), load));
}

}  // namespace hbn::core
