// Batched difference-counting load accounting.
//
// Every layer of the repository charges edge/bus congestion (paper §1.1)
// by walking origin→copy paths edge-by-edge, i.e. O(path length) per
// request share. This module replaces those walks with epoch aggregation:
//
//   * charging a path u→v with amount a becomes three array additions
//     delta[u] += a, delta[v] += a, delta[lca(u,v)] -= 2a, and
//   * one reverse-preorder subtree-sum pass (the flush) converts the
//     accumulated deltas into exact per-edge loads,
//
// so a batch of R requests costs O(R + touched nodes) instead of
// O(R × path length). Steiner (write-broadcast) charging is batched the
// same way: terminals are counted per subtree in the flattened view and
// the parent edge of v is charged iff 0 < cnt(v) < |terminals| — the
// same predicate net::steinerEdges uses, but without materialising an
// edge vector or scanning all n nodes per object.
//
// All loads are exact integers, and integer addition is associative and
// commutative, so any charging route (legacy walk, difference counting,
// any interleaving) produces bit-identical LoadMaps — the property the
// randomized equivalence suite (tests/flat_load_test.cpp) pins down and
// the 1-vs-N-thread serving digests rely on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hbn/core/load.h"
#include "hbn/core/placement.h"
#include "hbn/net/rooted.h"

namespace hbn::core {

/// Preorder/CSR flattening of a RootedTree: contiguous position-indexed
/// parent/depth/parent-edge arrays (position = preorder index, so every
/// parent position precedes its children) plus an O(1) LCA via Euler
/// tour + sparse-table RMQ. Construction is O(n log n); the view is
/// immutable and safe to share across worker threads.
class FlatTreeView {
 public:
  /// Packed per-node walk record: one aligned 16-byte load hands the
  /// serving hot loops parent, parent edge, depth, and preorder position
  /// together, where the rooted view scatters them over three arrays.
  struct NodeStep {
    net::NodeId parent;
    net::EdgeId parentEdge;
    std::int32_t depth;
    std::int32_t pos;
  };

  explicit FlatTreeView(const net::RootedTree& rooted);

  [[nodiscard]] const net::RootedTree& rooted() const noexcept {
    return *rooted_;
  }
  [[nodiscard]] int nodeCount() const noexcept {
    return static_cast<int>(posOf_.size());
  }

  /// Preorder position of node v (root is 0; parents precede children).
  [[nodiscard]] std::int32_t posOf(net::NodeId v) const {
    return posOf_[static_cast<std::size_t>(v)];
  }
  /// Packed walk record of node v (node-id indexed).
  [[nodiscard]] const NodeStep& step(net::NodeId v) const {
    return steps_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] net::NodeId nodeAt(std::int32_t pos) const {
    return nodeAt_[static_cast<std::size_t>(pos)];
  }
  /// Preorder position of the parent of the node at `pos`; -1 for the root.
  [[nodiscard]] std::int32_t parentPos(std::int32_t pos) const {
    return parentPos_[static_cast<std::size_t>(pos)];
  }
  /// Edge to the parent of the node at `pos`; kInvalidEdge for the root.
  [[nodiscard]] net::EdgeId parentEdgeAt(std::int32_t pos) const {
    return parentEdgeAt_[static_cast<std::size_t>(pos)];
  }
  [[nodiscard]] int depthAt(std::int32_t pos) const {
    return depthAt_[static_cast<std::size_t>(pos)];
  }
  [[nodiscard]] int height() const noexcept { return rooted_->height(); }

  /// Lowest common ancestor in O(1) (Euler tour + sparse table), versus
  /// the O(log n) binary lifting of RootedTree::lca.
  [[nodiscard]] net::NodeId lca(net::NodeId u, net::NodeId v) const {
    return nodeAt(lcaPos(posOf(u), posOf(v)));
  }

  /// Position-space LCA — the accumulator's innermost operation, kept
  /// free of node↔position round trips.
  [[nodiscard]] std::int32_t lcaPos(std::int32_t pu, std::int32_t pv) const {
    std::int32_t l = firstEuler_[static_cast<std::size_t>(pu)];
    std::int32_t r = firstEuler_[static_cast<std::size_t>(pv)];
    if (l > r) std::swap(l, r);
    const int k = log2_[static_cast<std::size_t>(r - l + 1)];
    const std::size_t row = static_cast<std::size_t>(k) * eulerLen_;
    const std::int32_t a = table_[row + static_cast<std::size_t>(l)];
    const std::int32_t b =
        table_[row + static_cast<std::size_t>(r - (std::int32_t{1} << k) + 1)];
    return eulerDepth_[static_cast<std::size_t>(a)] <=
                   eulerDepth_[static_cast<std::size_t>(b)]
               ? euler_[static_cast<std::size_t>(a)]
               : euler_[static_cast<std::size_t>(b)];
  }

 private:
  const net::RootedTree* rooted_;
  std::vector<std::int32_t> posOf_;
  std::vector<NodeStep> steps_;
  std::vector<net::NodeId> nodeAt_;
  std::vector<std::int32_t> parentPos_;
  std::vector<net::EdgeId> parentEdgeAt_;
  std::vector<std::int32_t> depthAt_;
  // Euler tour of positions (2n-1 entries) and sparse min-depth table,
  // flattened row-major: table_[k * eulerLen_ + i] = the euler index
  // with minimal depth in [i, i + 2^k).
  std::vector<std::int32_t> euler_;
  std::vector<std::int32_t> eulerDepth_;  ///< depth per euler index
  std::vector<std::int32_t> firstEuler_;  ///< node pos -> first euler index
  std::vector<std::int32_t> table_;
  std::size_t eulerLen_ = 0;
  std::vector<std::int32_t> log2_;  ///< floor(log2(len)) per window length
};

/// Shard sizes below this stay on the legacy per-request walk: the walk
/// charges only O(path) edges, while the batched route adds flush
/// bookkeeping per touched node — measured break-even on serving-style
/// traffic sits near a handful of requests per object per epoch (see
/// docs/performance.md for the measurement).
inline constexpr std::size_t kFlatLoadCutover = 8;

/// Mutable difference-counting accumulator over one FlatTreeView. One
/// instance per worker thread: chargePath defers into the delta array,
/// flush() drains exact per-edge loads into a LoadMap, chargeSteiner
/// charges a terminal set's Steiner tree immediately. All scratch is
/// stamp-versioned and reused, so steady-state operation allocates
/// nothing.
class FlatLoadAccumulator {
 public:
  explicit FlatLoadAccumulator(const FlatTreeView& flat);

  [[nodiscard]] const FlatTreeView& flat() const noexcept { return *flat_; }

  /// Defers charging every edge on the u→v path with `amount`: O(1)
  /// (three delta additions; LCA is an O(1) table lookup).
  void chargePath(net::NodeId u, net::NodeId v, Count amount);

  /// Converts the deferred deltas into exact per-edge loads added onto
  /// `out`: one reverse-preorder subtree-sum pass over the touched
  /// position range (preorder puts every parent before its children, so
  /// a single descending scan drains each child into its parent).
  /// Subtree sums cancel exactly at each path's LCA, so nothing escapes
  /// the range; cost is O(touched range), never more than O(n).
  void flush(LoadMap& out);

  /// True when chargePath deltas are pending (flush would emit loads).
  [[nodiscard]] bool dirty() const noexcept { return maxTouched_ >= 0; }

  /// Adds `amount` onto every edge of the Steiner tree spanning
  /// `terminals` (duplicates allowed; fewer than two distinct terminals
  /// charge nothing), immediately, in O(Steiner tree size): terminal
  /// counts propagate up depth buckets and stop as soon as a subtree
  /// contains all terminals. Bit-identical to charging the edge list of
  /// net::steinerEdges.
  void chargeSteiner(std::span<const net::NodeId> terminals, Count amount,
                     LoadMap& out);

 private:
  const FlatTreeView* flat_;
  std::vector<Count> delta_;  ///< pending path charges, by position
  // Touched position range of the pending deltas. chargePath stays three
  // raw array additions plus two range updates — cheaper than any
  // per-charge membership bookkeeping, which profiling showed costs more
  // than the short walks it replaces on shallow networks.
  std::int32_t minTouched_ = 0;
  std::int32_t maxTouched_ = -1;

  // Steiner scratch: per-position terminal counts plus separate buckets,
  // so chargeSteiner can interleave with pending chargePath deltas.
  std::vector<Count> steinerCount_;
  std::vector<std::uint32_t> steinerStamp_;
  std::uint32_t sStamp_ = 0;
  std::vector<std::vector<std::int32_t>> steinerBuckets_;
};

/// Flat-engine twin of accumulateObjectLoad: defers object `x`'s path
/// charges into `acc` (caller flushes) and charges the write broadcast
/// immediately. Objects whose ledgers hold fewer than kFlatLoadCutover
/// shares fall back to the legacy walk — either route yields the same
/// integer loads.
void accumulateObjectLoad(FlatLoadAccumulator& acc,
                          const ObjectPlacement& object, LoadMap& loads);

/// Batched computeLoad over a prebuilt flat view: one accumulator, one
/// flush for the whole placement — O(total shares + touched nodes +
/// Σ Steiner sizes). Bit-identical to computeLoad(rooted, placement).
[[nodiscard]] LoadMap computeLoad(const FlatTreeView& flat,
                                  const Placement& placement);

}  // namespace hbn::core
