// Object-striped parallel execution.
//
// The paper's placement algorithms run in O(|V|) per object, independently
// per object — so the natural production parallelisation shards the object
// range over a worker pool. Work is split into contiguous stripes; each
// worker writes only to its own objects' preallocated slots, so no
// synchronisation is needed and the merged result is bit-identical to the
// sequential loop for any worker count.
#pragma once

#include <exception>
#include <thread>
#include <vector>

#include "hbn/workload/workload.h"

namespace hbn::core {

/// Resolves a requested thread count: 0 = hardware concurrency, and never
/// more workers than items. Always >= 1 (for items >= 1).
[[nodiscard]] int resolveWorkerCount(int requested, int items);

/// Runs fn(x, worker) for every object id x in [0, numObjects); `worker`
/// is the stripe index in [0, resolveWorkerCount(threads, numObjects)),
/// letting callers hand each worker its own scratch buffers.
template <typename Fn>
void parallelForObjects(int numObjects, int threads, Fn&& fn) {
  const int workers = resolveWorkerCount(threads, numObjects);
  if (workers <= 1) {
    for (workload::ObjectId x = 0; x < numObjects; ++x) fn(x, 0);
    return;
  }
  // Worker exceptions must not reach std::thread (std::terminate, no
  // unwinding): each stripe captures its first exception, every thread
  // is joined unconditionally, and the lowest-stripe exception rethrows
  // on the caller — deterministic regardless of worker scheduling.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    const auto begin = static_cast<workload::ObjectId>(
        static_cast<long>(numObjects) * t / workers);
    const auto end = static_cast<workload::ObjectId>(
        static_cast<long>(numObjects) * (t + 1) / workers);
    pool.emplace_back([begin, end, t, &fn, &errors] {
      try {
        for (workload::ObjectId x = begin; x < end; ++x) fn(x, t);
      } catch (...) {
        errors[static_cast<std::size_t>(t)] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace hbn::core
