// Object-striped parallel execution.
//
// The paper's placement algorithms run in O(|V|) per object, independently
// per object — so the natural production parallelisation shards the object
// range over a worker pool. Work is split into contiguous stripes; each
// worker writes only to its own objects' preallocated slots, so no
// synchronisation is needed and the merged result is bit-identical to the
// sequential loop for any worker count.
#pragma once

#include <thread>
#include <vector>

#include "hbn/workload/workload.h"

namespace hbn::core {

/// Resolves a requested thread count: 0 = hardware concurrency, and never
/// more workers than items. Always >= 1 (for items >= 1).
[[nodiscard]] int resolveWorkerCount(int requested, int items);

/// Runs fn(x, worker) for every object id x in [0, numObjects); `worker`
/// is the stripe index in [0, resolveWorkerCount(threads, numObjects)),
/// letting callers hand each worker its own scratch buffers.
template <typename Fn>
void parallelForObjects(int numObjects, int threads, Fn&& fn) {
  const int workers = resolveWorkerCount(threads, numObjects);
  if (workers <= 1) {
    for (workload::ObjectId x = 0; x < numObjects; ++x) fn(x, 0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    const auto begin = static_cast<workload::ObjectId>(
        static_cast<long>(numObjects) * t / workers);
    const auto end = static_cast<workload::ObjectId>(
        static_cast<long>(numObjects) * (t + 1) / workers);
    pool.emplace_back([begin, end, t, &fn] {
      for (workload::ObjectId x = begin; x < end; ++x) fn(x, t);
    });
  }
  for (std::thread& worker : pool) worker.join();
}

}  // namespace hbn::core
