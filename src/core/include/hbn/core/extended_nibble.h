// The extended-nibble strategy (paper §3): the full three-step pipeline.
//
//   Step 1  nibble placement (copies may sit on buses)        — nibble.h
//   Step 2  deletion of rarely used copies                    — deletion.h
//   Step 3  mapping of inner-node copies to leaves            — mapping.h
//
// Objects whose placement is already leaf-only (after step 2) are frozen —
// the paper's analysis relies on the strategy "not changing their
// placement" — but their requests still contribute to the basic loads
// steering step 3. Theorem 4.3: the final congestion is at most 7 · C_opt,
// computed in sequential time O(|X|·|P∪B|·height(T)·log(degree(T))).
#pragma once

#include <vector>

#include "hbn/core/deletion.h"
#include "hbn/core/load.h"
#include "hbn/core/mapping.h"
#include "hbn/core/nibble.h"
#include "hbn/core/placement.h"
#include "hbn/net/tree.h"
#include "hbn/workload/workload.h"

namespace hbn::core {

/// Pipeline configuration; defaults reproduce the paper exactly.
/// The non-default settings exist for the E10 ablation experiments.
struct ExtendedNibbleOptions {
  /// Run step 2 (deletion). Skipping it voids the 7-factor guarantee and
  /// can make the mapping step exceed its acceptable loads.
  bool runDeletion = true;
  /// Step 3 acceptable-load multiplier (the paper proves factor 2 correct).
  Count accFactor = 2;
  /// Root used by the mapping step; kInvalidNode = tree.defaultRoot().
  net::NodeId mappingRoot = net::kInvalidNode;
  /// Worker threads for steps 1 and 2, which are independent per object
  /// (the paper pipelines them for the same reason). The result is
  /// bit-identical for any thread count; 0 = hardware concurrency.
  int threads = 1;
};

/// Per-step instrumentation of one extended-nibble run.
struct ExtendedNibbleReport {
  double congestionNibble = 0.0;    ///< after step 1 (bus measure)
  double congestionModified = 0.0;  ///< after step 2
  double congestionFinal = 0.0;     ///< after step 3 (the deliverable)
  Count maxWriteContention = 0;     ///< κ_max over all objects
  DeletionStats deletion;
  MappingStats mapping;
  int participatingObjects = 0;  ///< objects entering step 3
  int frozenObjects = 0;         ///< leaf-only objects left untouched
};

/// Full result: the placements after each step plus the report.
struct ExtendedNibbleResult {
  Placement nibble;    ///< step 1 (may use inner nodes)
  Placement modified;  ///< step 2 (may use inner nodes)
  Placement final;     ///< step 3 — leaf-only, the strategy's output
  std::vector<net::NodeId> gravityCenters;  ///< per object
  ExtendedNibbleReport report;
};

/// Runs the extended-nibble strategy on `tree` under `load`.
/// `load` must only have frequencies on processors
/// (Workload::validateProcessorOnly).
[[nodiscard]] ExtendedNibbleResult extendedNibble(
    const net::Tree& tree, const workload::Workload& load,
    const ExtendedNibbleOptions& options = {});

/// Convenience: just the final leaf-only placement.
[[nodiscard]] Placement computeExtendedNibblePlacement(
    const net::Tree& tree, const workload::Workload& load,
    const ExtendedNibbleOptions& options = {});

}  // namespace hbn::core
