// Placement model: copy sets with explicit request ledgers.
//
// A placement assigns every shared object a set of copies. A copy is a
// (location, ledger) pair: the ledger lists, per requesting node, how many
// of that node's reads and writes this copy serves. Ledgers — rather than
// a plain "reference copy per processor" map — are required because the
// deletion algorithm's splitting step may divide one processor's requests
// between several co-located copies (Observation 3.2), and the mapping
// algorithm moves copies (not processors' assignments) to leaves.
//
// The classic c(P,x) reference-copy model is the special case of one share
// per requesting processor; makeNearestPlacement constructs it.
#pragma once

#include <span>
#include <vector>

#include "hbn/net/rooted.h"
#include "hbn/net/tree.h"
#include "hbn/workload/workload.h"

namespace hbn::core {

using workload::Count;
using workload::ObjectId;

/// Portion of one node's requests served by a particular copy.
struct RequestShare {
  net::NodeId origin = net::kInvalidNode;
  Count reads = 0;
  Count writes = 0;

  [[nodiscard]] Count total() const noexcept { return reads + writes; }
};

/// One copy of a shared object: where it lives and which requests it serves.
struct Copy {
  net::NodeId location = net::kInvalidNode;
  std::vector<RequestShare> served;

  /// s(c): number of requests served by this copy.
  [[nodiscard]] Count servedTotal() const noexcept;
};

/// All copies of one object.
struct ObjectPlacement {
  std::vector<Copy> copies;

  /// Distinct copy locations, sorted ascending.
  [[nodiscard]] std::vector<net::NodeId> locations() const;

  /// Sum of requests served across copies.
  [[nodiscard]] Count servedTotal() const noexcept;

  /// True when every copy lies on a processor of `tree`.
  [[nodiscard]] bool isLeafOnly(const net::Tree& tree) const;
};

/// Placement of all objects (index = ObjectId).
struct Placement {
  std::vector<ObjectPlacement> objects;

  [[nodiscard]] int numObjects() const noexcept {
    return static_cast<int>(objects.size());
  }
  [[nodiscard]] bool isLeafOnly(const net::Tree& tree) const;
};

/// Builds the placement of object `x` with copies exactly at `locations`,
/// each requesting node assigned to its nearest copy (ties broken toward
/// the smaller node id). This realises the paper's reference-copy model
/// c(P,x) = closest copy. `locations` must be non-empty.
[[nodiscard]] ObjectPlacement makeNearestPlacement(
    const net::Tree& tree, const workload::Workload& load, ObjectId x,
    std::span<const net::NodeId> locations);

/// Checks that `placement` serves exactly the requests of `load`:
/// per object, the ledger sums per origin equal the workload frequencies.
/// Throws std::logic_error describing the first mismatch.
void validateCoversWorkload(const Placement& placement,
                            const workload::Workload& load);

}  // namespace hbn::core
