// Human-readable reporting of placements and load maps.
//
// Used by the CLI tool and examples; also handy when debugging strategy
// behaviour ("where did the copies go, and which switch is hot?").
#pragma once

#include <iosfwd>
#include <string>

#include "hbn/core/extended_nibble.h"
#include "hbn/core/load.h"
#include "hbn/core/placement.h"
#include "hbn/net/rooted.h"

namespace hbn::core {

/// Summary statistics of a placement.
struct PlacementSummary {
  int objects = 0;
  long totalCopies = 0;        ///< distinct (object, location) pairs
  int minCopies = 0;           ///< fewest locations of any object
  int maxCopies = 0;           ///< most locations of any object
  double meanCopies = 0.0;
  long replicatedObjects = 0;  ///< objects with more than one location
};

/// Computes copy-count statistics of `placement`.
[[nodiscard]] PlacementSummary summarize(const Placement& placement);

/// Prints per-object copy locations ("object 3 -> {1, 5, 9}").
void printPlacement(const Placement& placement, std::ostream& os);

/// Prints the `top` most relatively-loaded edges and buses with their
/// absolute loads, bandwidths and relative loads.
void printHotspots(const net::Tree& tree, const LoadMap& loads, int top,
                   std::ostream& os);

/// Prints the three-step congestion progression and the step statistics
/// of an extended-nibble run.
void printReport(const ExtendedNibbleReport& report, std::ostream& os);

/// Convenience: renders printPlacement to a string.
[[nodiscard]] std::string placementToString(const Placement& placement);

}  // namespace hbn::core
