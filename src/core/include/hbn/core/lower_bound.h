// Congestion lower bounds for the static placement problem.
//
// C_opt is NP-hard to compute (Theorem 2.1), so the approximation-ratio
// experiments report measured congestion divided by a certified lower
// bound. Two bounds are provided:
//
//   * The nibble bound: the nibble placement minimises the load on every
//     edge simultaneously among ALL placements, including leaf-only ones
//     (for each edge, min(h_A, h_B, κ_x) per object is unavoidable, and
//     both sides of every edge contain a potential storage leaf). Hence
//     the congestion of the nibble placement — evaluated with the bus
//     measure — lower-bounds C_opt.
//
//   * The per-edge analytic bound: Σ_x min(h_A(x), h_B(x), κ_x) per edge,
//     and the corresponding half-sums per bus. This equals the nibble
//     bound by Theorem 3.1 and is computed independently as a
//     cross-check (and without constructing placements, so it is cheap
//     enough for the biggest sweeps).
#pragma once

#include "hbn/core/load.h"
#include "hbn/net/rooted.h"
#include "hbn/workload/workload.h"

namespace hbn::core {

/// Lower-bound results.
struct LowerBound {
  /// Congestion lower bound (max over edges and buses of relative load).
  double congestion = 0.0;
  /// The underlying per-edge minimum loads.
  LoadMap edgeMinima;
};

/// Computes the analytic per-edge lower bound Σ_x min(h_A, h_B, κ_x).
/// O(|X| · |V|).
[[nodiscard]] LowerBound analyticLowerBound(const net::RootedTree& rooted,
                                            const workload::Workload& load);

/// Computes the nibble-placement lower bound by building the nibble
/// placement and evaluating it (O(|X| · |V| log |V|)); equal to the
/// analytic bound by Theorem 3.1.
[[nodiscard]] double nibbleLowerBound(const net::Tree& tree,
                                      const workload::Workload& load);

/// Per-object lower bound from the paper's τ_max analysis (§4, proof of
/// Theorem 4.3): for every object, ANY leaf-only placement either uses at
/// least two copies — then some unit-bandwidth leaf switch carries the
/// full write contention κ_x — or one copy on some leaf l, whose switch
/// carries all h_x − h_x(l) remote requests. Hence
///
///     C_opt >= max_x min(κ_x, h_x − max_l h_x(l)).
///
/// Requires the paper's bandwidth model (unit leaf switches,
/// tree.usesUnitLeafEdges()); returns 0 otherwise.
[[nodiscard]] double objectLowerBound(const net::Tree& tree,
                                      const workload::Workload& load);

/// max(analytic per-edge bound, per-object bound) — the bound the
/// 7-approximation experiments normalise by. Note the per-edge bound
/// alone can be a factor 7+ away from C_opt on fat-tree bandwidths, where
/// fast inner switches hide κ_max; the per-object bound restores the
/// paper's argument.
[[nodiscard]] double combinedLowerBound(const net::RootedTree& rooted,
                                        const workload::Workload& load);

/// Maintains the analytic per-edge bound Σ_x min(h_A, h_B, κ_x) under
/// per-object frequency updates. The bound is a sum of independent
/// per-object edge-minimum vectors, so when only object x's row
/// changes, `remove(x)` against the old row and `add(x)` against the
/// new one refresh the total in O(|V|) — the streaming engine uses this
/// to keep its per-epoch bound at O(touched · |V|) instead of
/// recomputing O(|X| · |V|) every epoch. All arithmetic is the same
/// integer Count math as analyticLowerBound, so congestion() is
/// bit-identical to a full recomputation at every point.
class IncrementalLowerBound {
 public:
  explicit IncrementalLowerBound(const net::RootedTree& rooted);

  /// Resets to the bound of `load` in one full O(|X| · |V|) pass.
  void rebuild(const workload::Workload& load);
  /// Subtracts object x's contribution, computed from its CURRENT row —
  /// call before mutating the row.
  void remove(workload::ObjectId x, const workload::Workload& load);
  /// Adds object x's contribution from its current row — call after
  /// mutating it.
  void add(workload::ObjectId x, const workload::Workload& load);

  /// The congestion lower bound of the tracked workload.
  [[nodiscard]] double congestion() const;
  [[nodiscard]] const LoadMap& edgeMinima() const noexcept {
    return minima_;
  }

 private:
  void apply(workload::ObjectId x, const workload::Workload& load,
             Count sign);

  const net::RootedTree* rooted_;
  LoadMap minima_;
  std::vector<Count> sub_;  ///< per-call subtree-sum scratch
};

}  // namespace hbn::core
