// Load and congestion evaluation for hierarchical bus networks.
//
// Semantics (paper §1.1):
//   * each read served by copy c loads every edge on the origin→c path by 1,
//   * each write served by copy c loads the origin→c path by 1 AND every
//     edge of the Steiner tree spanning the object's copy locations by 1
//     (an edge lying on both is charged twice: update message + broadcast),
//   * the load of a bus is half the sum of its incident edge loads,
//   * relative load divides by bandwidth; congestion is the maximum
//     relative load over all edges and buses.
//
// All absolute loads are exact integers (Count); only relative loads are
// doubles.
#pragma once

#include <algorithm>
#include <cassert>
#include <span>
#include <vector>

#include "hbn/core/placement.h"
#include "hbn/net/rooted.h"

namespace hbn::core {

/// Absolute per-edge loads plus derived congestion queries.
class LoadMap {
 public:
  explicit LoadMap(int edgeCount)
      : edgeLoad_(static_cast<std::size_t>(edgeCount), 0) {}

  // Unchecked accesses (debug-build asserted): these sit inside the
  // per-request serving hot loop, where the bounds-checked .at() showed
  // up as measurable overhead. Edge ids come from RootedTree/FlatTreeView
  // tables, which are validated at construction.
  [[nodiscard]] Count edgeLoad(net::EdgeId e) const {
    assert(e >= 0 && static_cast<std::size_t>(e) < edgeLoad_.size());
    return edgeLoad_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] std::span<const Count> edgeLoads() const noexcept {
    return edgeLoad_;
  }
  void addEdgeLoad(net::EdgeId e, Count amount) {
    assert(e >= 0 && static_cast<std::size_t>(e) < edgeLoad_.size());
    edgeLoad_[static_cast<std::size_t>(e)] += amount;
  }
  /// Zeroes every edge load, keeping the allocation (per-epoch worker
  /// maps in the serving engine are reused this way).
  void clear() noexcept { std::fill(edgeLoad_.begin(), edgeLoad_.end(), 0); }

  /// Bus load: half the sum of incident edge loads (exact, may be x.5).
  [[nodiscard]] double busLoad(const net::Tree& tree, net::NodeId bus) const;

  /// Max load/bandwidth over edges only.
  [[nodiscard]] double edgeCongestion(const net::Tree& tree) const;
  /// Max load/bandwidth over buses only.
  [[nodiscard]] double busCongestion(const net::Tree& tree) const;
  /// The paper's congestion: max over edges and buses.
  [[nodiscard]] double congestion(const net::Tree& tree) const;

  /// Sum over edges of load (total communication load; the quantity the
  /// paper's introduction contrasts congestion with).
  [[nodiscard]] Count totalLoad() const noexcept;

 private:
  std::vector<Count> edgeLoad_;
};

/// Evaluates the exact load of `placement` on `tree`.
/// `rooted` must be a rooted view of the same tree (used for LCA paths and
/// Steiner computation; the root choice does not affect the result).
[[nodiscard]] LoadMap computeLoad(const net::RootedTree& rooted,
                                  const Placement& placement);

/// Per-object variant; adds object `x`'s load contribution onto `loads`.
void accumulateObjectLoad(const net::RootedTree& rooted,
                          const ObjectPlacement& object, LoadMap& loads);

/// Convenience: congestion of `placement` on `tree`.
[[nodiscard]] double evaluateCongestion(const net::RootedTree& rooted,
                                        const Placement& placement);

}  // namespace hbn::core
