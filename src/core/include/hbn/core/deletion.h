// Step 2 — the deletion algorithm (Figure 4): removing rarely used copies.
//
// Given an object's nibble placement (a connected copy subtree rooted at
// the gravity centre) and its write contention κ_x, the copy subtree is
// processed bottom-up; a copy serving fewer than κ_x requests is deleted
// and its requests are handed to the copy on the parent node (the deleted
// root's requests go to the nearest surviving copy). Afterwards, copies
// serving more than 2κ_x requests are split into co-located copies each
// serving between κ_x and 2κ_x requests.
//
// Observation 3.2: every surviving copy serves s(c) ∈ [κ_x, 2κ_x] (for
// κ_x > 0), per-edge loads grow by at most κ_x inside the copy subtree,
// and the placement stays per-edge optimal up to a factor of 2.
//
// In addition to the paper's rule we also delete copies that serve zero
// requests (relevant only for read-only objects, κ_x = 0, whose inner-node
// copies serve nobody): removing a zero-served copy changes no path load
// and can only shrink Steiner trees. This makes read-only objects
// leaf-only after step 2, which is exactly the case the paper's analysis
// excuses from the mapping step ("the extended-nibble strategy does not
// change their placement").
#pragma once

#include "hbn/core/placement.h"
#include "hbn/net/tree.h"

namespace hbn::core {

/// Statistics reported by the deletion step.
struct DeletionStats {
  int copiesDeleted = 0;
  int copiesCreatedBySplit = 0;
};

/// Runs the deletion algorithm on one object's placement.
///
/// `placement` must have at most one copy per node forming a connected
/// subtree containing `root` (the nibble output); `kappa` is the object's
/// write contention κ_x. Returns the modified placement.
[[nodiscard]] ObjectPlacement deleteRarelyUsedCopies(
    const net::Tree& tree, const ObjectPlacement& placement, Count kappa,
    net::NodeId root, DeletionStats* stats = nullptr);

}  // namespace hbn::core
