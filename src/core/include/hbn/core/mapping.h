// Step 3 — the mapping algorithm (Figures 5 and 6): moving the remaining
// inner-node copies to leaves.
//
// The tree is rooted at a designated bus. Each undirected edge becomes an
// upward and a downward directed edge. For every directed edge ē the
// algorithm maintains
//
//   L_b(ē)    — basic load: requests of the modified nibble placement whose
//               copy→requester path uses ē,
//   L_acc(ē)  — acceptable forwarding load, initially 2·L_b(ē),
//   L_map(ē)  — forwarding load already committed; moving a copy c along ē
//               adds s(c) + κ_x(c), which is at most
//               τ_max = max_c { s(c) + κ_x(c) }.
//
// Upwards phase (Figure 5), leaves towards the root: every node pushes
// copies to its parent while L_map(ē+) + τ_max ≤ L_acc(ē+), then the
// slack δ = L_acc(ē+) − L_map(ē+) is subtracted from both directions of
// the parent edge. Downwards phase (Figure 6), root towards the leaves:
// every inner node sends each copy along a free child edge
// (L_map(ē) + s(c) + κ_x(c) ≤ L_acc(ē) + τ_max); Lemma 4.1 proves a free
// edge always exists. Afterwards every mapped copy sits on a leaf.
//
// Note on the downwards loop bounds: the paper's listing iterates levels
// height(T)-1 … 1, which never visits the root (level height(T)); the
// analysis ("after the downwards phase all copies have been mapped to leaf
// nodes") requires the root's copies to move as well, so this
// implementation processes all inner nodes top-down starting at the root.
//
// Free-edge search uses a per-node max-slack heap, giving the paper's
// O(log degree(v)) per downward move.
#pragma once

#include <vector>

#include "hbn/core/placement.h"
#include "hbn/net/rooted.h"

namespace hbn::core {

/// Options for the mapping step (ablation hooks).
struct MappingOptions {
  /// Initial acceptable-load multiplier: L_acc = accFactor · L_b.
  /// The paper uses 2; other values break the guarantee (E10 probes this).
  Count accFactor = 2;
  /// When true, a copy with no free child edge is forced along the
  /// maximum-slack edge instead of aborting; forcedMoves counts how often.
  /// With the paper's parameters Lemma 4.1 guarantees forcedMoves == 0;
  /// ablations (accFactor != 2 or skipped deletion) may need the escape
  /// hatch.
  bool forceWhenStuck = true;
};

/// Instrumentation of a mapping run.
struct MappingStats {
  Count tauMax = 0;
  int participatingCopies = 0;
  int upMoves = 0;
  int downMoves = 0;
  /// Moves that violated the free-edge condition (0 for the real algorithm).
  int forcedMoves = 0;
};

/// Runs the mapping algorithm.
///
/// `objects` holds the modified nibble placement of every object (step 2
/// output, or step 1 output for frozen objects); `kappa[x]` is κ_x;
/// `participates[x]` selects the objects whose copies join the move sets
/// M(v) (objects already leaf-only stay frozen — their requests still
/// count towards the basic loads). `rooted` must be rooted at a bus
/// (tree.defaultRoot()).
///
/// Returns the final placement: participating objects' copies are all on
/// leaves; frozen objects are unchanged.
[[nodiscard]] Placement mapCopiesToLeaves(
    const net::RootedTree& rooted, const std::vector<ObjectPlacement>& objects,
    const std::vector<Count>& kappa, const std::vector<char>& participates,
    MappingStats* stats = nullptr, const MappingOptions& options = {});

}  // namespace hbn::core
