// Step 1 — the nibble strategy (Maggs, Meyer auf der Heide, Vöcking,
// Westermann, FOCS'97 [10]), re-implemented as the paper's substrate.
//
// For each object x, rooted at the centre of gravity g(T) of the access
// weights h(v) = h_r(v,x) + h_w(v,x):
//
//     a node v gets a copy of x  iff  v = g(T) or h(T(v)) > w(T),
//
// where T(v) is the subtree below v and w(T) the total write frequency.
// Every requesting node is served by its nearest copy. The placement may
// use inner (bus) nodes; Theorem 3.1 states that it simultaneously
// minimises the load on every edge, that the copy set is a connected
// subtree, and that per-object edge loads never exceed the write
// contention κ_x (and equal κ_x inside the copy subtree).
//
// Runs in O(|V|) per object as in the paper (no LCA tables needed).
#pragma once

#include <vector>

#include "hbn/core/placement.h"
#include "hbn/net/tree.h"
#include "hbn/workload/workload.h"

namespace hbn::core {

/// Nibble output for one object.
struct NibbleObjectResult {
  ObjectPlacement placement;           ///< copies + nearest-copy ledgers
  net::NodeId gravityCenter = net::kInvalidNode;
};

/// Weighted centre of gravity: a node whose removal splits the tree into
/// components each carrying at most half of the total weight. For zero
/// total weight returns the first processor. Deterministic (descends into
/// the unique too-heavy component; tie-stable).
/// `weights` must have tree.nodeCount() non-negative entries.
[[nodiscard]] net::NodeId centerOfGravity(const net::Tree& tree,
                                          std::span<const Count> weights);

/// Computes the nibble placement of object `x`. An object with no
/// accesses at all receives a single copy on the first processor.
[[nodiscard]] NibbleObjectResult nibbleObject(const net::Tree& tree,
                                              const workload::Workload& load,
                                              ObjectId x);

/// Nibble placement of every object.
[[nodiscard]] Placement nibblePlacement(const net::Tree& tree,
                                        const workload::Workload& load);

}  // namespace hbn::core
