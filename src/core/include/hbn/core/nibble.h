// Step 1 — the nibble strategy (Maggs, Meyer auf der Heide, Vöcking,
// Westermann, FOCS'97 [10]), re-implemented as the paper's substrate.
//
// For each object x, rooted at the centre of gravity g(T) of the access
// weights h(v) = h_r(v,x) + h_w(v,x):
//
//     a node v gets a copy of x  iff  v = g(T) or h(T(v)) > w(T),
//
// where T(v) is the subtree below v and w(T) the total write frequency.
// Every requesting node is served by its nearest copy. The placement may
// use inner (bus) nodes; Theorem 3.1 states that it simultaneously
// minimises the load on every edge, that the copy set is a connected
// subtree, and that per-object edge loads never exceed the write
// contention κ_x (and equal κ_x inside the copy subtree).
//
// Runs in O(|V|) per object as in the paper (no LCA tables needed).
#pragma once

#include <span>
#include <vector>

#include "hbn/core/placement.h"
#include "hbn/net/tree.h"
#include "hbn/workload/workload.h"

namespace hbn::core {

/// Nibble output for one object.
struct NibbleObjectResult {
  ObjectPlacement placement;           ///< copies + nearest-copy ledgers
  net::NodeId gravityCenter = net::kInvalidNode;
};

/// Reusable per-worker buffers for nibbleObjectInto. One instance per
/// thread amortises all O(|V|) allocations across the objects that thread
/// places (the executor's per-thread scratch); contents are overwritten on
/// every call and never read between calls.
struct NibbleScratch {
  std::vector<net::NodeId> order;   ///< BFS order, root first
  std::vector<net::NodeId> parent;  ///< BFS parents
  std::vector<char> seen;
  std::vector<Count> weights;
  std::vector<Count> sub;
  std::vector<char> hasCopy;
  std::vector<net::NodeId> refOf;
  std::vector<int> copyIndex;
};

/// Weighted centre of gravity: a node whose removal splits the tree into
/// components each carrying at most half of the total weight. For zero
/// total weight returns the first processor. Deterministic (descends into
/// the unique too-heavy component; tie-stable).
/// `weights` must have tree.nodeCount() non-negative entries.
[[nodiscard]] net::NodeId centerOfGravity(const net::Tree& tree,
                                          std::span<const Count> weights);

/// Computes the nibble placement of object `x`. An object with no
/// accesses at all receives a single copy on the first processor.
[[nodiscard]] NibbleObjectResult nibbleObject(const net::Tree& tree,
                                              const workload::Workload& load,
                                              ObjectId x);

/// Scratch-reusing core of nibbleObject: identical output, but all working
/// vectors live in `scratch` so a worker thread placing many objects
/// performs no per-object allocation beyond the result itself.
void nibbleObjectInto(const net::Tree& tree, const workload::Workload& load,
                      ObjectId x, NibbleScratch& scratch,
                      NibbleObjectResult& out);

/// Builds the ledgered ObjectPlacement for the copy set `hasCopy` (one flag
/// per node; must be connected and contain `g`), assigning every request to
/// its nearest copy exactly as the nibble strategy does. Shared by the
/// sequential nibble and the distributed computation so both produce
/// bit-identical placements.
[[nodiscard]] ObjectPlacement assembleCopySet(const net::Tree& tree,
                                              const workload::Workload& load,
                                              ObjectId x,
                                              std::span<const char> hasCopy,
                                              net::NodeId g);

/// Nibble placement of every object.
[[nodiscard]] Placement nibblePlacement(const net::Tree& tree,
                                        const workload::Workload& load);

}  // namespace hbn::core
