#include "hbn/core/extended_nibble.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hbn::core {
namespace {

// Runs fn(x) for every object id in [0, numObjects) on `threads` workers.
// Work is split into contiguous stripes; each worker writes only to its
// own objects' preallocated slots, so no synchronisation is needed and
// the result is identical to the sequential loop.
template <typename Fn>
void parallelForObjects(int numObjects, int threads, Fn&& fn) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::clamp(threads, 1, numObjects);
  if (threads <= 1) {
    for (ObjectId x = 0; x < numObjects; ++x) fn(x);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const ObjectId begin = static_cast<ObjectId>(
        static_cast<long>(numObjects) * t / threads);
    const ObjectId end = static_cast<ObjectId>(
        static_cast<long>(numObjects) * (t + 1) / threads);
    workers.emplace_back([begin, end, &fn] {
      for (ObjectId x = begin; x < end; ++x) fn(x);
    });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace

ExtendedNibbleResult extendedNibble(const net::Tree& tree,
                                    const workload::Workload& load,
                                    const ExtendedNibbleOptions& options) {
  load.validateProcessorOnly(tree);
  ExtendedNibbleResult result;
  result.report.maxWriteContention = load.maxWriteContention();

  const net::NodeId root = options.mappingRoot == net::kInvalidNode
                               ? tree.defaultRoot()
                               : options.mappingRoot;
  const net::RootedTree rooted(tree, root);

  // --- Step 1: nibble. Objects are independent; stripe them over the
  // configured worker threads (bit-identical to the sequential loop).
  result.gravityCenters.resize(static_cast<std::size_t>(load.numObjects()));
  result.nibble.objects.resize(static_cast<std::size_t>(load.numObjects()));
  parallelForObjects(load.numObjects(), options.threads, [&](ObjectId x) {
    NibbleObjectResult one = nibbleObject(tree, load, x);
    result.gravityCenters[static_cast<std::size_t>(x)] = one.gravityCenter;
    result.nibble.objects[static_cast<std::size_t>(x)] =
        std::move(one.placement);
  });
  result.report.congestionNibble = evaluateCongestion(rooted, result.nibble);

  // --- Step 2: deletion (only for objects that still use inner nodes;
  // leaf-only objects are frozen from here on). Per-object deletion stats
  // are accumulated per worker and merged to keep the report exact.
  result.modified.objects.resize(result.nibble.objects.size());
  std::vector<Count> kappa(static_cast<std::size_t>(load.numObjects()));
  std::vector<DeletionStats> perObjectStats(
      static_cast<std::size_t>(load.numObjects()));
  parallelForObjects(load.numObjects(), options.threads, [&](ObjectId x) {
    kappa[static_cast<std::size_t>(x)] = load.objectWrites(x);
    const ObjectPlacement& nib =
        result.nibble.objects[static_cast<std::size_t>(x)];
    if (!options.runDeletion || nib.isLeafOnly(tree)) {
      result.modified.objects[static_cast<std::size_t>(x)] = nib;
      return;
    }
    result.modified.objects[static_cast<std::size_t>(x)] =
        deleteRarelyUsedCopies(
            tree, nib, kappa[static_cast<std::size_t>(x)],
            result.gravityCenters[static_cast<std::size_t>(x)],
            &perObjectStats[static_cast<std::size_t>(x)]);
  });
  for (const DeletionStats& stats : perObjectStats) {
    result.report.deletion.copiesDeleted += stats.copiesDeleted;
    result.report.deletion.copiesCreatedBySplit += stats.copiesCreatedBySplit;
  }
  result.report.congestionModified =
      evaluateCongestion(rooted, result.modified);

  // --- Step 3: mapping. Objects still holding inner-node copies
  // participate; everything else is frozen.
  std::vector<char> participates(static_cast<std::size_t>(load.numObjects()),
                                 0);
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    const bool leafOnly =
        result.modified.objects[static_cast<std::size_t>(x)].isLeafOnly(tree);
    participates[static_cast<std::size_t>(x)] = leafOnly ? 0 : 1;
    if (leafOnly) {
      ++result.report.frozenObjects;
    } else {
      ++result.report.participatingObjects;
    }
  }
  MappingOptions mapOptions;
  mapOptions.accFactor = options.accFactor;
  mapOptions.forceWhenStuck = true;  // records violations instead of aborting
  result.final =
      mapCopiesToLeaves(rooted, result.modified.objects, kappa, participates,
                        &result.report.mapping, mapOptions);
  result.report.congestionFinal = evaluateCongestion(rooted, result.final);

  if (!result.final.isLeafOnly(tree)) {
    throw std::logic_error("extendedNibble: final placement not leaf-only");
  }
  return result;
}

Placement computeExtendedNibblePlacement(const net::Tree& tree,
                                         const workload::Workload& load,
                                         const ExtendedNibbleOptions& options) {
  return extendedNibble(tree, load, options).final;
}

}  // namespace hbn::core
