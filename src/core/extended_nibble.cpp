#include "hbn/core/extended_nibble.h"

#include <stdexcept>
#include <vector>

#include "hbn/core/parallel.h"

namespace hbn::core {

ExtendedNibbleResult extendedNibble(const net::Tree& tree,
                                    const workload::Workload& load,
                                    const ExtendedNibbleOptions& options) {
  load.validateProcessorOnly(tree);
  ExtendedNibbleResult result;
  result.report.maxWriteContention = load.maxWriteContention();

  const net::NodeId root = options.mappingRoot == net::kInvalidNode
                               ? tree.defaultRoot()
                               : options.mappingRoot;
  const net::RootedTree rooted(tree, root);

  // --- Step 1: nibble. Objects are independent; stripe them over the
  // configured worker threads (bit-identical to the sequential loop).
  // Each worker owns one NibbleScratch, so the O(|V|) BFS / subtree-weight
  // vectors are allocated once per thread, not once per object.
  const int workers = resolveWorkerCount(options.threads, load.numObjects());
  result.gravityCenters.resize(static_cast<std::size_t>(load.numObjects()));
  result.nibble.objects.resize(static_cast<std::size_t>(load.numObjects()));
  {
    std::vector<NibbleScratch> scratch(static_cast<std::size_t>(workers));
    std::vector<NibbleObjectResult> one(static_cast<std::size_t>(workers));
    parallelForObjects(load.numObjects(), workers, [&](ObjectId x, int w) {
      NibbleObjectResult& out = one[static_cast<std::size_t>(w)];
      nibbleObjectInto(tree, load, x, scratch[static_cast<std::size_t>(w)],
                       out);
      result.gravityCenters[static_cast<std::size_t>(x)] = out.gravityCenter;
      result.nibble.objects[static_cast<std::size_t>(x)] =
          std::move(out.placement);
    });
  }
  result.report.congestionNibble = evaluateCongestion(rooted, result.nibble);

  // --- Step 2: deletion (only for objects that still use inner nodes;
  // leaf-only objects are frozen from here on). Per-object deletion stats
  // are accumulated per worker and merged to keep the report exact.
  result.modified.objects.resize(result.nibble.objects.size());
  std::vector<Count> kappa(static_cast<std::size_t>(load.numObjects()));
  std::vector<DeletionStats> perObjectStats(
      static_cast<std::size_t>(load.numObjects()));
  parallelForObjects(load.numObjects(), workers, [&](ObjectId x, int) {
    kappa[static_cast<std::size_t>(x)] = load.objectWrites(x);
    const ObjectPlacement& nib =
        result.nibble.objects[static_cast<std::size_t>(x)];
    if (!options.runDeletion || nib.isLeafOnly(tree)) {
      result.modified.objects[static_cast<std::size_t>(x)] = nib;
      return;
    }
    result.modified.objects[static_cast<std::size_t>(x)] =
        deleteRarelyUsedCopies(
            tree, nib, kappa[static_cast<std::size_t>(x)],
            result.gravityCenters[static_cast<std::size_t>(x)],
            &perObjectStats[static_cast<std::size_t>(x)]);
  });
  for (const DeletionStats& stats : perObjectStats) {
    result.report.deletion.copiesDeleted += stats.copiesDeleted;
    result.report.deletion.copiesCreatedBySplit += stats.copiesCreatedBySplit;
  }
  result.report.congestionModified =
      evaluateCongestion(rooted, result.modified);

  // --- Step 3: mapping. Objects still holding inner-node copies
  // participate; everything else is frozen.
  std::vector<char> participates(static_cast<std::size_t>(load.numObjects()),
                                 0);
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    const bool leafOnly =
        result.modified.objects[static_cast<std::size_t>(x)].isLeafOnly(tree);
    participates[static_cast<std::size_t>(x)] = leafOnly ? 0 : 1;
    if (leafOnly) {
      ++result.report.frozenObjects;
    } else {
      ++result.report.participatingObjects;
    }
  }
  MappingOptions mapOptions;
  mapOptions.accFactor = options.accFactor;
  mapOptions.forceWhenStuck = true;  // records violations instead of aborting
  result.final =
      mapCopiesToLeaves(rooted, result.modified.objects, kappa, participates,
                        &result.report.mapping, mapOptions);
  result.report.congestionFinal = evaluateCongestion(rooted, result.final);

  if (!result.final.isLeafOnly(tree)) {
    throw std::logic_error("extendedNibble: final placement not leaf-only");
  }
  return result;
}

Placement computeExtendedNibblePlacement(const net::Tree& tree,
                                         const workload::Workload& load,
                                         const ExtendedNibbleOptions& options) {
  return extendedNibble(tree, load, options).final;
}

}  // namespace hbn::core
