#include "hbn/core/mapping.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

namespace hbn::core {
namespace {

// Directed edge ids: 2e = upward direction of edge e (deeper endpoint to
// parent), 2e+1 = downward direction.
[[nodiscard]] std::size_t upId(net::EdgeId e) {
  return static_cast<std::size_t>(2 * e);
}
[[nodiscard]] std::size_t downId(net::EdgeId e) {
  return static_cast<std::size_t>(2 * e + 1);
}

// A movable copy: references the source object/copy plus cached costs.
struct Token {
  ObjectId object = 0;
  int copyIdx = 0;
  Count served = 0;
  Count kappa = 0;

  [[nodiscard]] Count cost() const noexcept { return served + kappa; }
};

}  // namespace

Placement mapCopiesToLeaves(const net::RootedTree& rooted,
                            const std::vector<ObjectPlacement>& objects,
                            const std::vector<Count>& kappa,
                            const std::vector<char>& participates,
                            MappingStats* stats,
                            const MappingOptions& options) {
  const net::Tree& tree = rooted.tree();
  const auto n = static_cast<std::size_t>(tree.nodeCount());
  if (objects.size() != kappa.size() || objects.size() != participates.size()) {
    throw std::invalid_argument("mapCopiesToLeaves: input size mismatch");
  }

  MappingStats localStats;
  MappingStats& st = stats != nullptr ? *stats : localStats;
  st = MappingStats{};

  // --- Basic loads L_b per directed edge (all objects, frozen included).
  const auto directedCount = static_cast<std::size_t>(2 * tree.edgeCount());
  std::vector<Count> lb(directedCount, 0);
  for (const ObjectPlacement& object : objects) {
    for (const Copy& c : object.copies) {
      for (const RequestShare& share : c.served) {
        const Count amount = share.total();
        if (amount == 0 || share.origin == c.location) continue;
        // Directed path copy(u) -> requester(o): edges from u to the LCA
        // are traversed child->parent (upward), the rest parent->child.
        const net::NodeId u = c.location;
        const net::NodeId o = share.origin;
        const net::NodeId a = rooted.lca(u, o);
        for (net::NodeId v = u; v != a; v = rooted.parent(v)) {
          lb[upId(rooted.parentEdge(v))] += amount;
        }
        for (net::NodeId v = o; v != a; v = rooted.parent(v)) {
          lb[downId(rooted.parentEdge(v))] += amount;
        }
      }
    }
  }

  // --- Acceptable and mapping loads.
  std::vector<Count> lacc(directedCount);
  for (std::size_t d = 0; d < directedCount; ++d) {
    lacc[d] = options.accFactor * lb[d];
  }
  std::vector<Count> lmap(directedCount, 0);

  // --- Move sets M(v) and τ_max over participating copies.
  Placement result;
  result.objects = objects;  // ledgers move with the tokens; locations updated
  std::vector<std::vector<Token>> moveSet(n);
  Count tauMax = 0;
  for (std::size_t x = 0; x < objects.size(); ++x) {
    if (!participates[x]) continue;
    const auto& copies = objects[x].copies;
    for (std::size_t i = 0; i < copies.size(); ++i) {
      Token token;
      token.object = static_cast<ObjectId>(x);
      token.copyIdx = static_cast<int>(i);
      token.served = copies[i].servedTotal();
      token.kappa = kappa[x];
      tauMax = std::max(tauMax, token.cost());
      moveSet[static_cast<std::size_t>(copies[i].location)].push_back(token);
      ++st.participatingCopies;
    }
  }
  st.tauMax = tauMax;
  if (st.participatingCopies == 0) return result;

  // Nodes ordered by depth (shallow first).
  std::vector<net::NodeId> byDepth(rooted.preorder().begin(),
                                   rooted.preorder().end());
  std::stable_sort(byDepth.begin(), byDepth.end(),
                   [&](net::NodeId a, net::NodeId b) {
                     return rooted.depth(a) < rooted.depth(b);
                   });

  // --- Upwards phase (Figure 5): levels 0 .. height-1, i.e. deepest nodes
  // first; the root (level height) has no parent edge and is skipped.
  for (auto it = byDepth.rbegin(); it != byDepth.rend(); ++it) {
    const net::NodeId v = *it;
    if (v == rooted.root()) continue;
    const net::EdgeId pe = rooted.parentEdge(v);
    const std::size_t eUp = upId(pe);
    const std::size_t eDown = downId(pe);
    auto& mv = moveSet[static_cast<std::size_t>(v)];
    while (!mv.empty() && lmap[eUp] + tauMax <= lacc[eUp]) {
      const Token token = mv.back();
      mv.pop_back();
      lmap[eUp] += token.cost();
      moveSet[static_cast<std::size_t>(rooted.parent(v))].push_back(token);
      ++st.upMoves;
    }
    const Count delta = lacc[eUp] - lmap[eUp];
    lacc[eUp] -= delta;  // now L_acc(ē+) == L_map(ē+)
    lacc[eDown] -= delta;
  }

  // --- Downwards phase (Figure 6): inner nodes top-down; every copy takes
  // a free child edge. Max-slack heap per node with lazy invalidation.
  for (const net::NodeId v : byDepth) {
    if (tree.isProcessor(v)) continue;
    auto& mv = moveSet[static_cast<std::size_t>(v)];
    if (mv.empty()) continue;

    struct HeapEntry {
      Count slack;
      net::NodeId child;
      bool operator<(const HeapEntry& other) const {
        if (slack != other.slack) return slack < other.slack;
        return child > other.child;  // deterministic tie-break
      }
    };
    auto slackOf = [&](net::NodeId child) {
      const std::size_t d = downId(rooted.parentEdge(child));
      return lacc[d] + tauMax - lmap[d];
    };
    std::priority_queue<HeapEntry> heap;
    for (const net::NodeId child : rooted.children(v)) {
      heap.push(HeapEntry{slackOf(child), child});
    }

    for (const Token& token : mv) {
      // Pop stale entries until the top reflects current slack.
      net::NodeId chosen = net::kInvalidNode;
      while (!heap.empty()) {
        const HeapEntry top = heap.top();
        if (top.slack != slackOf(top.child)) {
          heap.pop();
          heap.push(HeapEntry{slackOf(top.child), top.child});
          continue;
        }
        chosen = top.child;
        break;
      }
      if (chosen == net::kInvalidNode) {
        throw std::logic_error("mapCopiesToLeaves: inner node with no child");
      }
      const bool free = slackOf(chosen) >= token.cost();
      if (!free) {
        if (!options.forceWhenStuck) {
          throw std::logic_error(
              "mapCopiesToLeaves: no free child edge (Lemma 4.1 violated)");
        }
        ++st.forcedMoves;
      }
      const std::size_t d = downId(rooted.parentEdge(chosen));
      lmap[d] += token.cost();
      heap.push(HeapEntry{slackOf(chosen), chosen});
      moveSet[static_cast<std::size_t>(chosen)].push_back(token);
      ++st.downMoves;
    }
    mv.clear();
  }

  // --- Record final locations.
  for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
    for (const Token& token : moveSet[static_cast<std::size_t>(v)]) {
      if (!tree.isProcessor(v)) {
        throw std::logic_error(
            "mapCopiesToLeaves: copy stranded on an inner node");
      }
      result.objects[static_cast<std::size_t>(token.object)]
          .copies[static_cast<std::size_t>(token.copyIdx)]
          .location = v;
    }
  }
  return result;
}

}  // namespace hbn::core
