#include "hbn/core/placement.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hbn::core {

Count Copy::servedTotal() const noexcept {
  Count total = 0;
  for (const RequestShare& share : served) total += share.total();
  return total;
}

std::vector<net::NodeId> ObjectPlacement::locations() const {
  std::vector<net::NodeId> locs;
  locs.reserve(copies.size());
  for (const Copy& c : copies) locs.push_back(c.location);
  std::sort(locs.begin(), locs.end());
  locs.erase(std::unique(locs.begin(), locs.end()), locs.end());
  return locs;
}

Count ObjectPlacement::servedTotal() const noexcept {
  Count total = 0;
  for (const Copy& c : copies) total += c.servedTotal();
  return total;
}

bool ObjectPlacement::isLeafOnly(const net::Tree& tree) const {
  for (const Copy& c : copies) {
    if (!tree.isProcessor(c.location)) return false;
  }
  return true;
}

bool Placement::isLeafOnly(const net::Tree& tree) const {
  for (const ObjectPlacement& obj : objects) {
    if (!obj.isLeafOnly(tree)) return false;
  }
  return true;
}

ObjectPlacement makeNearestPlacement(const net::Tree& tree,
                                     const workload::Workload& load,
                                     ObjectId x,
                                     std::span<const net::NodeId> locations) {
  if (locations.empty()) {
    throw std::invalid_argument("makeNearestPlacement: empty copy set");
  }
  const auto n = static_cast<std::size_t>(tree.nodeCount());

  // Multi-source BFS; sources enqueued in ascending id order so that ties
  // resolve toward the smaller copy id deterministically.
  std::vector<net::NodeId> sources(locations.begin(), locations.end());
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());

  std::vector<int> nearest(n, -1);  // index into `sources`
  std::vector<net::NodeId> queue;
  queue.reserve(n);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const net::NodeId s = sources[i];
    if (s < 0 || s >= tree.nodeCount()) {
      throw std::out_of_range("makeNearestPlacement: location out of range");
    }
    nearest[static_cast<std::size_t>(s)] = static_cast<int>(i);
    queue.push_back(s);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const net::NodeId v = queue[head];
    for (const net::HalfEdge& he : tree.neighbors(v)) {
      if (nearest[static_cast<std::size_t>(he.to)] < 0) {
        nearest[static_cast<std::size_t>(he.to)] =
            nearest[static_cast<std::size_t>(v)];
        queue.push_back(he.to);
      }
    }
  }

  ObjectPlacement placement;
  placement.copies.resize(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    placement.copies[i].location = sources[i];
  }
  for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
    const Count r = load.reads(x, v);
    const Count w = load.writes(x, v);
    if (r == 0 && w == 0) continue;
    const int idx = nearest[static_cast<std::size_t>(v)];
    placement.copies[static_cast<std::size_t>(idx)].served.push_back(
        RequestShare{v, r, w});
  }
  return placement;
}

void validateCoversWorkload(const Placement& placement,
                            const workload::Workload& load) {
  if (placement.numObjects() != load.numObjects()) {
    throw std::logic_error("placement/workload object count mismatch");
  }
  std::vector<Count> reads(static_cast<std::size_t>(load.numNodes()));
  std::vector<Count> writes(static_cast<std::size_t>(load.numNodes()));
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    std::fill(reads.begin(), reads.end(), 0);
    std::fill(writes.begin(), writes.end(), 0);
    for (const Copy& c : placement.objects[static_cast<std::size_t>(x)].copies) {
      for (const RequestShare& share : c.served) {
        if (share.reads < 0 || share.writes < 0) {
          throw std::logic_error("negative share for object " +
                                 std::to_string(x));
        }
        reads[static_cast<std::size_t>(share.origin)] += share.reads;
        writes[static_cast<std::size_t>(share.origin)] += share.writes;
      }
    }
    for (net::NodeId v = 0; v < load.numNodes(); ++v) {
      if (reads[static_cast<std::size_t>(v)] != load.reads(x, v) ||
          writes[static_cast<std::size_t>(v)] != load.writes(x, v)) {
        throw std::logic_error(
            "placement does not cover workload for object " +
            std::to_string(x) + " at node " + std::to_string(v));
      }
    }
  }
}

}  // namespace hbn::core
