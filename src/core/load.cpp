#include "hbn/core/load.h"

#include <algorithm>

#include "hbn/core/flat_load.h"
#include "hbn/net/steiner.h"

namespace hbn::core {

double LoadMap::busLoad(const net::Tree& tree, net::NodeId bus) const {
  Count sum = 0;
  for (const net::HalfEdge& he : tree.neighbors(bus)) {
    sum += edgeLoad_[static_cast<std::size_t>(he.edge)];
  }
  return static_cast<double>(sum) / 2.0;
}

double LoadMap::edgeCongestion(const net::Tree& tree) const {
  double best = 0.0;
  for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
    best = std::max(best, static_cast<double>(
                              edgeLoad_[static_cast<std::size_t>(e)]) /
                              tree.edgeBandwidth(e));
  }
  return best;
}

double LoadMap::busCongestion(const net::Tree& tree) const {
  double best = 0.0;
  for (const net::NodeId b : tree.buses()) {
    best = std::max(best, busLoad(tree, b) / tree.busBandwidth(b));
  }
  return best;
}

double LoadMap::congestion(const net::Tree& tree) const {
  return std::max(edgeCongestion(tree), busCongestion(tree));
}

Count LoadMap::totalLoad() const noexcept {
  Count sum = 0;
  for (const Count l : edgeLoad_) sum += l;
  return sum;
}

namespace {

// Shared body of the legacy per-share walk, with caller-owned descent
// scratch so batch callers stay allocation-free across objects.
void accumulateObjectLoadWith(const net::RootedTree& rooted,
                              const ObjectPlacement& object, LoadMap& loads,
                              std::vector<net::EdgeId>& descent) {
  Count kappa = 0;  // write contention of this object (from the ledger)
  for (const Copy& c : object.copies) {
    for (const RequestShare& share : c.served) {
      kappa += share.writes;
      const Count amount = share.total();
      if (amount > 0 && share.origin != c.location) {
        rooted.forEachPathEdge(
            share.origin, c.location,
            [&](net::EdgeId e) { loads.addEdgeLoad(e, amount); }, descent);
      }
    }
  }
  if (kappa > 0) {
    const auto locs = object.locations();
    const auto steiner = net::steinerEdges(rooted, locs);
    for (const net::EdgeId e : steiner) loads.addEdgeLoad(e, kappa);
  }
}

}  // namespace

void accumulateObjectLoad(const net::RootedTree& rooted,
                          const ObjectPlacement& object, LoadMap& loads) {
  std::vector<net::EdgeId> descent;
  accumulateObjectLoadWith(rooted, object, loads, descent);
}

LoadMap computeLoad(const net::RootedTree& rooted,
                    const Placement& placement) {
  // Adaptive cutover: difference counting amortises its O(n log n) flat
  // view build only once the ledger is dense enough; sparse placements
  // keep the legacy per-share walk (both routes are bit-identical).
  std::size_t shares = 0;
  for (const ObjectPlacement& object : placement.objects) {
    for (const Copy& c : object.copies) shares += c.served.size();
  }
  if (shares >= static_cast<std::size_t>(rooted.tree().nodeCount()) &&
      shares >= kFlatLoadCutover * placement.objects.size()) {
    return computeLoad(FlatTreeView(rooted), placement);
  }
  LoadMap loads(rooted.tree().edgeCount());
  std::vector<net::EdgeId> descent;  // shared walk scratch for the batch
  for (const ObjectPlacement& object : placement.objects) {
    accumulateObjectLoadWith(rooted, object, loads, descent);
  }
  return loads;
}

double evaluateCongestion(const net::RootedTree& rooted,
                          const Placement& placement) {
  return computeLoad(rooted, placement).congestion(rooted.tree());
}

}  // namespace hbn::core
