#include "hbn/core/load.h"

#include <algorithm>

#include "hbn/net/steiner.h"

namespace hbn::core {

double LoadMap::busLoad(const net::Tree& tree, net::NodeId bus) const {
  Count sum = 0;
  for (const net::HalfEdge& he : tree.neighbors(bus)) {
    sum += edgeLoad_[static_cast<std::size_t>(he.edge)];
  }
  return static_cast<double>(sum) / 2.0;
}

double LoadMap::edgeCongestion(const net::Tree& tree) const {
  double best = 0.0;
  for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
    best = std::max(best, static_cast<double>(
                              edgeLoad_[static_cast<std::size_t>(e)]) /
                              tree.edgeBandwidth(e));
  }
  return best;
}

double LoadMap::busCongestion(const net::Tree& tree) const {
  double best = 0.0;
  for (const net::NodeId b : tree.buses()) {
    best = std::max(best, busLoad(tree, b) / tree.busBandwidth(b));
  }
  return best;
}

double LoadMap::congestion(const net::Tree& tree) const {
  return std::max(edgeCongestion(tree), busCongestion(tree));
}

Count LoadMap::totalLoad() const noexcept {
  Count sum = 0;
  for (const Count l : edgeLoad_) sum += l;
  return sum;
}

void accumulateObjectLoad(const net::RootedTree& rooted,
                          const ObjectPlacement& object, LoadMap& loads) {
  Count kappa = 0;  // write contention of this object (from the ledger)
  for (const Copy& c : object.copies) {
    for (const RequestShare& share : c.served) {
      kappa += share.writes;
      const Count amount = share.total();
      if (amount > 0 && share.origin != c.location) {
        rooted.forEachPathEdge(share.origin, c.location, [&](net::EdgeId e) {
          loads.addEdgeLoad(e, amount);
        });
      }
    }
  }
  if (kappa > 0) {
    const auto locs = object.locations();
    const auto steiner = net::steinerEdges(rooted, locs);
    for (const net::EdgeId e : steiner) loads.addEdgeLoad(e, kappa);
  }
}

LoadMap computeLoad(const net::RootedTree& rooted,
                    const Placement& placement) {
  LoadMap loads(rooted.tree().edgeCount());
  for (const ObjectPlacement& object : placement.objects) {
    accumulateObjectLoad(rooted, object, loads);
  }
  return loads;
}

double evaluateCongestion(const net::RootedTree& rooted,
                          const Placement& placement) {
  return computeLoad(rooted, placement).congestion(rooted.tree());
}

}  // namespace hbn::core
