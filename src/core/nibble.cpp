#include "hbn/core/nibble.h"

#include <algorithm>
#include <stdexcept>

namespace hbn::core {
namespace {

// BFS order and parent pointers from `root` in O(n) into caller-owned
// buffers; cheaper than a full RootedTree (no LCA tables), keeping nibble
// linear per object and allocation-free when the buffers are reused.
void bfsInto(const net::Tree& tree, net::NodeId root, NibbleScratch& s) {
  const auto n = static_cast<std::size_t>(tree.nodeCount());
  s.order.clear();
  s.order.reserve(n);
  s.parent.assign(n, net::kInvalidNode);
  s.seen.assign(n, 0);
  s.order.push_back(root);
  s.seen[static_cast<std::size_t>(root)] = 1;
  for (std::size_t head = 0; head < s.order.size(); ++head) {
    const net::NodeId v = s.order[head];
    for (const net::HalfEdge& he : tree.neighbors(v)) {
      if (!s.seen[static_cast<std::size_t>(he.to)]) {
        s.seen[static_cast<std::size_t>(he.to)] = 1;
        s.parent[static_cast<std::size_t>(he.to)] = v;
        s.order.push_back(he.to);
      }
    }
  }
}

// Subtree sums w.r.t. the BFS orientation currently held in `s`:
// s.sub[v] = Σ weights over the component below v.
void accumulateSubtreeSums(NibbleScratch& s, std::span<const Count> weights) {
  s.sub.assign(weights.begin(), weights.end());
  for (auto it = s.order.rbegin(); it != s.order.rend(); ++it) {
    const net::NodeId v = *it;
    const net::NodeId p = s.parent[static_cast<std::size_t>(v)];
    if (p != net::kInvalidNode) {
      s.sub[static_cast<std::size_t>(p)] += s.sub[static_cast<std::size_t>(v)];
    }
  }
}

net::NodeId centerOfGravityImpl(const net::Tree& tree,
                                std::span<const Count> weights,
                                NibbleScratch& s) {
  if (weights.size() != static_cast<std::size_t>(tree.nodeCount())) {
    throw std::invalid_argument("centerOfGravity: weight size mismatch");
  }
  Count total = 0;
  for (const Count w : weights) {
    if (w < 0) throw std::invalid_argument("centerOfGravity: negative weight");
    total += w;
  }
  if (total == 0) return tree.processors().front();

  // Subtree weights w.r.t. an arbitrary root; a node is a candidate when
  // every component of T - v (children subtrees and the parent side)
  // carries at most half the total weight. The paper allows an arbitrary
  // candidate "e.g., the one with the smallest index" — we return exactly
  // that so the sequential and distributed computations agree.
  bfsInto(tree, 0, s);
  accumulateSubtreeSums(s, weights);
  for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
    Count maxComponent = total - s.sub[static_cast<std::size_t>(v)];
    for (const net::HalfEdge& he : tree.neighbors(v)) {
      if (s.parent[static_cast<std::size_t>(v)] == he.to) continue;
      maxComponent =
          std::max(maxComponent, s.sub[static_cast<std::size_t>(he.to)]);
    }
    if (2 * maxComponent <= total) return v;
  }
  throw std::logic_error("centerOfGravity: no candidate found");
}

// Copy assembly shared by assembleCopySet and nibbleObjectInto; expects
// s.order/s.parent to hold the BFS view rooted at the gravity centre g
// and s.hasCopy the copy flags.
void assembleInto(const net::Tree& tree, const workload::Workload& load,
                  ObjectId x, NibbleScratch& s, ObjectPlacement& out) {
  const auto n = static_cast<std::size_t>(tree.nodeCount());
  // Nearest copy: the copy set is a connected subtree containing g, so the
  // nearest copy of v is the first copy node on the path from v to g.
  s.refOf.assign(n, net::kInvalidNode);
  for (const net::NodeId v : s.order) {  // parents precede children
    if (s.hasCopy[static_cast<std::size_t>(v)]) {
      s.refOf[static_cast<std::size_t>(v)] = v;
    } else {
      s.refOf[static_cast<std::size_t>(v)] =
          s.refOf[static_cast<std::size_t>(
              s.parent[static_cast<std::size_t>(v)])];
    }
  }

  // Assemble copies with ledgers.
  out.copies.clear();
  s.copyIndex.assign(n, -1);
  for (const net::NodeId v : s.order) {
    if (s.hasCopy[static_cast<std::size_t>(v)]) {
      s.copyIndex[static_cast<std::size_t>(v)] =
          static_cast<int>(out.copies.size());
      Copy c;
      c.location = v;
      out.copies.push_back(std::move(c));
    }
  }
  for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
    const Count r = load.reads(x, v);
    const Count w = load.writes(x, v);
    if (r == 0 && w == 0) continue;
    const net::NodeId ref = s.refOf[static_cast<std::size_t>(v)];
    out.copies[static_cast<std::size_t>(
                   s.copyIndex[static_cast<std::size_t>(ref)])]
        .served.push_back(RequestShare{v, r, w});
  }
}

}  // namespace

net::NodeId centerOfGravity(const net::Tree& tree,
                            std::span<const Count> weights) {
  NibbleScratch scratch;
  return centerOfGravityImpl(tree, weights, scratch);
}

ObjectPlacement assembleCopySet(const net::Tree& tree,
                                const workload::Workload& load, ObjectId x,
                                std::span<const char> hasCopy, net::NodeId g) {
  if (hasCopy.size() != static_cast<std::size_t>(tree.nodeCount())) {
    throw std::invalid_argument("assembleCopySet: flag size mismatch");
  }
  NibbleScratch s;
  bfsInto(tree, g, s);
  s.hasCopy.assign(hasCopy.begin(), hasCopy.end());
  ObjectPlacement out;
  assembleInto(tree, load, x, s, out);
  return out;
}

void nibbleObjectInto(const net::Tree& tree, const workload::Workload& load,
                      ObjectId x, NibbleScratch& s, NibbleObjectResult& out) {
  if (load.numNodes() != tree.nodeCount()) {
    throw std::invalid_argument("nibbleObject: workload dimension mismatch");
  }
  const auto n = static_cast<std::size_t>(tree.nodeCount());
  out.placement.copies.clear();

  if (load.objectTotal(x) == 0) {
    // Never-accessed object: one copy on the first processor.
    out.gravityCenter = tree.processors().front();
    Copy c;
    c.location = out.gravityCenter;
    out.placement.copies.push_back(std::move(c));
    return;
  }

  s.weights.assign(n, 0);
  for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
    s.weights[static_cast<std::size_t>(v)] = load.total(x, v);
  }
  const net::NodeId g = centerOfGravityImpl(tree, s.weights, s);
  out.gravityCenter = g;

  // Root at g; h(T(v)) via reverse BFS accumulation.
  bfsInto(tree, g, s);
  accumulateSubtreeSums(s, s.weights);

  const Count totalWrites = load.objectWrites(x);
  s.hasCopy.assign(n, 0);
  s.hasCopy[static_cast<std::size_t>(g)] = 1;
  for (const net::NodeId v : s.order) {
    if (v != g && s.sub[static_cast<std::size_t>(v)] > totalWrites) {
      s.hasCopy[static_cast<std::size_t>(v)] = 1;
    }
  }

  assembleInto(tree, load, x, s, out.placement);
}

NibbleObjectResult nibbleObject(const net::Tree& tree,
                                const workload::Workload& load, ObjectId x) {
  NibbleScratch scratch;
  NibbleObjectResult result;
  nibbleObjectInto(tree, load, x, scratch, result);
  return result;
}

Placement nibblePlacement(const net::Tree& tree,
                          const workload::Workload& load) {
  Placement placement;
  placement.objects.resize(static_cast<std::size_t>(load.numObjects()));
  NibbleScratch scratch;
  NibbleObjectResult one;
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    nibbleObjectInto(tree, load, x, scratch, one);
    placement.objects[static_cast<std::size_t>(x)] = std::move(one.placement);
  }
  return placement;
}

}  // namespace hbn::core
