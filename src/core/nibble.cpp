#include "hbn/core/nibble.h"

#include <algorithm>
#include <stdexcept>

namespace hbn::core {
namespace {

// BFS order and parent pointers from `root` in O(n); cheaper than a full
// RootedTree (no LCA tables), keeping nibble linear per object.
struct BfsView {
  std::vector<net::NodeId> order;   // root first, parents before children
  std::vector<net::NodeId> parent;  // kInvalidNode for root
};

BfsView bfsFrom(const net::Tree& tree, net::NodeId root) {
  const auto n = static_cast<std::size_t>(tree.nodeCount());
  BfsView view;
  view.order.reserve(n);
  view.parent.assign(n, net::kInvalidNode);
  std::vector<char> seen(n, 0);
  view.order.push_back(root);
  seen[static_cast<std::size_t>(root)] = 1;
  for (std::size_t head = 0; head < view.order.size(); ++head) {
    const net::NodeId v = view.order[head];
    for (const net::HalfEdge& he : tree.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(he.to)]) {
        seen[static_cast<std::size_t>(he.to)] = 1;
        view.parent[static_cast<std::size_t>(he.to)] = v;
        view.order.push_back(he.to);
      }
    }
  }
  return view;
}

}  // namespace

net::NodeId centerOfGravity(const net::Tree& tree,
                            std::span<const Count> weights) {
  if (weights.size() != static_cast<std::size_t>(tree.nodeCount())) {
    throw std::invalid_argument("centerOfGravity: weight size mismatch");
  }
  Count total = 0;
  for (const Count w : weights) {
    if (w < 0) throw std::invalid_argument("centerOfGravity: negative weight");
    total += w;
  }
  if (total == 0) return tree.processors().front();

  // Subtree weights w.r.t. an arbitrary root; a node is a candidate when
  // every component of T - v (children subtrees and the parent side)
  // carries at most half the total weight. The paper allows an arbitrary
  // candidate "e.g., the one with the smallest index" — we return exactly
  // that so the sequential and distributed computations agree.
  const BfsView view = bfsFrom(tree, 0);
  std::vector<Count> sub(weights.begin(), weights.end());
  for (auto it = view.order.rbegin(); it != view.order.rend(); ++it) {
    const net::NodeId v = *it;
    const net::NodeId p = view.parent[static_cast<std::size_t>(v)];
    if (p != net::kInvalidNode) {
      sub[static_cast<std::size_t>(p)] += sub[static_cast<std::size_t>(v)];
    }
  }
  for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
    Count maxComponent = total - sub[static_cast<std::size_t>(v)];
    for (const net::HalfEdge& he : tree.neighbors(v)) {
      if (view.parent[static_cast<std::size_t>(v)] == he.to) continue;
      maxComponent =
          std::max(maxComponent, sub[static_cast<std::size_t>(he.to)]);
    }
    if (2 * maxComponent <= total) return v;
  }
  throw std::logic_error("centerOfGravity: no candidate found");
}

NibbleObjectResult nibbleObject(const net::Tree& tree,
                                const workload::Workload& load, ObjectId x) {
  if (load.numNodes() != tree.nodeCount()) {
    throw std::invalid_argument("nibbleObject: workload dimension mismatch");
  }
  const auto n = static_cast<std::size_t>(tree.nodeCount());
  NibbleObjectResult result;

  if (load.objectTotal(x) == 0) {
    // Never-accessed object: one copy on the first processor.
    result.gravityCenter = tree.processors().front();
    Copy c;
    c.location = result.gravityCenter;
    result.placement.copies.push_back(std::move(c));
    return result;
  }

  std::vector<Count> weights(n, 0);
  for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
    weights[static_cast<std::size_t>(v)] = load.total(x, v);
  }
  const net::NodeId g = centerOfGravity(tree, weights);
  result.gravityCenter = g;

  // Root at g; h(T(v)) via reverse BFS accumulation.
  const BfsView view = bfsFrom(tree, g);
  std::vector<Count> sub = weights;
  for (auto it = view.order.rbegin(); it != view.order.rend(); ++it) {
    const net::NodeId v = *it;
    const net::NodeId p = view.parent[static_cast<std::size_t>(v)];
    if (p != net::kInvalidNode) {
      sub[static_cast<std::size_t>(p)] += sub[static_cast<std::size_t>(v)];
    }
  }

  const Count totalWrites = load.objectWrites(x);
  std::vector<char> hasCopy(n, 0);
  hasCopy[static_cast<std::size_t>(g)] = 1;
  for (const net::NodeId v : view.order) {
    if (v != g && sub[static_cast<std::size_t>(v)] > totalWrites) {
      hasCopy[static_cast<std::size_t>(v)] = 1;
    }
  }

  // Nearest copy: the copy set is a connected subtree containing g, so the
  // nearest copy of v is the first copy node on the path from v to g.
  std::vector<net::NodeId> refOf(n, net::kInvalidNode);
  for (const net::NodeId v : view.order) {  // parents precede children
    if (hasCopy[static_cast<std::size_t>(v)]) {
      refOf[static_cast<std::size_t>(v)] = v;
    } else {
      refOf[static_cast<std::size_t>(v)] =
          refOf[static_cast<std::size_t>(
              view.parent[static_cast<std::size_t>(v)])];
    }
  }

  // Assemble copies with ledgers.
  std::vector<int> copyIndex(n, -1);
  for (const net::NodeId v : view.order) {
    if (hasCopy[static_cast<std::size_t>(v)]) {
      copyIndex[static_cast<std::size_t>(v)] =
          static_cast<int>(result.placement.copies.size());
      Copy c;
      c.location = v;
      result.placement.copies.push_back(std::move(c));
    }
  }
  for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
    const Count r = load.reads(x, v);
    const Count w = load.writes(x, v);
    if (r == 0 && w == 0) continue;
    const net::NodeId ref = refOf[static_cast<std::size_t>(v)];
    result.placement.copies[static_cast<std::size_t>(
        copyIndex[static_cast<std::size_t>(ref)])]
        .served.push_back(RequestShare{v, r, w});
  }
  return result;
}

Placement nibblePlacement(const net::Tree& tree,
                          const workload::Workload& load) {
  Placement placement;
  placement.objects.reserve(static_cast<std::size_t>(load.numObjects()));
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    placement.objects.push_back(nibbleObject(tree, load, x).placement);
  }
  return placement;
}

}  // namespace hbn::core
