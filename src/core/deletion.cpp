#include "hbn/core/deletion.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace hbn::core {
namespace {

// Working state for one node's copy during deletion.
struct WorkingCopy {
  net::NodeId node = net::kInvalidNode;
  int depth = 0;  // depth below the copy-subtree root
  std::vector<RequestShare> served;
  Count total = 0;
  bool deleted = false;
};

// Splits `copy` into pieces each serving between kappa and 2*kappa
// requests, appending them to `out` at the same location. Individual
// request shares may be divided between pieces (writes are assigned
// before reads within a share; any split is valid for the analysis).
void splitCopy(const WorkingCopy& copy, Count kappa,
               std::vector<Copy>& out, DeletionStats* stats) {
  const Count s = copy.total;
  const Count cap = 2 * kappa;
  if (kappa <= 0 || s <= cap) {
    Copy c;
    c.location = copy.node;
    c.served = copy.served;
    out.push_back(std::move(c));
    return;
  }
  const Count pieces = (s + cap - 1) / cap;  // ceil(s / 2κ)
  // Per-piece targets: base or base+1, summing to s; every target lies in
  // [κ, 2κ] because ceil(s/2κ) <= s/κ for s > 2κ.
  const Count base = s / pieces;
  const Count extra = s % pieces;

  std::size_t shareIdx = 0;
  RequestShare pending{};  // remainder of the share currently being consumed
  bool pendingValid = false;
  for (Count p = 0; p < pieces; ++p) {
    Copy piece;
    piece.location = copy.node;
    Count want = base + (p < extra ? 1 : 0);
    while (want > 0) {
      if (!pendingValid) {
        pending = copy.served[shareIdx++];
        pendingValid = true;
      }
      RequestShare take{pending.origin, 0, 0};
      // Consume writes first, then reads.
      const Count takeWrites = std::min(pending.writes, want);
      take.writes = takeWrites;
      pending.writes -= takeWrites;
      want -= takeWrites;
      const Count takeReads = std::min(pending.reads, want);
      take.reads = takeReads;
      pending.reads -= takeReads;
      want -= takeReads;
      if (take.total() > 0) piece.served.push_back(take);
      if (pending.total() == 0) pendingValid = false;
    }
    out.push_back(std::move(piece));
  }
  if (stats != nullptr) {
    stats->copiesCreatedBySplit += static_cast<int>(pieces) - 1;
  }
}

}  // namespace

ObjectPlacement deleteRarelyUsedCopies(const net::Tree& tree,
                                       const ObjectPlacement& placement,
                                       Count kappa, net::NodeId root,
                                       DeletionStats* stats) {
  if (placement.copies.empty()) {
    throw std::invalid_argument("deleteRarelyUsedCopies: no copies");
  }
  const auto n = static_cast<std::size_t>(tree.nodeCount());

  // Index copies by node; require at most one per node (nibble output).
  std::vector<int> copyAt(n, -1);
  std::vector<WorkingCopy> work(placement.copies.size());
  for (std::size_t i = 0; i < placement.copies.size(); ++i) {
    const Copy& c = placement.copies[i];
    if (copyAt[static_cast<std::size_t>(c.location)] != -1) {
      throw std::invalid_argument(
          "deleteRarelyUsedCopies: multiple copies on one node");
    }
    copyAt[static_cast<std::size_t>(c.location)] = static_cast<int>(i);
    work[i].node = c.location;
    work[i].served = c.served;
    work[i].total = c.servedTotal();
  }
  if (copyAt[static_cast<std::size_t>(root)] == -1) {
    throw std::invalid_argument("deleteRarelyUsedCopies: root holds no copy");
  }

  // BFS from the root to get parents and copy-subtree depths.
  std::vector<net::NodeId> parent(n, net::kInvalidNode);
  std::vector<int> depth(n, -1);
  std::vector<net::NodeId> order{root};
  depth[static_cast<std::size_t>(root)] = 0;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const net::NodeId v = order[head];
    for (const net::HalfEdge& he : tree.neighbors(v)) {
      if (depth[static_cast<std::size_t>(he.to)] < 0) {
        depth[static_cast<std::size_t>(he.to)] =
            depth[static_cast<std::size_t>(v)] + 1;
        parent[static_cast<std::size_t>(he.to)] = v;
        order.push_back(he.to);
      }
    }
  }
  for (WorkingCopy& c : work) {
    c.depth = depth[static_cast<std::size_t>(c.node)];
  }

  // Bottom-up rounds: deepest copies first (= level 0 of the rooted copy
  // subtree T(x)); the root is examined last.
  std::vector<int> byDepth(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) byDepth[i] = static_cast<int>(i);
  std::sort(byDepth.begin(), byDepth.end(), [&](int a, int b) {
    if (work[static_cast<std::size_t>(a)].depth !=
        work[static_cast<std::size_t>(b)].depth) {
      return work[static_cast<std::size_t>(a)].depth >
             work[static_cast<std::size_t>(b)].depth;
    }
    return work[static_cast<std::size_t>(a)].node <
           work[static_cast<std::size_t>(b)].node;
  });

  int alive = static_cast<int>(work.size());
  for (const int idx : byDepth) {
    WorkingCopy& c = work[static_cast<std::size_t>(idx)];
    const bool rarelyUsed = c.total < kappa || c.total == 0;
    if (!rarelyUsed) continue;
    if (c.node == root) {
      // The root's requests go to the nearest surviving copy, if any.
      if (alive == 1) continue;  // last copy always stays
      // BFS from the root for the closest surviving copy.
      std::vector<char> seen(n, 0);
      std::vector<net::NodeId> queue{root};
      seen[static_cast<std::size_t>(root)] = 1;
      int target = -1;
      for (std::size_t head = 0; head < queue.size() && target < 0; ++head) {
        const net::NodeId v = queue[head];
        const int cv = copyAt[static_cast<std::size_t>(v)];
        if (cv >= 0 && cv != idx && !work[static_cast<std::size_t>(cv)].deleted) {
          target = cv;
          break;
        }
        for (const net::HalfEdge& he : tree.neighbors(v)) {
          if (!seen[static_cast<std::size_t>(he.to)]) {
            seen[static_cast<std::size_t>(he.to)] = 1;
            queue.push_back(he.to);
          }
        }
      }
      if (target < 0) continue;  // defensive: nothing to merge into
      WorkingCopy& t = work[static_cast<std::size_t>(target)];
      t.served.insert(t.served.end(), c.served.begin(), c.served.end());
      t.total += c.total;
      c.deleted = true;
      --alive;
    } else {
      // Hand requests to the copy on the nearest ancestor holding one
      // (for valid nibble input this is the direct parent, which — being
      // shallower — has not been examined yet).
      net::NodeId u = parent[static_cast<std::size_t>(c.node)];
      while (u != net::kInvalidNode &&
             (copyAt[static_cast<std::size_t>(u)] < 0 ||
              work[static_cast<std::size_t>(
                       copyAt[static_cast<std::size_t>(u)])]
                  .deleted)) {
        u = parent[static_cast<std::size_t>(u)];
      }
      if (u == net::kInvalidNode) continue;  // defensive
      WorkingCopy& t =
          work[static_cast<std::size_t>(copyAt[static_cast<std::size_t>(u)])];
      t.served.insert(t.served.end(), c.served.begin(), c.served.end());
      t.total += c.total;
      c.deleted = true;
      --alive;
    }
    if (stats != nullptr) ++stats->copiesDeleted;
  }

  // Assemble survivors, splitting over-full copies (Observation 3.2).
  ObjectPlacement result;
  for (const WorkingCopy& c : work) {
    if (!c.deleted) splitCopy(c, kappa, result.copies, stats);
  }
  return result;
}

}  // namespace hbn::core
