#include "hbn/core/parallel.h"

#include <algorithm>

namespace hbn::core {

int resolveWorkerCount(int requested, int items) {
  if (requested == 0) {
    requested = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  return std::clamp(requested, 1, std::max(1, items));
}

}  // namespace hbn::core
