#include "hbn/core/flat_load.h"

#include <stdexcept>

namespace hbn::core {

FlatTreeView::FlatTreeView(const net::RootedTree& rooted) : rooted_(&rooted) {
  const auto order = rooted.preorder();
  const auto n = order.size();
  posOf_.resize(static_cast<std::size_t>(rooted.tree().nodeCount()));
  nodeAt_.resize(n);
  parentPos_.resize(n);
  parentEdgeAt_.resize(n);
  depthAt_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId v = order[i];
    posOf_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
    nodeAt_[i] = v;
    parentEdgeAt_[i] = rooted.parentEdge(v);
    depthAt_[i] = rooted.depth(v);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId p = rooted.parent(nodeAt_[i]);
    parentPos_[i] =
        p == net::kInvalidNode ? -1 : posOf_[static_cast<std::size_t>(p)];
  }
  steps_.resize(n);
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(n); ++v) {
    steps_[static_cast<std::size_t>(v)] =
        NodeStep{rooted.parent(v), rooted.parentEdge(v), rooted.depth(v),
                 posOf_[static_cast<std::size_t>(v)]};
  }

  // Euler tour by positions: an iterative DFS that re-appends a node each
  // time the walk returns from a child, so any two nodes' LCA is the
  // minimum-depth entry between their first occurrences.
  euler_.reserve(2 * n);
  firstEuler_.assign(n, -1);
  struct Frame {
    std::int32_t pos;
    std::size_t child;  ///< next child index to descend into
  };
  // Child positions in preorder are contiguous? Not necessarily — walk via
  // the rooted children lists, mapping nodes to positions.
  std::vector<Frame> stack;
  stack.push_back({0, 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const net::NodeId v = nodeAt_[static_cast<std::size_t>(frame.pos)];
    const auto children = rooted.children(v);
    if (frame.child == 0) {
      firstEuler_[static_cast<std::size_t>(frame.pos)] =
          static_cast<std::int32_t>(euler_.size());
      euler_.push_back(frame.pos);
    } else {
      euler_.push_back(frame.pos);  // back from a child
    }
    if (frame.child < children.size()) {
      const std::int32_t childPos =
          posOf_[static_cast<std::size_t>(children[frame.child])];
      ++frame.child;
      stack.push_back({childPos, 0});
    } else {
      stack.pop_back();
    }
  }

  // Sparse min-depth table over the Euler sequence, flattened row-major.
  const std::size_t m = euler_.size();
  eulerLen_ = m;
  eulerDepth_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    eulerDepth_[i] = depthAt_[static_cast<std::size_t>(euler_[i])];
  }
  log2_.assign(m + 1, 0);
  for (std::size_t i = 2; i <= m; ++i) {
    log2_[i] = log2_[i / 2] + 1;
  }
  const int levels = log2_[m] + 1;
  table_.assign(static_cast<std::size_t>(levels) * m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    table_[i] = static_cast<std::int32_t>(i);
  }
  for (int k = 1; k < levels; ++k) {
    const std::size_t span = std::size_t{1} << k;
    const std::size_t row = static_cast<std::size_t>(k) * m;
    const std::size_t prev = static_cast<std::size_t>(k - 1) * m;
    for (std::size_t i = 0; i + span <= m; ++i) {
      const std::int32_t left = table_[prev + i];
      const std::int32_t right = table_[prev + i + span / 2];
      table_[row + i] = eulerDepth_[static_cast<std::size_t>(left)] <=
                                eulerDepth_[static_cast<std::size_t>(right)]
                            ? left
                            : right;
    }
  }
}

FlatLoadAccumulator::FlatLoadAccumulator(const FlatTreeView& flat)
    : flat_(&flat) {
  const auto n = static_cast<std::size_t>(flat.nodeCount());
  delta_.assign(n, 0);
  minTouched_ = static_cast<std::int32_t>(n);
  steinerCount_.assign(n, 0);
  steinerStamp_.assign(n, 0);
  steinerBuckets_.resize(static_cast<std::size_t>(flat.height()) + 1);
}

void FlatLoadAccumulator::chargePath(net::NodeId u, net::NodeId v,
                                     Count amount) {
  if (amount == 0 || u == v) return;
  const std::int32_t pu = flat_->posOf(u);
  const std::int32_t pv = flat_->posOf(v);
  const std::int32_t pa = flat_->lcaPos(pu, pv);
  delta_[static_cast<std::size_t>(pu)] += amount;
  delta_[static_cast<std::size_t>(pv)] += amount;
  delta_[static_cast<std::size_t>(pa)] -= 2 * amount;
  // pa <= min(pu, pv) in preorder (ancestors precede descendants).
  if (pa < minTouched_) minTouched_ = pa;
  const std::int32_t hi = pu > pv ? pu : pv;
  if (hi > maxTouched_) maxTouched_ = hi;
}

void FlatLoadAccumulator::flush(LoadMap& out) {
  // Reverse-preorder subtree sums over the touched range: scanning
  // positions descending drains every child into its parent before the
  // parent itself is visited (preorder puts parents first). Every
  // nonzero subtree sum lies strictly below some charge's LCA, and all
  // LCA positions are >= minTouched_, so nothing propagates out of the
  // range; sums cancel exactly at the LCAs.
  for (std::int32_t pos = maxTouched_; pos >= minTouched_; --pos) {
    const Count sum = delta_[static_cast<std::size_t>(pos)];
    if (sum == 0) continue;
    delta_[static_cast<std::size_t>(pos)] = 0;
    if (pos == 0) continue;  // defensive: the root owns no parent edge
    out.addEdgeLoad(flat_->parentEdgeAt(pos), sum);
    const std::int32_t parent = flat_->parentPos(pos);
    delta_[static_cast<std::size_t>(parent)] += sum;
    if (parent < minTouched_) minTouched_ = parent;  // defensive
  }
  minTouched_ = static_cast<std::int32_t>(delta_.size());
  maxTouched_ = -1;
}

void FlatLoadAccumulator::chargeSteiner(
    std::span<const net::NodeId> terminals, Count amount, LoadMap& out) {
  if (terminals.size() < 2 || amount == 0) return;
  if (++sStamp_ == 0) {
    std::fill(steinerStamp_.begin(), steinerStamp_.end(), 0);
    sStamp_ = 1;
  }
  // Collapse duplicate terminals onto their position; count distinct.
  Count distinct = 0;
  int maxDepth = -1;
  for (const net::NodeId t : terminals) {
    if (t < 0 || t >= flat_->rooted().tree().nodeCount()) {
      throw std::out_of_range("chargeSteiner: terminal out of range");
    }
    const std::int32_t pos = flat_->posOf(t);
    auto& mark = steinerStamp_[static_cast<std::size_t>(pos)];
    if (mark == sStamp_) continue;
    mark = sStamp_;
    steinerCount_[static_cast<std::size_t>(pos)] = 1;
    const int depth = flat_->depthAt(pos);
    steinerBuckets_[static_cast<std::size_t>(depth)].push_back(pos);
    if (depth > maxDepth) maxDepth = depth;
    ++distinct;
  }
  if (distinct < 2) {
    for (int d = maxDepth; d >= 0; --d) {
      steinerBuckets_[static_cast<std::size_t>(d)].clear();
    }
    return;
  }
  // Propagate terminal counts up, charging parentEdge(v) while the
  // subtree below strictly separates the terminal set (0 < cnt < k); a
  // subtree holding every terminal ends the walk — all its ancestors
  // hold them too.
  for (int d = maxDepth; d >= 0; --d) {
    auto& bucket = steinerBuckets_[static_cast<std::size_t>(d)];
    for (const std::int32_t pos : bucket) {
      const Count count = steinerCount_[static_cast<std::size_t>(pos)];
      if (count == distinct) continue;
      out.addEdgeLoad(flat_->parentEdgeAt(pos), amount);
      const std::int32_t parent = flat_->parentPos(pos);
      auto& mark = steinerStamp_[static_cast<std::size_t>(parent)];
      if (mark != sStamp_) {
        mark = sStamp_;
        steinerCount_[static_cast<std::size_t>(parent)] = 0;
        steinerBuckets_[static_cast<std::size_t>(d - 1)].push_back(parent);
      }
      steinerCount_[static_cast<std::size_t>(parent)] += count;
    }
    bucket.clear();
  }
}

void accumulateObjectLoad(FlatLoadAccumulator& acc,
                          const ObjectPlacement& object, LoadMap& loads) {
  std::size_t shares = 0;
  for (const Copy& c : object.copies) shares += c.served.size();
  if (shares < kFlatLoadCutover) {
    accumulateObjectLoad(acc.flat().rooted(), object, loads);
    return;
  }
  Count kappa = 0;
  for (const Copy& c : object.copies) {
    for (const RequestShare& share : c.served) {
      kappa += share.writes;
      const Count amount = share.total();
      if (amount > 0) acc.chargePath(share.origin, c.location, amount);
    }
  }
  if (kappa > 0) {
    const auto locations = object.locations();
    acc.chargeSteiner(locations, kappa, loads);
  }
}

LoadMap computeLoad(const FlatTreeView& flat, const Placement& placement) {
  LoadMap loads(flat.rooted().tree().edgeCount());
  FlatLoadAccumulator acc(flat);
  for (const ObjectPlacement& object : placement.objects) {
    accumulateObjectLoad(acc, object, loads);
  }
  acc.flush(loads);
  return loads;
}

}  // namespace hbn::core
