#include "hbn/core/report.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

namespace hbn::core {

PlacementSummary summarize(const Placement& placement) {
  PlacementSummary summary;
  summary.objects = placement.numObjects();
  bool first = true;
  for (const ObjectPlacement& object : placement.objects) {
    const auto count = static_cast<int>(object.locations().size());
    summary.totalCopies += count;
    if (count > 1) ++summary.replicatedObjects;
    if (first) {
      summary.minCopies = summary.maxCopies = count;
      first = false;
    } else {
      summary.minCopies = std::min(summary.minCopies, count);
      summary.maxCopies = std::max(summary.maxCopies, count);
    }
  }
  if (summary.objects > 0) {
    summary.meanCopies = static_cast<double>(summary.totalCopies) /
                         static_cast<double>(summary.objects);
  }
  return summary;
}

void printPlacement(const Placement& placement, std::ostream& os) {
  for (int x = 0; x < placement.numObjects(); ++x) {
    os << "object " << x << " -> {";
    bool first = true;
    for (const net::NodeId v :
         placement.objects[static_cast<std::size_t>(x)].locations()) {
      os << (first ? "" : ", ") << v;
      first = false;
    }
    os << "}\n";
  }
}

void printHotspots(const net::Tree& tree, const LoadMap& loads, int top,
                   std::ostream& os) {
  struct Entry {
    std::string name;
    double load;
    double bandwidth;
    double relative;
  };
  std::vector<Entry> entries;
  for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
    const net::Edge& ed = tree.edge(e);
    const auto load = static_cast<double>(loads.edgeLoad(e));
    entries.push_back({"edge " + std::to_string(e) + " (" +
                           std::to_string(ed.u) + "-" + std::to_string(ed.v) +
                           ")",
                       load, ed.bandwidth, load / ed.bandwidth});
  }
  for (const net::NodeId b : tree.buses()) {
    const double load = loads.busLoad(tree, b);
    entries.push_back({"bus " + std::to_string(b), load, tree.busBandwidth(b),
                       load / tree.busBandwidth(b)});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.relative > b.relative;
                   });
  const auto limit = std::min<std::size_t>(entries.size(),
                                           static_cast<std::size_t>(top));
  for (std::size_t i = 0; i < limit; ++i) {
    os << entries[i].name << ": load " << entries[i].load << " / bw "
       << entries[i].bandwidth << " = " << entries[i].relative << "\n";
  }
}

void printReport(const ExtendedNibbleReport& report, std::ostream& os) {
  os << "congestion: nibble " << report.congestionNibble << " -> deletion "
     << report.congestionModified << " -> final " << report.congestionFinal
     << "\n";
  os << "kappa_max " << report.maxWriteContention << ", tau_max "
     << report.mapping.tauMax << "\n";
  os << "objects: " << report.participatingObjects << " mapped, "
     << report.frozenObjects << " frozen\n";
  os << "deletion: " << report.deletion.copiesDeleted << " deleted, "
     << report.deletion.copiesCreatedBySplit << " created by splits\n";
  os << "mapping: " << report.mapping.upMoves << " up moves, "
     << report.mapping.downMoves << " down moves, "
     << report.mapping.forcedMoves << " forced\n";
}

std::string placementToString(const Placement& placement) {
  std::ostringstream oss;
  printPlacement(placement, oss);
  return oss.str();
}

}  // namespace hbn::core
