// Transaction accounting on hierarchical ring networks.
//
// A request-response transaction between processors u and v occupies every
// ring on the (unique) ring-tree path between their rings once — the
// request-response pair travels the whole way around each unidirectional
// ringlet — crosses every switch between consecutive rings once, and
// passes both endpoint adapters once.
//
// The congestion of a transaction multiset is
//
//   max( occupancy(R)/bw(R),  crossings(S)/bw(S),  adapterLoad(P)/1 )
//
// over all rings R, switches S and processors P. Experiment E6 verifies
// that this equals the hierarchical-bus congestion of the same message set
// on the Figure-2 tree (the paper's modelling claim).
#pragma once

#include <cstdint>
#include <vector>

#include "hbn/sci/ring_network.h"

namespace hbn::sci {

using Count = std::int64_t;

/// Accumulates transaction loads on a ring network.
class TransactionAccounting {
 public:
  explicit TransactionAccounting(const RingNetwork& network);

  /// Accounts `amount` transactions between processors u and v.
  /// Transactions with u == v are local and load nothing.
  void addTransactions(ProcId u, ProcId v, Count amount);

  [[nodiscard]] Count ringOccupancy(RingId r) const {
    return ringOccupancy_.at(static_cast<std::size_t>(r));
  }
  /// Crossings of the uplink switch of (non-root) ring `r`.
  [[nodiscard]] Count switchCrossings(RingId r) const {
    return switchCrossings_.at(static_cast<std::size_t>(r));
  }
  [[nodiscard]] Count adapterLoad(ProcId p) const {
    return adapterLoad_.at(static_cast<std::size_t>(p));
  }

  /// Max relative load over rings, switches and adapters.
  [[nodiscard]] double congestion() const;

  [[nodiscard]] const RingNetwork& network() const noexcept {
    return *network_;
  }

 private:
  const RingNetwork* network_;
  std::vector<Count> ringOccupancy_;
  std::vector<Count> switchCrossings_;
  std::vector<Count> adapterLoad_;
};

}  // namespace hbn::sci
