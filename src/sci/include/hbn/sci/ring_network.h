// SCI-style hierarchical ring networks (paper §1, Figures 1 and 2).
//
// Large SCI systems are built from small unidirectional ringlets joined by
// switches into a tree of rings. Because every SCI transaction is a
// request-response pair, a transaction between two stations of a ringlet
// effectively travels the whole way around it — so, for load purposes, a
// ringlet behaves like a bus shared by all its stations. This module
// models the ring topology explicitly, provides the ring→bus transform
// (Figure 1 → Figure 2), and accounts transaction loads on both views so
// the equivalence can be verified numerically (experiment E6).
//
// Topology model:
//   * rings form a tree; every non-root ring is attached to its parent
//     ring by one switch (the switch is a station on both rings),
//   * processors are stations on exactly one ring,
//   * bandwidths: each ring has a bandwidth (its link speed — all segments
//     of a ringlet run at the same speed) and each switch a bandwidth;
//     processor network adapters have bandwidth 1 (the paper's
//     "slowest part" assumption).
#pragma once

#include <cstdint>
#include <vector>

#include "hbn/net/tree.h"
#include "hbn/util/rng.h"

namespace hbn::sci {

using RingId = std::int32_t;
using ProcId = std::int32_t;
inline constexpr RingId kInvalidRing = -1;

/// One ringlet.
struct Ring {
  RingId parent = kInvalidRing;   ///< kInvalidRing for the root ring
  double bandwidth = 1.0;         ///< ring link bandwidth
  double uplinkBandwidth = 1.0;   ///< switch to the parent ring
  std::vector<ProcId> processors; ///< stations on this ring
  std::vector<RingId> children;   ///< rings attached below
};

/// A validated hierarchical ring network.
class RingNetwork {
 public:
  [[nodiscard]] int ringCount() const noexcept {
    return static_cast<int>(rings_.size());
  }
  [[nodiscard]] int processorCount() const noexcept { return procCount_; }
  [[nodiscard]] const Ring& ring(RingId r) const {
    return rings_.at(static_cast<std::size_t>(r));
  }
  [[nodiscard]] RingId ringOf(ProcId p) const {
    return procRing_.at(static_cast<std::size_t>(p));
  }
  [[nodiscard]] RingId rootRing() const noexcept { return 0; }
  /// Edge distance of `r` from the root ring.
  [[nodiscard]] int ringDepth(RingId r) const {
    return ringDepth_.at(static_cast<std::size_t>(r));
  }

 private:
  friend class RingNetworkBuilder;
  std::vector<Ring> rings_;
  std::vector<RingId> procRing_;
  std::vector<int> ringDepth_;
  int procCount_ = 0;
};

/// Incremental construction; the first ring added is the root.
class RingNetworkBuilder {
 public:
  /// Adds a ring. parent == kInvalidRing only for the first ring.
  RingId addRing(RingId parent, double ringBandwidth = 1.0,
                 double uplinkBandwidth = 1.0);
  /// Adds a processor station to `ring`.
  ProcId addProcessor(RingId ring);
  /// Validates and freezes the network. Every ring must carry at least
  /// one station (processor or child switch).
  [[nodiscard]] RingNetwork build() const;

 private:
  std::vector<Ring> rings_;
  std::vector<RingId> procRing_;
};

/// The bus-network view of a ring network (Figure 2): ring -> bus,
/// switch -> bus-bus edge, processor adapter -> leaf edge.
struct BusView {
  net::Tree tree;
  /// Bus node of each ring.
  std::vector<net::NodeId> ringBus;
  /// Leaf node of each processor.
  std::vector<net::NodeId> processorNode;
  /// Edge of each processor's adapter.
  std::vector<net::EdgeId> adapterEdge;
  /// Uplink switch edge of each non-root ring (kInvalidEdge for the root).
  std::vector<net::EdgeId> uplinkEdge;
};

/// Builds the corresponding hierarchical bus network.
[[nodiscard]] BusView toBusNetwork(const RingNetwork& network);

/// Generates a balanced hierarchy: `depth` levels of rings with
/// `branching` child rings below each, and `procsPerRing` processors on
/// every leaf-level ring (plus one on each inner ring so that every ring
/// has local stations, like Figure 1's ring of rings).
[[nodiscard]] RingNetwork makeBalancedRingHierarchy(int branching, int depth,
                                                    int procsPerRing,
                                                    double ringBandwidth = 1.0,
                                                    double switchBandwidth = 1.0);

/// Random hierarchy of `rings` rings with `processors` processors spread
/// uniformly.
[[nodiscard]] RingNetwork makeRandomRingHierarchy(int rings, int processors,
                                                  util::Rng& rng);

}  // namespace hbn::sci
