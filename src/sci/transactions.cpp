#include "hbn/sci/transactions.h"

#include <algorithm>
#include <stdexcept>

namespace hbn::sci {

TransactionAccounting::TransactionAccounting(const RingNetwork& network)
    : network_(&network),
      ringOccupancy_(static_cast<std::size_t>(network.ringCount()), 0),
      switchCrossings_(static_cast<std::size_t>(network.ringCount()), 0),
      adapterLoad_(static_cast<std::size_t>(network.processorCount()), 0) {}

void TransactionAccounting::addTransactions(ProcId u, ProcId v, Count amount) {
  if (u < 0 || u >= network_->processorCount() || v < 0 ||
      v >= network_->processorCount()) {
    throw std::out_of_range("addTransactions: processor out of range");
  }
  if (amount < 0) {
    throw std::invalid_argument("addTransactions: negative amount");
  }
  if (u == v || amount == 0) return;

  adapterLoad_[static_cast<std::size_t>(u)] += amount;
  adapterLoad_[static_cast<std::size_t>(v)] += amount;

  // Walk both ring endpoints up to their lowest common ancestor ring,
  // occupying every ring on the way and crossing every uplink switch.
  RingId a = network_->ringOf(u);
  RingId b = network_->ringOf(v);
  ringOccupancy_[static_cast<std::size_t>(a)] += amount;
  if (a == b) return;
  ringOccupancy_[static_cast<std::size_t>(b)] += amount;
  while (a != b) {
    if (network_->ringDepth(a) >= network_->ringDepth(b)) {
      switchCrossings_[static_cast<std::size_t>(a)] += amount;
      a = network_->ring(a).parent;
      if (a != b) ringOccupancy_[static_cast<std::size_t>(a)] += amount;
    } else {
      switchCrossings_[static_cast<std::size_t>(b)] += amount;
      b = network_->ring(b).parent;
      if (a != b) ringOccupancy_[static_cast<std::size_t>(b)] += amount;
    }
  }
}

double TransactionAccounting::congestion() const {
  double best = 0.0;
  for (RingId r = 0; r < network_->ringCount(); ++r) {
    best = std::max(best,
                    static_cast<double>(
                        ringOccupancy_[static_cast<std::size_t>(r)]) /
                        network_->ring(r).bandwidth);
    if (r != network_->rootRing()) {
      best = std::max(best,
                      static_cast<double>(
                          switchCrossings_[static_cast<std::size_t>(r)]) /
                          network_->ring(r).uplinkBandwidth);
    }
  }
  for (ProcId p = 0; p < network_->processorCount(); ++p) {
    best = std::max(
        best, static_cast<double>(adapterLoad_[static_cast<std::size_t>(p)]));
  }
  return best;
}

}  // namespace hbn::sci
