#include "hbn/sci/ring_network.h"

#include <stdexcept>

namespace hbn::sci {

RingId RingNetworkBuilder::addRing(RingId parent, double ringBandwidth,
                                   double uplinkBandwidth) {
  if (rings_.empty()) {
    if (parent != kInvalidRing) {
      throw std::invalid_argument("addRing: first ring must be the root");
    }
  } else {
    if (parent < 0 || parent >= static_cast<RingId>(rings_.size())) {
      throw std::invalid_argument("addRing: parent out of range");
    }
  }
  if (ringBandwidth < 1.0 || uplinkBandwidth < 1.0) {
    throw std::invalid_argument("addRing: bandwidths must be >= 1");
  }
  Ring ring;
  ring.parent = parent;
  ring.bandwidth = ringBandwidth;
  ring.uplinkBandwidth = uplinkBandwidth;
  rings_.push_back(std::move(ring));
  const auto id = static_cast<RingId>(rings_.size() - 1);
  if (parent != kInvalidRing) {
    rings_[static_cast<std::size_t>(parent)].children.push_back(id);
  }
  return id;
}

ProcId RingNetworkBuilder::addProcessor(RingId ring) {
  if (ring < 0 || ring >= static_cast<RingId>(rings_.size())) {
    throw std::invalid_argument("addProcessor: ring out of range");
  }
  const auto id = static_cast<ProcId>(procRing_.size());
  procRing_.push_back(ring);
  rings_[static_cast<std::size_t>(ring)].processors.push_back(id);
  return id;
}

RingNetwork RingNetworkBuilder::build() const {
  if (rings_.empty()) {
    throw std::invalid_argument("RingNetworkBuilder: no rings");
  }
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    if (rings_[r].processors.empty() && rings_[r].children.empty()) {
      throw std::invalid_argument(
          "RingNetworkBuilder: ring without stations");
    }
  }
  RingNetwork network;
  network.rings_ = rings_;
  network.procRing_ = procRing_;
  network.procCount_ = static_cast<int>(procRing_.size());
  network.ringDepth_.assign(rings_.size(), 0);
  // Rings are created parent-first, so a single pass suffices.
  for (std::size_t r = 1; r < rings_.size(); ++r) {
    network.ringDepth_[r] =
        network.ringDepth_[static_cast<std::size_t>(rings_[r].parent)] + 1;
  }
  return network;
}

BusView toBusNetwork(const RingNetwork& network) {
  net::TreeBuilder b;
  std::vector<net::NodeId> ringBus(
      static_cast<std::size_t>(network.ringCount()));
  for (RingId r = 0; r < network.ringCount(); ++r) {
    ringBus[static_cast<std::size_t>(r)] =
        b.addBus(network.ring(r).bandwidth);
  }
  std::vector<net::EdgeId> uplinkEdge(
      static_cast<std::size_t>(network.ringCount()), net::kInvalidEdge);
  for (RingId r = 1; r < network.ringCount(); ++r) {
    const Ring& ring = network.ring(r);
    uplinkEdge[static_cast<std::size_t>(r)] =
        b.connect(ringBus[static_cast<std::size_t>(ring.parent)],
                  ringBus[static_cast<std::size_t>(r)], ring.uplinkBandwidth);
  }
  std::vector<net::NodeId> processorNode(
      static_cast<std::size_t>(network.processorCount()));
  std::vector<net::EdgeId> adapterEdge(
      static_cast<std::size_t>(network.processorCount()));
  for (ProcId p = 0; p < network.processorCount(); ++p) {
    processorNode[static_cast<std::size_t>(p)] = b.addProcessor();
    adapterEdge[static_cast<std::size_t>(p)] =
        b.connect(ringBus[static_cast<std::size_t>(network.ringOf(p))],
                  processorNode[static_cast<std::size_t>(p)], 1.0);
  }
  return BusView{b.build(), std::move(ringBus), std::move(processorNode),
                 std::move(adapterEdge), std::move(uplinkEdge)};
}

RingNetwork makeBalancedRingHierarchy(int branching, int depth,
                                      int procsPerRing, double ringBandwidth,
                                      double switchBandwidth) {
  if (branching < 1 || depth < 1 || procsPerRing < 1) {
    throw std::invalid_argument(
        "makeBalancedRingHierarchy: positive sizes required");
  }
  RingNetworkBuilder builder;
  struct Frame {
    RingId ring;
    int level;
  };
  const RingId root =
      builder.addRing(kInvalidRing, ringBandwidth, switchBandwidth);
  std::vector<Frame> frontier{{root, 1}};
  builder.addProcessor(root);  // every ring carries at least one station
  while (!frontier.empty()) {
    const Frame f = frontier.back();
    frontier.pop_back();
    if (f.level == depth) {
      for (int i = 1; i < procsPerRing; ++i) {
        builder.addProcessor(f.ring);
      }
      continue;
    }
    for (int c = 0; c < branching; ++c) {
      const RingId child =
          builder.addRing(f.ring, ringBandwidth, switchBandwidth);
      builder.addProcessor(child);
      frontier.push_back({child, f.level + 1});
    }
  }
  return builder.build();
}

RingNetwork makeRandomRingHierarchy(int rings, int processors,
                                    util::Rng& rng) {
  if (rings < 1) {
    throw std::invalid_argument("makeRandomRingHierarchy: rings >= 1");
  }
  RingNetworkBuilder builder;
  builder.addRing(kInvalidRing);
  for (RingId r = 1; r < rings; ++r) {
    const auto parent = static_cast<RingId>(
        rng.nextBelow(static_cast<std::uint64_t>(r)));
    builder.addRing(parent);
  }
  // One processor per ring for validity, the rest at random.
  for (RingId r = 0; r < rings; ++r) builder.addProcessor(r);
  for (int p = rings; p < processors; ++p) {
    builder.addProcessor(static_cast<RingId>(
        rng.nextBelow(static_cast<std::uint64_t>(rings))));
  }
  return builder.build();
}

}  // namespace hbn::sci
