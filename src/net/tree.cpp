#include "hbn/net/tree.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace hbn::net {

NodeId TreeBuilder::addProcessor() {
  kinds_.push_back(NodeKind::processor);
  busBandwidth_.push_back(1.0);
  return static_cast<NodeId>(kinds_.size() - 1);
}

NodeId TreeBuilder::addBus(double bandwidth) {
  if (bandwidth < 1.0) {
    throw std::invalid_argument("bus bandwidth must be >= 1");
  }
  kinds_.push_back(NodeKind::bus);
  busBandwidth_.push_back(bandwidth);
  return static_cast<NodeId>(kinds_.size() - 1);
}

EdgeId TreeBuilder::connect(NodeId u, NodeId v, double bandwidth) {
  const auto n = static_cast<NodeId>(kinds_.size());
  if (u < 0 || u >= n || v < 0 || v >= n) {
    throw std::invalid_argument("connect: node id out of range");
  }
  if (u == v) throw std::invalid_argument("connect: self loop");
  if (bandwidth < 1.0) {
    throw std::invalid_argument("edge bandwidth must be >= 1");
  }
  if (kinds_[static_cast<std::size_t>(u)] == NodeKind::processor &&
      kinds_[static_cast<std::size_t>(v)] == NodeKind::processor) {
    throw std::invalid_argument("connect: processor-processor edge");
  }
  edges_.push_back(Edge{u, v, bandwidth});
  return static_cast<EdgeId>(edges_.size() - 1);
}

Tree TreeBuilder::build() const {
  const auto n = static_cast<int>(kinds_.size());
  if (n == 0) throw std::invalid_argument("build: empty tree");
  if (static_cast<int>(edges_.size()) != n - 1) {
    throw std::invalid_argument("build: a tree on n nodes needs n-1 edges");
  }

  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  for (const Edge& e : edges_) {
    ++degree[static_cast<std::size_t>(e.u)];
    ++degree[static_cast<std::size_t>(e.v)];
  }

  Tree t;
  t.kinds_ = kinds_;
  t.busBandwidth_ = busBandwidth_;
  t.edges_ = edges_;

  // CSR adjacency.
  t.adjStart_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    t.adjStart_[static_cast<std::size_t>(v) + 1] =
        t.adjStart_[static_cast<std::size_t>(v)] +
        degree[static_cast<std::size_t>(v)];
  }
  t.adjacency_.resize(edges_.size() * 2);
  std::vector<int> cursor(t.adjStart_.begin(), t.adjStart_.end() - 1);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    const auto id = static_cast<EdgeId>(i);
    t.adjacency_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.u)]++)] = HalfEdge{e.v, id};
    t.adjacency_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.v)]++)] = HalfEdge{e.u, id};
  }

  // Connectivity check via DFS from node 0 (with n-1 edges this also
  // certifies acyclicity).
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  int reached = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const HalfEdge& he : t.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(he.to)]) {
        seen[static_cast<std::size_t>(he.to)] = 1;
        ++reached;
        stack.push_back(he.to);
      }
    }
  }
  if (reached != n) throw std::invalid_argument("build: tree not connected");

  for (int v = 0; v < n; ++v) {
    const auto kind = kinds_[static_cast<std::size_t>(v)];
    const int deg = degree[static_cast<std::size_t>(v)];
    if (kind == NodeKind::processor && deg > 1) {
      throw std::invalid_argument("build: processor with degree > 1");
    }
    if (n > 1 && kind == NodeKind::processor && deg == 0) {
      throw std::invalid_argument("build: disconnected processor");
    }
    if (n > 1 && kind == NodeKind::bus && deg <= 1) {
      // A leaf of the tree must be a processor; a bus that only dangles
      // carries no traffic and violates the model.
      throw std::invalid_argument("build: bus must be an inner node");
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (t.kinds_[static_cast<std::size_t>(v)] == NodeKind::processor) {
      t.processors_.push_back(v);
    } else {
      t.buses_.push_back(v);
    }
  }
  t.maxDegree_ = *std::max_element(degree.begin(), degree.end());
  return t;
}

NodeId Tree::check(NodeId v) const {
  if (v < 0 || v >= nodeCount()) {
    throw std::out_of_range("Tree: node id out of range");
  }
  return v;
}

EdgeId Tree::checkEdge(EdgeId e) const {
  if (e < 0 || e >= edgeCount()) {
    throw std::out_of_range("Tree: edge id out of range");
  }
  return e;
}

double Tree::busBandwidth(NodeId v) const {
  check(v);
  if (!isBus(v)) throw std::invalid_argument("busBandwidth: not a bus");
  return busBandwidth_[static_cast<std::size_t>(v)];
}

NodeId Tree::otherEnd(EdgeId e, NodeId v) const {
  const Edge& ed = edge(e);
  if (ed.u == v) return ed.v;
  if (ed.v == v) return ed.u;
  throw std::invalid_argument("otherEnd: node not an endpoint");
}

int Tree::heightFrom(NodeId root) const {
  check(root);
  std::vector<int> depth(static_cast<std::size_t>(nodeCount()), -1);
  std::vector<NodeId> queue{root};
  depth[static_cast<std::size_t>(root)] = 0;
  int best = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId v = queue[head];
    for (const HalfEdge& he : neighbors(v)) {
      if (depth[static_cast<std::size_t>(he.to)] < 0) {
        depth[static_cast<std::size_t>(he.to)] =
            depth[static_cast<std::size_t>(v)] + 1;
        best = std::max(best, depth[static_cast<std::size_t>(he.to)]);
        queue.push_back(he.to);
      }
    }
  }
  return best;
}

bool Tree::usesUnitLeafEdges() const {
  for (const Edge& e : edges_) {
    const bool leafEdge = isProcessor(e.u) || isProcessor(e.v);
    if (leafEdge && e.bandwidth != 1.0) return false;
  }
  return true;
}

NodeId Tree::defaultRoot() const {
  if (!buses_.empty()) return buses_.front();
  return 0;
}

}  // namespace hbn::net
