#include "hbn/net/rooted.h"

#include <algorithm>
#include <stdexcept>

namespace hbn::net {

RootedTree::RootedTree(const Tree& tree, NodeId root)
    : tree_(&tree), root_(root) {
  const int n = tree.nodeCount();
  if (root < 0 || root >= n) {
    throw std::out_of_range("RootedTree: root out of range");
  }
  parent_.assign(static_cast<std::size_t>(n), kInvalidNode);
  parentEdge_.assign(static_cast<std::size_t>(n), kInvalidEdge);
  depth_.assign(static_cast<std::size_t>(n), 0);
  preorder_.reserve(static_cast<std::size_t>(n));

  // Iterative DFS producing a preorder in which parents precede children.
  std::vector<NodeId> stack{root};
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  seen[static_cast<std::size_t>(root)] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    preorder_.push_back(v);
    for (const HalfEdge& he : tree.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(he.to)]) {
        seen[static_cast<std::size_t>(he.to)] = 1;
        parent_[static_cast<std::size_t>(he.to)] = v;
        parentEdge_[static_cast<std::size_t>(he.to)] = he.edge;
        depth_[static_cast<std::size_t>(he.to)] =
            depth_[static_cast<std::size_t>(v)] + 1;
        stack.push_back(he.to);
      }
    }
  }
  height_ = *std::max_element(depth_.begin(), depth_.end());

  // Child lists in CSR form.
  childStart_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (parent_[static_cast<std::size_t>(v)] != kInvalidNode) {
      ++childStart_[static_cast<std::size_t>(
                        parent_[static_cast<std::size_t>(v)]) +
                    1];
    }
  }
  for (std::size_t i = 1; i < childStart_.size(); ++i) {
    childStart_[i] += childStart_[i - 1];
  }
  children_.resize(static_cast<std::size_t>(n) - 1 + (n == 0 ? 1 : 0));
  children_.resize(static_cast<std::size_t>(std::max(0, n - 1)));
  std::vector<int> cursor(childStart_.begin(), childStart_.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = parent_[static_cast<std::size_t>(v)];
    if (p != kInvalidNode) {
      children_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(p)]++)] = v;
    }
  }

  // Binary lifting tables.
  int levels = 1;
  while ((1 << levels) < std::max(1, n)) ++levels;
  up_.assign(static_cast<std::size_t>(levels),
             std::vector<NodeId>(static_cast<std::size_t>(n)));
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = parent_[static_cast<std::size_t>(v)];
    up_[0][static_cast<std::size_t>(v)] = (p == kInvalidNode) ? v : p;
  }
  for (int k = 1; k < levels; ++k) {
    for (NodeId v = 0; v < n; ++v) {
      up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)] =
          up_[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(
              up_[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(v)])];
    }
  }
}

NodeId RootedTree::lca(NodeId u, NodeId v) const {
  if (depth(u) < depth(v)) std::swap(u, v);
  int diff = depth(u) - depth(v);
  for (std::size_t k = 0; diff != 0; ++k, diff >>= 1) {
    if (diff & 1) u = up_[k][static_cast<std::size_t>(u)];
  }
  if (u == v) return u;
  for (int k = static_cast<int>(up_.size()) - 1; k >= 0; --k) {
    const NodeId nu = up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(u)];
    const NodeId nv = up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)];
    if (nu != nv) {
      u = nu;
      v = nv;
    }
  }
  return up_[0][static_cast<std::size_t>(u)];
}

int RootedTree::distance(NodeId u, NodeId v) const {
  const NodeId a = lca(u, v);
  return depth(u) + depth(v) - 2 * depth(a);
}

bool RootedTree::isAncestorOf(NodeId ancestor, NodeId v) const {
  // Walk v up by the depth difference and compare.
  int diff = depth(v) - depth(ancestor);
  if (diff < 0) return false;
  NodeId x = v;
  for (std::size_t k = 0; diff != 0; ++k, diff >>= 1) {
    if (diff & 1) x = up_[k][static_cast<std::size_t>(x)];
  }
  return x == ancestor;
}

std::vector<NodeId> RootedTree::pathNodes(NodeId u, NodeId v) const {
  const NodeId a = lca(u, v);
  std::vector<NodeId> upSide;
  for (NodeId x = u; x != a; x = parent(x)) upSide.push_back(x);
  upSide.push_back(a);
  std::vector<NodeId> downSide;
  for (NodeId x = v; x != a; x = parent(x)) downSide.push_back(x);
  upSide.insert(upSide.end(), downSide.rbegin(), downSide.rend());
  return upSide;
}

}  // namespace hbn::net
