#include "hbn/net/serialize.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hbn::net {

void writeText(const Tree& tree, std::ostream& os) {
  os << "hbn-tree v1\n";
  for (NodeId v = 0; v < tree.nodeCount(); ++v) {
    if (tree.isProcessor(v)) {
      os << "node " << v << " processor\n";
    } else {
      os << "node " << v << " bus " << tree.busBandwidth(v) << '\n';
    }
  }
  for (EdgeId e = 0; e < tree.edgeCount(); ++e) {
    const Edge& ed = tree.edge(e);
    os << "edge " << ed.u << ' ' << ed.v << ' ' << ed.bandwidth << '\n';
  }
}

std::string toText(const Tree& tree) {
  std::ostringstream oss;
  writeText(tree, oss);
  return oss.str();
}

Tree parseText(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "hbn-tree v1") {
    throw std::invalid_argument("parseText: missing 'hbn-tree v1' header");
  }
  TreeBuilder builder;
  NodeId expectedId = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls{line};
    std::string keyword;
    ls >> keyword;
    if (keyword == "node") {
      NodeId id = kInvalidNode;
      std::string kind;
      if (!(ls >> id >> kind)) {
        throw std::invalid_argument("parseText: malformed node line");
      }
      if (id != expectedId) {
        throw std::invalid_argument("parseText: node ids must be dense 0..n-1");
      }
      ++expectedId;
      if (kind == "processor") {
        builder.addProcessor();
      } else if (kind == "bus") {
        double bandwidth = 1.0;
        if (!(ls >> bandwidth)) {
          throw std::invalid_argument("parseText: bus line missing bandwidth");
        }
        builder.addBus(bandwidth);
      } else {
        throw std::invalid_argument("parseText: unknown node kind '" + kind +
                                    "'");
      }
    } else if (keyword == "edge") {
      NodeId u = kInvalidNode;
      NodeId v = kInvalidNode;
      double bandwidth = 1.0;
      if (!(ls >> u >> v >> bandwidth)) {
        throw std::invalid_argument("parseText: malformed edge line");
      }
      builder.connect(u, v, bandwidth);
    } else {
      throw std::invalid_argument("parseText: unknown keyword '" + keyword +
                                  "'");
    }
  }
  return builder.build();
}

std::string toDot(const Tree& tree) {
  std::ostringstream os;
  os << "graph hbn {\n";
  for (NodeId v = 0; v < tree.nodeCount(); ++v) {
    if (tree.isProcessor(v)) {
      os << "  n" << v << " [shape=box,label=\"P" << v << "\"];\n";
    } else {
      os << "  n" << v << " [shape=ellipse,label=\"B" << v << " bw="
         << tree.busBandwidth(v) << "\"];\n";
    }
  }
  for (EdgeId e = 0; e < tree.edgeCount(); ++e) {
    const Edge& ed = tree.edge(e);
    os << "  n" << ed.u << " -- n" << ed.v << " [label=\"" << ed.bandwidth
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace hbn::net
