#include "hbn/net/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hbn::net {
namespace {

// Fat-tree profile: bandwidth proportional to the number of processors in
// the subtree hanging below, clamped to >= 1.
double fatBandwidth(const BandwidthModel& bw, double base, int leavesBelow) {
  if (!bw.fatTree) return base;
  return std::max(1.0, base * static_cast<double>(leavesBelow));
}

}  // namespace

Tree makeKaryTree(int arity, int height, const BandwidthModel& bw) {
  if (height < 1) throw std::invalid_argument("makeKaryTree: height >= 1");
  if (arity < 2) throw std::invalid_argument("makeKaryTree: arity >= 2");
  TreeBuilder builder;
  // Leaves below a bus at bus-depth d (root is d=0, bus height is `height`):
  // arity^(height - d).
  auto leavesBelow = [&](int busDepth) {
    double count = 1.0;
    for (int i = 0; i < height - busDepth; ++i) {
      count *= static_cast<double>(arity);
    }
    return static_cast<int>(count);
  };

  struct Frame {
    NodeId bus;
    int depth;
  };
  const NodeId root =
      builder.addBus(fatBandwidth(bw, bw.bus, leavesBelow(0)));
  std::vector<Frame> frontier{{root, 0}};
  while (!frontier.empty()) {
    const Frame f = frontier.back();
    frontier.pop_back();
    if (f.depth == height - 1) {
      for (int i = 0; i < arity; ++i) {
        const NodeId p = builder.addProcessor();
        builder.connect(f.bus, p, bw.leafEdge);
      }
    } else {
      for (int i = 0; i < arity; ++i) {
        const NodeId child = builder.addBus(
            fatBandwidth(bw, bw.bus, leavesBelow(f.depth + 1)));
        builder.connect(
            f.bus, child,
            fatBandwidth(bw, bw.innerEdge, leavesBelow(f.depth + 1)));
        frontier.push_back({child, f.depth + 1});
      }
    }
  }
  return builder.build();
}

Tree makeStar(int numProcessors, double busBandwidth) {
  if (numProcessors < 1) {
    throw std::invalid_argument("makeStar: need at least one processor");
  }
  TreeBuilder builder;
  const NodeId bus = builder.addBus(busBandwidth);
  for (int i = 0; i < numProcessors; ++i) {
    const NodeId p = builder.addProcessor();
    builder.connect(bus, p, 1.0);
  }
  return builder.build();
}

Tree makeCaterpillar(int busCount, int procsPerBus, const BandwidthModel& bw) {
  if (busCount < 1 || procsPerBus < 1) {
    throw std::invalid_argument("makeCaterpillar: positive sizes required");
  }
  TreeBuilder builder;
  std::vector<NodeId> buses;
  buses.reserve(static_cast<std::size_t>(busCount));
  for (int i = 0; i < busCount; ++i) {
    const int below = procsPerBus * (busCount - i);
    buses.push_back(builder.addBus(fatBandwidth(bw, bw.bus, below)));
    if (i > 0) {
      builder.connect(buses[static_cast<std::size_t>(i - 1)],
                      buses[static_cast<std::size_t>(i)],
                      fatBandwidth(bw, bw.innerEdge,
                                   procsPerBus * (busCount - i)));
    }
    for (int j = 0; j < procsPerBus; ++j) {
      const NodeId p = builder.addProcessor();
      builder.connect(buses.back(), p, bw.leafEdge);
    }
  }
  return builder.build();
}

Tree makeRandomTree(int numProcessors, int busCount, util::Rng& rng,
                    const BandwidthModel& bw) {
  if (busCount < 1) throw std::invalid_argument("makeRandomTree: busCount >= 1");
  if (numProcessors < busCount) {
    // Each bus needs at least one incident leaf/child so no bus is a leaf.
    numProcessors = busCount;
  }
  TreeBuilder builder;
  std::vector<NodeId> buses;
  buses.reserve(static_cast<std::size_t>(busCount));
  for (int i = 0; i < busCount; ++i) {
    buses.push_back(builder.addBus(bw.bus));
    if (i > 0) {
      // Random recursive tree: attach to a uniformly random earlier bus.
      const auto j = static_cast<std::size_t>(
          rng.nextBelow(static_cast<std::uint64_t>(i)));
      builder.connect(buses[j], buses.back(), bw.innerEdge);
    }
  }
  // Guarantee every degree-1 bus (a chain end) gets a processor: first give
  // one processor to every bus, then spread the rest uniformly.
  int remaining = numProcessors;
  for (const NodeId b : buses) {
    const NodeId p = builder.addProcessor();
    builder.connect(b, p, bw.leafEdge);
    --remaining;
  }
  while (remaining-- > 0) {
    const auto j = static_cast<std::size_t>(
        rng.nextBelow(static_cast<std::uint64_t>(busCount)));
    const NodeId p = builder.addProcessor();
    builder.connect(buses[j], p, bw.leafEdge);
  }
  return builder.build();
}

Tree makeClusterNetwork(int clusters, int procsPerCluster,
                        const BandwidthModel& bw) {
  if (clusters < 1 || procsPerCluster < 1) {
    throw std::invalid_argument("makeClusterNetwork: positive sizes required");
  }
  TreeBuilder builder;
  const NodeId root = builder.addBus(
      fatBandwidth(bw, bw.bus, clusters * procsPerCluster));
  for (int c = 0; c < clusters; ++c) {
    const NodeId cluster =
        builder.addBus(fatBandwidth(bw, bw.bus, procsPerCluster));
    builder.connect(root, cluster,
                    fatBandwidth(bw, bw.innerEdge, procsPerCluster));
    for (int p = 0; p < procsPerCluster; ++p) {
      const NodeId proc = builder.addProcessor();
      builder.connect(cluster, proc, bw.leafEdge);
    }
  }
  return builder.build();
}

const char* topologyFamilyName(TopologyFamily f) noexcept {
  switch (f) {
    case TopologyFamily::kary:
      return "kary";
    case TopologyFamily::star:
      return "star";
    case TopologyFamily::caterpillar:
      return "caterpillar";
    case TopologyFamily::random:
      return "random";
    case TopologyFamily::cluster:
      return "cluster";
  }
  return "?";
}

Tree makeFamilyMember(TopologyFamily family, int targetProcessors,
                      util::Rng& rng, const BandwidthModel& bw) {
  targetProcessors = std::max(2, targetProcessors);
  switch (family) {
    case TopologyFamily::kary: {
      // Pick arity 4 and the height that gets closest to the target.
      const int arity = 4;
      int height = 1;
      int leaves = arity;
      while (leaves * arity <= targetProcessors) {
        leaves *= arity;
        ++height;
      }
      return makeKaryTree(arity, height, bw);
    }
    case TopologyFamily::star:
      return makeStar(targetProcessors, bw.bus);
    case TopologyFamily::caterpillar: {
      const int perBus = 3;
      const int buses = std::max(1, targetProcessors / perBus);
      return makeCaterpillar(buses, perBus, bw);
    }
    case TopologyFamily::random: {
      const int buses = std::max(1, targetProcessors / 4);
      return makeRandomTree(targetProcessors, buses, rng, bw);
    }
    case TopologyFamily::cluster: {
      const int clusters =
          std::max(1, static_cast<int>(std::sqrt(targetProcessors)));
      const int per = std::max(1, targetProcessors / clusters);
      return makeClusterNetwork(clusters, per, bw);
    }
  }
  throw std::invalid_argument("makeFamilyMember: unknown family");
}

}  // namespace hbn::net
