// Topology generators for hierarchical bus networks.
//
// These produce the network families used across tests and experiments:
// balanced k-ary hierarchies (the canonical SCI-switch layout), stars
// (single shared bus; the NP-hardness gadget's shape), caterpillars
// (a backbone bus chain, the worst case for height-dependent bounds),
// random bus hierarchies, and two-level "cluster" networks modelling a
// NOW built from ringlets.
#pragma once

#include <vector>

#include "hbn/net/tree.h"
#include "hbn/util/rng.h"

namespace hbn::net {

/// Bandwidth assignment policy for generated topologies.
struct BandwidthModel {
  /// Bandwidth of processor-bus switch edges. The paper fixes this to 1.
  double leafEdge = 1.0;
  /// Bandwidth of bus-bus switch edges.
  double innerEdge = 1.0;
  /// Bandwidth of every bus.
  double bus = 1.0;
  /// When true, inner-edge and bus bandwidths scale with the number of
  /// processors below them (a "fat-tree" profile, common for hierarchical
  /// bus systems where higher-level buses are faster).
  bool fatTree = false;
};

/// Complete `arity`-ary bus hierarchy of the given bus height; processors
/// hang off every lowest-level bus. height >= 1; arity >= 2 for height > 1.
/// With height = 1 this is a star: one bus and `arity` processors.
[[nodiscard]] Tree makeKaryTree(int arity, int height,
                                const BandwidthModel& bw = {});

/// Single bus with `numProcessors` processors (4-ary star with
/// numProcessors = 4 is the NP-hardness gadget topology of Figure 3).
[[nodiscard]] Tree makeStar(int numProcessors, double busBandwidth = 1.0);

/// Chain of `busCount` buses; `procsPerBus` processors hang off each bus.
[[nodiscard]] Tree makeCaterpillar(int busCount, int procsPerBus,
                                   const BandwidthModel& bw = {});

/// Random bus hierarchy: a random recursive tree of `busCount` buses, with
/// `numProcessors` processors attached to uniformly random buses. Every
/// bus is guaranteed at least one child (processors are added to childless
/// buses first so the tree is valid).
[[nodiscard]] Tree makeRandomTree(int numProcessors, int busCount,
                                  util::Rng& rng,
                                  const BandwidthModel& bw = {});

/// Two-level cluster network: `clusters` level-1 buses under one root bus,
/// each cluster holding `procsPerCluster` processors — the "NOW of SCI
/// ringlets" shape from the paper's introduction.
[[nodiscard]] Tree makeClusterNetwork(int clusters, int procsPerCluster,
                                      const BandwidthModel& bw = {});

/// Names for reporting; the experiment tables key rows by these.
enum class TopologyFamily { kary, star, caterpillar, random, cluster };

[[nodiscard]] const char* topologyFamilyName(TopologyFamily f) noexcept;

/// Uniform construction interface used by the benchmark sweeps: builds a
/// member of `family` with roughly `targetProcessors` processors.
[[nodiscard]] Tree makeFamilyMember(TopologyFamily family,
                                    int targetProcessors, util::Rng& rng,
                                    const BandwidthModel& bw = {});

}  // namespace hbn::net
