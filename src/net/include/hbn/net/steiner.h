// Minimal spanning (Steiner) subtrees of terminal sets within a tree.
//
// Write requests charge every edge of the Steiner tree connecting the copy
// set P_x, so load evaluation needs this repeatedly.
#pragma once

#include <span>
#include <vector>

#include "hbn/net/rooted.h"

namespace hbn::net {

/// Returns the edge ids of the minimal subtree of `rooted.tree()` spanning
/// `terminals`. Duplicated terminals are allowed; for fewer than two
/// distinct terminals the result is empty. O(n) in the tree size.
[[nodiscard]] std::vector<EdgeId> steinerEdges(
    const RootedTree& rooted, std::span<const NodeId> terminals);

/// Like steinerEdges but adds `weight` onto `edgeLoad[e]` for each Steiner
/// edge instead of materialising the edge list. `edgeLoad` must have
/// tree.edgeCount() entries.
void addSteinerLoad(const RootedTree& rooted,
                    std::span<const NodeId> terminals, double weight,
                    std::span<double> edgeLoad);

}  // namespace hbn::net
