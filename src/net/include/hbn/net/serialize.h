// Text and Graphviz serialisation for hierarchical bus networks.
//
// The text format is line-oriented and round-trips exactly:
//
//   hbn-tree v1
//   node <id> processor
//   node <id> bus <bandwidth>
//   edge <u> <v> <bandwidth>
//
// Node ids must be dense 0..n-1 and appear in ascending order.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "hbn/net/tree.h"

namespace hbn::net {

/// Writes the round-trippable text representation of `tree`.
void writeText(const Tree& tree, std::ostream& os);

/// Convenience wrapper for writeText.
[[nodiscard]] std::string toText(const Tree& tree);

/// Parses the text representation; throws std::invalid_argument on any
/// syntax or structural error.
[[nodiscard]] Tree parseText(std::string_view text);

/// Emits a Graphviz DOT rendering (processors as boxes, buses as ellipses,
/// bandwidths as labels) for documentation and debugging.
[[nodiscard]] std::string toDot(const Tree& tree);

}  // namespace hbn::net
