// Hierarchical bus network model: a weighted tree T = (P ∪ B, E, b).
//
// Following the paper (Meyer auf der Heide, Räcke, Westermann, SPAA 2000):
//   * leaves are processors P — the only nodes that can store data copies,
//   * inner nodes are buses B,
//   * edges are switches,
//   * b assigns bandwidths to buses and to edges (switches).
//
// Structural invariants enforced by TreeBuilder::build():
//   * the graph is a tree (connected, |E| = |V| - 1),
//   * every processor has degree exactly 1 (a processor hangs off one bus),
//   * every edge connects processor-bus or bus-bus (never two processors),
//   * every degree-<=1 bus is rejected for trees with more than one node
//     (a leaf must be a processor),
//   * all bandwidths are >= 1.
//
// The paper additionally assumes that processor-bus switch edges have
// bandwidth exactly 1 ("the slowest part of the system"); that assumption
// is required by the 7-approximation guarantee, and can be checked with
// Tree::usesUnitLeafEdges().
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hbn::net {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// Role of a tree node: leaf processor or inner bus.
enum class NodeKind : std::uint8_t { processor, bus };

/// Adjacency entry: the neighbour and the id of the connecting edge.
struct HalfEdge {
  NodeId to = kInvalidNode;
  EdgeId edge = kInvalidEdge;
};

/// Undirected switch edge with bandwidth.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double bandwidth = 1.0;
};

class Tree;

/// Incremental construction of a Tree; build() validates all invariants.
class TreeBuilder {
 public:
  /// Adds a leaf processor node and returns its id.
  NodeId addProcessor();

  /// Adds a bus (inner) node with the given bandwidth (must be >= 1).
  NodeId addBus(double bandwidth = 1.0);

  /// Connects two existing nodes with a switch of the given bandwidth.
  EdgeId connect(NodeId u, NodeId v, double bandwidth = 1.0);

  [[nodiscard]] int nodeCount() const noexcept {
    return static_cast<int>(kinds_.size());
  }

  /// Validates the structure and produces an immutable Tree.
  /// Throws std::invalid_argument describing the first violated invariant.
  [[nodiscard]] Tree build() const;

 private:
  std::vector<NodeKind> kinds_;
  std::vector<double> busBandwidth_;
  std::vector<Edge> edges_;
};

/// Immutable, validated hierarchical bus network.
class Tree {
 public:
  [[nodiscard]] int nodeCount() const noexcept {
    return static_cast<int>(kinds_.size());
  }
  [[nodiscard]] int edgeCount() const noexcept {
    return static_cast<int>(edges_.size());
  }
  [[nodiscard]] int processorCount() const noexcept {
    return static_cast<int>(processors_.size());
  }
  [[nodiscard]] int busCount() const noexcept {
    return static_cast<int>(buses_.size());
  }

  [[nodiscard]] NodeKind kind(NodeId v) const { return kinds_[check(v)]; }
  [[nodiscard]] bool isProcessor(NodeId v) const {
    return kind(v) == NodeKind::processor;
  }
  [[nodiscard]] bool isBus(NodeId v) const { return kind(v) == NodeKind::bus; }

  /// Bandwidth of bus `v`; requires isBus(v).
  [[nodiscard]] double busBandwidth(NodeId v) const;

  /// Bandwidth of edge `e`.
  [[nodiscard]] double edgeBandwidth(EdgeId e) const {
    return edges_[checkEdge(e)].bandwidth;
  }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    return edges_[checkEdge(e)];
  }

  /// The endpoint of `e` that is not `v`; requires that `v` is an endpoint.
  [[nodiscard]] NodeId otherEnd(EdgeId e, NodeId v) const;

  [[nodiscard]] std::span<const HalfEdge> neighbors(NodeId v) const {
    check(v);
    return {adjacency_.data() + adjStart_[v],
            static_cast<std::size_t>(adjStart_[v + 1] - adjStart_[v])};
  }

  [[nodiscard]] int degree(NodeId v) const {
    check(v);
    return adjStart_[v + 1] - adjStart_[v];
  }

  /// Maximum degree over all nodes (the paper's degree(T)).
  [[nodiscard]] int maxDegree() const noexcept { return maxDegree_; }

  /// All processor (leaf) node ids, ascending.
  [[nodiscard]] std::span<const NodeId> processors() const noexcept {
    return processors_;
  }
  /// All bus (inner) node ids, ascending.
  [[nodiscard]] std::span<const NodeId> buses() const noexcept {
    return buses_;
  }

  /// Eccentricity-based height when rooted at `root` (edges on the longest
  /// root-to-node path). O(n).
  [[nodiscard]] int heightFrom(NodeId root) const;

  /// True when every processor-bus switch edge has bandwidth exactly 1,
  /// the bandwidth model assumed by the paper's approximation analysis.
  [[nodiscard]] bool usesUnitLeafEdges() const;

  /// An arbitrary-but-deterministic bus to use as the global root for the
  /// mapping algorithm; the unique node of single-node trees otherwise.
  [[nodiscard]] NodeId defaultRoot() const;

 private:
  friend class TreeBuilder;
  Tree() = default;

  NodeId check(NodeId v) const;
  EdgeId checkEdge(EdgeId e) const;

  std::vector<NodeKind> kinds_;
  std::vector<double> busBandwidth_;
  std::vector<Edge> edges_;
  // CSR adjacency.
  std::vector<HalfEdge> adjacency_;
  std::vector<int> adjStart_;
  std::vector<NodeId> processors_;
  std::vector<NodeId> buses_;
  int maxDegree_ = 0;
};

}  // namespace hbn::net
