// Rooted view over a Tree: parents, depths, traversal orders, LCA and
// tree-path enumeration.
//
// Both the nibble strategy (rooted at an object's centre of gravity) and
// the mapping algorithm (rooted at a designated bus) operate on rooted
// views; load evaluation enumerates paths via LCA.
#pragma once

#include <span>
#include <vector>

#include "hbn/net/tree.h"

namespace hbn::net {

/// Immutable rooted orientation of a Tree.
///
/// Construction is O(n log n) (binary-lifting tables for LCA); all queries
/// are O(1) or O(path length).
class RootedTree {
 public:
  RootedTree(const Tree& tree, NodeId root);

  [[nodiscard]] const Tree& tree() const noexcept { return *tree_; }
  [[nodiscard]] NodeId root() const noexcept { return root_; }

  /// Parent of `v`; kInvalidNode for the root.
  [[nodiscard]] NodeId parent(NodeId v) const {
    return parent_[static_cast<std::size_t>(v)];
  }
  /// Edge connecting `v` to its parent; kInvalidEdge for the root.
  [[nodiscard]] EdgeId parentEdge(NodeId v) const {
    return parentEdge_[static_cast<std::size_t>(v)];
  }
  /// Edge distance from the root.
  [[nodiscard]] int depth(NodeId v) const {
    return depth_[static_cast<std::size_t>(v)];
  }
  /// Height of the whole rooted tree (max depth).
  [[nodiscard]] int height() const noexcept { return height_; }
  /// The paper's level numbering: root at level height(), leaves of the
  /// deepest branch at level 0. level(v) = height() - depth(v).
  [[nodiscard]] int level(NodeId v) const { return height_ - depth(v); }

  /// Children of `v` in rooted orientation.
  [[nodiscard]] std::span<const NodeId> children(NodeId v) const {
    return {children_.data() + childStart_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(
                childStart_[static_cast<std::size_t>(v) + 1] -
                childStart_[static_cast<std::size_t>(v)])};
  }

  /// Nodes in preorder (root first; every parent precedes its children).
  [[nodiscard]] std::span<const NodeId> preorder() const noexcept {
    return preorder_;
  }

  /// Lowest common ancestor of u and v.
  [[nodiscard]] NodeId lca(NodeId u, NodeId v) const;

  /// Number of edges on the unique u-v path.
  [[nodiscard]] int distance(NodeId u, NodeId v) const;

  /// True when `ancestor` lies on the path from `v` to the root
  /// (inclusive of v itself).
  [[nodiscard]] bool isAncestorOf(NodeId ancestor, NodeId v) const;

  /// Invokes `fn(EdgeId)` for every edge on the unique u-v path, in order
  /// from u up to lca(u,v) and then down to v. Thread-safe: the walk is a
  /// two-pointer depth-equalising ascent with no shared mutable state (and
  /// no LCA query — the meeting point IS the LCA).
  template <typename Fn>
  void forEachPathEdge(NodeId u, NodeId v, Fn&& fn) const {
    std::vector<EdgeId> descent;
    forEachPathEdge(u, v, std::forward<Fn>(fn), descent);
  }

  /// Like above, with caller-supplied scratch for the descent side (only
  /// the lca→v half needs buffering to come out top-down); tight loops
  /// reuse `descent`'s capacity so repeated walks allocate nothing.
  template <typename Fn>
  void forEachPathEdge(NodeId u, NodeId v, Fn&& fn,
                       std::vector<EdgeId>& descent) const {
    descent.clear();
    while (depth(u) > depth(v)) {
      fn(parentEdge(u));
      u = parent(u);
    }
    while (depth(v) > depth(u)) {
      descent.push_back(parentEdge(v));
      v = parent(v);
    }
    while (u != v) {
      fn(parentEdge(u));
      u = parent(u);
      descent.push_back(parentEdge(v));
      v = parent(v);
    }
    for (auto it = descent.rbegin(); it != descent.rend(); ++it) fn(*it);
  }

  /// The nodes of the u-v path, inclusive of both endpoints.
  [[nodiscard]] std::vector<NodeId> pathNodes(NodeId u, NodeId v) const;

 private:
  const Tree* tree_;
  NodeId root_;
  int height_ = 0;
  std::vector<NodeId> parent_;
  std::vector<EdgeId> parentEdge_;
  std::vector<int> depth_;
  std::vector<NodeId> preorder_;
  std::vector<NodeId> children_;
  std::vector<int> childStart_;
  // up_[k][v] = 2^k-th ancestor of v (root saturates to root).
  std::vector<std::vector<NodeId>> up_;
};

}  // namespace hbn::net
