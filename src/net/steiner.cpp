#include "hbn/net/steiner.h"

#include <stdexcept>

namespace hbn::net {
namespace {

// Shared implementation: visits every Steiner edge once.
template <typename Fn>
void forEachSteinerEdge(const RootedTree& rooted,
                        std::span<const NodeId> terminals, Fn&& fn) {
  if (terminals.size() < 2) return;
  const Tree& tree = rooted.tree();
  const auto n = static_cast<std::size_t>(tree.nodeCount());

  // Count terminals per node (duplicates collapse onto the node).
  std::vector<int> mark(n, 0);
  int distinct = 0;
  for (NodeId t : terminals) {
    if (t < 0 || t >= tree.nodeCount()) {
      throw std::out_of_range("steinerEdges: terminal out of range");
    }
    if (mark[static_cast<std::size_t>(t)] == 0) ++distinct;
    mark[static_cast<std::size_t>(t)] = 1;
  }
  if (distinct < 2) return;

  // Post-order accumulation of terminal counts; the parent edge of v
  // belongs to the Steiner tree iff the subtree below it separates the
  // terminal set (0 < count(v) < distinct).
  const auto order = rooted.preorder();
  std::vector<int> count(n, 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    count[static_cast<std::size_t>(v)] += mark[static_cast<std::size_t>(v)];
    const NodeId p = rooted.parent(v);
    if (p != kInvalidNode) {
      count[static_cast<std::size_t>(p)] += count[static_cast<std::size_t>(v)];
    }
    if (p != kInvalidNode && count[static_cast<std::size_t>(v)] > 0 &&
        count[static_cast<std::size_t>(v)] < distinct) {
      fn(rooted.parentEdge(v));
    }
  }
}

}  // namespace

std::vector<EdgeId> steinerEdges(const RootedTree& rooted,
                                 std::span<const NodeId> terminals) {
  std::vector<EdgeId> edges;
  forEachSteinerEdge(rooted, terminals,
                     [&](EdgeId e) { edges.push_back(e); });
  return edges;
}

void addSteinerLoad(const RootedTree& rooted,
                    std::span<const NodeId> terminals, double weight,
                    std::span<double> edgeLoad) {
  if (edgeLoad.size() != static_cast<std::size_t>(rooted.tree().edgeCount())) {
    throw std::invalid_argument("addSteinerLoad: edgeLoad size mismatch");
  }
  forEachSteinerEdge(rooted, terminals, [&](EdgeId e) {
    edgeLoad[static_cast<std::size_t>(e)] += weight;
  });
}

}  // namespace hbn::net
