#include "hbn/util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <locale>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hbn::util {
namespace {

std::string quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

void JsonRecords::beginRecord() { records_.emplace_back(); }

void JsonRecords::field(std::string_view key, std::string_view value) {
  records_.back().emplace_back(std::string(key), quoted(value));
}

void JsonRecords::field(std::string_view key, std::int64_t value) {
  records_.back().emplace_back(std::string(key), std::to_string(value));
}

void JsonRecords::field(std::string_view key, bool value) {
  records_.back().emplace_back(std::string(key), value ? "true" : "false");
}

void JsonRecords::field(std::string_view key, double value) {
  std::string rendered;
  if (std::isfinite(value)) {
    std::ostringstream oss;
    // The classic locale pins the decimal separator to '.': under a
    // locale-imbued global stream state "1.5" would otherwise render as
    // "1,5" and the emitted file would no longer be JSON.
    oss.imbue(std::locale::classic());
    oss.precision(12);
    oss << value;
    rendered = oss.str();
  } else {
    rendered = "null";  // JSON has no Inf/NaN literals
  }
  records_.back().emplace_back(std::string(key), std::move(rendered));
}

void JsonRecords::write(std::ostream& os) const {
  os << "[\n";
  for (std::size_t r = 0; r < records_.size(); ++r) {
    os << "  {";
    for (std::size_t f = 0; f < records_[r].size(); ++f) {
      if (f != 0) os << ", ";
      os << quoted(records_[r][f].first) << ": " << records_[r][f].second;
    }
    os << (r + 1 < records_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

void JsonRecords::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write " + path);
  }
  write(out);
}

namespace {

/// Recursive-descent parser over the flat-record subset. Tracks a cursor
/// into the input and throws std::runtime_error with a byte offset on
/// any deviation from the grammar.
class RecordParser {
 public:
  explicit RecordParser(std::string_view text) : text_(text) {}

  std::vector<ParsedRecord> parse() {
    std::vector<ParsedRecord> records;
    skipSpace();
    expect('[');
    skipSpace();
    if (peek() == ']') {
      ++pos_;
    } else {
      while (true) {
        records.push_back(parseRecord());
        skipSpace();
        const char c = next();
        if (c == ']') break;
        if (c != ',') fail("expected ',' or ']' after record");
      }
    }
    skipSpace();
    if (pos_ != text_.size()) fail("trailing content after array");
    return records;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char wanted) {
    if (next() != wanted) {
      --pos_;
      fail(std::string("expected '") + wanted + "'");
    }
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          unsigned code = 0;
          for (int d = 0; d < 4; ++d) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  ParsedField parseValue(std::string key) {
    ParsedField field;
    field.key = std::move(key);
    const char c = peek();
    if (c == '"') {
      field.kind = ParsedField::Kind::string;
      field.text = parseString();
      return field;
    }
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") fail("expected 'null'");
      pos_ += 4;
      field.kind = ParsedField::Kind::null;
      // Emission maps non-finite doubles to null; mapping null back to
      // NaN makes parse→emit→parse a fixed point for such fields.
      field.number = std::numeric_limits<double>::quiet_NaN();
      return field;
    }
    if (c == 't' || c == 'f') {
      const bool value = c == 't';
      const std::string_view literal = value ? "true" : "false";
      if (text_.substr(pos_, literal.size()) != literal) {
        fail("expected 'true' or 'false'");
      }
      pos_ += literal.size();
      field.kind = ParsedField::Kind::boolean;
      field.text = std::string(literal);
      field.number = value ? 1.0 : 0.0;
      return field;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '-' || text_[pos_] == '+' ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E')) {
        ++pos_;
      }
      field.kind = ParsedField::Kind::number;
      field.text = std::string(text_.substr(start, pos_ - start));
      // std::from_chars instead of std::stod: stod honours the global
      // locale (a ','-decimal locale would truncate "1.5" at the dot)
      // and accepts hex floats and leading whitespace. from_chars is
      // locale-independent and consumes either the whole literal or
      // fails — exactly the JSON number grammar discipline needed here.
      const char* begin = field.text.data();
      const char* end = begin + field.text.size();
      const auto [ptr, ec] = std::from_chars(begin, end, field.number);
      if (ec != std::errc{} || ptr != end) fail("malformed number literal");
      return field;
    }
    fail("values must be strings, numbers, booleans, or null");
  }

  ParsedRecord parseRecord() {
    skipSpace();
    expect('{');
    ParsedRecord record;
    skipSpace();
    if (peek() == '}') {
      ++pos_;
      return record;
    }
    while (true) {
      skipSpace();
      std::string key = parseString();
      for (const ParsedField& existing : record) {
        if (existing.key == key) fail("duplicate key '" + key + "'");
      }
      skipSpace();
      expect(':');
      skipSpace();
      record.push_back(parseValue(std::move(key)));
      skipSpace();
      const char c = next();
      if (c == '}') return record;
      if (c != ',') fail("expected ',' or '}' after field");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<ParsedRecord> parseRecords(std::string_view json) {
  return RecordParser(json).parse();
}

}  // namespace hbn::util
