#include "hbn/util/json.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hbn::util {
namespace {

std::string quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

void JsonRecords::beginRecord() { records_.emplace_back(); }

void JsonRecords::field(std::string_view key, std::string_view value) {
  records_.back().emplace_back(std::string(key), quoted(value));
}

void JsonRecords::field(std::string_view key, std::int64_t value) {
  records_.back().emplace_back(std::string(key), std::to_string(value));
}

void JsonRecords::field(std::string_view key, double value) {
  std::string rendered;
  if (std::isfinite(value)) {
    std::ostringstream oss;
    oss.precision(12);
    oss << value;
    rendered = oss.str();
  } else {
    rendered = "null";  // JSON has no Inf/NaN literals
  }
  records_.back().emplace_back(std::string(key), std::move(rendered));
}

void JsonRecords::write(std::ostream& os) const {
  os << "[\n";
  for (std::size_t r = 0; r < records_.size(); ++r) {
    os << "  {";
    for (std::size_t f = 0; f < records_[r].size(); ++f) {
      if (f != 0) os << ", ";
      os << quoted(records_[r][f].first) << ": " << records_[r][f].second;
    }
    os << (r + 1 < records_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

void JsonRecords::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write " + path);
  }
  write(out);
}

}  // namespace hbn::util
