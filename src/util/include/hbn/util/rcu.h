// Read-copy-update publication cell with epoch-grace reclamation.
//
// RcuCell<T> holds one immutable snapshot of T and lets any number of
// reader threads access it wait-free(-ish) while a single writer thread
// publishes replacements. The protocol is the classic epoch-based one:
//
//   reader   e = epoch; announce e in a reader slot; re-check epoch;
//            load the current pointer — the announced epoch now *pins*
//            every snapshot retired at an epoch > e until the guard is
//            released (slot reset to 0).
//   writer   swap the current pointer, bump the global epoch, and move
//            the old snapshot onto the retired list tagged with the new
//            epoch. A retired snapshot is freed only once every reader
//            slot is idle (0) or announces an epoch >= its tag — the
//            grace period. publish() reclaims opportunistically
//            (non-blocking); synchronize() blocks until the whole
//            retired list is freed.
//
// The epoch re-check closes the announce/load race: if the writer
// bumped the epoch between the reader's load of `epoch_` and its
// announcement, the reader retries with the new epoch; if the check
// passes, any snapshot the reader can observe is retired at an epoch
// strictly greater than the announced one and therefore waits for the
// guard. All atomics use seq_cst — publication is epoch-granular in
// every current use, so the hot path is cold.
//
// Single writer: publish()/synchronize() must be called from one thread
// at a time (the epoch server's serve thread). read() is safe from any
// thread, including the writer, and guards may be held across long
// computations — they only delay reclamation, never block publication
// of newer snapshots.
//
// The serve layer uses this to publish the in-flight §4 handoff
// schedule to epoch workers without stopping the world; the stress test
// in tests/rcu_test.cpp hammers it with concurrent readers during
// publication storms.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

namespace hbn::util {

template <typename T>
class RcuCell {
 public:
  /// Number of simultaneously held ReadGuards supported without
  /// spinning; further readers wait for a slot to free.
  static constexpr std::size_t kMaxReaders = 64;

  explicit RcuCell(std::unique_ptr<const T> initial)
      : current_(initial.release()) {}

  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;

  ~RcuCell() {
    synchronize();
    delete current_.load();
  }

  /// Pins the current snapshot for the guard's lifetime. Move-only;
  /// releasing the guard lets grace periods that were waiting on this
  /// reader elapse.
  class ReadGuard {
   public:
    ReadGuard(const T* ptr, std::atomic<std::uint64_t>* slot)
        : ptr_(ptr), slot_(slot) {}

    ReadGuard(ReadGuard&& other) noexcept
        : ptr_(other.ptr_), slot_(other.slot_) {
      other.ptr_ = nullptr;
      other.slot_ = nullptr;
    }
    ReadGuard& operator=(ReadGuard&& other) noexcept {
      if (this != &other) {
        release();
        ptr_ = other.ptr_;
        slot_ = other.slot_;
        other.ptr_ = nullptr;
        other.slot_ = nullptr;
      }
      return *this;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    ~ReadGuard() { release(); }

    [[nodiscard]] const T& operator*() const noexcept { return *ptr_; }
    [[nodiscard]] const T* operator->() const noexcept { return ptr_; }
    [[nodiscard]] const T* get() const noexcept { return ptr_; }

   private:
    void release() noexcept {
      if (slot_ != nullptr) slot_->store(0);
      slot_ = nullptr;
      ptr_ = nullptr;
    }

    const T* ptr_;
    std::atomic<std::uint64_t>* slot_;
  };

  /// Acquires a read-side critical section. Never blocks the writer;
  /// spins only when more than kMaxReaders guards are held at once.
  [[nodiscard]] ReadGuard read() const {
    for (;;) {
      const std::uint64_t epoch = epoch_.load();
      std::atomic<std::uint64_t>* slot = claimSlot(epoch);
      if (epoch_.load() == epoch) {
        return ReadGuard(current_.load(), slot);
      }
      // A publication slipped between the epoch load and the
      // announcement; retry so the announced epoch never lags the
      // snapshot we hand out.
      slot->store(0);
    }
  }

  /// Swaps in `next` and retires the previous snapshot; freed once its
  /// grace period elapses (checked opportunistically here and
  /// exhaustively in synchronize()). Single-writer.
  void publish(std::unique_ptr<const T> next) {
    const T* old = current_.exchange(next.release());
    const std::uint64_t retireEpoch = epoch_.fetch_add(1) + 1;
    retired_.emplace_back(retireEpoch, old);
    reclaim(/*block=*/false);
  }

  /// Blocks until every retired snapshot's grace period has elapsed and
  /// frees them. Single-writer; must not be called while this thread
  /// holds a ReadGuard on this cell (it would wait on itself).
  void synchronize() { reclaim(/*block=*/true); }

  /// Snapshots still awaiting their grace period (diagnostics/tests).
  [[nodiscard]] std::size_t retiredCount() const noexcept {
    return retired_.size();
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};  ///< 0 = idle, else announced epoch
  };

  std::atomic<std::uint64_t>* claimSlot(std::uint64_t epoch) const {
    for (;;) {
      for (Slot& slot : slots_) {
        std::uint64_t expected = 0;
        if (slot.value.compare_exchange_strong(expected, epoch)) {
          return &slot.value;
        }
      }
      std::this_thread::yield();
    }
  }

  [[nodiscard]] bool graceElapsed(std::uint64_t retireEpoch) const {
    for (const Slot& slot : slots_) {
      const std::uint64_t announced = slot.value.load();
      if (announced != 0 && announced < retireEpoch) return false;
    }
    return true;
  }

  void reclaim(bool block) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < retired_.size(); ++i) {
      auto [retireEpoch, ptr] = retired_[i];
      if (block) {
        while (!graceElapsed(retireEpoch)) std::this_thread::yield();
        delete ptr;
      } else if (graceElapsed(retireEpoch)) {
        delete ptr;
      } else {
        retired_[kept++] = retired_[i];
      }
    }
    retired_.resize(kept);
  }

  std::atomic<const T*> current_;
  std::atomic<std::uint64_t> epoch_{1};
  mutable std::array<Slot, kMaxReaders> slots_{};
  /// (retire epoch, snapshot) — touched only by the writer thread.
  std::vector<std::pair<std::uint64_t, const T*>> retired_;
};

}  // namespace hbn::util
