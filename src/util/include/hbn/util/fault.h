// Deterministic, spec-driven fault injection.
//
// A FaultInjector holds a set of armed fault points parsed from a
// compact spec grammar and is threaded through the serving pipeline
// (epoch ingest, the shard-serving worker pool, the §4 handoff seam).
// Injection is compiled in always — the hooks cost one relaxed atomic
// load when no fault of that kind is armed — so the exact binary that
// runs in production is the one the fault-recovery tests exercise.
//
// Spec grammar (see docs/robustness.md):
//
//   spec    := kind '@' 'epoch' N ( ':' option )*
//   kind    := 'ingest-stall' | 'shard-throw' | 'handoff-fail'
//   option  := 'shard' M          (shard-throw: only worker M, default any)
//            | 'ms=' T            (ingest-stall: stall milliseconds,
//                                  default 50)
//            | 'times=' K         (trigger count before the fault
//                                  disarms, default 1)
//
// Examples: "ingest-stall@epoch3", "shard-throw@epoch5:shard2",
// "handoff-fail@epoch4:times=2". Several specs combine via repeated
// --inject flags or a comma-separated list.
//
// Determinism: a fault fires on exact (kind, epoch, shard) matches and
// decrements its trigger budget under a mutex, so a given spec set
// yields the same fault schedule on every run — which is what lets the
// recovery tests demand bit-identical digests after a kill + restore.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hbn::util {

/// Injection-point kinds, one per pipeline seam.
enum class FaultKind : unsigned {
  IngestStall = 0,  ///< delay the ingest thread before it fills an epoch
  ShardThrow = 1,   ///< throw from a serve worker inside an epoch
  HandoffFail = 2,  ///< fail the handoff-pass publication
};

[[nodiscard]] const char* faultKindName(FaultKind kind) noexcept;

/// One armed fault point.
struct FaultSpec {
  FaultKind kind = FaultKind::ShardThrow;
  std::uint64_t epoch = 0;  ///< epoch index the fault arms at
  int shard = -1;           ///< shard-throw: worker index, -1 = any
  double stallMs = 50.0;    ///< ingest-stall: delay per trigger
  int times = 1;            ///< triggers before the fault disarms
};

/// Parses one spec; throws std::invalid_argument with the offending
/// text on any grammar violation.
[[nodiscard]] FaultSpec parseFaultSpec(std::string_view text);

/// A set of armed fault points, queried from the pipeline's injection
/// hooks. Thread-safe: hooks run on the ingest thread, the serve
/// thread, and every worker. The no-fault fast path is one relaxed
/// atomic load, so leaving hooks compiled in costs nothing.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Arms one parsed spec.
  void add(const FaultSpec& spec);
  /// Parses and arms a comma-separated spec list.
  void addSpecs(std::string_view specs);

  [[nodiscard]] bool empty() const;

  /// Consumes one ingest-stall trigger for `epoch`; returns the stall
  /// in milliseconds, 0 when none is armed.
  [[nodiscard]] double stallMs(std::uint64_t epoch);

  /// Consumes one trigger of `kind` matching (epoch, shard); true when
  /// a fault fired. `shard` is ignored for non-sharded kinds.
  [[nodiscard]] bool fire(FaultKind kind, std::uint64_t epoch, int shard);

  /// Total faults fired so far.
  [[nodiscard]] std::uint64_t triggered() const;

  /// Renders the still-armed specs (diagnostics).
  [[nodiscard]] std::string describe() const;

 private:
  [[nodiscard]] bool armedFast(FaultKind kind) const noexcept {
    return (armedKinds_.load(std::memory_order_relaxed) &
            (1u << static_cast<unsigned>(kind))) != 0;
  }
  void refreshArmedMask();

  mutable std::mutex mutex_;
  std::vector<FaultSpec> specs_;  ///< times counts down; 0 = disarmed
  std::uint64_t triggered_ = 0;
  /// Bitmask of kinds with at least one armed spec — the lock-free
  /// fast path the per-object serve hook reads.
  std::atomic<unsigned> armedKinds_{0};
};

/// Builds an injector from a comma-separated spec list; nullptr for an
/// empty list (so serving surfaces can skip hooks entirely).
[[nodiscard]] std::shared_ptr<FaultInjector> makeFaultInjector(
    std::string_view specs);

}  // namespace hbn::util
