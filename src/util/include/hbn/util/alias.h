// Walker/Vose alias method: O(1) sampling from a fixed discrete
// distribution after O(n) preprocessing.
//
// The stream generators draw an object popularity per request; a binary
// search over the cumulative weights is O(log n) per draw and was the
// dominant generator cost in the serving benchmarks once the serving
// engine itself was batched. The alias table replaces it with one
// bounded integer draw and one Bernoulli draw per sample, independent of
// the distribution size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hbn/util/rng.h"

namespace hbn::util {

/// Immutable alias table over non-negative weights with a positive sum.
/// Construction is deterministic (stack-based Vose partition, no
/// randomness), so seeded streams stay reproducible across platforms.
class AliasTable {
 public:
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] std::size_t size() const noexcept { return accept_.size(); }

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight: O(1) — one bounded draw to pick a bucket, one Bernoulli
  /// draw to accept it or take its alias.
  [[nodiscard]] std::size_t sample(Rng& rng) const {
    const auto bucket = static_cast<std::size_t>(
        rng.nextBelow(static_cast<std::uint64_t>(accept_.size())));
    return rng.nextDouble() < accept_[bucket] ? bucket
                                              : alias_[bucket];
  }

 private:
  std::vector<double> accept_;         ///< acceptance probability per bucket
  std::vector<std::uint32_t> alias_;   ///< fallback index per bucket
};

}  // namespace hbn::util
