// Minimal flat-record JSON emission for machine-readable benchmark output
// (an array of objects with string/number fields). Kept deliberately tiny:
// the perf-trajectory files (BENCH_*.json) need nothing more, and the
// container ships no JSON library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hbn::util {

/// Builder for `[{"key": value, ...}, ...]` documents.
class JsonRecords {
 public:
  /// Starts a new record; subsequent field() calls attach to it.
  void beginRecord();

  void field(std::string_view key, std::string_view value);
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, int value) {
    field(key, static_cast<std::int64_t>(value));
  }
  void field(std::string_view key, double value);

  [[nodiscard]] std::size_t recordCount() const noexcept {
    return records_.size();
  }

  /// Renders the whole array, one record per line.
  void write(std::ostream& os) const;

  /// Writes to `path`; throws std::runtime_error when the file cannot be
  /// opened.
  void writeFile(const std::string& path) const;

 private:
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

}  // namespace hbn::util
