// Minimal flat-record JSON emission for machine-readable benchmark output
// (an array of objects with string/number/boolean fields). Kept
// deliberately tiny:
// the perf-trajectory files (BENCH_*.json) need nothing more, and the
// container ships no JSON library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hbn::util {

/// Builder for `[{"key": value, ...}, ...]` documents.
class JsonRecords {
 public:
  /// Starts a new record; subsequent field() calls attach to it.
  void beginRecord();

  void field(std::string_view key, std::string_view value);
  /// Without this overload a string literal would prefer the bool
  /// conversion below over string_view's user-defined one.
  void field(std::string_view key, const char* value) {
    field(key, std::string_view(value));
  }
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, int value) {
    field(key, static_cast<std::int64_t>(value));
  }
  void field(std::string_view key, double value);
  void field(std::string_view key, bool value);

  [[nodiscard]] std::size_t recordCount() const noexcept {
    return records_.size();
  }

  /// Renders the whole array, one record per line.
  void write(std::ostream& os) const;

  /// Writes to `path`; throws std::runtime_error when the file cannot be
  /// opened.
  void writeFile(const std::string& path) const;

 private:
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

/// One parsed field of a flat record. Numbers keep their source text in
/// `text` alongside the parsed `number`, so round-trip tests can assert
/// on the exact emitted form.
struct ParsedField {
  enum class Kind { string, number, boolean, null };
  std::string key;
  Kind kind = Kind::null;
  std::string text;  ///< unescaped string, or the number/bool literal
  /// Value for number, 0/1 for boolean, quiet NaN for null (emission
  /// turns non-finite doubles into null, so parse→emit→parse of such
  /// fields is a fixed point).
  double number = 0.0;
};

using ParsedRecord = std::vector<ParsedField>;

/// Parses the subset of JSON that JsonRecords emits — an array of flat
/// objects whose values are strings, numbers, booleans, or null —
/// preserving field order. Throws std::runtime_error on malformed input,
/// nested containers, or duplicate keys within a record, which makes it
/// the validator for the BENCH_*.json trajectory files.
[[nodiscard]] std::vector<ParsedRecord> parseRecords(std::string_view json);

}  // namespace hbn::util
