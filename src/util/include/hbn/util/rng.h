// Deterministic, seedable random number generation for all hbn experiments.
//
// Every stochastic component in the library (topology generators, workload
// generators, simulators, adversaries) draws exclusively from hbn::util::Rng
// so that each experiment is reproducible from a single printed seed.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64,
// which is the recommended seeding procedure for the xoshiro family. It is
// small, fast, and of far higher quality than std::minstd/rand while being
// exactly reproducible across platforms (unlike std::uniform_int_distribution,
// whose output is implementation-defined — we therefore implement our own
// bounded-draw primitives).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace hbn::util {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Exposed because seeding helpers and hash-mixing in tests reuse it.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo-random generator with convenience draw methods.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// handed to <random> distributions when cross-platform reproducibility of
/// that particular draw does not matter.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (SplitMix64-expanded).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Uses Lemire-style rejection to avoid modulo bias.
  [[nodiscard]] std::uint64_t nextBelow(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t nextInRange(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double nextDouble() noexcept;

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  [[nodiscard]] bool nextBool(double p = 0.5) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// All weights must be non-negative with a positive sum.
  [[nodiscard]] std::size_t nextWeighted(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle of `items` (deterministic given the Rng state).
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(nextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to give each object /
  /// trial / agent its own stream without correlating draws.
  [[nodiscard]] Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hbn::util
