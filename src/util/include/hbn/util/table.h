// Aligned text tables and CSV emission for experiment output.
//
// The benchmark harnesses print the same "rows" a paper table would hold;
// Table keeps that output readable on a terminal and optionally mirrors it
// to CSV for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hbn::util {

/// Column-aligned text table with a header row.
///
/// Usage:
///   Table t({"topology", "n", "C/LB"});
///   t.addRow({"kary", "255", "1.42"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; its size must match the header width.
  void addRow(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columnCount() const noexcept {
    return header_.size();
  }

  /// Renders an aligned, boxed-light table.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void printCsv(std::ostream& os) const;

  /// Convenience: renders to a string via print().
  [[nodiscard]] std::string toString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hbn::util
