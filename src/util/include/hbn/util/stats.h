// Small descriptive-statistics helpers used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hbn/util/rng.h"

namespace hbn::util {

/// Linear-interpolated percentile of an ascending-sorted sample,
/// q in [0, 100] (clamped): rank = q/100 · (n−1), lerp between the two
/// bracketing order statistics. The single percentile definition of the
/// library — Accumulator (BenchReporter's wall-clock summaries) and
/// ReservoirSampler (the serve-layer latency sampler) both delegate
/// here, so every reported p50/p99/p999 means the same thing.
/// Throws std::logic_error on an empty sample.
[[nodiscard]] double percentileSorted(std::span<const double> sorted,
                                      double q);

/// Accumulates a stream of doubles and exposes summary statistics.
/// Designed for experiment loops: push every trial's measurement, then
/// report mean / percentiles in the result table.
class Accumulator {
 public:
  void add(double value);
  void clear() noexcept { values_.clear(); }

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
  [[nodiscard]] double stddev() const;
  /// Linear-interpolated percentile, q in [0, 100].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;  // lazily maintained cache
  mutable bool sortedValid_ = false;
};

/// Fixed-capacity uniform sample of an unbounded stream (Vitter's
/// algorithm R): every value ever add()ed has probability
/// capacity/seen of being in the reservoir, so percentiles over the
/// reservoir estimate the stream's percentiles without storing it.
/// Deterministic given the seed and the add() sequence. Used by the
/// epoch server to keep request-latency p50/p99/p999 over
/// millions-of-requests runs in O(capacity) memory.
class ReservoirSampler {
 public:
  /// `capacity` = 0 disables sampling (add() becomes a counter only).
  explicit ReservoirSampler(std::size_t capacity,
                            std::uint64_t seed = 0x1a7e9c55ULL);

  void add(double value);

  /// Total values offered, including those not retained.
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::span<const double> samples() const noexcept {
    return samples_;
  }

  /// percentileSorted over the current reservoir, q in [0, 100].
  /// Throws std::logic_error when empty.
  [[nodiscard]] double percentile(double q) const;

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::vector<double> samples_;
  Rng rng_;
  mutable std::vector<double> sorted_;  // lazily maintained cache
  mutable bool sortedValid_ = false;
};

/// Pearson correlation coefficient of two equally sized series.
/// Returns 0 when either series has zero variance or sizes mismatch.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Least-squares slope of ys against xs (0 when degenerate). Used by the
/// runtime-scaling benchmarks to report empirical growth rates.
[[nodiscard]] double linearSlope(std::span<const double> xs,
                                 std::span<const double> ys);

/// Formats `value` with `digits` significant fraction digits.
[[nodiscard]] std::string formatDouble(double value, int digits = 3);

}  // namespace hbn::util
