// Small descriptive-statistics helpers used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hbn::util {

/// Accumulates a stream of doubles and exposes summary statistics.
/// Designed for experiment loops: push every trial's measurement, then
/// report mean / percentiles in the result table.
class Accumulator {
 public:
  void add(double value);
  void clear() noexcept { values_.clear(); }

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
  [[nodiscard]] double stddev() const;
  /// Linear-interpolated percentile, q in [0, 100].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;  // lazily maintained cache
  mutable bool sortedValid_ = false;
};

/// Pearson correlation coefficient of two equally sized series.
/// Returns 0 when either series has zero variance or sizes mismatch.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Least-squares slope of ys against xs (0 when degenerate). Used by the
/// runtime-scaling benchmarks to report empirical growth rates.
[[nodiscard]] double linearSlope(std::span<const double> xs,
                                 std::span<const double> ys);

/// Formats `value` with `digits` significant fraction digits.
[[nodiscard]] std::string formatDouble(double value, int digits = 3);

}  // namespace hbn::util
