// Wall-clock scoped timing for the runtime-scaling experiments.
#pragma once

#include <chrono>

namespace hbn::util {

/// Monotonic stopwatch; started on construction.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last reset.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hbn::util
