#include "hbn/util/alias.h"

#include <limits>
#include <stdexcept>

namespace hbn::util {

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) {
    throw std::invalid_argument("AliasTable: empty weight vector");
  }
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("AliasTable: too many weights");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0)) {  // negative or NaN
      throw std::invalid_argument("AliasTable: weights must be >= 0");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("AliasTable: weight sum must be positive");
  }

  // Vose's stable partition: buckets scaled so the mean lands at 1; each
  // underfull bucket is topped up by exactly one overfull donor, which
  // becomes its alias.
  accept_.assign(n, 1.0);
  alias_.resize(n);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    alias_[i] = static_cast<std::uint32_t>(i);
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    accept_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Numerical leftovers on either stack saturate to probability 1.
  for (const std::uint32_t i : small) accept_[i] = 1.0;
  for (const std::uint32_t i : large) accept_[i] = 1.0;
}

}  // namespace hbn::util
