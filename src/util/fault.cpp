#include "hbn/util/fault.h"

#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hbn::util {
namespace {

[[noreturn]] void specFail(std::string_view text, const std::string& why) {
  throw std::invalid_argument("fault spec '" + std::string(text) + "': " +
                              why);
}

std::uint64_t parseUint(std::string_view text, std::string_view spec,
                        const char* what) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) {
    specFail(spec, std::string(what) + " expects an unsigned integer, got '" +
                       std::string(text) + "'");
  }
  return value;
}

double parseMs(std::string_view text, std::string_view spec) {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || !std::isfinite(value) ||
      value < 0.0) {
    specFail(spec, "ms= expects a non-negative number, got '" +
                       std::string(text) + "'");
  }
  return value;
}

}  // namespace

const char* faultKindName(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::IngestStall: return "ingest-stall";
    case FaultKind::ShardThrow: return "shard-throw";
    case FaultKind::HandoffFail: return "handoff-fail";
  }
  return "unknown";
}

FaultSpec parseFaultSpec(std::string_view text) {
  FaultSpec spec;
  const std::size_t at = text.find('@');
  if (at == std::string_view::npos) {
    specFail(text, "expected kind@epochN (e.g. shard-throw@epoch5)");
  }
  const std::string_view kind = text.substr(0, at);
  if (kind == "ingest-stall") {
    spec.kind = FaultKind::IngestStall;
  } else if (kind == "shard-throw") {
    spec.kind = FaultKind::ShardThrow;
  } else if (kind == "handoff-fail") {
    spec.kind = FaultKind::HandoffFail;
  } else {
    specFail(text, "unknown kind '" + std::string(kind) +
                       "'; available: ingest-stall shard-throw handoff-fail");
  }

  std::string_view rest = text.substr(at + 1);
  bool epochSeen = false;
  while (!rest.empty()) {
    std::size_t colon = rest.find(':');
    if (colon == std::string_view::npos) colon = rest.size();
    const std::string_view part = rest.substr(0, colon);
    rest = colon < rest.size() ? rest.substr(colon + 1) : std::string_view{};
    if (part.rfind("epoch", 0) == 0) {
      spec.epoch = parseUint(part.substr(5), text, "epoch");
      epochSeen = true;
    } else if (part.rfind("shard", 0) == 0 && part.find('=') ==
                                                  std::string_view::npos) {
      if (spec.kind != FaultKind::ShardThrow) {
        specFail(text, "shard only applies to shard-throw");
      }
      spec.shard = static_cast<int>(parseUint(part.substr(5), text, "shard"));
    } else if (part.rfind("ms=", 0) == 0) {
      if (spec.kind != FaultKind::IngestStall) {
        specFail(text, "ms= only applies to ingest-stall");
      }
      spec.stallMs = parseMs(part.substr(3), text);
    } else if (part.rfind("times=", 0) == 0) {
      const std::uint64_t times = parseUint(part.substr(6), text, "times=");
      if (times < 1 || times > 1'000'000) {
        specFail(text, "times= out of range [1, 1000000]");
      }
      spec.times = static_cast<int>(times);
    } else {
      specFail(text, "unknown part '" + std::string(part) +
                         "'; expected epochN, shardM, ms=T, or times=K");
    }
  }
  if (!epochSeen) {
    specFail(text, "missing epochN trigger (e.g. " + std::string(kind) +
                       "@epoch3)");
  }
  return spec;
}

void FaultInjector::add(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_.push_back(spec);
  refreshArmedMask();
}

void FaultInjector::addSpecs(std::string_view specs) {
  std::size_t pos = 0;
  while (pos <= specs.size()) {
    std::size_t comma = specs.find(',', pos);
    if (comma == std::string_view::npos) comma = specs.size();
    const std::string_view item = specs.substr(pos, comma - pos);
    if (!item.empty()) add(parseFaultSpec(item));
    pos = comma + 1;
  }
}

bool FaultInjector::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return specs_.empty();
}

double FaultInjector::stallMs(std::uint64_t epoch) {
  if (!armedFast(FaultKind::IngestStall)) return 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (FaultSpec& spec : specs_) {
    if (spec.kind == FaultKind::IngestStall && spec.times > 0 &&
        spec.epoch == epoch) {
      --spec.times;
      ++triggered_;
      refreshArmedMask();
      return spec.stallMs;
    }
  }
  return 0.0;
}

bool FaultInjector::fire(FaultKind kind, std::uint64_t epoch, int shard) {
  if (!armedFast(kind)) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  for (FaultSpec& spec : specs_) {
    if (spec.kind != kind || spec.times <= 0 || spec.epoch != epoch) {
      continue;
    }
    if (spec.shard >= 0 && spec.shard != shard) continue;
    --spec.times;
    ++triggered_;
    refreshArmedMask();
    return true;
  }
  return false;
}

std::uint64_t FaultInjector::triggered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return triggered_;
}

std::string FaultInjector::describe() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream oss;
  bool first = true;
  for (const FaultSpec& spec : specs_) {
    if (spec.times <= 0) continue;
    if (!first) oss << ',';
    first = false;
    oss << faultKindName(spec.kind) << "@epoch" << spec.epoch;
    if (spec.shard >= 0) oss << ":shard" << spec.shard;
    if (spec.kind == FaultKind::IngestStall) oss << ":ms=" << spec.stallMs;
    if (spec.times != 1) oss << ":times=" << spec.times;
  }
  return oss.str();
}

void FaultInjector::refreshArmedMask() {
  unsigned mask = 0;
  for (const FaultSpec& spec : specs_) {
    if (spec.times > 0) mask |= 1u << static_cast<unsigned>(spec.kind);
  }
  armedKinds_.store(mask, std::memory_order_relaxed);
}

std::shared_ptr<FaultInjector> makeFaultInjector(std::string_view specs) {
  if (specs.empty()) return nullptr;
  auto injector = std::make_shared<FaultInjector>();
  injector->addSpecs(specs);
  if (injector->empty()) return nullptr;
  return injector;
}

}  // namespace hbn::util
