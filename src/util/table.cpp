#include "hbn/util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hbn::util {
namespace {

std::string csvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table requires at least one column");
  }
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emitRow = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto emitRule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  emitRule();
  emitRow(header_);
  emitRule();
  for (const auto& row : rows_) emitRow(row);
  emitRule();
}

void Table::printCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csvEscape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::toString() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace hbn::util
