#include "hbn/util/rng.h"

#include <cmath>

namespace hbn::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
  // xoshiro must not be seeded with the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::nextBelow(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded draw with rejection.
  if (bound == 0) return 0;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::nextInRange(std::int64_t lo, std::int64_t hi) noexcept {
  const auto width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(nextBelow(width));
}

double Rng::nextDouble() noexcept {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return nextDouble() < p;
}

std::size_t Rng::nextWeighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  if (!(total > 0.0)) return 0;
  double r = nextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept {
  return Rng((*this)() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace hbn::util
