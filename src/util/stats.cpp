#include "hbn/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hbn::util {

void Accumulator::add(double value) {
  values_.push_back(value);
  sortedValid_ = false;
}

double Accumulator::min() const {
  if (values_.empty()) throw std::logic_error("Accumulator::min on empty");
  return *std::min_element(values_.begin(), values_.end());
}

double Accumulator::max() const {
  if (values_.empty()) throw std::logic_error("Accumulator::max on empty");
  return *std::max_element(values_.begin(), values_.end());
}

double Accumulator::sum() const {
  double total = 0.0;
  for (double v : values_) total += v;
  return total;
}

double Accumulator::mean() const {
  if (values_.empty()) throw std::logic_error("Accumulator::mean on empty");
  return sum() / static_cast<double>(values_.size());
}

double Accumulator::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Accumulator::percentile(double q) const {
  if (values_.empty()) {
    throw std::logic_error("Accumulator::percentile on empty");
  }
  if (!sortedValid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
  }
  return percentileSorted(sorted_, q);
}

double percentileSorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    throw std::logic_error("percentileSorted on empty sample");
  }
  q = std::clamp(q, 0.0, 100.0);
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

ReservoirSampler::ReservoirSampler(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  samples_.reserve(capacity_);
}

void ReservoirSampler::add(double value) {
  ++seen_;
  if (capacity_ == 0) return;
  if (samples_.size() < capacity_) {
    samples_.push_back(value);
    sortedValid_ = false;
    return;
  }
  // Algorithm R: the new value replaces a uniformly random reservoir
  // slot with probability capacity/seen.
  const std::uint64_t j = rng_.nextBelow(seen_);
  if (j < capacity_) {
    samples_[static_cast<std::size_t>(j)] = value;
    sortedValid_ = false;
  }
}

double ReservoirSampler::percentile(double q) const {
  if (samples_.empty()) {
    throw std::logic_error("ReservoirSampler::percentile on empty");
  }
  if (!sortedValid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
  }
  return percentileSorted(sorted_, q);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double linearSlope(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxy = 0, sxx = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxy += xs[i] * ys[i];
    sxx += xs[i] * xs[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

std::string formatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace hbn::util
