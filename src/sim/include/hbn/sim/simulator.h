// Time-stepped store-and-forward simulator for hierarchical bus networks.
//
// Purpose (experiment E7): the paper argues — citing the routing
// literature and the experimental study [8] — that congestion is the
// quantity that determines achievable network throughput. The simulator
// delivers the exact message set a placement induces and measures the
// makespan (steps until every message arrives); by construction
//
//     makespan >= ceil(congestion)        (a bandwidth argument)
//     makespan >= dilation                (messages advance one hop/step)
//
// and a good schedule keeps makespan within a small factor of
// congestion + dilation. Comparing strategies at fixed workloads shows
// congestion ordering predicting makespan ordering.
//
// Mechanics:
//   * every request becomes unit-size transmission tasks: a read/write is
//     a chain of hops origin → serving copy; every write additionally
//     triggers a broadcast over the Steiner tree of the object's copy set
//     (one task per Steiner edge, firing once the update reached the
//     reference copy, cascading outward),
//   * per step an edge e can fire floor(b(e)) tasks, and every task
//     crossing an edge consumes 1/2 unit of capacity at each endpoint bus
//     (cap b(B) per step) — mirroring the paper's load accounting where a
//     bus message touches two incident edges,
//   * ready tasks queue FIFO per edge; longest-queue-first edge order.
#pragma once

#include <cstdint>
#include <vector>

#include "hbn/core/placement.h"
#include "hbn/net/rooted.h"
#include "hbn/workload/workload.h"

namespace hbn::sim {

using Count = std::int64_t;

/// Simulation knobs.
struct SimOptions {
  /// Abort threshold (guards against schedule bugs; generous by default).
  std::int64_t maxSteps = 10'000'000;
};

/// Simulation outcome plus the analytic quantities it is compared to.
struct SimResult {
  std::int64_t makespan = 0;   ///< steps until all tasks delivered
  Count totalTasks = 0;        ///< unit transmissions scheduled
  double congestion = 0.0;     ///< analytic congestion of the message set
  int dilation = 0;            ///< longest chain of dependent tasks
  /// Per-edge utilisation: tasks carried / (makespan · bandwidth); the
  /// bottleneck edge of a congestion-limited schedule runs near 1.0.
  std::vector<double> edgeUtilization;
  /// Max over edgeUtilization (0 when no tasks ran).
  double maxUtilization = 0.0;
};

/// A DAG of unit edge-transmissions with precedence.
class TaskGraph {
 public:
  explicit TaskGraph(const net::RootedTree& rooted);

  /// `count` parallel chains of hops from `from` to `to` (no-op if equal).
  void addUnicast(net::NodeId from, net::NodeId to, Count count);

  /// `count` broadcast waves over the Steiner tree of `terminals`, rooted
  /// at `root` (which must be a terminal); each wave fires one task per
  /// Steiner edge, cascading away from the root. `afterUnicastFrom`, when
  /// valid, chains each wave behind a fresh unicast from that node to
  /// `root` (modelling write → update → broadcast).
  void addWriteBroadcast(net::NodeId root,
                         std::span<const net::NodeId> terminals, Count count,
                         net::NodeId afterUnicastFrom = net::kInvalidNode);

  /// Expands the full message set of `placement` under `load`:
  /// reads/writes as unicasts to the serving copy, plus per-write
  /// broadcasts over each object's copy locations.
  void addPlacementTraffic(const workload::Workload& load,
                           const core::Placement& placement);

  [[nodiscard]] Count taskCount() const noexcept {
    return static_cast<Count>(tasks_.size());
  }

  /// Analytic congestion of this task multiset (loads per edge / bus).
  [[nodiscard]] double congestion() const;

  /// Longest dependency chain.
  [[nodiscard]] int dilation() const;

 private:
  friend SimResult runSimulation(const TaskGraph&, const SimOptions&);

  struct Task {
    net::EdgeId edge = net::kInvalidEdge;
    std::int32_t dependency = -1;  ///< task index that must finish first
  };

  const net::RootedTree* rooted_;
  std::vector<Task> tasks_;
};

/// Runs the schedule; throws std::runtime_error if maxSteps is exceeded.
[[nodiscard]] SimResult runSimulation(const TaskGraph& graph,
                                      const SimOptions& options = {});

/// Convenience: expand + run for a placement.
[[nodiscard]] SimResult simulatePlacement(const net::RootedTree& rooted,
                                          const workload::Workload& load,
                                          const core::Placement& placement,
                                          const SimOptions& options = {});

}  // namespace hbn::sim
