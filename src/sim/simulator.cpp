#include "hbn/sim/simulator.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "hbn/net/steiner.h"

namespace hbn::sim {

TaskGraph::TaskGraph(const net::RootedTree& rooted) : rooted_(&rooted) {}

void TaskGraph::addUnicast(net::NodeId from, net::NodeId to, Count count) {
  if (count < 0) throw std::invalid_argument("addUnicast: negative count");
  if (from == to || count == 0) return;
  std::vector<net::EdgeId> path;
  rooted_->forEachPathEdge(from, to, [&](net::EdgeId e) {
    path.push_back(e);
  });
  for (Count i = 0; i < count; ++i) {
    std::int32_t prev = -1;
    for (const net::EdgeId e : path) {
      tasks_.push_back(Task{e, prev});
      prev = static_cast<std::int32_t>(tasks_.size() - 1);
    }
  }
}

void TaskGraph::addWriteBroadcast(net::NodeId root,
                                  std::span<const net::NodeId> terminals,
                                  Count count,
                                  net::NodeId afterUnicastFrom) {
  if (count < 0) {
    throw std::invalid_argument("addWriteBroadcast: negative count");
  }
  if (count == 0) return;
  const auto steiner = net::steinerEdges(*rooted_, terminals);

  // Orient the Steiner edges away from `root`: an edge's predecessor is
  // the adjacent Steiner edge one hop closer to the root. Build a map from
  // "closer endpoint" to task index per wave.
  // Closer endpoint of edge e = the endpoint nearer to root.
  struct Oriented {
    net::EdgeId edge;
    net::NodeId nearEnd;   // endpoint closer to the broadcast root
    net::NodeId farEnd;
  };
  std::vector<Oriented> oriented;
  oriented.reserve(steiner.size());
  for (const net::EdgeId e : steiner) {
    const net::Edge& ed = rooted_->tree().edge(e);
    const int du = rooted_->distance(root, ed.u);
    const int dv = rooted_->distance(root, ed.v);
    oriented.push_back(du < dv ? Oriented{e, ed.u, ed.v}
                               : Oriented{e, ed.v, ed.u});
  }
  // Cascade order: nearer edges first.
  std::stable_sort(oriented.begin(), oriented.end(),
                   [&](const Oriented& a, const Oriented& b) {
                     return rooted_->distance(root, a.nearEnd) <
                            rooted_->distance(root, b.nearEnd);
                   });

  std::vector<net::EdgeId> unicastPath;
  if (afterUnicastFrom != net::kInvalidNode && afterUnicastFrom != root) {
    rooted_->forEachPathEdge(afterUnicastFrom, root, [&](net::EdgeId e) {
      unicastPath.push_back(e);
    });
  }

  std::vector<std::int32_t> taskAtNode(
      static_cast<std::size_t>(rooted_->tree().nodeCount()));
  for (Count i = 0; i < count; ++i) {
    // Update unicast to the reference copy first (if requested).
    std::int32_t prev = -1;
    for (const net::EdgeId e : unicastPath) {
      tasks_.push_back(Task{e, prev});
      prev = static_cast<std::int32_t>(tasks_.size() - 1);
    }
    std::fill(taskAtNode.begin(), taskAtNode.end(), -1);
    taskAtNode[static_cast<std::size_t>(root)] = prev;
    for (const Oriented& o : oriented) {
      const std::int32_t dep =
          taskAtNode[static_cast<std::size_t>(o.nearEnd)];
      tasks_.push_back(Task{o.edge, dep});
      taskAtNode[static_cast<std::size_t>(o.farEnd)] =
          static_cast<std::int32_t>(tasks_.size() - 1);
    }
  }
}

void TaskGraph::addPlacementTraffic(const workload::Workload& load,
                                    const core::Placement& placement) {
  if (placement.numObjects() != load.numObjects()) {
    throw std::invalid_argument("addPlacementTraffic: object count mismatch");
  }
  for (const core::ObjectPlacement& object : placement.objects) {
    const auto locations = object.locations();
    for (const core::Copy& copy : object.copies) {
      for (const core::RequestShare& share : copy.served) {
        addUnicast(share.origin, copy.location, share.reads);
        if (share.writes > 0) {
          if (locations.size() >= 2) {
            addWriteBroadcast(copy.location, locations, share.writes,
                              share.origin);
          } else {
            addUnicast(share.origin, copy.location, share.writes);
          }
        }
      }
    }
  }
}

double TaskGraph::congestion() const {
  const net::Tree& tree = rooted_->tree();
  std::vector<Count> edgeLoad(static_cast<std::size_t>(tree.edgeCount()), 0);
  for (const Task& t : tasks_) {
    ++edgeLoad[static_cast<std::size_t>(t.edge)];
  }
  double best = 0.0;
  for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
    best = std::max(best, static_cast<double>(
                              edgeLoad[static_cast<std::size_t>(e)]) /
                              tree.edgeBandwidth(e));
  }
  for (const net::NodeId b : tree.buses()) {
    Count sum = 0;
    for (const net::HalfEdge& he : tree.neighbors(b)) {
      sum += edgeLoad[static_cast<std::size_t>(he.edge)];
    }
    best = std::max(best, static_cast<double>(sum) / 2.0 /
                              tree.busBandwidth(b));
  }
  return best;
}

int TaskGraph::dilation() const {
  std::vector<int> depth(tasks_.size(), 1);
  int best = tasks_.empty() ? 0 : 1;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].dependency >= 0) {
      depth[i] = depth[static_cast<std::size_t>(tasks_[i].dependency)] + 1;
    }
    best = std::max(best, depth[i]);
  }
  return best;
}

SimResult runSimulation(const TaskGraph& graph, const SimOptions& options) {
  const net::Tree& tree = graph.rooted_->tree();
  const auto& tasks = graph.tasks_;

  SimResult result;
  result.totalTasks = static_cast<Count>(tasks.size());
  result.congestion = graph.congestion();
  result.dilation = graph.dilation();
  if (tasks.empty()) return result;

  // Dependents adjacency.
  std::vector<std::int32_t> dependentHead(tasks.size(), -1);
  std::vector<std::int32_t> dependentNext(tasks.size(), -1);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const std::int32_t dep = tasks[i].dependency;
    if (dep >= 0) {
      dependentNext[i] = dependentHead[static_cast<std::size_t>(dep)];
      dependentHead[static_cast<std::size_t>(dep)] =
          static_cast<std::int32_t>(i);
    }
  }

  // FIFO ready queues per edge (head index into a vector).
  const auto numEdges = static_cast<std::size_t>(tree.edgeCount());
  std::vector<std::vector<std::int32_t>> queue(numEdges);
  std::vector<std::size_t> queueHead(numEdges, 0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].dependency < 0) {
      queue[static_cast<std::size_t>(tasks[i].edge)].push_back(
          static_cast<std::int32_t>(i));
    }
  }

  const auto numNodes = static_cast<std::size_t>(tree.nodeCount());
  std::vector<double> busCapacity(numNodes, 0.0);
  std::vector<Count> edgeCapacity(numEdges, 0);
  std::vector<net::EdgeId> edgeOrder(numEdges);
  std::iota(edgeOrder.begin(), edgeOrder.end(), 0);
  std::vector<std::int32_t> finishedThisStep;

  Count remaining = static_cast<Count>(tasks.size());
  std::int64_t step = 0;
  while (remaining > 0) {
    ++step;
    if (step > options.maxSteps) {
      throw std::runtime_error("runSimulation: maxSteps exceeded");
    }
    // Reset per-step capacities.
    for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
      busCapacity[static_cast<std::size_t>(v)] =
          tree.isBus(v) ? tree.busBandwidth(v) : 1e18;
    }
    for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
      edgeCapacity[static_cast<std::size_t>(e)] =
          static_cast<Count>(tree.edgeBandwidth(e));
    }
    // Longest backlog first.
    std::stable_sort(edgeOrder.begin(), edgeOrder.end(),
                     [&](net::EdgeId a, net::EdgeId b) {
                       return queue[static_cast<std::size_t>(a)].size() -
                                  queueHead[static_cast<std::size_t>(a)] >
                              queue[static_cast<std::size_t>(b)].size() -
                                  queueHead[static_cast<std::size_t>(b)];
                     });
    finishedThisStep.clear();
    for (const net::EdgeId e : edgeOrder) {
      auto& q = queue[static_cast<std::size_t>(e)];
      auto& head = queueHead[static_cast<std::size_t>(e)];
      const net::Edge& ed = tree.edge(e);
      double& capU = busCapacity[static_cast<std::size_t>(ed.u)];
      double& capV = busCapacity[static_cast<std::size_t>(ed.v)];
      while (head < q.size() &&
             edgeCapacity[static_cast<std::size_t>(e)] > 0 &&
             capU >= 0.5 && capV >= 0.5) {
        const std::int32_t task = q[head++];
        --edgeCapacity[static_cast<std::size_t>(e)];
        capU -= 0.5;
        capV -= 0.5;
        finishedThisStep.push_back(task);
      }
    }
    if (finishedThisStep.empty()) {
      throw std::runtime_error("runSimulation: schedule stalled");
    }
    remaining -= static_cast<Count>(finishedThisStep.size());
    // Successors become ready next step.
    for (const std::int32_t task : finishedThisStep) {
      for (std::int32_t d = dependentHead[static_cast<std::size_t>(task)];
           d >= 0; d = dependentNext[static_cast<std::size_t>(d)]) {
        queue[static_cast<std::size_t>(
                  tasks[static_cast<std::size_t>(d)].edge)]
            .push_back(d);
      }
    }
  }
  result.makespan = step;

  // Utilisation of each edge over the realised schedule.
  result.edgeUtilization.assign(numEdges, 0.0);
  if (step > 0) {
    std::vector<Count> carried(numEdges, 0);
    for (const TaskGraph::Task& t : tasks) {
      ++carried[static_cast<std::size_t>(t.edge)];
    }
    for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
      result.edgeUtilization[static_cast<std::size_t>(e)] =
          static_cast<double>(carried[static_cast<std::size_t>(e)]) /
          (static_cast<double>(step) * tree.edgeBandwidth(e));
      result.maxUtilization = std::max(
          result.maxUtilization,
          result.edgeUtilization[static_cast<std::size_t>(e)]);
    }
  }
  return result;
}

SimResult simulatePlacement(const net::RootedTree& rooted,
                            const workload::Workload& load,
                            const core::Placement& placement,
                            const SimOptions& options) {
  TaskGraph graph(rooted);
  graph.addPlacementTraffic(load, placement);
  return runSimulation(graph, options);
}

}  // namespace hbn::sim
