#include "hbn/nphard/partition.h"

#include <algorithm>
#include <stdexcept>

namespace hbn::nphard {

Weight PartitionInstance::total() const {
  Weight sum = 0;
  for (const Weight k : items) sum += k;
  return sum;
}

Weight PartitionInstance::half() const {
  const Weight sum = total();
  if (sum % 2 != 0) {
    throw std::invalid_argument("PartitionInstance: odd total has no half");
  }
  return sum / 2;
}

std::optional<std::vector<int>> solvePartition(
    const PartitionInstance& instance) {
  for (const Weight k : instance.items) {
    if (k <= 0) {
      throw std::invalid_argument("solvePartition: items must be positive");
    }
  }
  const Weight sum = instance.total();
  if (sum % 2 != 0) return std::nullopt;
  const Weight target = sum / 2;
  if (target == 0) return std::vector<int>{};  // empty instance

  // reach[s] = index of the last item used to first reach sum s (-1 = not
  // reachable, -2 = reachable with no items).
  std::vector<int> reach(static_cast<std::size_t>(target) + 1, -1);
  reach[0] = -2;
  for (int i = 0; i < static_cast<int>(instance.items.size()); ++i) {
    const Weight w = instance.items[static_cast<std::size_t>(i)];
    for (Weight s = target; s >= w; --s) {
      if (reach[static_cast<std::size_t>(s)] == -1 &&
          reach[static_cast<std::size_t>(s - w)] != -1 &&
          reach[static_cast<std::size_t>(s - w)] != i) {
        reach[static_cast<std::size_t>(s)] = i;
      }
    }
  }
  if (reach[static_cast<std::size_t>(target)] == -1) return std::nullopt;

  // Reconstruct the witness.
  std::vector<int> subset;
  Weight s = target;
  while (s > 0) {
    const int i = reach[static_cast<std::size_t>(s)];
    subset.push_back(i);
    s -= instance.items[static_cast<std::size_t>(i)];
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

PartitionInstance makeYesInstance(int numItems, Weight target,
                                  util::Rng& rng) {
  if (numItems < 2 || target < numItems / 2 + 1) {
    throw std::invalid_argument("makeYesInstance: parameters too small");
  }
  // Split items between the two halves, then draw random compositions of
  // `target` for each half (positive parts).
  auto compose = [&](int parts, Weight sum) {
    std::vector<Weight> result(static_cast<std::size_t>(parts), 1);
    Weight remaining = sum - parts;
    for (int i = 0; i < parts - 1 && remaining > 0; ++i) {
      const Weight give = static_cast<Weight>(
          rng.nextBelow(static_cast<std::uint64_t>(remaining) + 1));
      result[static_cast<std::size_t>(i)] += give;
      remaining -= give;
    }
    result.back() += remaining;
    return result;
  };
  const int left = numItems / 2;
  const int right = numItems - left;
  PartitionInstance instance;
  for (const Weight w : compose(left, target)) instance.items.push_back(w);
  for (const Weight w : compose(right, target)) instance.items.push_back(w);
  rng.shuffle(instance.items);
  return instance;
}

PartitionInstance makeNoInstance(int numItems, Weight maxItem,
                                 util::Rng& rng) {
  if (numItems < 1 || maxItem < 2) {
    throw std::invalid_argument("makeNoInstance: parameters too small");
  }
  for (int attempt = 0; attempt < 10000; ++attempt) {
    PartitionInstance instance;
    Weight sum = 0;
    for (int i = 0; i < numItems; ++i) {
      const Weight w = 1 + static_cast<Weight>(rng.nextBelow(
                               static_cast<std::uint64_t>(maxItem)));
      instance.items.push_back(w);
      sum += w;
    }
    if (sum % 2 != 0) {
      // Make the total even by bumping one item.
      instance.items.back() += 1;
      if (instance.items.back() > maxItem) instance.items.back() -= 2;
      if (instance.items.back() <= 0) continue;
    }
    if (!solvePartition(instance).has_value()) return instance;
  }
  throw std::runtime_error("makeNoInstance: rejection sampling failed");
}

}  // namespace hbn::nphard
