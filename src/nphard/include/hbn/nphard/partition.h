// PARTITION — the NP-complete source problem of the paper's reduction
// (Theorem 2.1, via Garey & Johnson).
//
// Input: integers k_1..k_n with Σ k_i = 2k. Question: is there a subset
// S with Σ_{i∈S} k_i = k?
//
// The pseudo-polynomial dynamic program below decides instances exactly
// (O(n·k) time/space), which lets the E2 experiment check the reduction's
// iff-statement on instances with known answers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hbn/util/rng.h"

namespace hbn::nphard {

using Weight = std::int64_t;

/// A PARTITION instance; total() must be even for a solution to exist.
struct PartitionInstance {
  std::vector<Weight> items;

  [[nodiscard]] Weight total() const;
  /// k = total()/2, the target subset sum (total must be even).
  [[nodiscard]] Weight half() const;
};

/// Decides PARTITION by subset-sum DP. Returns the witness subset
/// (indices, ascending) when a perfect partition exists, std::nullopt
/// otherwise. Items must be positive.
[[nodiscard]] std::optional<std::vector<int>> solvePartition(
    const PartitionInstance& instance);

/// Generates a YES-instance: draws a subset summing to `target` and fills
/// the complement with items that also sum to `target`.
[[nodiscard]] PartitionInstance makeYesInstance(int numItems, Weight target,
                                                util::Rng& rng);

/// Generates (by rejection) an instance with NO perfect partition and even
/// total. Throws after too many attempts (only plausible for tiny sizes).
[[nodiscard]] PartitionInstance makeNoInstance(int numItems, Weight maxItem,
                                               util::Rng& rng);

}  // namespace hbn::nphard
