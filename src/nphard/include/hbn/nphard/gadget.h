// The Theorem 2.1 reduction gadget (Figure 3).
//
// A PARTITION instance k_1..k_n with Σ k_i = 2k is encoded as a static
// placement problem on the 4-ary height-1 tree with processors a, b, s, s̄
// hanging off one bus:
//
//   h_w(a, y)   = 4k + 1,      h_w(b, y) = 2k,
//   h_w(v, x_i) = k_i          for every leaf v and every i,
//
// all edges have bandwidth 1, the bus bandwidth is large enough that edge
// loads dominate. The paper proves: a placement of congestion ≤ 4k exists
// iff the PARTITION instance is solvable.
#pragma once

#include "hbn/core/placement.h"
#include "hbn/net/tree.h"
#include "hbn/nphard/partition.h"
#include "hbn/workload/workload.h"

namespace hbn::nphard {

/// The encoded placement problem.
struct Gadget {
  net::Tree tree;            ///< star: bus 0, processors a=1, b=2, s=3, s̄=4
  workload::Workload load;   ///< objects x_1..x_n (ids 0..n-1) and y (id n)
  Weight k = 0;              ///< half of Σ k_i — the congestion threshold 4k

  /// Node ids in the paper's labelling.
  [[nodiscard]] net::NodeId a() const noexcept { return 1; }
  [[nodiscard]] net::NodeId b() const noexcept { return 2; }
  [[nodiscard]] net::NodeId s() const noexcept { return 3; }
  [[nodiscard]] net::NodeId sBar() const noexcept { return 4; }
  /// Object id of y (the x_i use ids 0..n-1).
  [[nodiscard]] workload::ObjectId yObject() const {
    return load.numObjects() - 1;
  }
  /// The decision threshold 4k.
  [[nodiscard]] Weight threshold() const noexcept { return 4 * k; }
};

/// Encodes `instance` (which must have an even, positive total) into the
/// gadget placement problem.
[[nodiscard]] Gadget encodePartition(const PartitionInstance& instance);

/// Builds the placement the sufficiency direction of the proof describes:
/// x_i on s for i ∈ subset, on s̄ otherwise, and y on a. The caller is
/// responsible for `subset` being a perfect partition if congestion 4k is
/// expected.
[[nodiscard]] core::Placement witnessPlacement(
    const Gadget& gadget, const std::vector<int>& subset);

/// Decodes a single-copy-per-object placement back into a subset
/// (indices of objects placed on s). Throws if the placement is redundant.
[[nodiscard]] std::vector<int> decodeSubset(const Gadget& gadget,
                                            const core::Placement& placement);

}  // namespace hbn::nphard
