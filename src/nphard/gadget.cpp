#include "hbn/nphard/gadget.h"

#include <stdexcept>

#include "hbn/net/generators.h"

namespace hbn::nphard {

Gadget encodePartition(const PartitionInstance& instance) {
  const auto n = static_cast<int>(instance.items.size());
  if (n == 0) throw std::invalid_argument("encodePartition: empty instance");
  const Weight k = instance.half();  // throws if total is odd
  if (k <= 0) throw std::invalid_argument("encodePartition: zero total");

  // Bus bandwidth "sufficiently large such that the load on the edges is
  // dominating": the total load over all edges is below 2 * (number of
  // requests) * 2 hops; half of that divided by 4k can never exceed the
  // edge congestion when the bus bandwidth is at least that ratio.
  const double busBandwidth = static_cast<double>(16 * k + 8);

  Gadget gadget{net::makeStar(4, busBandwidth),
                workload::Workload(n + 1, 5), k};

  // h_w(v, x_i) = k_i for all four leaves.
  for (int i = 0; i < n; ++i) {
    for (const net::NodeId v :
         {gadget.a(), gadget.b(), gadget.s(), gadget.sBar()}) {
      gadget.load.addWrites(i, v, instance.items[static_cast<std::size_t>(i)]);
    }
  }
  // h_w(a, y) = 4k+1, h_w(b, y) = 2k.
  gadget.load.addWrites(n, gadget.a(), 4 * k + 1);
  gadget.load.addWrites(n, gadget.b(), 2 * k);
  return gadget;
}

core::Placement witnessPlacement(const Gadget& gadget,
                                 const std::vector<int>& subset) {
  const int n = gadget.load.numObjects() - 1;
  std::vector<char> inSubset(static_cast<std::size_t>(n), 0);
  for (const int i : subset) {
    if (i < 0 || i >= n) {
      throw std::invalid_argument("witnessPlacement: index out of range");
    }
    inSubset[static_cast<std::size_t>(i)] = 1;
  }
  core::Placement placement;
  placement.objects.reserve(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i < n; ++i) {
    const net::NodeId where =
        inSubset[static_cast<std::size_t>(i)] ? gadget.s() : gadget.sBar();
    const net::NodeId locations[] = {where};
    placement.objects.push_back(
        core::makeNearestPlacement(gadget.tree, gadget.load, i, locations));
  }
  const net::NodeId yLoc[] = {gadget.a()};
  placement.objects.push_back(core::makeNearestPlacement(
      gadget.tree, gadget.load, gadget.yObject(), yLoc));
  return placement;
}

std::vector<int> decodeSubset(const Gadget& gadget,
                              const core::Placement& placement) {
  const int n = gadget.load.numObjects() - 1;
  std::vector<int> subset;
  for (int i = 0; i < n; ++i) {
    const auto locs =
        placement.objects[static_cast<std::size_t>(i)].locations();
    if (locs.size() != 1) {
      throw std::invalid_argument("decodeSubset: redundant placement");
    }
    if (locs[0] == gadget.s()) subset.push_back(i);
  }
  return subset;
}

}  // namespace hbn::nphard
