#include "hbn/serve/epoch_server.h"

#include <algorithm>
#include <span>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "hbn/core/lower_bound.h"
#include "hbn/core/parallel.h"
#include "hbn/dynamic/harness.h"
#include "hbn/serve/error.h"
#include "hbn/util/timer.h"
#include "hbn/workload/serialize.h"

namespace hbn::serve {
namespace {

double elapsedMs(EpochBatch::Clock::time_point from,
                 EpochBatch::Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

EpochServer::EpochServer(const net::RootedTree& rooted, int numObjects,
                         const ServeOptions& options)
    : rooted_(&rooted),
      numObjects_(numObjects),
      options_(options),
      policy_(dynamic::OnlinePolicyRegistry::global()
                  .create(options.policy)
                  ->build(rooted, numObjects,
                          rooted.tree().processors().front())),
      aggregated_(numObjects, rooted.tree().nodeCount()),
      lowerBound_(rooted),
      loads_(rooted.tree().edgeCount()),
      serveLoads_(rooted.tree().edgeCount()),
      schedule_(std::make_unique<MigrationSchedule>()),
      appliedVersion_(static_cast<std::size_t>(numObjects), 0),
      latency_(options.latencySample) {
  drift_.replaceDrift = options.replaceDrift;
  if (options.epochSize < 1) {
    throw std::invalid_argument("EpochServer: epochSize >= 1");
  }
  if (!options.checkpointDir.empty() && options.checkpointEvery < 1) {
    throw std::invalid_argument("EpochServer: checkpointEvery >= 1");
  }
  if (options.handoffRetries < 0) {
    throw std::invalid_argument("EpochServer: handoffRetries >= 0");
  }
}

ServeReport EpochServer::serve(RequestStream& stream) {
  const net::Tree& tree = rooted_->tree();
  const int edgeCount = tree.edgeCount();
  const int workers = core::resolveWorkerCount(options_.threads, numObjects_);

  // Stage 1: the (possibly threaded) ingest keeps the next epoch
  // validated and bucketed while this thread serves the current one.
  // Both modes run the same fill loop, so epoch boundaries are
  // identical and pipeline on/off runs are comparable request for
  // request.
  EpochIngest ingest(stream, tree, numObjects_, options_.epochSize,
                     options_.pipeline, options_.faults.get(),
                     logBase_ + log_.size());
  util::FaultInjector* const faults = options_.faults.get();

  std::vector<core::LoadMap> workerLoads;       // serve + update traffic
  std::vector<core::LoadMap> workerMigration;   // lazy handoff traffic
  workerLoads.reserve(static_cast<std::size_t>(workers));
  workerMigration.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workerLoads.emplace_back(edgeCount);
    workerMigration.emplace_back(edgeCount);
  }
  std::vector<dynamic::ShardStats> workerStats(
      static_cast<std::size_t>(workers));
  std::vector<dynamic::ServeScratch> workerScratch(
      static_cast<std::size_t>(workers));
  // One difference-counting accumulator per worker over the shared flat
  // view: serveShard batches each object's path charges through it and
  // flushes exact integer loads into the worker's LoadMap, so the merge
  // below is unchanged and bit-identical for any worker count.
  std::vector<core::FlatLoadAccumulator> workerAcc;
  workerAcc.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workerAcc.emplace_back(policy_->flatView());
  }

  ServeReport report;
  report.policy = options_.policy;
  report.pipeline = options_.pipeline;
  report.epochBufferBytes = ingest.bufferBytes();
  // Track the analytic lower bound incrementally: per epoch only the
  // touched objects' contributions are refreshed. Seeded with one full
  // pass so repeated serve() calls keep accumulating correctly.
  lowerBound_.rebuild(aggregated_);
  util::Accumulator epochMs;
  std::vector<double> epochLatency;
  util::Timer total;

  for (;;) {
    // The watchdogged acquire: past stallTimeoutMs the serve thread
    // assembles the epoch inline itself (degraded = true) instead of
    // hanging on a stalled ingest thread.
    const AcquireResult acquired = ingest.acquireFor(options_.stallTimeoutMs);
    EpochBatch* const batch = acquired.batch;
    if (batch == nullptr) break;
    util::Timer epochTimer;
    const std::size_t n = batch->n;
    const std::uint64_t epochIndex = logBase_ + log_.size();
    if (acquired.degraded) ++degradedEpochs_;

    // Stage 2: shard the epoch over the object range — whole objects
    // per worker, per-worker loads/stats/scratch, no shared mutable
    // state. A worker first applies any handoff passes its object has
    // not migrated through yet (stage 3's lazy application; exclusive
    // by striping, RCU-guarded against schedule republication), then
    // serves the shard against the up-to-date copy configuration — so
    // per-object state trajectories match barrier mode exactly.
    for (int w = 0; w < workers; ++w) {
      workerLoads[static_cast<std::size_t>(w)].clear();
      workerMigration[static_cast<std::size_t>(w)].clear();
      workerStats[static_cast<std::size_t>(w)] = {};
    }
    const std::uint64_t targetVersion = passesBegun_;
    core::parallelForObjects(
        numObjects_, options_.threads, [&](ObjectId x, int worker) {
          // Injected worker failure: thrown as a structured Serve error,
          // propagated deterministically by parallelForObjects (lowest
          // stripe wins) and through serve() — the kill the checkpoint
          // recovery tests restart from.
          if (faults != nullptr &&
              faults->fire(util::FaultKind::ShardThrow, epochIndex, worker)) {
            throw Error(Stage::Serve, epochIndex,
                        "injected shard failure (worker " +
                            std::to_string(worker) + ")");
          }
          const std::size_t begin = batch->offsets[static_cast<std::size_t>(x)];
          const std::size_t end =
              batch->offsets[static_cast<std::size_t>(x) + 1];
          // Untouched objects keep their stale copy sets — they receive
          // no traffic, so serving state cannot diverge from barrier
          // mode, and deferring them is exactly what keeps the handoff
          // lump out of the epochs (they migrate on a later touch or in
          // the end-of-stream drain).
          if (begin == end) return;
          const auto w = static_cast<std::size_t>(worker);
          if (appliedVersion_[static_cast<std::size_t>(x)] < targetVersion) {
            applyPendingMigrations(x, worker, targetVersion,
                                   workerMigration[w], workerAcc[w]);
          }
          const dynamic::ShardStats stats = policy_->serveShard(
              x, std::span<const RequestEvent>(batch->bucketed.data() + begin,
                                               end - begin),
              workerLoads[w], workerScratch[w], &workerAcc[w]);
          workerStats[w].replications += stats.replications;
          workerStats[w].invalidations += stats.invalidations;
        });

    // Deterministic merge: integer edge loads and counters sum the same
    // for any worker count. Serve traffic feeds both the total and the
    // serve-only map (the drift trigger's input); migration traffic
    // feeds the total only.
    for (int w = 0; w < workers; ++w) {
      const auto& served = workerLoads[static_cast<std::size_t>(w)];
      const auto& migrated = workerMigration[static_cast<std::size_t>(w)];
      for (net::EdgeId e = 0; e < edgeCount; ++e) {
        const core::Count serveLoad = served.edgeLoad(e);
        if (serveLoad != 0) {
          loads_.addEdgeLoad(e, serveLoad);
          serveLoads_.addEdgeLoad(e, serveLoad);
        }
        const core::Count migrationLoad = migrated.edgeLoad(e);
        if (migrationLoad != 0) loads_.addEdgeLoad(e, migrationLoad);
      }
      replications_ += workerStats[static_cast<std::size_t>(w)].replications;
      invalidations_ +=
          workerStats[static_cast<std::size_t>(w)].invalidations;
    }
    // Aggregate the epoch's frequencies AFTER serving it. The ordering
    // is what lets handoff passes read the live matrix with zero copy:
    // a pass applies to object x on x's first touch after the trigger,
    // and x's row only mutates when x is touched — so at application
    // time (before this epoch's aggregation) the row is bit-equal to
    // its trigger-time value. The lower bound after epoch k still sees
    // the traffic of epochs <= k, exactly as the barrier engine did.
    // Around the aggregation, refresh the incremental lower bound for
    // exactly the touched objects (remove against the old row, add
    // against the new one).
    for (ObjectId x = 0; x < numObjects_; ++x) {
      if (batch->offsets[static_cast<std::size_t>(x)] !=
          batch->offsets[static_cast<std::size_t>(x) + 1]) {
        lowerBound_.remove(x, aggregated_);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      const RequestEvent& ev = batch->raw[i];
      if (ev.isWrite) {
        aggregated_.addWrites(ev.object, ev.origin, 1);
      } else {
        aggregated_.addReads(ev.object, ev.origin, 1);
      }
    }
    for (ObjectId x = 0; x < numObjects_; ++x) {
      if (batch->offsets[static_cast<std::size_t>(x)] !=
          batch->offsets[static_cast<std::size_t>(x) + 1]) {
        lowerBound_.add(x, aggregated_);
      }
    }

    servedTotal_ += n;
    retireAppliedPasses();

    // Epoch bookkeeping and the adaptive re-placement trigger.
    EpochRecord record;
    record.index = epochIndex;
    record.requests = n;
    record.degraded = acquired.degraded;
    record.lowerBound = lowerBound_.congestion();
    record.congestion = loads_.congestion(tree);
    // Drift is measured since the last re-placement (see
    // hbn/serve/drift.h for the shared trigger arithmetic). Migration
    // traffic is excluded from the trigger so that lazy (pipelined) and
    // immediate (barrier) migration timing cannot skew when the next
    // pass fires.
    const double serveCongestion = serveLoads_.congestion(tree);
    const bool driftFired = drift_.fired(serveCongestion, record.lowerBound);
    // A pass also begins when the policy itself asks for one
    // (wantsHandoff — e.g. adaptive committing per-object routing
    // switches), independent of the drift knob.
    if (policy_->migratable() && (driftFired || policy_->wantsHandoff())) {
      beginPass(workers, epochIndex);
      ++replacements_;
      record.replaced = true;
      if (!options_.pipeline) {
        // Barrier mode: stop the world and migrate every object inside
        // the drift epoch, like the pre-pipeline engine.
        drainAllPasses(workerMigration, workerAcc, workers);
        retireAppliedPasses();
        record.congestion = loads_.congestion(tree);  // migration included
      }
      drift_.reset(serveCongestion, record.lowerBound);
    }
    // Epoch-boundary checkpoint. Draining the pending passes first
    // keeps the snapshot quiescent (no pass state to serialize) and is
    // bit-neutral: a pass applies early here exactly what lazy
    // application would have charged on each object's next touch (the
    // row-stability contract), and serveLoads_ — the drift trigger's
    // input — never carries migration traffic, so the trigger schedule
    // is unchanged too.
    if (!options_.checkpointDir.empty() &&
        (epochIndex + 1) % options_.checkpointEvery == 0) {
      drainAllPasses(workerMigration, workerAcc, workers);
      retireAppliedPasses();
      record.congestion = loads_.congestion(tree);  // migration included
      try {
        writeCheckpointFile(snapshotStateAt(epochIndex + 1),
                            options_.checkpointDir);
      } catch (const Error&) {
        throw;
      } catch (const std::exception& e) {
        throw Error(Stage::Checkpoint, epochIndex, e.what());
      }
      ++checkpointsWritten_;
      record.checkpointed = true;
    }
    record.ratio =
        dynamic::competitiveRatio(record.congestion, record.lowerBound);
    record.wallMs = epochTimer.millis();

    // Stage-3 product metric: request latency = epoch completion minus
    // chunk arrival, sampled per fill chunk and fed to the run-level
    // reservoir. Wall-clock only — excluded from determinism digests.
    if (options_.latencySample > 0 && !batch->arrivals.empty()) {
      const auto done = EpochBatch::Clock::now();
      epochLatency.clear();
      for (const auto& [stamp, count] : batch->arrivals) {
        epochLatency.push_back(elapsedMs(stamp, done));
        (void)count;
      }
      std::sort(epochLatency.begin(), epochLatency.end());
      record.latencyMsP50 = util::percentileSorted(epochLatency, 50.0);
      record.latencyMsP99 = util::percentileSorted(epochLatency, 99.0);
      record.latencyMsP999 = util::percentileSorted(epochLatency, 99.9);
      for (const double sample : epochLatency) latency_.add(sample);
    }

    epochMs.add(record.wallMs);
    log_.push_back(record);
    ++report.epochs;
    report.totalRequests += n;
    ingest.release(batch);
  }

  // End-of-stream drain: apply every still-pending pass so copy sets,
  // loads and counters observed after serve() match barrier mode. The
  // drain is outside any epoch, so it never shows up in epoch or
  // latency percentiles — in a live system it is exactly the work that
  // keeps happening in the background after the last request.
  drainAllPasses(workerMigration, workerAcc, workers);
  retireAppliedPasses();

  // Final checkpoint: a restart resumes from exactly end-of-run state
  // even when the last epoch missed the cadence (skipped when the last
  // epoch already checkpointed this boundary).
  if (!options_.checkpointDir.empty() &&
      (log_.empty() || !log_.back().checkpointed)) {
    const std::uint64_t epochs = logBase_ + log_.size();
    try {
      writeCheckpointFile(snapshotStateAt(epochs), options_.checkpointDir);
    } catch (const Error&) {
      throw;
    } catch (const std::exception& e) {
      throw Error(Stage::Checkpoint, epochs == 0 ? 0 : epochs - 1, e.what());
    }
    ++checkpointsWritten_;
    if (!log_.empty()) log_.back().checkpointed = true;
  }

  report.wallMs = total.millis();
  report.requestsPerSec =
      report.wallMs > 0.0
          ? static_cast<double>(report.totalRequests) / report.wallMs * 1e3
          : 0.0;
  report.epochMsP50 = epochMs.empty() ? 0.0 : epochMs.percentile(50.0);
  report.epochMsP99 = epochMs.empty() ? 0.0 : epochMs.percentile(99.0);
  report.epochMsP999 = epochMs.empty() ? 0.0 : epochMs.percentile(99.9);
  report.latencyMsP50 = latency_.empty() ? 0.0 : latency_.percentile(50.0);
  report.latencyMsP99 = latency_.empty() ? 0.0 : latency_.percentile(99.0);
  report.latencyMsP999 = latency_.empty() ? 0.0 : latency_.percentile(99.9);
  report.latencySamples = latency_.seen();
  report.congestion = loads_.congestion(tree);
  report.lowerBound = lowerBound_.congestion();
  report.ratio =
      dynamic::competitiveRatio(report.congestion, report.lowerBound);
  report.replacements = replacements_;
  report.replications = replications_;
  report.invalidations = invalidations_;
  report.degradedEpochs = degradedEpochs_;
  report.handoffRetries = handoffRetriesUsed_;
  report.checkpoints = checkpointsWritten_;
  report.policyMetrics = policy_->metrics();
  return report;
}

void EpochServer::beginPass(int workers, std::uint64_t epoch) {
  // Hand the policy the live aggregated matrix without copying it: a
  // lazy target for object x is only ever queried on x's first touch
  // after this trigger, and because epochs aggregate after they serve,
  // x's row is still bit-equal to its trigger-time value at that
  // moment. Row-local passes (nibble) therefore need no snapshot at
  // all; a policy whose pass reads other rows at target() time must
  // copy inside beginHandoff (see the HandoffPass contract).
  const std::shared_ptr<const workload::Workload> snapshot(
      std::shared_ptr<const workload::Workload>(), &aggregated_);
  auto pass = std::make_unique<PassState>();
  // Bounded retry with escalating backoff. The injected fault fires
  // BEFORE beginHandoff, so a retried attempt re-runs the publication
  // from a policy that never saw the failed one — retries are
  // side-effect-clean by construction.
  util::FaultInjector* const faults = options_.faults.get();
  for (int attempt = 0;; ++attempt) {
    try {
      if (faults != nullptr &&
          faults->fire(util::FaultKind::HandoffFail, epoch, -1)) {
        throw std::runtime_error("injected handoff publication failure");
      }
      pass->pass = policy_->beginHandoff(snapshot, workers);
      break;
    } catch (const std::exception& e) {
      if (attempt >= options_.handoffRetries) {
        throw Error(Stage::Handoff, epoch, e.what());
      }
      ++handoffRetriesUsed_;
      if (options_.handoffBackoffMs > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            options_.handoffBackoffMs * (attempt + 1)));
      }
    }
  }
  pass->version = ++passesBegun_;
  pendingPasses_.push_back(std::move(pass));
  publishSchedule();
}

void EpochServer::applyPendingMigrations(ObjectId x, int worker,
                                         std::uint64_t targetVersion,
                                         core::LoadMap& migration,
                                         core::FlatLoadAccumulator& acc) {
  // §4 handoff, one object at a time: chain through every pass this
  // object has not migrated through yet, in creation order — charging
  // Steiner(current ∪ target) and resetting the copy set per pass, the
  // exact per-object work barrier mode performs inside drift epochs.
  // The RCU guard pins the schedule (and through it every pass the
  // applied counters say we may still need) against republication.
  const auto guard = schedule_.read();
  const MigrationSchedule& schedule = *guard;
  std::uint64_t& applied = appliedVersion_[static_cast<std::size_t>(x)];
  while (applied < targetVersion) {
    const auto index = static_cast<std::size_t>(applied -
                                                schedule.baseVersion);
    PassState& pass = *schedule.passes[index];
    const std::vector<net::NodeId> target = pass.pass->target(x, worker);
    // The shared per-object migration step (compare / charge Steiner /
    // resetCopySet) — also what the shard worker's barrier application
    // runs, so single-process and sharded serving charge bit-identical
    // migration traffic.
    dynamic::applyHandoffTarget(*policy_, x, target, acc, migration);
    ++applied;
    pass.applied.fetch_add(1, std::memory_order_relaxed);
  }
}

void EpochServer::drainAllPasses(
    std::vector<core::LoadMap>& workerMigration,
    std::vector<core::FlatLoadAccumulator>& workerAcc, int workers) {
  if (pendingPasses_.empty()) return;
  const net::Tree& tree = rooted_->tree();
  for (int w = 0; w < workers; ++w) {
    workerMigration[static_cast<std::size_t>(w)].clear();
  }
  const std::uint64_t targetVersion = passesBegun_;
  core::parallelForObjects(
      numObjects_, options_.threads, [&](ObjectId x, int worker) {
        if (appliedVersion_[static_cast<std::size_t>(x)] >= targetVersion) {
          return;
        }
        const auto w = static_cast<std::size_t>(worker);
        applyPendingMigrations(x, worker, targetVersion, workerMigration[w],
                               workerAcc[w]);
      });
  for (int w = 0; w < workers; ++w) {
    const auto& partial = workerMigration[static_cast<std::size_t>(w)];
    for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
      const core::Count load = partial.edgeLoad(e);
      if (load != 0) loads_.addEdgeLoad(e, load);
    }
  }
}

void EpochServer::retireAppliedPasses() {
  // Serve thread, between epochs (workers joined): pop every fully
  // applied pass, republish the shorter schedule and wait out the grace
  // period before destroying anything a straggling guard could still
  // reach. synchronize() also reclaims the superseded schedule objects
  // themselves.
  std::vector<std::unique_ptr<PassState>> retiring;
  while (!pendingPasses_.empty() &&
         pendingPasses_.front()->applied.load(std::memory_order_relaxed) ==
             numObjects_) {
    retiring.push_back(std::move(pendingPasses_.front()));
    pendingPasses_.pop_front();
  }
  if (retiring.empty()) return;
  publishSchedule();
  schedule_.synchronize();
  retiring.clear();
}

CheckpointData EpochServer::snapshotStateAt(std::uint64_t epochs) const {
  if (!pendingPasses_.empty()) {
    throw std::logic_error(
        "EpochServer: snapshot requires a quiescent server "
        "(handoff passes still pending)");
  }
  const net::Tree& tree = rooted_->tree();
  const int edgeCount = tree.edgeCount();
  CheckpointData data;
  data.policySpec = policy_->spec();
  data.numObjects = numObjects_;
  data.numNodes = tree.nodeCount();
  data.numEdges = edgeCount;
  data.servedTotal = servedTotal_;
  data.epochs = epochs;
  data.replacements = replacements_;
  data.replications = replications_;
  data.invalidations = invalidations_;
  data.passesBegun = passesBegun_;
  data.degradedEpochs = degradedEpochs_;
  data.handoffRetries = handoffRetriesUsed_;
  data.checkpointsWritten = checkpointsWritten_;
  data.serveCongestionMark = drift_.serveCongestionMark;
  data.lowerBoundMark = drift_.lowerBoundMark;
  data.loads.resize(static_cast<std::size_t>(edgeCount));
  data.serveLoads.resize(static_cast<std::size_t>(edgeCount));
  for (net::EdgeId e = 0; e < edgeCount; ++e) {
    data.loads[static_cast<std::size_t>(e)] = loads_.edgeLoad(e);
    data.serveLoads[static_cast<std::size_t>(e)] = serveLoads_.edgeLoad(e);
  }
  data.workloadText = workload::toText(aggregated_);
  std::ostringstream policyState;
  policy_->serializeState(policyState);
  data.policyState = policyState.str();
  return data;
}

CheckpointData EpochServer::snapshotState() const {
  return snapshotStateAt(logBase_ + log_.size());
}

void EpochServer::restoreFrom(const CheckpointData& data) {
  if (servedTotal_ != 0 || !log_.empty() || passesBegun_ != 0 ||
      logBase_ != 0) {
    throw std::logic_error("EpochServer: restoreFrom requires a fresh server");
  }
  const net::Tree& tree = rooted_->tree();
  if (data.policySpec != policy_->spec()) {
    throw std::invalid_argument("checkpoint: policy mismatch (snapshot '" +
                                data.policySpec + "' vs server '" +
                                policy_->spec() + "')");
  }
  if (data.numObjects != numObjects_ || data.numNodes != tree.nodeCount() ||
      data.numEdges != tree.edgeCount()) {
    throw std::invalid_argument(
        "checkpoint: topology mismatch (objects/nodes/edges differ)");
  }
  workload::Workload restored = workload::parseText(data.workloadText);
  if (restored.numObjects() != numObjects_ ||
      restored.numNodes() != tree.nodeCount()) {
    throw std::invalid_argument("checkpoint: workload dims mismatch");
  }
  // Policy state first: it is the most likely piece to fail validation,
  // and nothing else has been mutated yet when it throws.
  std::istringstream policyState(data.policyState);
  policy_->restoreState(policyState);
  aggregated_ = std::move(restored);
  for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
    loads_.addEdgeLoad(e, data.loads[static_cast<std::size_t>(e)]);
    serveLoads_.addEdgeLoad(e, data.serveLoads[static_cast<std::size_t>(e)]);
  }
  servedTotal_ = data.servedTotal;
  logBase_ = data.epochs;
  replacements_ = data.replacements;
  replications_ = data.replications;
  invalidations_ = data.invalidations;
  passesBegun_ = data.passesBegun;
  std::fill(appliedVersion_.begin(), appliedVersion_.end(), passesBegun_);
  degradedEpochs_ = data.degradedEpochs;
  handoffRetriesUsed_ = data.handoffRetries;
  checkpointsWritten_ = data.checkpointsWritten;
  drift_.serveCongestionMark = data.serveCongestionMark;
  drift_.lowerBoundMark = data.lowerBoundMark;
  // The snapshot was quiescent, so the schedule restarts empty with its
  // base at the restored pass count.
  publishSchedule();
}

void EpochServer::publishSchedule() {
  auto next = std::make_unique<MigrationSchedule>();
  next->baseVersion =
      passesBegun_ - static_cast<std::uint64_t>(pendingPasses_.size());
  next->passes.reserve(pendingPasses_.size());
  for (const auto& pass : pendingPasses_) next->passes.push_back(pass.get());
  schedule_.publish(std::move(next));
}

}  // namespace hbn::serve
