#include "hbn/serve/epoch_server.h"

#include <span>
#include <stdexcept>

#include "hbn/core/lower_bound.h"
#include "hbn/core/parallel.h"
#include "hbn/dynamic/harness.h"
#include "hbn/util/stats.h"
#include "hbn/util/timer.h"

namespace hbn::serve {

EpochServer::EpochServer(const net::RootedTree& rooted, int numObjects,
                         const ServeOptions& options)
    : rooted_(&rooted),
      numObjects_(numObjects),
      options_(options),
      policy_(dynamic::OnlinePolicyRegistry::global()
                  .create(options.policy)
                  ->build(rooted, numObjects,
                          rooted.tree().processors().front())),
      aggregated_(numObjects, rooted.tree().nodeCount()),
      loads_(rooted.tree().edgeCount()) {
  if (options.epochSize < 1) {
    throw std::invalid_argument("EpochServer: epochSize >= 1");
  }
}

ServeReport EpochServer::serve(RequestStream& stream) {
  const net::Tree& tree = rooted_->tree();
  const int edgeCount = tree.edgeCount();
  const int workers = core::resolveWorkerCount(options_.threads, numObjects_);

  // The only per-request buffering: one epoch in arrival order plus one
  // epoch bucketed by object (stable, preserving per-object order). The
  // stream itself is never materialised.
  std::vector<RequestEvent> buffer(options_.epochSize);
  std::vector<RequestEvent> bucketed(options_.epochSize);
  std::vector<std::size_t> offsets(static_cast<std::size_t>(numObjects_) + 1);

  std::vector<core::LoadMap> workerLoads;
  workerLoads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) workerLoads.emplace_back(edgeCount);
  std::vector<dynamic::ShardStats> workerStats(
      static_cast<std::size_t>(workers));
  std::vector<dynamic::ServeScratch> workerScratch(
      static_cast<std::size_t>(workers));
  // One difference-counting accumulator per worker over the shared flat
  // view: serveShard batches each object's path charges through it and
  // flushes exact integer loads into the worker's LoadMap, so the merge
  // below is unchanged and bit-identical for any worker count.
  std::vector<core::FlatLoadAccumulator> workerAcc;
  workerAcc.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workerAcc.emplace_back(policy_->flatView());
  }

  ServeReport report;
  report.policy = options_.policy;
  report.epochBufferBytes =
      static_cast<std::uint64_t>(buffer.capacity() + bucketed.capacity()) *
          sizeof(RequestEvent) +
      static_cast<std::uint64_t>(offsets.capacity()) * sizeof(std::size_t);
  util::Accumulator epochMs;
  util::Timer total;

  while (true) {
    const std::size_t n = stream.fill(std::span<RequestEvent>(buffer));
    if (n == 0) break;
    util::Timer epochTimer;

    // Validate and aggregate frequencies, then bucket by object id
    // (stable CSR via the shared harness helper).
    for (std::size_t i = 0; i < n; ++i) {
      const RequestEvent& ev = buffer[i];
      if (ev.object < 0 || ev.object >= numObjects_) {
        throw std::out_of_range("EpochServer: request object out of range");
      }
      if (ev.origin < 0 || ev.origin >= tree.nodeCount()) {
        throw std::out_of_range("EpochServer: request origin out of range");
      }
      if (ev.isWrite) {
        aggregated_.addWrites(ev.object, ev.origin, 1);
      } else {
        aggregated_.addReads(ev.object, ev.origin, 1);
      }
    }
    dynamic::bucketRequestsByObject(
        std::span<const RequestEvent>(buffer.data(), n), numObjects_,
        offsets, std::span<RequestEvent>(bucketed.data(), n));

    // Shard the epoch over the object range: whole objects per worker,
    // per-worker loads/stats/scratch, no shared mutable state.
    for (int w = 0; w < workers; ++w) {
      workerLoads[static_cast<std::size_t>(w)].clear();
      workerStats[static_cast<std::size_t>(w)] = {};
    }
    core::parallelForObjects(
        numObjects_, options_.threads, [&](ObjectId x, int worker) {
          const std::size_t begin = offsets[static_cast<std::size_t>(x)];
          const std::size_t end = offsets[static_cast<std::size_t>(x) + 1];
          if (begin == end) return;
          const auto w = static_cast<std::size_t>(worker);
          const dynamic::ShardStats stats = policy_->serveShard(
              x, std::span<const RequestEvent>(bucketed.data() + begin,
                                              end - begin),
              workerLoads[w], workerScratch[w], &workerAcc[w]);
          workerStats[w].replications += stats.replications;
          workerStats[w].invalidations += stats.invalidations;
        });

    // Deterministic merge: integer edge loads and counters sum the same
    // for any worker count.
    for (int w = 0; w < workers; ++w) {
      const auto& partial = workerLoads[static_cast<std::size_t>(w)];
      for (net::EdgeId e = 0; e < edgeCount; ++e) {
        const core::Count load = partial.edgeLoad(e);
        if (load != 0) loads_.addEdgeLoad(e, load);
      }
      replications_ += workerStats[static_cast<std::size_t>(w)].replications;
      invalidations_ +=
          workerStats[static_cast<std::size_t>(w)].invalidations;
    }
    servedTotal_ += n;

    // Epoch bookkeeping and the adaptive re-placement pass.
    EpochRecord record;
    record.index = static_cast<std::uint64_t>(log_.size());
    record.requests = n;
    record.lowerBound =
        core::analyticLowerBound(*rooted_, aggregated_).congestion;
    record.congestion = loads_.congestion(tree);
    // Drift is measured since the last re-placement: how much realised
    // congestion grew against how much the offline bound says *had* to
    // be paid for the traffic of the same period. A cumulative ratio
    // would either never fire or fire forever; the delta resets.
    const double congestionGrowth = record.congestion - congestionMark_;
    const double lowerBoundGrowth = record.lowerBound - lowerBoundMark_;
    if (options_.replaceDrift > 0.0 && policy_->migratable() &&
        lowerBoundGrowth > 0.0 &&
        congestionGrowth > options_.replaceDrift * lowerBoundGrowth) {
      replace(workerLoads, workerAcc, workers);
      ++replacements_;
      record.replaced = true;
      record.congestion = loads_.congestion(tree);  // migration included
      congestionMark_ = record.congestion;
      lowerBoundMark_ = record.lowerBound;
    }
    record.ratio =
        dynamic::competitiveRatio(record.congestion, record.lowerBound);
    record.wallMs = epochTimer.millis();
    epochMs.add(record.wallMs);
    log_.push_back(record);
    ++report.epochs;
    report.totalRequests += n;
  }

  report.wallMs = total.millis();
  report.requestsPerSec =
      report.wallMs > 0.0
          ? static_cast<double>(report.totalRequests) / report.wallMs * 1e3
          : 0.0;
  report.epochMsP50 = epochMs.empty() ? 0.0 : epochMs.percentile(50.0);
  report.epochMsP99 = epochMs.empty() ? 0.0 : epochMs.percentile(99.0);
  report.congestion = loads_.congestion(tree);
  report.lowerBound =
      core::analyticLowerBound(*rooted_, aggregated_).congestion;
  report.ratio =
      dynamic::competitiveRatio(report.congestion, report.lowerBound);
  report.replacements = replacements_;
  report.replications = replications_;
  report.invalidations = invalidations_;
  report.policyMetrics = policy_->metrics();
  return report;
}

void EpochServer::replace(std::vector<core::LoadMap>& workerLoads,
                          std::vector<core::FlatLoadAccumulator>& workerAcc,
                          int workers) {
  // Dynamic-to-static handoff: ask the policy for its handoff placement
  // of the aggregated frequencies (tree-counters: the nibble placement,
  // connected by Theorem 3.1; static: its nested strategy spec) and
  // migrate every object's copy configuration to it, charging the
  // Steiner tree spanning old ∪ new locations with one object-migration
  // message per edge.
  const net::Tree& tree = rooted_->tree();
  const core::Placement target =
      policy_->handoffPlacement(aggregated_, options_.threads);
  for (int w = 0; w < workers; ++w) {
    workerLoads[static_cast<std::size_t>(w)].clear();
  }
  core::parallelForObjects(
      numObjects_, options_.threads, [&](ObjectId x, int worker) {
        const auto w = static_cast<std::size_t>(worker);
        const std::vector<net::NodeId> locations =
            target.objects[static_cast<std::size_t>(x)].locations();
        std::vector<net::NodeId> terminals = policy_->copySet(x);
        terminals.insert(terminals.end(), locations.begin(),
                         locations.end());
        workerAcc[w].chargeSteiner(terminals, 1, workerLoads[w]);
        policy_->resetCopySet(x, locations);
      });
  for (int w = 0; w < workers; ++w) {
    const auto& partial = workerLoads[static_cast<std::size_t>(w)];
    for (net::EdgeId e = 0; e < tree.edgeCount(); ++e) {
      const core::Count load = partial.edgeLoad(e);
      if (load != 0) loads_.addEdgeLoad(e, load);
    }
  }
}

}  // namespace hbn::serve
