// Epoch-boundary checkpoint/restore for the serving engine.
//
// A checkpoint is a versioned text snapshot of everything EpochServer
// needs to resume serving bit-identically: the aggregated frequency
// matrix, cumulative edge loads (total and serve-only), the drift-
// trigger marks, progress counters, and the policy's own serialized
// state (OnlinePolicy::serializeState — copy sets, read counters,
// adaptive shadow scores). Checkpoints are only taken at epoch
// boundaries after every pending §4 handoff pass has been drained, so
// the snapshot is quiescent and restoring it plus re-serving the
// remaining stream yields a final load digest bit-identical to an
// uninterrupted run (the kill-and-restore property tests/checkpoint_
// test.cpp and experiment e15 enforce).
//
// What is deliberately NOT captured: wall-clock observables (latency
// reservoirs, epoch timings — they restart empty) and the stream
// cursor's RNG internals. The snapshot records how many requests were
// consumed (servedTotal); a deterministic stream is resumed by
// rebuilding it from its seed (or reopening the trace) and discarding
// that many events (serve::skipRequests), which reconstructs the
// generator state exactly without serializing engine internals.
//
// File format (hbn-checkpoint v1, docs/robustness.md):
//
//   hbn-checkpoint v1
//   policy <canonical spec>
//   dims <numObjects> <numNodes> <numEdges>
//   progress <servedTotal> <epochs> <replacements> <replications>
//            <invalidations> <passesBegun>
//   stats <degradedEpochs> <handoffRetries> <checkpointsWritten>
//   marks <serveCongestionMark> <lowerBoundMark>     (raw 64-bit patterns
//                                                     in hex: doubles
//                                                     round-trip exactly)
//   loads <numEdges> <v...>
//   serve-loads <numEdges> <v...>
//   workload <bytes>
//   <hbn-workload v1 text, exactly <bytes> bytes>
//   policy-state <bytes>
//   <policy block, exactly <bytes> bytes>
//   checksum <fnv1a64-hex of everything above>
//
// A directory of checkpoints holds checkpoint-<epochs>.hbn files plus a
// LATEST file naming the newest one; writes go through a temporary file
// and rename, so a crash mid-write never corrupts LATEST's target.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hbn/core/load.h"

namespace hbn::serve {

/// One parsed (or to-be-written) checkpoint.
struct CheckpointData {
  std::string policySpec;  ///< canonical OnlinePolicy::spec()
  int numObjects = 0;
  int numNodes = 0;
  int numEdges = 0;
  std::uint64_t servedTotal = 0;  ///< requests consumed from the stream
  std::uint64_t epochs = 0;       ///< epochs completed (log length)
  std::uint64_t replacements = 0;
  core::Count replications = 0;
  core::Count invalidations = 0;
  std::uint64_t passesBegun = 0;
  std::uint64_t degradedEpochs = 0;
  std::uint64_t handoffRetries = 0;
  std::uint64_t checkpointsWritten = 0;
  double serveCongestionMark = 0.0;
  double lowerBoundMark = 0.0;
  std::vector<core::Count> loads;       ///< per-edge cumulative loads
  std::vector<core::Count> serveLoads;  ///< serve-only (drift input)
  std::string workloadText;             ///< hbn-workload v1 text
  std::string policyState;              ///< OnlinePolicy::serializeState
};

/// Serializes `data` (including the trailing checksum line).
void writeCheckpoint(const CheckpointData& data, std::ostream& os);

/// Parses and checksum-verifies a checkpoint; throws
/// std::invalid_argument naming the defect on any corruption,
/// truncation, or version mismatch.
[[nodiscard]] CheckpointData readCheckpoint(std::istream& in);

/// Writes `data` into `dir` (created if missing) as
/// checkpoint-<epochs>.hbn via a temp-file rename, then points LATEST
/// at it. Returns the final file path; throws std::runtime_error on
/// I/O failure.
std::string writeCheckpointFile(const CheckpointData& data,
                                const std::string& dir);

/// Reads one checkpoint file. Throws std::runtime_error when the file
/// cannot be opened, std::invalid_argument when it fails validation.
[[nodiscard]] CheckpointData readCheckpointFile(const std::string& path);

/// Resolves `dir`'s LATEST pointer to a checkpoint path; throws
/// std::runtime_error when the directory holds no checkpoint.
[[nodiscard]] std::string latestCheckpointPath(const std::string& dir);

}  // namespace hbn::serve
