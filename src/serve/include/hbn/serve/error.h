// Structured failure taxonomy for the serving engine.
//
// Every stage failure inside EpochServer — an ingest pull that dies, a
// worker exception while serving a shard, an exhausted handoff retry, a
// checkpoint that cannot be written or read back — surfaces as one
// serve::Error carrying the stage, the epoch index, and the underlying
// cause. The CLI maps each stage to a distinct exit code (see
// docs/robustness.md for the table), so supervisors can tell a corrupt
// trace from a failed checkpoint without parsing stderr.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hbn::serve {

/// Pipeline stage a failure is attributed to. The transport stages
/// (Connect/Frame/Peer) belong to the sharded multi-process engine
/// (src/shard/): workers ship failures across the wire with their stage
/// intact, so the coordinator and the single-process CLI report every
/// failure through one taxonomy and one exit-code table.
enum class Stage {
  Ingest,      ///< stream pull / validation / bucketing
  Serve,       ///< shard serving inside the worker pool
  Handoff,     ///< §4 re-placement pass publication
  Checkpoint,  ///< writing an epoch-boundary snapshot
  Restore,     ///< reading a snapshot back
  Connect,     ///< shard transport handshake / worker spawn
  Frame,       ///< malformed wire frame (bad magic, oversized length
               ///< prefix, checksum mismatch, truncated payload)
  Peer,        ///< peer death / unresponsive peer mid-run
};

[[nodiscard]] constexpr const char* stageName(Stage stage) noexcept {
  switch (stage) {
    case Stage::Ingest: return "ingest";
    case Stage::Serve: return "serve";
    case Stage::Handoff: return "handoff";
    case Stage::Checkpoint: return "checkpoint";
    case Stage::Restore: return "restore";
    case Stage::Connect: return "connect";
    case Stage::Frame: return "frame";
    case Stage::Peer: return "peer";
  }
  return "unknown";
}

/// Process exit code for a stage failure (10-17; 2 stays reserved for
/// usage/malformed-input errors, 1 for everything else).
[[nodiscard]] constexpr int stageExitCode(Stage stage) noexcept {
  switch (stage) {
    case Stage::Ingest: return 10;
    case Stage::Serve: return 11;
    case Stage::Handoff: return 12;
    case Stage::Checkpoint: return 13;
    case Stage::Restore: return 14;
    case Stage::Connect: return 15;
    case Stage::Frame: return 16;
    case Stage::Peer: return 17;
  }
  return 1;
}

/// A stage failure with full attribution. what() renders
/// "<stage> stage failed at epoch <N>: <cause>".
class Error : public std::runtime_error {
 public:
  Error(Stage stage, std::uint64_t epoch, std::string cause)
      : std::runtime_error(std::string(stageName(stage)) +
                           " stage failed at epoch " +
                           std::to_string(epoch) + ": " + cause),
        stage_(stage),
        epoch_(epoch),
        cause_(std::move(cause)) {}

  [[nodiscard]] Stage stage() const noexcept { return stage_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const std::string& cause() const noexcept { return cause_; }
  [[nodiscard]] int exitCode() const noexcept { return stageExitCode(stage_); }

 private:
  Stage stage_;
  std::uint64_t epoch_;
  std::string cause_;
};

}  // namespace hbn::serve
