// EpochServer — the streaming request-serving engine.
//
// Consumes a RequestStream in fixed-size epochs. Each epoch is bucketed
// by object id (stable, so per-object arrival order is preserved) and
// sharded across the object range by a worker pool: every worker serves
// whole objects through OnlineTreeStrategy::serveShard with its own
// scratch and LoadMap, so the hot path performs no synchronisation and
// the merged result — integer edge loads, replication counts, copy sets
// — is bit-identical for 1 vs N threads.
//
// Between epochs the server runs the paper's dynamic-to-static handoff
// (§4): epoch frequencies are aggregated into a cumulative Workload, and
// when the realised congestion drifts a configurable factor above the
// analytic offline lower bound of those frequencies, the nibble strategy
// is re-run on them and every object's copy subtree migrates to its
// nibble copy set (Steiner-tree migration traffic is charged, read
// counters reset). Serving then continues online from the re-placed
// state.
#pragma once

#include <cstdint>
#include <vector>

#include "hbn/core/load.h"
#include "hbn/dynamic/online_strategy.h"
#include "hbn/net/rooted.h"
#include "hbn/serve/request_stream.h"
#include "hbn/workload/workload.h"

namespace hbn::serve {

using workload::ObjectId;

/// Serving knobs.
struct ServeOptions {
  /// Requests per epoch (the only per-request buffering the server does).
  std::size_t epochSize = 1 << 16;
  /// Worker threads for the per-epoch object sharding; 0 = all cores.
  int threads = 1;
  /// Online strategy knobs (replication threshold, write contraction).
  dynamic::OnlineOptions online;
  /// Re-placement triggers when, since the last re-placement (or the
  /// start), realised congestion grew more than `replaceDrift` × the
  /// growth of the analytic lower bound — i.e. the current copy
  /// configuration is paying a factor above what the aggregated
  /// frequencies say is unavoidable. <= 0 disables the pass. The
  /// default is a safety valve: the replicate/invalidate strategy's
  /// intrinsic churn sits near growth factor ~2.5 on skewed streams, so
  /// 3.0 fires only when the copy configuration is genuinely stale
  /// (e.g. slow adaptation under a high replication threshold).
  double replaceDrift = 3.0;
};

/// One epoch's record in the serve log.
struct EpochRecord {
  std::uint64_t index = 0;
  std::uint64_t requests = 0;
  double wallMs = 0.0;
  /// Cumulative realised congestion after this epoch.
  double congestion = 0.0;
  /// Analytic offline lower bound of the cumulative frequencies.
  double lowerBound = 0.0;
  /// congestion / lowerBound (1 when both zero, +inf when only LB is 0).
  double ratio = 0.0;
  bool replaced = false;
};

/// Aggregate outcome of one serve() run.
struct ServeReport {
  std::uint64_t totalRequests = 0;
  std::uint64_t epochs = 0;
  double wallMs = 0.0;
  double requestsPerSec = 0.0;
  /// Epoch wall-clock latency percentiles.
  double epochMsP50 = 0.0;
  double epochMsP99 = 0.0;
  /// Final cumulative congestion / offline lower bound / their ratio.
  double congestion = 0.0;
  double lowerBound = 0.0;
  double ratio = 0.0;
  std::uint64_t replacements = 0;
  core::Count replications = 0;
  core::Count invalidations = 0;
  /// Bytes of per-request buffering the server ever holds at once —
  /// proportional to the epoch, never to the stream.
  std::uint64_t epochBufferBytes = 0;
};

class EpochServer {
 public:
  /// `rooted` must outlive the server. Objects start with one copy on
  /// the first processor, as in the competitive harness.
  EpochServer(const net::RootedTree& rooted, int numObjects,
              const ServeOptions& options = {});

  /// Drains `stream` epoch by epoch; returns the aggregate report.
  /// Callable repeatedly — state (copy sets, loads, aggregated
  /// frequencies) persists, so a second call continues serving.
  ServeReport serve(RequestStream& stream);

  /// Per-epoch records of all serve() calls so far.
  [[nodiscard]] const std::vector<EpochRecord>& epochLog() const noexcept {
    return log_;
  }
  /// Cumulative realised loads (service + update + migration traffic).
  [[nodiscard]] const core::LoadMap& loads() const noexcept { return loads_; }
  /// Cumulative aggregated request frequencies.
  [[nodiscard]] const workload::Workload& aggregated() const noexcept {
    return aggregated_;
  }
  /// Current copy locations of `x`, ascending.
  [[nodiscard]] std::vector<net::NodeId> copySet(ObjectId x) const {
    return strategy_.copySet(x);
  }
  [[nodiscard]] int numObjects() const noexcept { return numObjects_; }

 private:
  /// Runs the nibble re-placement pass; returns migration load charged.
  void replace(std::vector<core::LoadMap>& workerLoads,
               std::vector<core::FlatLoadAccumulator>& workerAcc,
               int workers);

  const net::RootedTree* rooted_;
  int numObjects_;
  ServeOptions options_;
  dynamic::OnlineTreeStrategy strategy_;
  workload::Workload aggregated_;
  core::LoadMap loads_;
  std::vector<EpochRecord> log_;
  std::uint64_t servedTotal_ = 0;
  core::Count replications_ = 0;
  core::Count invalidations_ = 0;
  std::uint64_t replacements_ = 0;
  /// Congestion / lower bound at the last re-placement, the baselines
  /// the drift trigger measures growth from.
  double congestionMark_ = 0.0;
  double lowerBoundMark_ = 0.0;
};

}  // namespace hbn::serve
