// EpochServer — the streaming request-serving engine.
//
// Consumes a RequestStream in fixed-size epochs through a three-stage
// pipeline (see docs/serving.md for the full diagram):
//
//   ingest   epoch N+1 is pulled, validated and bucketed by object on a
//            dedicated thread (EpochIngest, double-buffered) while
//            epoch N is being served — bucketing cost leaves the
//            critical path.
//   serve    the epoch is sharded across the object range by a worker
//            pool: every worker serves whole objects through
//            OnlinePolicy::serveShard with its own scratch and LoadMap,
//            so the hot path performs no synchronisation and the merged
//            result — integer edge loads, replication counts, copy
//            sets — is bit-identical for 1 vs N threads.
//   re-place the paper's §4 dynamic-to-static handoff runs without
//            stopping the world: when realised serve congestion drifts
//            a configurable factor above the analytic lower bound, the
//            policy opens a HandoffPass over the trigger-time
//            aggregated frequencies (zero-copy: epochs aggregate after
//            they serve, so an object's row is still bit-equal to its
//            trigger-time value when its lazy target is queried — see
//            the HandoffPass contract), and the pass is published to
//            the workers RCU-style (util::RcuCell: atomic schedule swap
//            + epoch-grace reclamation). Each object migrates lazily —
//            on its next touch, or in the end-of-stream drain — with
//            its Steiner migration traffic charged exactly once, so the
//            final ServeReport counters are bit-identical to barrier
//            mode; only the *timing* of migration work moves off the
//            drift epoch, which is what flattens the p99 spike.
//
// ServeOptions.pipeline = false restores the barrier engine: ingest
// runs inline and every handoff pass is drained immediately inside the
// drift epoch. Both modes assemble identical epochs and apply identical
// per-object migrations, so counters, loads and copy sets agree bit for
// bit; wall-clock fields (epoch/latency percentiles) are where they
// differ.
//
// The drift trigger measures *serve-only* congestion (migration traffic
// excluded) against the lower bound in both modes, so the trigger
// schedule is mode-independent even though migration lands at different
// times. The policy itself is pluggable: ServeOptions.policy is an
// OnlinePolicyRegistry spec, so every registered policy (tree-counters,
// static:placement=..., full-replication, owner-only, ...) serves
// through the same engine. Policies with a fixed configuration opt out
// via OnlinePolicy::migratable() and the drift pass never runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"
#include "hbn/dynamic/online_policy.h"
#include "hbn/net/rooted.h"
#include "hbn/serve/checkpoint.h"
#include "hbn/serve/drift.h"
#include "hbn/serve/pipeline.h"
#include "hbn/serve/request_stream.h"
#include "hbn/util/fault.h"
#include "hbn/util/rcu.h"
#include "hbn/util/stats.h"
#include "hbn/workload/workload.h"

namespace hbn::serve {

using workload::ObjectId;

/// Serving knobs.
struct ServeOptions {
  /// Requests per epoch (the only per-request buffering the server does).
  std::size_t epochSize = 1 << 16;
  /// Worker threads for the per-epoch object sharding; 0 = all cores.
  int threads = 1;
  /// Online policy spec (OnlinePolicyRegistry grammar,
  /// `name[:key=value,...]` — e.g. "tree-counters:threshold=4" or
  /// "static:placement=extended-nibble"). Parsed at construction;
  /// unknown names or options throw std::invalid_argument there.
  std::string policy = "tree-counters";
  /// Re-placement triggers when, since the last re-placement (or the
  /// start), realised serve congestion grew more than `replaceDrift` ×
  /// the growth of the analytic lower bound — i.e. the current copy
  /// configuration is paying a factor above what the aggregated
  /// frequencies say is unavoidable. <= 0 disables the pass. The
  /// default is a safety valve: the replicate/invalidate strategy's
  /// intrinsic churn sits near growth factor ~2.5 on skewed streams, so
  /// 3.0 fires only when the copy configuration is genuinely stale
  /// (e.g. slow adaptation under a high replication threshold).
  double replaceDrift = 3.0;
  /// Pipelined serving (default): threaded double-buffered ingest plus
  /// lazy RCU-published handoff application. false = barrier mode
  /// (inline ingest, stop-the-world handoffs) — same results, spikier
  /// tails.
  bool pipeline = true;
  /// Reservoir capacity for run-level request-latency sampling;
  /// 0 disables latency percentiles.
  std::size_t latencySample = 4096;
  /// Directory for epoch-boundary checkpoints (hbn-checkpoint v1, see
  /// hbn/serve/checkpoint.h); empty disables checkpointing. A
  /// checkpoint drains every pending handoff pass first, so restoring
  /// it plus re-serving the rest of the stream is bit-identical to an
  /// uninterrupted run.
  std::string checkpointDir;
  /// Epochs between checkpoints (>= 1); only read when checkpointDir is
  /// set.
  std::uint64_t checkpointEvery = 1;
  /// Pipeline stall watchdog: when the ingest thread has not produced
  /// an epoch within this many milliseconds, the serve thread assembles
  /// the epoch inline (degraded mode — the barrier engine's behaviour
  /// for that epoch) instead of hanging. <= 0 waits forever. Ignored in
  /// barrier mode, where ingest is inline anyway.
  double stallTimeoutMs = 0.0;
  /// Bounded retry on handoff publication failure: how many times
  /// beginning a §4 pass may be retried before the epoch fails with
  /// serve::Error{Handoff}, and the base backoff between attempts
  /// (attempt k sleeps k × handoffBackoffMs).
  int handoffRetries = 3;
  double handoffBackoffMs = 1.0;
  /// Deterministic fault injection (util::FaultInjector specs —
  /// ingest-stall@epochN, shard-throw@epochN:shardM, handoff-fail@
  /// epochN); null injects nothing. Shared so the CLI, tests and
  /// benchmarks can inspect trigger counts after the run.
  std::shared_ptr<util::FaultInjector> faults;
};

/// One epoch's record in the serve log.
struct EpochRecord {
  std::uint64_t index = 0;
  std::uint64_t requests = 0;
  double wallMs = 0.0;
  /// Cumulative realised congestion after this epoch (serve + update +
  /// migration traffic charged so far — in pipelined mode migrations
  /// land when objects are touched, so the per-epoch trajectory differs
  /// from barrier mode even though the end-of-run total is identical).
  double congestion = 0.0;
  /// Analytic offline lower bound of the cumulative frequencies.
  double lowerBound = 0.0;
  /// congestion / lowerBound (1 when both zero, +inf when only LB is 0).
  /// Consumers serialising epoch records should expect the +inf case:
  /// util::JsonRecords emits non-finite doubles as null and parses null
  /// back as NaN, so emit→parse→emit is a fixed point at the text level
  /// (tests/serve_test.cpp pins this down).
  double ratio = 0.0;
  /// Request-latency percentiles of this epoch's arrival-stamp samples
  /// (epoch completion − arrival), milliseconds; 0 with sampling off.
  double latencyMsP50 = 0.0;
  double latencyMsP99 = 0.0;
  double latencyMsP999 = 0.0;
  bool replaced = false;
  /// The stall watchdog fired and the serve thread assembled this epoch
  /// inline (barrier-engine fallback; contents still bit-identical).
  bool degraded = false;
  /// A checkpoint was written at this epoch's boundary (after draining
  /// pending passes — congestion above therefore includes migration).
  bool checkpointed = false;
};

/// Aggregate outcome of one serve() run.
struct ServeReport {
  /// The policy spec that produced this report, plus the policy's own
  /// diagnostics (OnlinePolicy::metrics()) at the end of the run — so
  /// an emitted report can say what produced it.
  std::string policy;
  std::map<std::string, double> policyMetrics;
  /// Whether the pipelined engine produced this report.
  bool pipeline = true;
  std::uint64_t totalRequests = 0;
  std::uint64_t epochs = 0;
  double wallMs = 0.0;
  double requestsPerSec = 0.0;
  /// Epoch wall-clock latency percentiles.
  double epochMsP50 = 0.0;
  double epochMsP99 = 0.0;
  double epochMsP999 = 0.0;
  /// Request-latency percentiles over the run's reservoir sample
  /// (milliseconds; 0 when latencySamples == 0).
  double latencyMsP50 = 0.0;
  double latencyMsP99 = 0.0;
  double latencyMsP999 = 0.0;
  /// Request latencies offered to the reservoir over the server's
  /// lifetime (the sample the percentiles estimate from is capped at
  /// ServeOptions.latencySample).
  std::uint64_t latencySamples = 0;
  /// Final cumulative congestion / offline lower bound / their ratio.
  double congestion = 0.0;
  double lowerBound = 0.0;
  double ratio = 0.0;
  std::uint64_t replacements = 0;
  core::Count replications = 0;
  core::Count invalidations = 0;
  /// Bytes of per-request buffering the server ever holds at once —
  /// proportional to the epoch (× the two pipeline slots), never to
  /// the stream.
  std::uint64_t epochBufferBytes = 0;
  /// Robustness counters (server lifetime, so they survive a restore):
  /// epochs assembled inline by the stall watchdog, handoff publication
  /// retries consumed, and checkpoints written.
  std::uint64_t degradedEpochs = 0;
  std::uint64_t handoffRetries = 0;
  std::uint64_t checkpoints = 0;
};

class EpochServer {
 public:
  /// `rooted` must outlive the server. Objects start with one copy on
  /// the first processor, as in the competitive harness.
  EpochServer(const net::RootedTree& rooted, int numObjects,
              const ServeOptions& options = {});

  /// Drains `stream` epoch by epoch; returns the aggregate report.
  /// Callable repeatedly — state (copy sets, loads, aggregated
  /// frequencies) persists, so a second call continues serving. Every
  /// pending handoff pass is fully drained before returning, so copy
  /// sets and loads observed between calls match barrier mode.
  ServeReport serve(RequestStream& stream);

  /// Per-epoch records of all serve() calls so far.
  [[nodiscard]] const std::vector<EpochRecord>& epochLog() const noexcept {
    return log_;
  }
  /// Cumulative realised loads (service + update + migration traffic).
  [[nodiscard]] const core::LoadMap& loads() const noexcept { return loads_; }
  /// Cumulative aggregated request frequencies.
  [[nodiscard]] const workload::Workload& aggregated() const noexcept {
    return aggregated_;
  }
  /// Current copy locations of `x`, ascending.
  [[nodiscard]] std::vector<net::NodeId> copySet(ObjectId x) const {
    return policy_->copySet(x);
  }
  /// The serving policy instance (for diagnostics/introspection).
  [[nodiscard]] const dynamic::OnlinePolicy& policy() const noexcept {
    return *policy_;
  }
  [[nodiscard]] int numObjects() const noexcept { return numObjects_; }

  /// Captures the server's full resumable state as a checkpoint. The
  /// server must be quiescent (no pending handoff passes — true between
  /// serve() calls and at checkpoint boundaries inside one); throws
  /// std::logic_error otherwise.
  [[nodiscard]] CheckpointData snapshotState() const;

  /// Rebuilds the server from a checkpoint taken by an identically
  /// configured server (same topology, objects, canonical policy spec).
  /// Only valid on a fresh server that has not served anything; throws
  /// std::logic_error when it has, std::invalid_argument when the
  /// checkpoint does not match this server. The request stream is NOT
  /// part of the snapshot — resume a deterministic stream by rebuilding
  /// it and discarding CheckpointData::servedTotal events
  /// (serve::skipRequests) before the next serve() call.
  void restoreFrom(const CheckpointData& data);

  /// Requests consumed over the server's lifetime (including the
  /// restored prefix) — what a resumed stream must skip.
  [[nodiscard]] std::uint64_t servedTotal() const noexcept {
    return servedTotal_;
  }

 private:
  /// One pending §4 handoff: the policy's pass plus retirement
  /// bookkeeping. `applied` counts objects migrated through it; the
  /// pass retires (and its snapshot frees) once every object has
  /// applied it and a schedule without it has been published and its
  /// RCU grace period has elapsed.
  struct PassState {
    std::unique_ptr<dynamic::HandoffPass> pass;
    std::uint64_t version = 0;  ///< 1-based pass sequence number
    std::atomic<std::int64_t> applied{0};
  };

  /// The immutable pass list workers read through the RCU cell.
  /// Object x has passes pending iff appliedVersion_[x] <
  /// baseVersion + passes.size(); entry i applies pass version
  /// baseVersion + i + 1.
  struct MigrationSchedule {
    std::uint64_t baseVersion = 0;  ///< fully retired passes
    std::vector<PassState*> passes;
  };

  /// Opens a HandoffPass over aggregated_ (zero-copy; see the
  /// HandoffPass row-stability contract) and publishes the extended
  /// schedule. Publication failures (injected or real) are retried up
  /// to ServeOptions.handoffRetries times with escalating backoff;
  /// exhaustion throws serve::Error{Handoff, epoch}.
  void beginPass(int workers, std::uint64_t epoch);
  /// Applies every pass still pending for `x`, charging migration
  /// traffic into `migration` via `acc`. Called from workers (object
  /// striping makes x exclusive) under an RCU read guard.
  void applyPendingMigrations(ObjectId x, int worker,
                              std::uint64_t targetVersion,
                              core::LoadMap& migration,
                              core::FlatLoadAccumulator& acc);
  /// Applies all pending passes to every object now (the barrier drain
  /// and the end-of-stream drain), merging migration traffic into
  /// loads_.
  void drainAllPasses(std::vector<core::LoadMap>& workerMigration,
                      std::vector<core::FlatLoadAccumulator>& workerAcc,
                      int workers);
  /// Pops fully applied passes off the front of the pending queue,
  /// republishes the schedule and reclaims through the grace period.
  void retireAppliedPasses();
  void publishSchedule();
  /// snapshotState with an explicit completed-epoch count (the serve
  /// loop checkpoints before pushing the epoch's record).
  [[nodiscard]] CheckpointData snapshotStateAt(std::uint64_t epochs) const;

  const net::RootedTree* rooted_;
  int numObjects_;
  ServeOptions options_;
  std::unique_ptr<dynamic::OnlinePolicy> policy_;
  workload::Workload aggregated_;
  /// Running analytic lower bound of aggregated_, refreshed per epoch
  /// for the touched objects only — O(touched · |V|) instead of a full
  /// O(|X| · |V|) recomputation, which dominated per-epoch cost (and
  /// with it the pipelined queueing latency) at large object counts.
  core::IncrementalLowerBound lowerBound_;
  core::LoadMap loads_;
  /// Serve + update traffic only (no migration): the drift trigger's
  /// input, so the trigger schedule is identical in pipelined and
  /// barrier mode.
  core::LoadMap serveLoads_;
  std::vector<EpochRecord> log_;
  /// Epochs completed before log_ began (nonzero after restoreFrom):
  /// the absolute index of epoch record i is logBase_ + i, and fault
  /// specs address epochs in absolute terms.
  std::uint64_t logBase_ = 0;
  std::uint64_t servedTotal_ = 0;
  core::Count replications_ = 0;
  core::Count invalidations_ = 0;
  std::uint64_t replacements_ = 0;
  /// The §4 drift trigger (marks at the last re-placement plus the
  /// shared comparison — see hbn/serve/drift.h; the shard coordinator
  /// drives the identical struct).
  DriftTrigger drift_;
  /// Lazy handoff machinery: pending passes in creation order, the
  /// RCU-published schedule, and per-object applied-pass counts.
  std::deque<std::unique_ptr<PassState>> pendingPasses_;
  util::RcuCell<MigrationSchedule> schedule_;
  std::vector<std::uint64_t> appliedVersion_;
  std::uint64_t passesBegun_ = 0;
  /// Robustness counters (see ServeReport).
  std::uint64_t degradedEpochs_ = 0;
  std::uint64_t handoffRetriesUsed_ = 0;
  std::uint64_t checkpointsWritten_ = 0;
  /// Run-level request-latency reservoir (persists across serve calls).
  util::ReservoirSampler latency_;
};

}  // namespace hbn::serve
