// EpochServer — the streaming request-serving engine.
//
// Consumes a RequestStream in fixed-size epochs. Each epoch is bucketed
// by object id (stable, so per-object arrival order is preserved) and
// sharded across the object range by a worker pool: every worker serves
// whole objects through OnlinePolicy::serveShard with its own scratch
// and LoadMap, so the hot path performs no synchronisation and the
// merged result — integer edge loads, replication counts, copy sets —
// is bit-identical for 1 vs N threads. The policy itself is pluggable:
// ServeOptions.policy is an OnlinePolicyRegistry spec, so every
// registered policy (tree-counters, static:placement=...,
// full-replication, owner-only, ...) serves through the same engine.
//
// Between epochs the server runs the paper's dynamic-to-static handoff
// (§4): epoch frequencies are aggregated into a cumulative Workload,
// and when the realised congestion drifts a configurable factor above
// the analytic offline lower bound of those frequencies, the policy's
// handoff placement is recomputed on them and every object's copy
// configuration migrates to it (Steiner-tree migration traffic is
// charged). Policies with a fixed configuration opt out via
// OnlinePolicy::migratable() and the drift pass never runs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hbn/core/load.h"
#include "hbn/dynamic/online_policy.h"
#include "hbn/net/rooted.h"
#include "hbn/serve/request_stream.h"
#include "hbn/workload/workload.h"

namespace hbn::serve {

using workload::ObjectId;

/// Serving knobs.
struct ServeOptions {
  /// Requests per epoch (the only per-request buffering the server does).
  std::size_t epochSize = 1 << 16;
  /// Worker threads for the per-epoch object sharding; 0 = all cores.
  int threads = 1;
  /// Online policy spec (OnlinePolicyRegistry grammar,
  /// `name[:key=value,...]` — e.g. "tree-counters:threshold=4" or
  /// "static:placement=extended-nibble"). Parsed at construction;
  /// unknown names or options throw std::invalid_argument there.
  std::string policy = "tree-counters";
  /// Re-placement triggers when, since the last re-placement (or the
  /// start), realised congestion grew more than `replaceDrift` × the
  /// growth of the analytic lower bound — i.e. the current copy
  /// configuration is paying a factor above what the aggregated
  /// frequencies say is unavoidable. <= 0 disables the pass. The
  /// default is a safety valve: the replicate/invalidate strategy's
  /// intrinsic churn sits near growth factor ~2.5 on skewed streams, so
  /// 3.0 fires only when the copy configuration is genuinely stale
  /// (e.g. slow adaptation under a high replication threshold).
  double replaceDrift = 3.0;
};

/// One epoch's record in the serve log.
struct EpochRecord {
  std::uint64_t index = 0;
  std::uint64_t requests = 0;
  double wallMs = 0.0;
  /// Cumulative realised congestion after this epoch.
  double congestion = 0.0;
  /// Analytic offline lower bound of the cumulative frequencies.
  double lowerBound = 0.0;
  /// congestion / lowerBound (1 when both zero, +inf when only LB is 0).
  /// Consumers serialising epoch records should expect the +inf case:
  /// util::JsonRecords emits non-finite doubles as null and parses null
  /// back as NaN, so emit→parse→emit is a fixed point at the text level
  /// (tests/serve_test.cpp pins this down).
  double ratio = 0.0;
  bool replaced = false;
};

/// Aggregate outcome of one serve() run.
struct ServeReport {
  /// The policy spec that produced this report, plus the policy's own
  /// diagnostics (OnlinePolicy::metrics()) at the end of the run — so
  /// an emitted report can say what produced it.
  std::string policy;
  std::map<std::string, double> policyMetrics;
  std::uint64_t totalRequests = 0;
  std::uint64_t epochs = 0;
  double wallMs = 0.0;
  double requestsPerSec = 0.0;
  /// Epoch wall-clock latency percentiles.
  double epochMsP50 = 0.0;
  double epochMsP99 = 0.0;
  /// Final cumulative congestion / offline lower bound / their ratio.
  double congestion = 0.0;
  double lowerBound = 0.0;
  double ratio = 0.0;
  std::uint64_t replacements = 0;
  core::Count replications = 0;
  core::Count invalidations = 0;
  /// Bytes of per-request buffering the server ever holds at once —
  /// proportional to the epoch, never to the stream.
  std::uint64_t epochBufferBytes = 0;
};

class EpochServer {
 public:
  /// `rooted` must outlive the server. Objects start with one copy on
  /// the first processor, as in the competitive harness.
  EpochServer(const net::RootedTree& rooted, int numObjects,
              const ServeOptions& options = {});

  /// Drains `stream` epoch by epoch; returns the aggregate report.
  /// Callable repeatedly — state (copy sets, loads, aggregated
  /// frequencies) persists, so a second call continues serving.
  ServeReport serve(RequestStream& stream);

  /// Per-epoch records of all serve() calls so far.
  [[nodiscard]] const std::vector<EpochRecord>& epochLog() const noexcept {
    return log_;
  }
  /// Cumulative realised loads (service + update + migration traffic).
  [[nodiscard]] const core::LoadMap& loads() const noexcept { return loads_; }
  /// Cumulative aggregated request frequencies.
  [[nodiscard]] const workload::Workload& aggregated() const noexcept {
    return aggregated_;
  }
  /// Current copy locations of `x`, ascending.
  [[nodiscard]] std::vector<net::NodeId> copySet(ObjectId x) const {
    return policy_->copySet(x);
  }
  /// The serving policy instance (for diagnostics/introspection).
  [[nodiscard]] const dynamic::OnlinePolicy& policy() const noexcept {
    return *policy_;
  }
  [[nodiscard]] int numObjects() const noexcept { return numObjects_; }

 private:
  /// Runs the policy's re-placement pass (§4 handoff), charging
  /// migration traffic.
  void replace(std::vector<core::LoadMap>& workerLoads,
               std::vector<core::FlatLoadAccumulator>& workerAcc,
               int workers);

  const net::RootedTree* rooted_;
  int numObjects_;
  ServeOptions options_;
  std::unique_ptr<dynamic::OnlinePolicy> policy_;
  workload::Workload aggregated_;
  core::LoadMap loads_;
  std::vector<EpochRecord> log_;
  std::uint64_t servedTotal_ = 0;
  core::Count replications_ = 0;
  core::Count invalidations_ = 0;
  std::uint64_t replacements_ = 0;
  /// Congestion / lower bound at the last re-placement, the baselines
  /// the drift trigger measures growth from.
  double congestionMark_ = 0.0;
  double lowerBoundMark_ = 0.0;
};

}  // namespace hbn::serve
