// The §4 drift trigger, factored out of EpochServer so every serving
// surface evaluates re-placement with bit-identical arithmetic.
//
// The trigger measures growth since the last re-placement: realised
// serve-only congestion (migration traffic excluded) against the growth
// of the analytic offline lower bound over the same period. It fires
// when congestion grew more than `replaceDrift` times what the
// aggregated frequencies say was unavoidable. A cumulative ratio would
// either never fire or fire forever; the delta resets at each
// re-placement.
//
// Both the single-process EpochServer and the multi-process
// ShardCoordinator (src/shard/) drive their handoff waves through this
// one struct — that shared arithmetic is what keeps the re-placement
// schedule identical between one process and N workers (the coordinator
// feeds it the merged serve loads and the workers' identically computed
// lower bound, both exact).
#pragma once

namespace hbn::serve {

/// Re-placement drift trigger state: the marks taken at the last
/// re-placement and the comparison both serving engines share.
struct DriftTrigger {
  /// <= 0 disables the trigger entirely.
  double replaceDrift = 3.0;
  /// Serve congestion / lower bound at the last re-placement.
  double serveCongestionMark = 0.0;
  double lowerBoundMark = 0.0;

  /// Whether a §4 pass should fire for the given cumulative serve-only
  /// congestion and lower bound. Pure; call reset() when a pass begins.
  [[nodiscard]] bool fired(double serveCongestion,
                           double lowerBound) const noexcept {
    const double congestionGrowth = serveCongestion - serveCongestionMark;
    const double lowerBoundGrowth = lowerBound - lowerBoundMark;
    return replaceDrift > 0.0 && lowerBoundGrowth > 0.0 &&
           congestionGrowth > replaceDrift * lowerBoundGrowth;
  }

  /// Re-bases both marks at a re-placement.
  void reset(double serveCongestion, double lowerBound) noexcept {
    serveCongestionMark = serveCongestion;
    lowerBoundMark = lowerBound;
  }
};

}  // namespace hbn::serve
