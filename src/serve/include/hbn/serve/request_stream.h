// Pull-based request streams for the serving engine.
//
// A RequestStream hands out RequestEvents in batches of at most one
// epoch, so streams of tens of millions of requests are served without
// ever materialising in memory: the generator-backed source synthesises
// events on demand, the trace-backed source reads its file
// incrementally, and the in-memory source exists for tests.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hbn/net/tree.h"
#include "hbn/workload/generators.h"
#include "hbn/workload/serialize.h"
#include "hbn/workload/workload.h"

namespace hbn::serve {

using workload::RequestEvent;

/// Abstract pull source of request events.
class RequestStream {
 public:
  virtual ~RequestStream() = default;

  /// Fills up to out.size() events into the front of `out` and returns
  /// how many were produced; 0 means the stream is exhausted. A stream
  /// never buffers more than one such batch internally.
  [[nodiscard]] virtual std::size_t fill(std::span<RequestEvent> out) = 0;

  /// Discards exactly `count` events. The default implementation pulls
  /// and drops events through fill() — O(count); sources with random
  /// access (seekable generators) override this with a fast-forward.
  /// Throws std::runtime_error when the stream ends before `count`
  /// events (a checkpoint claiming more progress than the stream holds).
  virtual void skip(std::uint64_t count);
};

/// Bounded stream drawing from a generator function (e.g. one of the
/// workload stream generators); O(1) memory regardless of `total`.
///
/// When the underlying generator supports seeking, pass its seek
/// callback: skip(count) then repositions the generator in
/// O(workload::kStreamReseedBlock) instead of replaying `count` events
/// — the difference between a multi-second and a sub-millisecond
/// checkpoint restore on hundred-million-request streams.
class GeneratorStream final : public RequestStream {
 public:
  GeneratorStream(std::function<RequestEvent()> generator,
                  std::uint64_t total);
  GeneratorStream(std::function<RequestEvent()> generator,
                  std::uint64_t total,
                  std::function<void(std::uint64_t)> seek);

  [[nodiscard]] std::size_t fill(std::span<RequestEvent> out) override;
  void skip(std::uint64_t count) override;

 private:
  std::function<RequestEvent()> generator_;
  std::uint64_t remaining_;
  std::uint64_t consumed_ = 0;  ///< events handed out or skipped so far
  std::function<void(std::uint64_t)> seek_;  ///< may be empty
};

/// Trace-file-backed stream (hbn-trace v1), read incrementally.
class TraceFileStream final : public RequestStream {
 public:
  /// Opens `path` and parses the header; throws std::runtime_error when
  /// the file cannot be opened, std::invalid_argument on a bad header.
  explicit TraceFileStream(const std::string& path);

  [[nodiscard]] int numObjects() const noexcept {
    return reader_->numObjects();
  }
  [[nodiscard]] int numNodes() const noexcept { return reader_->numNodes(); }

  [[nodiscard]] std::size_t fill(std::span<RequestEvent> out) override;

 private:
  std::ifstream in_;
  std::unique_ptr<workload::TraceReader> reader_;
};

/// In-memory stream over a fixed vector; for tests and replay of short
/// sequences.
class VectorStream final : public RequestStream {
 public:
  explicit VectorStream(std::vector<RequestEvent> events)
      : events_(std::move(events)) {}

  [[nodiscard]] std::size_t fill(std::span<RequestEvent> out) override;

 private:
  std::vector<RequestEvent> events_;
  std::size_t cursor_ = 0;
};

/// Builds a bounded stream over one of the named workload stream
/// generators: "skewed", "bursty", or "diurnal". Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<RequestStream> makeGeneratedStream(
    const std::string& name, const net::Tree& tree,
    const workload::StreamParams& params, std::uint64_t seed,
    std::uint64_t total);

/// Discards exactly `count` events from `stream` — how a checkpoint
/// restore resumes a deterministic stream at its cursor (rebuild the
/// seeded generator or reopen the trace, then skip the served prefix).
/// Delegates to RequestStream::skip, so generator-backed streams
/// fast-forward in O(workload::kStreamReseedBlock) rather than
/// replaying the whole prefix. Throws std::runtime_error when the
/// stream ends before `count` events (the checkpoint claims more
/// progress than the stream holds).
void skipRequests(RequestStream& stream, std::uint64_t count);

}  // namespace hbn::serve
