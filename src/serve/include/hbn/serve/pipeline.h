// Stage 1 of the pipelined epoch server: double-buffered ingest.
//
// EpochIngest pulls fixed-size epochs from a RequestStream, validates
// them, and pre-buckets them by object id (the stable CSR layout
// serveShard consumes) into one of two EpochBatch slots. In threaded
// mode a dedicated ingest thread keeps the next slot ready while the
// serve thread works on the current one, so pulling + bucketing
// disappears from the serving critical path; in inline mode the same
// fill runs on the caller's thread, which is exactly the barrier
// engine's behaviour. Both modes assemble identical epochs from the
// same stream (same chunked fill loop), which is what lets
// pipeline-on/off runs be compared request for request.
//
// Graceful degradation: when the ingest thread stalls (injected via
// util::FaultInjector, or a genuinely slow stream), acquireFor() lets
// the serve thread wait only a bounded time and then fill the epoch
// inline itself — falling back to the barrier engine for that one
// epoch instead of hanging the pipeline. Every fill (ingest-thread,
// inline, or degraded) runs under one fill mutex and claims the next
// epoch number inside it, so the stream is consumed by exactly one
// filler at a time and epochs keep their order and contents no matter
// which thread assembled them — degraded runs stay bit-identical.
//
// Failures while filling (stream errors, out-of-range requests) are
// wrapped into serve::Error with Stage::Ingest and the epoch being
// assembled, captured on whichever thread hit them, and rethrown from
// acquire()/acquireFor() — the caller sees the same structured error
// in every mode.
//
// Arrival stamps: each fill chunk records one steady-clock stamp, the
// arrival time of every request in that chunk. The serve loop turns
// them into request-latency samples (epoch completion − arrival) for
// the p50/p99/p999 product metrics. Stamps are wall-clock observations,
// never inputs to serving, so they cannot perturb determinism.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "hbn/net/tree.h"
#include "hbn/serve/request_stream.h"
#include "hbn/util/fault.h"

namespace hbn::serve {

/// One in-flight epoch: the raw arrival-order requests, the stable
/// object-bucketed copy with its CSR offsets, and per-chunk arrival
/// stamps.
struct EpochBatch {
  using Clock = std::chrono::steady_clock;

  std::vector<RequestEvent> raw;
  std::vector<RequestEvent> bucketed;
  std::vector<std::size_t> offsets;  ///< numObjects + 1 CSR offsets
  /// (arrival stamp, requests that arrived with it), one per fill chunk.
  std::vector<std::pair<Clock::time_point, std::size_t>> arrivals;
  std::size_t n = 0;  ///< requests in this epoch
  /// Absolute epoch number this batch holds (baseEpoch + fills so far)
  /// — fault specs and ingest errors name epochs in these terms.
  std::uint64_t epoch = 0;

  /// Bytes of per-request buffering this batch holds.
  [[nodiscard]] std::uint64_t bufferBytes() const noexcept;
};

/// What acquireFor() handed out: the batch (nullptr at end of stream)
/// and whether the serve thread had to assemble it itself because the
/// ingest thread was stalled past the watchdog timeout.
struct AcquireResult {
  EpochBatch* batch = nullptr;
  bool degraded = false;
};

/// The double-buffered ingest stage. Single consumer (the serve
/// thread): acquire() → serve the batch → release(). Errors raised
/// while filling are captured on the ingest thread and rethrown from
/// acquire(), so the caller sees the same exceptions in both modes.
class EpochIngest {
 public:
  /// `stream`, `tree` and `faults` must outlive the ingest. `threaded`
  /// selects the dedicated ingest thread (two slots) versus inline
  /// filling on the consumer thread (one slot). `faults` may be null;
  /// `baseEpoch` is the absolute number of the first epoch this ingest
  /// will assemble (nonzero after a checkpoint restore).
  EpochIngest(RequestStream& stream, const net::Tree& tree, int numObjects,
              std::size_t epochSize, bool threaded,
              util::FaultInjector* faults = nullptr,
              std::uint64_t baseEpoch = 0);
  ~EpochIngest();

  EpochIngest(const EpochIngest&) = delete;
  EpochIngest& operator=(const EpochIngest&) = delete;

  /// Next ready epoch, blocking on the ingest thread if it is still
  /// filling; nullptr once the stream is exhausted. The batch stays
  /// owned by the ingest; hand it back with release() before the next
  /// acquire().
  [[nodiscard]] EpochBatch* acquire();

  /// acquire() with a stall watchdog: waits up to `timeoutMs` for the
  /// ingest thread, then assembles the epoch inline on the calling
  /// thread (degraded = true) — the barrier engine's behaviour for that
  /// one epoch. `timeoutMs` <= 0 (or inline mode) means wait forever,
  /// i.e. plain acquire().
  [[nodiscard]] AcquireResult acquireFor(double timeoutMs);

  /// Returns a served batch's slot to the ingest thread for refilling.
  void release(EpochBatch* batch);

  /// Bytes of per-request buffering across all slots — the pipelined
  /// engine's epochBufferBytes (proportional to the epoch and the slot
  /// count, never to the stream).
  [[nodiscard]] std::uint64_t bufferBytes() const noexcept;

 private:
  /// Chunked fill + validate + bucket of one epoch into `batch`.
  void fillBatch(EpochBatch& batch);
  /// Claims the next epoch number and fills `batch` while holding
  /// fillMutex_ (the single-filler token); wraps failures into
  /// serve::Error{Ingest}. Returns false at end of stream.
  bool fillNextEpoch(EpochBatch& batch);
  void ingestLoop();
  /// Signals the ingest thread to stop and joins it; safe to call more
  /// than once. The destructor's RAII teardown — also invoked when the
  /// constructor fails after launching the thread.
  void shutdown() noexcept;

  enum class SlotState { Free, Ready };

  RequestStream* stream_;
  const net::Tree* tree_;
  util::FaultInjector* faults_;
  int numObjects_;
  std::size_t epochSize_;
  bool threaded_;

  std::array<EpochBatch, 2> slots_;
  std::array<SlotState, 2> state_{SlotState::Free, SlotState::Free};
  /// Spare batch the serve thread fills inline when the watchdog fires;
  /// sized lazily on first degradation so healthy runs never pay for it.
  EpochBatch degraded_;
  std::size_t fillIndex_ = 0;   ///< next slot the ingest thread fills
  std::size_t serveIndex_ = 0;  ///< next slot acquire() hands out
  /// Absolute number of the next epoch any filler will assemble;
  /// guarded by mutex_, advanced inside fillNextEpoch.
  std::uint64_t nextEpoch_ = 0;
  bool exhausted_ = false;
  bool stopping_ = false;
  std::exception_ptr error_;
  std::mutex mutex_;
  /// Single-filler token: held across every stream fill (ingest thread
  /// and degraded inline fills alike), so the stream sees one orderly
  /// consumer. Never acquired while holding mutex_.
  std::mutex fillMutex_;
  std::condition_variable readyCv_;  ///< signalled when a slot turns Ready
  std::condition_variable freeCv_;   ///< signalled when a slot turns Free,
                                     ///< an epoch is claimed, or stopping
  std::thread worker_;
};

}  // namespace hbn::serve
