// Stage 1 of the pipelined epoch server: double-buffered ingest.
//
// EpochIngest pulls fixed-size epochs from a RequestStream, validates
// them, and pre-buckets them by object id (the stable CSR layout
// serveShard consumes) into one of two EpochBatch slots. In threaded
// mode a dedicated ingest thread keeps the next slot ready while the
// serve thread works on the current one, so pulling + bucketing
// disappears from the serving critical path; in inline mode the same
// fill runs on the caller's thread, which is exactly the barrier
// engine's behaviour. Both modes assemble identical epochs from the
// same stream (same chunked fill loop), which is what lets
// pipeline-on/off runs be compared request for request.
//
// Arrival stamps: each fill chunk records one steady-clock stamp, the
// arrival time of every request in that chunk. The serve loop turns
// them into request-latency samples (epoch completion − arrival) for
// the p50/p99/p999 product metrics. Stamps are wall-clock observations,
// never inputs to serving, so they cannot perturb determinism.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "hbn/net/tree.h"
#include "hbn/serve/request_stream.h"

namespace hbn::serve {

/// One in-flight epoch: the raw arrival-order requests, the stable
/// object-bucketed copy with its CSR offsets, and per-chunk arrival
/// stamps.
struct EpochBatch {
  using Clock = std::chrono::steady_clock;

  std::vector<RequestEvent> raw;
  std::vector<RequestEvent> bucketed;
  std::vector<std::size_t> offsets;  ///< numObjects + 1 CSR offsets
  /// (arrival stamp, requests that arrived with it), one per fill chunk.
  std::vector<std::pair<Clock::time_point, std::size_t>> arrivals;
  std::size_t n = 0;  ///< requests in this epoch

  /// Bytes of per-request buffering this batch holds.
  [[nodiscard]] std::uint64_t bufferBytes() const noexcept;
};

/// The double-buffered ingest stage. Single consumer (the serve
/// thread): acquire() → serve the batch → release(). Errors raised
/// while filling (stream failures, out-of-range requests) are captured
/// on the ingest thread and rethrown from acquire(), so the caller sees
/// the same exceptions in both modes.
class EpochIngest {
 public:
  /// `stream` and `tree` must outlive the ingest. `threaded` selects
  /// the dedicated ingest thread (two slots) versus inline filling on
  /// the consumer thread (one slot).
  EpochIngest(RequestStream& stream, const net::Tree& tree, int numObjects,
              std::size_t epochSize, bool threaded);
  ~EpochIngest();

  EpochIngest(const EpochIngest&) = delete;
  EpochIngest& operator=(const EpochIngest&) = delete;

  /// Next ready epoch, blocking on the ingest thread if it is still
  /// filling; nullptr once the stream is exhausted. The batch stays
  /// owned by the ingest; hand it back with release() before the next
  /// acquire().
  [[nodiscard]] EpochBatch* acquire();

  /// Returns a served batch's slot to the ingest thread for refilling.
  void release(EpochBatch* batch);

  /// Bytes of per-request buffering across all slots — the pipelined
  /// engine's epochBufferBytes (proportional to the epoch and the slot
  /// count, never to the stream).
  [[nodiscard]] std::uint64_t bufferBytes() const noexcept;

 private:
  /// Chunked fill + validate + bucket of one epoch into `batch`.
  void fillBatch(EpochBatch& batch);
  void ingestLoop();

  enum class SlotState { Free, Ready };

  RequestStream* stream_;
  const net::Tree* tree_;
  int numObjects_;
  std::size_t epochSize_;
  bool threaded_;

  std::array<EpochBatch, 2> slots_;
  std::array<SlotState, 2> state_{SlotState::Free, SlotState::Free};
  std::size_t fillIndex_ = 0;   ///< next slot the ingest thread fills
  std::size_t serveIndex_ = 0;  ///< next slot acquire() hands out
  bool exhausted_ = false;
  bool stopping_ = false;
  std::exception_ptr error_;
  std::mutex mutex_;
  std::condition_variable readyCv_;  ///< signalled when a slot turns Ready
  std::condition_variable freeCv_;   ///< signalled when a slot turns Free
  std::thread worker_;
};

}  // namespace hbn::serve
