#include "hbn/serve/checkpoint.h"

#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hbn::serve {
namespace {

constexpr const char* kHeader = "hbn-checkpoint v1";
constexpr const char* kLatest = "LATEST";

[[noreturn]] void parseFail(const std::string& why) {
  throw std::invalid_argument("checkpoint: " + why);
}

/// FNV-1a 64-bit over the serialized payload: cheap, dependency-free,
/// and enough to turn silent bit rot into a loud restore failure.
std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void appendInt(std::string& out, std::uint64_t value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, ptr);
}

void appendInt(std::string& out, std::int64_t value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, ptr);
}

void appendHex(std::string& out, std::uint64_t value) {
  char buf[20];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value, 16);
  out.append(buf, ptr);
}

void appendCounts(std::string& out, const char* tag,
                  const std::vector<core::Count>& values) {
  out += tag;
  out += ' ';
  appendInt(out, static_cast<std::uint64_t>(values.size()));
  for (const core::Count v : values) {
    out += ' ';
    appendInt(out, static_cast<std::int64_t>(v));
  }
  out += '\n';
}

void readCounts(std::istream& in, const char* tag,
                std::vector<core::Count>& out, int expected) {
  std::string seen;
  std::size_t count = 0;
  if (!(in >> seen >> count) || seen != tag ||
      count != static_cast<std::size_t>(expected)) {
    parseFail(std::string("bad ") + tag + " section");
  }
  out.resize(count);
  for (core::Count& v : out) {
    if (!(in >> v) || v < 0) parseFail(std::string(tag) + " value");
  }
}

/// Doubles round-trip as their raw 64-bit pattern in hex — exact by
/// construction (istream extraction cannot parse hexfloat text).
std::uint64_t markBits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double markValue(std::uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Reads a `<tag> <bytes>\n<payload>` block (the framing that lets the
/// embedded workload / policy text contain anything, including lines
/// that look like checkpoint sections).
std::string readBlock(std::istream& in, const char* tag) {
  std::string seen;
  std::size_t bytes = 0;
  if (!(in >> seen >> bytes) || seen != tag) {
    parseFail(std::string("bad ") + tag + " block header");
  }
  if (bytes > (1u << 30)) parseFail(std::string(tag) + " block too large");
  in.get();  // the newline after the byte count
  std::string payload(bytes, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    parseFail(std::string(tag) + " block truncated");
  }
  return payload;
}

std::string renderPayload(const CheckpointData& data) {
  // Direct string appends (to_chars, single reserve): checkpoint
  // rendering sits on the serve loop's critical path at every
  // checkpoint boundary, and ostream formatting dominated its cost.
  std::string os;
  os.reserve(data.workloadText.size() + data.policyState.size() +
             static_cast<std::size_t>(data.numEdges) * 40 + 512);
  os += kHeader;
  os += "\npolicy ";
  os += data.policySpec;
  os += "\ndims ";
  appendInt(os, static_cast<std::int64_t>(data.numObjects));
  os += ' ';
  appendInt(os, static_cast<std::int64_t>(data.numNodes));
  os += ' ';
  appendInt(os, static_cast<std::int64_t>(data.numEdges));
  os += "\nprogress ";
  appendInt(os, data.servedTotal);
  os += ' ';
  appendInt(os, data.epochs);
  os += ' ';
  appendInt(os, data.replacements);
  os += ' ';
  appendInt(os, static_cast<std::int64_t>(data.replications));
  os += ' ';
  appendInt(os, static_cast<std::int64_t>(data.invalidations));
  os += ' ';
  appendInt(os, data.passesBegun);
  os += "\nstats ";
  appendInt(os, data.degradedEpochs);
  os += ' ';
  appendInt(os, data.handoffRetries);
  os += ' ';
  appendInt(os, data.checkpointsWritten);
  // Raw bit patterns: the doubles round-trip bit for bit, which the
  // drift trigger's growth deltas need for digest identity.
  os += "\nmarks ";
  appendHex(os, markBits(data.serveCongestionMark));
  os += ' ';
  appendHex(os, markBits(data.lowerBoundMark));
  os += '\n';
  appendCounts(os, "loads", data.loads);
  appendCounts(os, "serve-loads", data.serveLoads);
  os += "workload ";
  appendInt(os, static_cast<std::uint64_t>(data.workloadText.size()));
  os += '\n';
  os += data.workloadText;
  os += "policy-state ";
  appendInt(os, static_cast<std::uint64_t>(data.policyState.size()));
  os += '\n';
  os += data.policyState;
  return os;
}

}  // namespace

void writeCheckpoint(const CheckpointData& data, std::ostream& os) {
  const std::string payload = renderPayload(data);
  os << payload << "checksum " << std::hex << fnv1a(payload) << std::dec
     << '\n';
}

CheckpointData readCheckpoint(std::istream& in) {
  // Slurp, split at the trailing checksum line, verify, then parse the
  // payload — so truncation and corruption both fail before any field
  // is half-applied.
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string text = slurp.str();
  const std::size_t mark = text.rfind("checksum ");
  if (mark == std::string::npos || (mark != 0 && text[mark - 1] != '\n')) {
    parseFail("missing checksum line (truncated file?)");
  }
  const std::string payload = text.substr(0, mark);
  std::uint64_t stored = 0;
  {
    std::istringstream tail(text.substr(mark));
    std::string tag;
    if (!(tail >> tag >> std::hex >> stored)) parseFail("bad checksum line");
  }
  if (stored != fnv1a(payload)) {
    parseFail("checksum mismatch (corrupted snapshot)");
  }

  std::istringstream is(payload);
  std::string word, version;
  if (!(is >> word >> version) || word != "hbn-checkpoint") {
    parseFail("not a checkpoint file");
  }
  if (version != "v1") parseFail("unsupported version '" + version + "'");

  CheckpointData data;
  if (!(is >> word >> data.policySpec) || word != "policy") {
    parseFail("bad policy line");
  }
  if (!(is >> word >> data.numObjects >> data.numNodes >> data.numEdges) ||
      word != "dims" || data.numObjects < 1 || data.numNodes < 1 ||
      data.numEdges < 0) {
    parseFail("bad dims line");
  }
  if (!(is >> word >> data.servedTotal >> data.epochs >> data.replacements >>
        data.replications >> data.invalidations >> data.passesBegun) ||
      word != "progress") {
    parseFail("bad progress line");
  }
  if (!(is >> word >> data.degradedEpochs >> data.handoffRetries >>
        data.checkpointsWritten) ||
      word != "stats") {
    parseFail("bad stats line");
  }
  std::uint64_t serveMarkBits = 0;
  std::uint64_t boundMarkBits = 0;
  if (!(is >> word >> std::hex >> serveMarkBits >> boundMarkBits >>
        std::dec) ||
      word != "marks") {
    parseFail("bad marks line");
  }
  data.serveCongestionMark = markValue(serveMarkBits);
  data.lowerBoundMark = markValue(boundMarkBits);
  readCounts(is, "loads", data.loads, data.numEdges);
  readCounts(is, "serve-loads", data.serveLoads, data.numEdges);
  data.workloadText = readBlock(is, "workload");
  data.policyState = readBlock(is, "policy-state");
  return data;
}

std::string writeCheckpointFile(const CheckpointData& data,
                                const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create checkpoint dir " + dir + ": " +
                             ec.message());
  }
  const std::string name =
      "checkpoint-" + std::to_string(data.epochs) + ".hbn";
  const fs::path final = fs::path(dir) / name;
  const fs::path tmp = fs::path(dir) / (name + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open " + tmp.string() +
                               " for writing");
    }
    writeCheckpoint(data, out);
    out.flush();
    if (!out) {
      throw std::runtime_error("write failed for " + tmp.string());
    }
  }
  fs::rename(tmp, final, ec);
  if (ec) {
    throw std::runtime_error("cannot publish " + final.string() + ": " +
                             ec.message());
  }
  // LATEST via the same rename dance: readers either see the old
  // pointer or the new one, never a torn write.
  const fs::path latestTmp = fs::path(dir) / (std::string(kLatest) + ".tmp");
  {
    std::ofstream out(latestTmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open " + latestTmp.string());
    }
    out << name << '\n';
  }
  fs::rename(latestTmp, fs::path(dir) / kLatest, ec);
  if (ec) {
    throw std::runtime_error("cannot update LATEST in " + dir + ": " +
                             ec.message());
  }
  return final.string();
}

CheckpointData readCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open checkpoint " + path);
  return readCheckpoint(in);
}

std::string latestCheckpointPath(const std::string& dir) {
  namespace fs = std::filesystem;
  std::ifstream in(fs::path(dir) / kLatest);
  std::string name;
  if (!in || !(in >> name) || name.empty()) {
    throw std::runtime_error("no checkpoint in " + dir +
                             " (missing or empty LATEST)");
  }
  return (fs::path(dir) / name).string();
}

}  // namespace hbn::serve
