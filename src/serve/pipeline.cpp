#include "hbn/serve/pipeline.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "hbn/dynamic/harness.h"
#include "hbn/serve/error.h"

namespace hbn::serve {
namespace {

/// Fill chunks per epoch: each chunk gets one arrival stamp, so an
/// epoch contributes up to this many latency samples. Small enough that
/// stamping is free, large enough that per-epoch p99 means something.
constexpr std::size_t kIngestChunks = 16;

}  // namespace

std::uint64_t EpochBatch::bufferBytes() const noexcept {
  return static_cast<std::uint64_t>(raw.capacity() + bucketed.capacity()) *
             sizeof(RequestEvent) +
         static_cast<std::uint64_t>(offsets.capacity()) *
             sizeof(std::size_t) +
         static_cast<std::uint64_t>(arrivals.capacity()) *
             sizeof(arrivals[0]);
}

EpochIngest::EpochIngest(RequestStream& stream, const net::Tree& tree,
                         int numObjects, std::size_t epochSize, bool threaded,
                         util::FaultInjector* faults,
                         std::uint64_t baseEpoch)
    : stream_(&stream),
      tree_(&tree),
      faults_(faults),
      numObjects_(numObjects),
      epochSize_(epochSize),
      threaded_(threaded),
      nextEpoch_(baseEpoch) {
  if (epochSize_ < 1) {
    throw std::invalid_argument("EpochIngest: epochSize >= 1");
  }
  const std::size_t slotCount = threaded_ ? 2 : 1;
  for (std::size_t s = 0; s < slotCount; ++s) {
    slots_[s].raw.resize(epochSize_);
    slots_[s].bucketed.resize(epochSize_);
    slots_[s].offsets.resize(static_cast<std::size_t>(numObjects_) + 1);
    slots_[s].arrivals.reserve(kIngestChunks);
  }
  // Launch last: everything the thread touches is initialised, and the
  // RAII shutdown() below joins it on every exit path after this point.
  if (threaded_) {
    worker_ = std::thread([this] { ingestLoop(); });
  }
}

EpochIngest::~EpochIngest() { shutdown(); }

void EpochIngest::shutdown() noexcept {
  if (!worker_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  freeCv_.notify_all();
  worker_.join();
}

void EpochIngest::fillBatch(EpochBatch& batch) {
  batch.n = 0;
  batch.arrivals.clear();
  const std::size_t chunk = std::max<std::size_t>(
      1, (epochSize_ + kIngestChunks - 1) / kIngestChunks);
  while (batch.n < epochSize_) {
    const std::size_t want = std::min(chunk, epochSize_ - batch.n);
    const std::size_t got = stream_->fill(
        std::span<RequestEvent>(batch.raw.data() + batch.n, want));
    if (got == 0) break;
    batch.arrivals.emplace_back(EpochBatch::Clock::now(), got);
    batch.n += got;
  }
  if (batch.n == 0) return;
  for (std::size_t i = 0; i < batch.n; ++i) {
    const RequestEvent& ev = batch.raw[i];
    if (ev.object < 0 || ev.object >= numObjects_) {
      throw std::out_of_range("EpochServer: request object out of range");
    }
    if (ev.origin < 0 || ev.origin >= tree_->nodeCount()) {
      throw std::out_of_range("EpochServer: request origin out of range");
    }
  }
  dynamic::bucketRequestsByObject(
      std::span<const RequestEvent>(batch.raw.data(), batch.n), numObjects_,
      batch.offsets,
      std::span<RequestEvent>(batch.bucketed.data(), batch.n));
}

bool EpochIngest::fillNextEpoch(EpochBatch& batch) {
  // Caller holds fillMutex_ (the single-filler token): only one thread
  // touches the stream at a time, and the epoch number claimed here is
  // therefore strictly sequential no matter which thread fills.
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch = nextEpoch_;
  }
  batch.epoch = epoch;
  try {
    fillBatch(batch);
  } catch (const Error&) {
    throw;
  } catch (const std::exception& e) {
    throw Error(Stage::Ingest, epoch, e.what());
  } catch (...) {
    throw Error(Stage::Ingest, epoch, "unknown ingest failure");
  }
  if (batch.n == 0) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++nextEpoch_;
  }
  // Wakes an ingest thread stalled on this epoch: its epoch was taken
  // over, it should move on to the next one.
  freeCv_.notify_all();
  return true;
}

void EpochIngest::ingestLoop() {
  for (;;) {
    std::size_t index;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      freeCv_.wait(lock, [this] {
        return stopping_ || state_[fillIndex_] == SlotState::Free;
      });
      if (stopping_) return;
      index = fillIndex_;
      // Injected ingest stall: sleep BEFORE taking the fill token, so a
      // watchdogged consumer (acquireFor) can assemble the epoch itself
      // meanwhile. The sleep is interruptible — it ends early when the
      // epoch is taken over, the stream ends, or we are stopping.
      if (faults_ != nullptr) {
        const std::uint64_t epoch = nextEpoch_;
        const double stall = faults_->stallMs(epoch);
        if (stall > 0.0) {
          freeCv_.wait_for(
              lock, std::chrono::duration<double, std::milli>(stall),
              [this, epoch] {
                return stopping_ || exhausted_ || nextEpoch_ != epoch;
              });
          if (stopping_) return;
          if (exhausted_ || nextEpoch_ != epoch) continue;
        }
      }
    }
    // Fill outside mutex_: this is the whole point of the stage — the
    // consumer serves the other slot meanwhile.
    bool end = false;
    try {
      std::lock_guard<std::mutex> fillLock(fillMutex_);
      end = !fillNextEpoch(slots_[index]);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      error_ = std::current_exception();
      readyCv_.notify_all();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (end) {
        exhausted_ = true;
        readyCv_.notify_all();
        return;
      }
      state_[index] = SlotState::Ready;
      fillIndex_ = 1 - fillIndex_;
    }
    readyCv_.notify_all();
  }
}

EpochBatch* EpochIngest::acquire() {
  if (!threaded_) {
    EpochBatch& batch = slots_[0];
    std::lock_guard<std::mutex> fillLock(fillMutex_);
    return fillNextEpoch(batch) ? &batch : nullptr;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  readyCv_.wait(lock, [this] {
    return error_ || exhausted_ || state_[serveIndex_] == SlotState::Ready;
  });
  if (state_[serveIndex_] == SlotState::Ready) {
    // Drain ready slots before reporting end-of-stream or an error: the
    // epochs before the failure point are valid either way.
    EpochBatch* batch = &slots_[serveIndex_];
    serveIndex_ = 1 - serveIndex_;
    return batch;
  }
  if (error_) std::rethrow_exception(error_);
  return nullptr;  // exhausted
}

AcquireResult EpochIngest::acquireFor(double timeoutMs) {
  if (!threaded_ || timeoutMs <= 0.0) return {acquire(), false};
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool signalled = readyCv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeoutMs), [this] {
          return error_ || exhausted_ ||
                 state_[serveIndex_] == SlotState::Ready;
        });
    if (signalled) {
      if (state_[serveIndex_] == SlotState::Ready) {
        EpochBatch* batch = &slots_[serveIndex_];
        serveIndex_ = 1 - serveIndex_;
        return {batch, false};
      }
      if (error_) std::rethrow_exception(error_);
      return {nullptr, false};
    }
  }
  // Watchdog fired: contend for the fill token. If the ingest thread
  // finishes while we wait for it, serve its slot normally — only a
  // thread that wins the token against a still-stalled ingest assembles
  // the epoch inline (the barrier engine's behaviour for this epoch).
  std::lock_guard<std::mutex> fillLock(fillMutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (error_ || exhausted_ || state_[serveIndex_] == SlotState::Ready) {
      if (state_[serveIndex_] == SlotState::Ready) {
        EpochBatch* batch = &slots_[serveIndex_];
        serveIndex_ = 1 - serveIndex_;
        return {batch, false};
      }
      if (error_) std::rethrow_exception(error_);
      return {nullptr, false};
    }
  }
  if (degraded_.offsets.empty()) {
    degraded_.raw.resize(epochSize_);
    degraded_.bucketed.resize(epochSize_);
    degraded_.offsets.resize(static_cast<std::size_t>(numObjects_) + 1);
    degraded_.arrivals.reserve(kIngestChunks);
  }
  if (!fillNextEpoch(degraded_)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      exhausted_ = true;
    }
    freeCv_.notify_all();  // releases an ingest thread stalled on this epoch
    return {nullptr, false};
  }
  return {&degraded_, true};
}

void EpochIngest::release(EpochBatch* batch) {
  if (!threaded_ || batch == nullptr || batch == &degraded_) return;
  const auto index = static_cast<std::size_t>(batch - slots_.data());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_[index] = SlotState::Free;
  }
  freeCv_.notify_all();
}

std::uint64_t EpochIngest::bufferBytes() const noexcept {
  const std::size_t slotCount = threaded_ ? 2 : 1;
  std::uint64_t total = degraded_.bufferBytes();
  for (std::size_t s = 0; s < slotCount; ++s) {
    total += slots_[s].bufferBytes();
  }
  return total;
}

}  // namespace hbn::serve
